"""EXP-01 benchmark — isolated-node census (Lemmas 3.5 / 4.10)."""

from __future__ import annotations

from repro.analysis.isolated import isolated_fraction
from repro.models import PDG, SDG
from repro.theory.isolated import (
    isolated_fraction_lower_bound_poisson,
    isolated_fraction_lower_bound_streaming,
    isolated_fraction_prediction_streaming,
)

N, D = 400, 2


def sdg_isolated_kernel(seed: int = 0) -> float:
    net = SDG(n=N, d=D, seed=seed)
    net.run_rounds(N)
    return isolated_fraction(net.snapshot())


def pdg_isolated_kernel(seed: int = 0) -> float:
    net = PDG(n=N, d=D, seed=seed)
    return isolated_fraction(net.snapshot())


def test_bench_sdg_isolated_fraction(benchmark, bench_seed):
    fraction = benchmark.pedantic(
        sdg_isolated_kernel, args=(bench_seed,), rounds=3, iterations=1
    )
    assert fraction >= isolated_fraction_lower_bound_streaming(D)
    # The measured point sits near the first-order prediction.
    assert fraction <= 3 * isolated_fraction_prediction_streaming(D)


def test_bench_pdg_isolated_fraction(benchmark, bench_seed):
    fraction = benchmark.pedantic(
        pdg_isolated_kernel, args=(bench_seed,), rounds=3, iterations=1
    )
    assert fraction >= isolated_fraction_lower_bound_poisson(D)
