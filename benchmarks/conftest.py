"""Benchmark harness configuration.

Every benchmark module regenerates one experiment's core measurement
(DESIGN.md §3 maps EXP-xx ids to modules) at a laptop-quick scale and
asserts the paper's qualitative shape on the measured output, so
``pytest benchmarks/ --benchmark-only`` doubles as a fast reproduction
check.  Benchmarks use ``benchmark.pedantic`` with few rounds: the kernels
are stochastic simulations where single-run wall-time, not nanosecond
jitter, is the quantity of interest.
"""
