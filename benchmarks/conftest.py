"""Benchmark harness configuration.

Every benchmark module regenerates one experiment's core measurement
(DESIGN.md §3 maps EXP-xx ids to modules) at a laptop-quick scale and
asserts the paper's qualitative shape on the measured output, so
``pytest benchmarks/ --benchmark-only`` doubles as a fast reproduction
check.  Benchmarks use ``benchmark.pedantic`` with few rounds: the kernels
are stochastic simulations where single-run wall-time, not nanosecond
jitter, is the quantity of interest.

Reproducibility: every kernel takes its seed from the :func:`bench_seed`
fixture below, so two benchmark runs simulate the *identical* stochastic
trajectory and their timings are comparable across PRs.  Override with
``REPRO_BENCH_SEED=<int>`` to measure a different trajectory.
"""

from __future__ import annotations

import os

import pytest


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers", "slow: long-running benchmark (e.g. the n=1e5 scaling point)"
    )


@pytest.fixture(scope="session")
def bench_seed() -> int:
    """The explicit master seed threaded through every benchmark kernel.

    Defaults to 0 — the value the kernels historically hard-coded — so
    benchmark numbers stay comparable with runs from before the fixture
    existed.
    """
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))
