"""Analysis-plane benchmark — dict snapshot path vs zero-copy CSR views.

The measured kernels are *observation windows*, the unit of work the
scenario layer pays every time an observer cadence fires:

* ``census`` — build topology access, then run the degree summary and
  the isolated-node count (what the ``degrees`` + ``isolated``
  observers cost per window);
* ``probe`` — build topology access, then run the adversarial
  vertex-expansion portfolio (the ``expansion`` observer) with a
  bounded ``max_size`` window, the configuration large-n cadenced
  probing uses.

Each kernel runs twice on the same frozen network state: the **dict**
plane (``state.snapshot()`` → dict-of-frozensets analyses) and the
**csr** plane (``state.csr_view()`` → vectorized analyses).  The probe
kernel asserts the two planes return the *identical* probe (minimum,
witness, candidates checked) before timings count — the benchmark
doubles as a large-n parity check.

Run as a script to sweep n ∈ {1e3, 1e4, 1e5} and record the numbers
(plus the csr/dict speedups) into ``BENCH_analysis.json``:

    PYTHONPATH=src python benchmarks/bench_analysis.py

or via ``pytest benchmarks/bench_analysis.py`` for the CI-scale subset
(which respects ``REPRO_BACKEND``, so the smoke matrix covers view
construction from both topology backends).  The acceptance bars tracked
here, on the array backend at n = 1e5: probe ≥ 5×, census ≥ 10×.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import pytest

from repro.analysis.degrees import degree_summary
from repro.analysis.expansion import adversarial_expansion_upper_bound
from repro.analysis.isolated import count_isolated
from repro.core.backend import default_backend_name
from repro.core.edge_policy import RegenerationPolicy
from repro.models.streaming import StreamingNetwork

D = 4
PROBE_PARAMS = dict(seed=1, num_random_sets=64, greedy_restarts=4, max_size=64)
SCRIPT_SIZES = (1_000, 10_000, 100_000)
PROBE_SPEEDUP_FLOOR_AT_1E5 = 5.0
CENSUS_SPEEDUP_FLOOR_AT_1E5 = 10.0


def build_network(n: int, seed: int, backend: str | None) -> StreamingNetwork:
    """A warmed SDGR state — the expander the expansion observer targets."""
    return StreamingNetwork(
        n, RegenerationPolicy(D), seed=seed, backend=backend, fast_warm=True
    )


def analysis_kernel(net: StreamingNetwork, plane: str) -> dict:
    """Time one census window and one probe window on *plane*.

    Both windows include the topology-access build (snapshot freeze or
    view export) — that is what an observer cadence actually costs.
    """
    state, now = net.state, net.now

    start = time.perf_counter()
    graph = state.snapshot(now) if plane == "dict" else state.csr_view(now)
    build_seconds = time.perf_counter() - start

    start = time.perf_counter()
    summary = degree_summary(graph)
    isolated = count_isolated(graph)
    census_seconds = build_seconds + (time.perf_counter() - start)

    start = time.perf_counter()
    graph = state.snapshot(now) if plane == "dict" else state.csr_view(now)
    probe = adversarial_expansion_upper_bound(graph, **PROBE_PARAMS)
    probe_seconds = time.perf_counter() - start

    # Raw seconds: speedups divide these, so they must not be
    # pre-rounded (a fast machine's census kernel rounds to 0.0).
    return {
        "plane": plane,
        "n": state.num_alive(),
        "build_seconds": build_seconds,
        "census_seconds": census_seconds,
        "probe_seconds": probe_seconds,
        "mean_degree": round(summary.mean_degree, 4),
        "num_edges": summary.num_edges,
        "isolated": isolated,
        "probe_min_ratio": probe.min_ratio,
        "probe_witness_size": probe.witness_size,
        "probe_candidates": probe.candidates_checked,
    }


def compare_planes(n: int, seed: int, backend: str | None = "array") -> dict:
    """Run both planes on one frozen state; speedups are csr vs dict.

    A small untimed run first warms NumPy dispatch and the allocator, so
    the first measured plane is not penalized by cold-start costs.
    """
    analysis_kernel(build_network(min(n, 1_000), seed, backend), "csr")
    net = build_network(n, seed, backend)
    dict_plane = analysis_kernel(net, "dict")
    csr_plane = analysis_kernel(net, "csr")
    for field in ("num_edges", "isolated", "probe_min_ratio",
                  "probe_witness_size", "probe_candidates"):
        if dict_plane[field] != csr_plane[field]:
            raise AssertionError(
                f"plane parity broken at n={n}: {field} "
                f"{dict_plane[field]} != {csr_plane[field]}"
            )
    census_speedup = dict_plane["census_seconds"] / csr_plane["census_seconds"]
    probe_speedup = dict_plane["probe_seconds"] / csr_plane["probe_seconds"]
    for plane in (dict_plane, csr_plane):  # round for the JSON record only
        for field in ("build_seconds", "census_seconds", "probe_seconds"):
            plane[field] = round(plane[field], 6)
    return {
        "n": n,
        "dict": dict_plane,
        "csr": csr_plane,
        "census_speedup": round(census_speedup, 2),
        "probe_speedup": round(probe_speedup, 2),
    }


# ----------------------------------------------------------------------
# pytest entry points (CI scale: the 1e5 point is marked slow)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n", [1_000, 10_000])
def test_bench_analysis(benchmark, bench_seed, n):
    # backend=None → process default, so the CI smoke matrix exercises
    # view construction from both topology backends (compare_planes
    # itself asserts the planes agree, whichever backend runs).
    comparison = benchmark.pedantic(
        compare_planes, args=(n, bench_seed, None), rounds=2, iterations=1
    )
    assert comparison["csr"]["probe_min_ratio"] > 0.1  # SDGR expands
    # Speedup floors only make sense where the view export is zero-copy:
    # on the dict backend the view build is itself a Python pass, and
    # the plane is about parity, not speed.  Generous floors at CI scale
    # (sub-second kernels, noisy runners); the hard 5x/10x acceptance
    # bars live in the slow 1e5 test and in script mode.
    if n >= 10_000 and default_backend_name() == "array":
        assert comparison["probe_speedup"] >= 1.5
        assert comparison["census_speedup"] >= 3.0


@pytest.mark.slow
def test_bench_analysis_1e5(benchmark, bench_seed):
    comparison = benchmark.pedantic(
        compare_planes, args=(100_000, bench_seed, "array"), rounds=1, iterations=1
    )
    assert comparison["probe_speedup"] >= PROBE_SPEEDUP_FLOOR_AT_1E5
    assert comparison["census_speedup"] >= CENSUS_SPEEDUP_FLOOR_AT_1E5


# ----------------------------------------------------------------------
# script mode: full sweep recorded to BENCH_analysis.json
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--backend", default="array",
        help="topology backend owning the measured state (default: array)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_analysis.json",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="*", default=list(SCRIPT_SIZES)
    )
    args = parser.parse_args(argv)
    if not args.sizes:
        parser.error("--sizes needs at least one value")

    results = []
    for n in args.sizes:
        comparison = compare_planes(n, args.seed, args.backend)
        results.append(comparison)
        print(
            f"n={n:>7}: census dict {comparison['dict']['census_seconds']:8.3f}s | "
            f"csr {comparison['csr']['census_seconds']:8.4f}s "
            f"({comparison['census_speedup']:6.1f}x) || "
            f"probe dict {comparison['dict']['probe_seconds']:8.3f}s | "
            f"csr {comparison['csr']['probe_seconds']:8.3f}s "
            f"({comparison['probe_speedup']:6.1f}x)"
        )

    payload = {
        "benchmark": (
            "analysis plane (dict snapshot path vs zero-copy CSR views: "
            "degree/isolated census + adversarial expansion probe windows)"
        ),
        "d": D,
        "backend": args.backend,
        "probe_params": dict(PROBE_PARAMS),
        "seed": args.seed,
        "results": results,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    largest = max(results, key=lambda row: row["n"])
    failed = False
    if largest["n"] >= 100_000:
        if largest["probe_speedup"] < PROBE_SPEEDUP_FLOOR_AT_1E5:
            print(
                f"FAIL: probe speedup {largest['probe_speedup']}x at "
                f"n={largest['n']} is below the "
                f"{PROBE_SPEEDUP_FLOOR_AT_1E5}x floor"
            )
            failed = True
        if largest["census_speedup"] < CENSUS_SPEEDUP_FLOOR_AT_1E5:
            print(
                f"FAIL: census speedup {largest['census_speedup']}x at "
                f"n={largest['n']} is below the "
                f"{CENSUS_SPEEDUP_FLOOR_AT_1E5}x floor"
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
