"""Analysis-plane benchmark — dict snapshot path vs zero-copy CSR views.

The measured kernels are *observation windows*, the unit of work the
scenario layer pays every time an observer cadence fires:

* ``census`` — build topology access, then run the degree summary and
  the isolated-node count (what the ``degrees`` + ``isolated``
  observers cost per window);
* ``probe`` — build topology access, then run the adversarial
  vertex-expansion portfolio (the ``expansion`` observer) with a
  bounded ``max_size`` window, the configuration large-n cadenced
  probing uses.

Each kernel runs twice on the same frozen network state: the **dict**
plane (``state.snapshot()`` → dict-of-frozensets analyses) and the
**csr** plane (``state.csr_view()`` → vectorized analyses).  The probe
kernel asserts the two planes return the *identical* probe (minimum,
witness, candidates checked) before timings count — the benchmark
doubles as a large-n parity check.

A third kernel measures the *incremental* plane
(:class:`repro.analysis.incremental.ProbeCache`): after a warm fill, each
dense-cadence window churns a small delta and re-probes, replaying every
BFS ball churn did not reach.  Every incremental probe is asserted
bit-identical (minimum, witness, candidates checked) against a cold CSR
probe of the same window before its timing counts.

Run as a script to sweep n ∈ {1e3, 1e4, 1e5, 1e6} and record the numbers
(plus the csr/dict speedups) into ``BENCH_analysis.json``:

    PYTHONPATH=src python benchmarks/bench_analysis.py

or via ``pytest benchmarks/bench_analysis.py`` for the CI-scale subset
(which respects ``REPRO_BACKEND``, so the smoke matrix covers view
construction from both topology backends).  The acceptance bars tracked
here, on the array backend: at n = 1e5 probe ≥ 5×, census ≥ 10×,
incremental ≥ 3× over the cold CSR probe; at n = 1e6 the full stock
observer portfolio (expansion + degrees + isolated) must complete a
dense-cadence window in seconds, not minutes (int32 compact CSR mode,
no dict plane — a dict probe at that scale takes tens of minutes).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import pytest

from repro.analysis.degrees import degree_summary
from repro.analysis.expansion import adversarial_expansion_upper_bound
from repro.analysis.incremental import ProbeCache
from repro.analysis.isolated import count_isolated
from repro.core.backend import default_backend_name
from repro.core.edge_policy import RegenerationPolicy
from repro.models.streaming import StreamingNetwork

D = 4
PROBE_PARAMS = dict(seed=1, num_random_sets=64, greedy_restarts=4, max_size=64)
SCRIPT_SIZES = (1_000, 10_000, 100_000, 1_000_000)
PROBE_SPEEDUP_FLOOR_AT_1E5 = 5.0
CENSUS_SPEEDUP_FLOOR_AT_1E5 = 10.0
INCREMENTAL_SPEEDUP_FLOOR_AT_1E5 = 3.0
PORTFOLIO_WINDOW_CEILING_AT_1E6 = 60.0  # "seconds, not minutes"
#: Sizes at or above this skip the dict plane entirely and measure the
#: portfolio + incremental window instead (the dict probe would take
#: tens of minutes there, and the plane's parity is already asserted
#: against the cold CSR probe in-kernel).
PORTFOLIO_ONLY_AT = 1_000_000
#: Incremental windows measured per size (after one uncounted warm-up
#: window that absorbs allocator/CSR-rebuild cold starts).
INCREMENTAL_WINDOWS = 4
#: Smallest size whose script-mode row carries incremental-probe keys.
#: Below this the cold probe is already sub-second and the per-window
#: churn delta is a large fraction of the graph, so the replay ratio
#: (and therefore the speedup) is noise — the checker skips sizes where
#: neither side carries the key.
INCREMENTAL_AT = 100_000


def build_network(n: int, seed: int, backend: str | None) -> StreamingNetwork:
    """A warmed SDGR state — the expander the expansion observer targets."""
    return StreamingNetwork(
        n, RegenerationPolicy(D), seed=seed, backend=backend, fast_warm=True
    )


def analysis_kernel(net: StreamingNetwork, plane: str) -> dict:
    """Time one census window and one probe window on *plane*.

    Both windows include the topology-access build (snapshot freeze or
    view export) — that is what an observer cadence actually costs.
    """
    state, now = net.state, net.now

    start = time.perf_counter()
    graph = state.snapshot(now) if plane == "dict" else state.csr_view(now)
    build_seconds = time.perf_counter() - start

    start = time.perf_counter()
    summary = degree_summary(graph)
    isolated = count_isolated(graph)
    census_seconds = build_seconds + (time.perf_counter() - start)

    start = time.perf_counter()
    graph = state.snapshot(now) if plane == "dict" else state.csr_view(now)
    probe = adversarial_expansion_upper_bound(graph, **PROBE_PARAMS)
    probe_seconds = time.perf_counter() - start

    # Raw seconds: speedups divide these, so they must not be
    # pre-rounded (a fast machine's census kernel rounds to 0.0).
    return {
        "plane": plane,
        "n": state.num_alive(),
        "build_seconds": build_seconds,
        "census_seconds": census_seconds,
        "probe_seconds": probe_seconds,
        "mean_degree": round(summary.mean_degree, 4),
        "num_edges": summary.num_edges,
        "isolated": isolated,
        "probe_min_ratio": probe.min_ratio,
        "probe_witness_size": probe.witness_size,
        "probe_candidates": probe.candidates_checked,
    }


def compare_planes(
    n: int,
    seed: int,
    backend: str | None = "array",
    incremental: bool = False,
) -> dict:
    """Run both planes on one frozen state; speedups are csr vs dict.

    A small untimed run first warms NumPy dispatch and the allocator, so
    the first measured plane is not penalized by cold-start costs.  With
    ``incremental=True`` the row additionally measures the ProbeCache
    windows (:func:`incremental_compare`) on the same network.
    """
    analysis_kernel(build_network(min(n, 1_000), seed, backend), "csr")
    net = build_network(n, seed, backend)
    dict_plane = analysis_kernel(net, "dict")
    csr_plane = analysis_kernel(net, "csr")
    for field in ("num_edges", "isolated", "probe_min_ratio",
                  "probe_witness_size", "probe_candidates"):
        if dict_plane[field] != csr_plane[field]:
            raise AssertionError(
                f"plane parity broken at n={n}: {field} "
                f"{dict_plane[field]} != {csr_plane[field]}"
            )
    census_speedup = dict_plane["census_seconds"] / csr_plane["census_seconds"]
    probe_speedup = dict_plane["probe_seconds"] / csr_plane["probe_seconds"]
    for plane in (dict_plane, csr_plane):  # round for the JSON record only
        for field in ("build_seconds", "census_seconds", "probe_seconds"):
            plane[field] = round(plane[field], 6)
    row = {
        "n": n,
        "dict": dict_plane,
        "csr": csr_plane,
        "census_speedup": round(census_speedup, 2),
        "probe_speedup": round(probe_speedup, 2),
    }
    if incremental:
        stats = incremental_compare(net)
        row["incremental"] = {
            key: round(value, 6) if isinstance(value, float) else value
            for key, value in stats.items()
        }
        row["incremental_speedup"] = round(stats["incremental_speedup"], 2)
    return row


# ----------------------------------------------------------------------
# incremental plane: ProbeCache windows vs cold CSR probes
# ----------------------------------------------------------------------

#: ProbeCache portfolio parameters (PROBE_PARAMS minus the RNG seed,
#: which is passed per probe).
PORTFOLIO_PARAMS = {
    key: value for key, value in PROBE_PARAMS.items() if key != "seed"
}


def _assert_probes_identical(incremental, cold, n: int) -> None:
    for field in ("min_ratio", "witness", "witness_size",
                  "candidates_checked"):
        if getattr(incremental, field) != getattr(cold, field):
            raise AssertionError(
                f"incremental parity broken at n={n}: {field} "
                f"{getattr(incremental, field)!r} != "
                f"{getattr(cold, field)!r}"
            )


def incremental_compare(
    net: StreamingNetwork, windows: int = INCREMENTAL_WINDOWS
) -> dict:
    """Measure warm incremental probe windows against cold CSR probes.

    Each window advances the network one round (a dense cadence with a
    small churn delta), times the incremental probe — including the
    window's CSR rebuild, which the incremental path pays first — and
    then times a cold probe of the very same topology.  The two probes
    are asserted **bit-identical in-kernel** before either timing
    counts, so the recorded speedup can never come from a diverged
    result.
    """
    state = net.state
    seed = PROBE_PARAMS["seed"]
    cache = ProbeCache(state, **PORTFOLIO_PARAMS)

    start = time.perf_counter()
    cache.probe(state.csr_view(net.now), seed=seed)
    fill_seconds = time.perf_counter() - start

    incremental_seconds = 0.0
    cold_seconds = 0.0
    replayed = recomputed = 0
    for window in range(windows + 1):
        net.run_rounds(1)
        start = time.perf_counter()
        incremental = cache.probe(state.csr_view(net.now), seed=seed)
        window_incremental = time.perf_counter() - start
        start = time.perf_counter()
        cold = adversarial_expansion_upper_bound(
            state.csr_view(net.now), **PROBE_PARAMS
        )
        window_cold = time.perf_counter() - start
        _assert_probes_identical(incremental, cold, state.num_alive())
        if window == 0:
            continue  # warm-up window: absorbs allocator cold starts
        incremental_seconds += window_incremental
        cold_seconds += window_cold
        replayed += cache.last_stats["replayed"]
        recomputed += cache.last_stats["recomputed"]
    return {
        "windows": windows,
        "fill_seconds": fill_seconds,
        "incremental_seconds": incremental_seconds / windows,
        "cold_probe_seconds": cold_seconds / windows,
        "incremental_speedup": cold_seconds / incremental_seconds,
        "replayed_per_window": replayed // windows,
        "recomputed_per_window": recomputed // windows,
    }


def portfolio_row(n: int, seed: int) -> dict:
    """The million-node row: the full stock observer portfolio per window.

    Runs on the array backend in int32 compact-CSR mode with the
    incremental probe cache — no dict plane anywhere.  The recorded
    ``portfolio_seconds`` is one dense-cadence window: CSR rebuild +
    degree summary + isolated census + incremental expansion probe.
    A single cold CSR probe supplies the in-kernel parity assertion and
    the cold baseline the incremental speedup divides.
    """
    from repro.core.array_backend import ArraySlotBackend

    build_start = time.perf_counter()
    net = build_network(n, seed, ArraySlotBackend(compact_csr=True))
    build_seconds = time.perf_counter() - build_start
    state = net.state
    probe_seed = PROBE_PARAMS["seed"]
    cache = ProbeCache(state, **PORTFOLIO_PARAMS)

    start = time.perf_counter()
    cache.probe(state.csr_view(net.now), seed=probe_seed)
    fill_seconds = time.perf_counter() - start

    net.run_rounds(1)  # warm-up window (uncounted)
    cache.probe(state.csr_view(net.now), seed=probe_seed)

    net.run_rounds(1)
    start = time.perf_counter()
    view = state.csr_view(net.now)
    summary = degree_summary(view)
    isolated = count_isolated(view)
    incremental = cache.probe(view, seed=probe_seed)
    portfolio_seconds = time.perf_counter() - start

    start = time.perf_counter()
    cold = adversarial_expansion_upper_bound(
        state.csr_view(net.now), **PROBE_PARAMS
    )
    cold_seconds = time.perf_counter() - start
    _assert_probes_identical(incremental, cold, n)

    return {
        "n": n,
        "compact_csr": True,
        "build_seconds": round(build_seconds, 3),
        "fill_seconds": round(fill_seconds, 3),
        "portfolio_seconds": round(portfolio_seconds, 3),
        "cold_probe_seconds": round(cold_seconds, 3),
        "incremental_speedup": round(cold_seconds / portfolio_seconds, 2),
        "view_nbytes": int(view.nbytes),
        "mean_degree": round(summary.mean_degree, 4),
        "num_edges": summary.num_edges,
        "isolated": isolated,
        "probe_min_ratio": cold.min_ratio,
        "probe_witness_size": cold.witness_size,
        "probe_candidates": cold.candidates_checked,
        "replayed": cache.last_stats["replayed"],
        "recomputed": cache.last_stats["recomputed"],
    }


# ----------------------------------------------------------------------
# pytest entry points (CI scale: the 1e5 point is marked slow)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n", [1_000, 10_000])
def test_bench_analysis(benchmark, bench_seed, n):
    # backend=None → process default, so the CI smoke matrix exercises
    # view construction from both topology backends (compare_planes
    # itself asserts the planes agree, whichever backend runs).
    comparison = benchmark.pedantic(
        compare_planes, args=(n, bench_seed, None), rounds=2, iterations=1
    )
    assert comparison["csr"]["probe_min_ratio"] > 0.1  # SDGR expands
    # Speedup floors only make sense where the view export is zero-copy:
    # on the dict backend the view build is itself a Python pass, and
    # the plane is about parity, not speed.  Generous floors at CI scale
    # (sub-second kernels, noisy runners); the hard 5x/10x acceptance
    # bars live in the slow 1e5 test and in script mode.
    if n >= 10_000 and default_backend_name() == "array":
        assert comparison["probe_speedup"] >= 1.5
        assert comparison["census_speedup"] >= 3.0


def test_bench_incremental_cache_hits(bench_seed):
    """CI-scale smoke for the cache-hit path: warm windows must replay
    far more balls than they recompute, and every window's probe is
    asserted bit-identical to a cold probe inside the kernel."""
    net = build_network(10_000, bench_seed, None)
    stats = incremental_compare(net, windows=2)
    assert stats["replayed_per_window"] > stats["recomputed_per_window"]
    assert stats["replayed_per_window"] > 0


@pytest.mark.slow
def test_bench_analysis_1e5(benchmark, bench_seed):
    comparison = benchmark.pedantic(
        compare_planes,
        args=(100_000, bench_seed, "array"),
        kwargs={"incremental": True},
        rounds=1,
        iterations=1,
    )
    assert comparison["probe_speedup"] >= PROBE_SPEEDUP_FLOOR_AT_1E5
    assert comparison["census_speedup"] >= CENSUS_SPEEDUP_FLOOR_AT_1E5
    assert (
        comparison["incremental_speedup"] >= INCREMENTAL_SPEEDUP_FLOOR_AT_1E5
    )


@pytest.mark.slow
def test_bench_portfolio_1e6(bench_seed):
    row = portfolio_row(1_000_000, bench_seed)
    assert row["portfolio_seconds"] < PORTFOLIO_WINDOW_CEILING_AT_1E6
    assert row["incremental_speedup"] >= 1.0


# ----------------------------------------------------------------------
# script mode: full sweep recorded to BENCH_analysis.json
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--backend", default="array",
        help="topology backend owning the measured state (default: array)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_analysis.json",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="*", default=list(SCRIPT_SIZES)
    )
    args = parser.parse_args(argv)
    if not args.sizes:
        parser.error("--sizes needs at least one value")

    results = []
    for n in args.sizes:
        if n >= PORTFOLIO_ONLY_AT:
            row = portfolio_row(n, args.seed)
            results.append(row)
            print(
                f"n={n:>7}: portfolio window {row['portfolio_seconds']:8.3f}s "
                f"(cold probe {row['cold_probe_seconds']:8.3f}s, "
                f"{row['incremental_speedup']:5.1f}x) | "
                f"view {row['view_nbytes'] / 2**20:7.1f} MiB int32"
            )
            continue
        comparison = compare_planes(
            n, args.seed, args.backend, incremental=n >= INCREMENTAL_AT
        )
        results.append(comparison)
        print(
            f"n={n:>7}: census dict {comparison['dict']['census_seconds']:8.3f}s | "
            f"csr {comparison['csr']['census_seconds']:8.4f}s "
            f"({comparison['census_speedup']:6.1f}x) || "
            f"probe dict {comparison['dict']['probe_seconds']:8.3f}s | "
            f"csr {comparison['csr']['probe_seconds']:8.3f}s "
            f"({comparison['probe_speedup']:6.1f}x)"
        )
        if "incremental_speedup" in comparison:
            stats = comparison["incremental"]
            print(
                f"{'':>10}incremental window "
                f"{stats['incremental_seconds']:8.3f}s | cold probe "
                f"{stats['cold_probe_seconds']:8.3f}s "
                f"({comparison['incremental_speedup']:6.1f}x), replayed "
                f"{stats['replayed_per_window']} / recomputed "
                f"{stats['recomputed_per_window']} per window"
            )

    payload = {
        "benchmark": (
            "analysis plane (dict snapshot path vs zero-copy CSR views: "
            "degree/isolated census + adversarial expansion probe windows)"
        ),
        "d": D,
        "backend": args.backend,
        "probe_params": dict(PROBE_PARAMS),
        "seed": args.seed,
        "results": results,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    failed = False
    plane_rows = [row for row in results if "probe_speedup" in row]
    if plane_rows:
        largest = max(plane_rows, key=lambda row: row["n"])
        if largest["n"] >= 100_000:
            if largest["probe_speedup"] < PROBE_SPEEDUP_FLOOR_AT_1E5:
                print(
                    f"FAIL: probe speedup {largest['probe_speedup']}x at "
                    f"n={largest['n']} is below the "
                    f"{PROBE_SPEEDUP_FLOOR_AT_1E5}x floor"
                )
                failed = True
            if largest["census_speedup"] < CENSUS_SPEEDUP_FLOOR_AT_1E5:
                print(
                    f"FAIL: census speedup {largest['census_speedup']}x at "
                    f"n={largest['n']} is below the "
                    f"{CENSUS_SPEEDUP_FLOOR_AT_1E5}x floor"
                )
                failed = True
            if (
                "incremental_speedup" in largest
                and largest["incremental_speedup"]
                < INCREMENTAL_SPEEDUP_FLOOR_AT_1E5
            ):
                print(
                    f"FAIL: incremental speedup "
                    f"{largest['incremental_speedup']}x at n={largest['n']} "
                    f"is below the {INCREMENTAL_SPEEDUP_FLOOR_AT_1E5}x floor"
                )
                failed = True
    for row in results:
        if "portfolio_seconds" not in row:
            continue
        if row["portfolio_seconds"] >= PORTFOLIO_WINDOW_CEILING_AT_1E6:
            print(
                f"FAIL: portfolio window {row['portfolio_seconds']}s at "
                f"n={row['n']} breaches the "
                f"{PORTFOLIO_WINDOW_CEILING_AT_1E6}s ceiling "
                "(seconds, not minutes)"
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
