"""EXP-02 benchmark — large-set expansion windows (Lemmas 3.6 / 4.11)."""

from __future__ import annotations

import pytest

from repro.analysis.expansion import large_set_expansion_probe
from repro.models import PDG, SDG
from repro.theory.expansion import (
    EXPANSION_THRESHOLD,
    large_set_window_poisson,
    large_set_window_streaming,
)

N, D = 300, 20


@pytest.fixture(scope="module")
def sdg_snapshot(bench_seed):
    net = SDG(n=N, d=D, seed=bench_seed + 1)
    net.run_rounds(N)
    return net.snapshot()


@pytest.fixture(scope="module")
def pdg_snapshot(bench_seed):
    return PDG(n=N, d=D, seed=bench_seed + 2).snapshot()


def test_bench_sdg_large_set_probe(benchmark, sdg_snapshot, bench_seed):
    low, high = large_set_window_streaming(N, D)
    probe = benchmark.pedantic(
        large_set_expansion_probe,
        args=(sdg_snapshot,),
        kwargs={"min_size": low, "max_size": high, "seed": bench_seed + 3},
        rounds=3,
        iterations=1,
    )
    assert probe.min_ratio > EXPANSION_THRESHOLD


def test_bench_pdg_large_set_probe(benchmark, pdg_snapshot, bench_seed):
    low, high = large_set_window_poisson(N, D)
    high = min(high, pdg_snapshot.num_nodes() // 2)
    probe = benchmark.pedantic(
        large_set_expansion_probe,
        args=(pdg_snapshot,),
        kwargs={"min_size": low, "max_size": high, "seed": bench_seed + 4},
        rounds=3,
        iterations=1,
    )
    assert probe.min_ratio > EXPANSION_THRESHOLD
