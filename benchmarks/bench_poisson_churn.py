"""EXP-08 benchmark — Poisson churn machinery (Lemmas 4.4, 4.6, 4.7)."""

from __future__ import annotations

from repro.models import PDG
from repro.theory.churn import jump_probability_bounds, size_concentration_bounds

N = 500


def churn_kernel(events: int = 4000, seed: int = 0):
    """Advance the jump chain and return (births, final size, exposure)."""
    net = PDG(n=N, d=1, seed=seed)
    births = 0
    deaths = 0
    exposure = 0
    for _ in range(events):
        exposure += net.num_alive()
        record = net.advance_one_event()
        births += record.is_birth
        deaths += record.is_death
    return births, deaths, exposure, net.num_alive()


def test_bench_jump_chain(benchmark, bench_seed):
    births, deaths, exposure, final_size = benchmark.pedantic(
        churn_kernel, args=(4000, bench_seed), rounds=3, iterations=1
    )
    events = births + deaths
    bounds = jump_probability_bounds()
    assert bounds.event_low <= births / events <= bounds.event_high
    assert (
        bounds.fixed_death_low_factor / N
        <= deaths / exposure
        <= bounds.fixed_death_high_factor / N
    )
    conc = size_concentration_bounds(N)
    assert conc.low * 0.95 <= final_size <= conc.high * 1.05


def test_bench_warmup_to_stationarity(benchmark, bench_seed):
    net = benchmark.pedantic(
        lambda: PDG(n=N, d=1, seed=bench_seed + 1), rounds=3, iterations=1
    )
    conc = size_concentration_bounds(N)
    assert conc.low * 0.9 <= net.num_alive() <= conc.high * 1.1
