"""EXP-17 benchmark — generalized lifetimes and lossy flooding."""

from __future__ import annotations

from repro.churn.lifetime import ParetoLifetime, WeibullLifetime
from repro.flooding import flood_discretized, flood_lossy
from repro.models.general import GDGR

N, D = 200.0, 6


def pareto_build_and_flood_kernel(seed: int = 0):
    net = GDGR(ParetoLifetime(N, alpha=1.5), d=D, seed=seed, warm_time=6 * N)
    return flood_discretized(net, max_rounds=100)


def weibull_lossy_kernel(seed: int = 0):
    net = GDGR(WeibullLifetime(N, shape=0.5), d=D, seed=seed, warm_time=6 * N)
    return flood_lossy(net, loss=0.3, seed=seed, max_rounds=200)


def test_bench_pareto_flooding(benchmark, bench_seed):
    result = benchmark.pedantic(
        pareto_build_and_flood_kernel, args=(bench_seed,), rounds=2, iterations=1
    )
    assert result.completed
    assert result.completion_round <= 12


def test_bench_weibull_lossy_flooding(benchmark, bench_seed):
    result = benchmark.pedantic(
        weibull_lossy_kernel, args=(bench_seed,), rounds=2, iterations=1
    )
    assert result.completed
    assert result.completion_round <= 20
