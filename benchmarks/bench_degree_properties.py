"""EXP-07 benchmark — degree structure (Lemma 6.1, §5 remark)."""

from __future__ import annotations

import math

from repro.analysis.degrees import degree_summary, in_out_degree_split
from repro.models import SDG, SDGR

N, D = 400, 4


def sdg_degrees_kernel(seed: int = 0):
    net = SDG(n=N, d=D, seed=seed)
    net.run_rounds(N)
    return degree_summary(net.snapshot())


def sdgr_split_kernel(seed: int = 0):
    net = SDGR(n=N, d=D, seed=seed)
    net.run_rounds(N)
    return in_out_degree_split(net.snapshot())


def test_bench_sdg_mean_degree(benchmark, bench_seed):
    summary = benchmark.pedantic(
        sdg_degrees_kernel, args=(bench_seed,), rounds=3, iterations=1
    )
    # Lemma 6.1: expected degree d.
    assert abs(summary.mean_degree - D) < 0.3 * D
    # §5: max degree is Θ(log n) — certainly below a large multiple.
    assert summary.max_degree <= 12 * math.log(N)


def test_bench_sdgr_exact_out_requests(benchmark, bench_seed):
    split = benchmark.pedantic(
        sdgr_split_kernel, args=(bench_seed,), rounds=3, iterations=1
    )
    assert sum(out for out, _ in split.values()) == D * N
