"""EXP-15/EXP-16 benchmarks — the extension experiments.

Bounded-degree regeneration (the §5 open question) and adversarial victim
selection (the §2 positioning against adversarial-churn protocols).
"""

from __future__ import annotations

import math

from repro.analysis.components import giant_component_fraction
from repro.analysis.expansion import adversarial_expansion_upper_bound
from repro.core.edge_policy import CappedRegenerationPolicy, NoRegenerationPolicy, RegenerationPolicy
from repro.flooding import flood_discrete
from repro.models.adversarial import AdversarialStreamingNetwork
from repro.models.streaming import StreamingNetwork

N, D = 250, 6


def capped_regen_kernel(seed: int = 0):
    net = StreamingNetwork(
        N, CappedRegenerationPolicy(d=D, max_in_degree=2 * D), seed=seed
    )
    net.run_rounds(N)
    return net


def hub_removal_regen_kernel(seed: int = 0):
    net = AdversarialStreamingNetwork(
        N, RegenerationPolicy(8), strategy="max_degree", seed=seed
    )
    net.run_rounds(N)
    return net


def hub_removal_no_regen_kernel(seed: int = 0):
    net = AdversarialStreamingNetwork(
        N, NoRegenerationPolicy(3), strategy="max_degree", seed=seed
    )
    net.run_rounds(N)
    return net


def test_bench_capped_regeneration(benchmark, bench_seed):
    net = benchmark.pedantic(
        capped_regen_kernel, args=(bench_seed,), rounds=2, iterations=1
    )
    snap = net.snapshot()
    # Hard degree bound: cap in-edges + d out-slots.
    assert max(len(snap.adjacency[u]) for u in snap.nodes) <= 3 * D
    probe = adversarial_expansion_upper_bound(snap, seed=1)
    assert probe.min_ratio > 0.1
    result = flood_discrete(net, max_rounds=40 * int(math.log2(N)))
    assert result.completed


def test_bench_adversarial_hub_removal_with_regen(benchmark, bench_seed):
    net = benchmark.pedantic(
        hub_removal_regen_kernel, args=(bench_seed,), rounds=2, iterations=1
    )
    probe = adversarial_expansion_upper_bound(net.snapshot(), seed=2)
    assert probe.min_ratio > 0.1  # the expander survives the adversary


def test_bench_adversarial_hub_removal_without_regen(benchmark, bench_seed):
    net = benchmark.pedantic(
        hub_removal_no_regen_kernel, args=(bench_seed,), rounds=2, iterations=1
    )
    # The contrast: no regeneration + hub removal shatters the graph.
    assert giant_component_fraction(net.snapshot()) < 0.8
