"""Sweep-plane benchmark — process-pool scaling and warm-store resume.

The measured unit is the sweep plane's own unit of work: a replica sweep
of full scenario cells (SDGR at n = 1e4 on the array backend, fast-warm
plus a few thousand churn rounds each) executed three ways:

* **sequential** — ``jobs=1`` against a cold content-addressed store
  (the baseline every experiment paid before the sweep plane existed);
* **parallel** — ``jobs=4`` on a :class:`~concurrent.futures.ProcessPoolExecutor`,
  asserted bit-identical to the sequential values before timings count —
  the benchmark doubles as a parallelism-correctness check;
* **resume** — ``jobs=1`` against the now-warm store: every cell must be
  served from cache (``executed == 0``), so this measures the true cost
  of a re-run.

Acceptance bars: **parallel ≥ 3×** at 4 workers — enforced only when
the machine actually has ≥ 4 cores, because pool parallelism cannot
beat the core count; the committed baseline records the measuring
machine's ``cores`` so the regression guard knows whether the number is
meaningful — and **resume ≥ 20×** (in practice it is hundreds: a warm
re-run only reads a handful of small JSON files).

    PYTHONPATH=src python benchmarks/bench_sweep.py

writes ``BENCH_sweep.json``; ``pytest benchmarks/bench_sweep.py`` runs
the CI-scale smoke (tiny cells, correctness-first).
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

import pytest

from repro.scenario import ScenarioSpec
from repro.sweep import SweepSpec, run_sweep

PARALLEL_SPEEDUP_FLOOR = 3.0
RESUME_SPEEDUP_FLOOR = 20.0
DEFAULT_N = 10_000
DEFAULT_HORIZON = 5_000
DEFAULT_CELLS = 8
DEFAULT_JOBS = 4


def replica_sweep(
    n: int, horizon: int, cells: int, seed: int, backend: str
) -> SweepSpec:
    """The measured workload: `cells` seed replicas of one SDGR scenario."""
    return SweepSpec(
        base=ScenarioSpec(
            churn="streaming",
            policy="regen",
            n=n,
            d=4,
            horizon=horizon,
            churn_params={"fast_warm": True},
            backend=backend,
        ),
        replicas=cells,
        seed=seed,
        stream="bench-sweep",
        measure="network_summary",
    )


def measure_sweep(
    n: int,
    horizon: int,
    cells: int,
    jobs: int,
    seed: int,
    backend: str = "array",
) -> dict:
    """Time the sequential / parallel / resume executions of one sweep."""
    sweep = replica_sweep(n, horizon, cells, seed, backend)
    cores = os.cpu_count() or 1
    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as tmp:
        store = Path(tmp) / "store"

        start = time.perf_counter()
        sequential = run_sweep(sweep, jobs=1, store=store)
        sequential_seconds = time.perf_counter() - start
        sequential.raise_if_failed()

        start = time.perf_counter()
        parallel = run_sweep(sweep, jobs=jobs)
        parallel_seconds = time.perf_counter() - start
        if parallel.values() != sequential.values():
            raise AssertionError(
                "parallel sweep output differs from sequential — the "
                "bit-identity contract is broken"
            )

        start = time.perf_counter()
        resumed = run_sweep(sweep, jobs=1, store=store, resume=True)
        resume_seconds = time.perf_counter() - start
        if resumed.executed != 0:
            raise AssertionError(
                f"warm resume executed {resumed.executed} cells (expected 0)"
            )
        if resumed.values() != sequential.values():
            raise AssertionError(
                "resumed sweep output differs from the run that warmed it"
            )

    return {
        "n": n,
        "horizon": horizon,
        "cells": cells,
        "jobs": jobs,
        "cores": cores,
        "sequential_seconds": round(sequential_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "resume_seconds": round(resume_seconds, 4),
        "parallel_speedup": round(sequential_seconds / parallel_seconds, 2),
        "resume_speedup": round(sequential_seconds / resume_seconds, 2),
        # The parallel number only demonstrates scaling when the machine
        # has as many cores as workers; the regression guard skips the
        # parallel floor otherwise (the resume floor always applies).
        "parallel_meaningful": cores >= jobs,
    }


# ----------------------------------------------------------------------
# pytest entry points (CI scale: tiny cells, correctness-first)
# ----------------------------------------------------------------------


def test_bench_sweep_smoke(benchmark, bench_seed):
    row = benchmark.pedantic(
        measure_sweep,
        args=(500, 250, 4, 2, bench_seed),
        kwargs={"backend": None},  # respect REPRO_BACKEND in the matrix
        rounds=1,
        iterations=1,
    )
    # Correctness is asserted inside measure_sweep (bit-identity, zero
    # executed cells on resume); at smoke scale only the resume ratio is
    # stable enough to bound.
    assert row["resume_speedup"] >= 2.0


@pytest.mark.slow
def test_bench_sweep_full_scale(benchmark, bench_seed):
    row = benchmark.pedantic(
        measure_sweep,
        args=(DEFAULT_N, DEFAULT_HORIZON, DEFAULT_CELLS, DEFAULT_JOBS,
              bench_seed),
        rounds=1,
        iterations=1,
    )
    assert row["resume_speedup"] >= RESUME_SPEEDUP_FLOOR
    if row["parallel_meaningful"]:
        assert row["parallel_speedup"] >= PARALLEL_SPEEDUP_FLOOR


# ----------------------------------------------------------------------
# script mode: recorded to BENCH_sweep.json
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--n", type=int, default=DEFAULT_N)
    parser.add_argument("--horizon", type=int, default=DEFAULT_HORIZON)
    parser.add_argument("--cells", type=int, default=DEFAULT_CELLS)
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS)
    parser.add_argument(
        "--backend", default="array",
        help="topology backend of the measured cells (default: array)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_sweep.json",
    )
    args = parser.parse_args(argv)

    row = measure_sweep(
        args.n, args.horizon, args.cells, args.jobs, args.seed, args.backend
    )
    print(
        f"n={row['n']} cells={row['cells']} on {row['cores']} core(s): "
        f"sequential {row['sequential_seconds']:.2f}s | "
        f"{row['jobs']} workers {row['parallel_seconds']:.2f}s "
        f"({row['parallel_speedup']:.2f}x) | "
        f"warm resume {row['resume_seconds']:.3f}s "
        f"({row['resume_speedup']:.0f}x)"
    )
    if not row["parallel_meaningful"]:
        print(
            f"note: only {row['cores']} core(s) visible — the parallel "
            f"ratio cannot demonstrate {row['jobs']}-worker scaling on "
            "this machine and is recorded for transparency only"
        )

    payload = {
        "benchmark": (
            "sweep plane (replica sweep of SDGR scenario cells: "
            "sequential vs 4-worker process pool vs warm-store resume)"
        ),
        "backend": args.backend,
        "seed": args.seed,
        "results": [row],
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    failed = False
    if row["resume_speedup"] < RESUME_SPEEDUP_FLOOR:
        print(
            f"FAIL: resume speedup {row['resume_speedup']}x is below the "
            f"{RESUME_SPEEDUP_FLOOR}x floor"
        )
        failed = True
    if row["parallel_meaningful"]:
        if row["parallel_speedup"] < PARALLEL_SPEEDUP_FLOOR:
            print(
                f"FAIL: parallel speedup {row['parallel_speedup']}x at "
                f"{row['jobs']} workers is below the "
                f"{PARALLEL_SPEEDUP_FLOOR}x floor"
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
