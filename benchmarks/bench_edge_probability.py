"""EXP-09 benchmark — edge-destination probabilities (Lemmas 3.14 / 4.15)."""

from __future__ import annotations

from repro.analysis.edge_prob import (
    poisson_slot_destination_frequency,
    streaming_slot_destination_frequency,
)
from repro.models import PDGR


def streaming_kernel(seed: int = 0):
    return streaming_slot_destination_frequency(
        n=50, owner_rounds=25, target_age=40, trials=20_000, seed=seed
    )


def test_bench_streaming_slot_frequency(benchmark, bench_seed):
    freq = benchmark.pedantic(
        streaming_kernel, args=(bench_seed,), rounds=3, iterations=1
    )
    assert freq.within_bound
    # Regeneration inflates, but never past the e/(n−1) envelope.
    assert freq.empirical <= 2.72 / 49


def test_bench_poisson_slot_frequency(benchmark, bench_seed):
    net = PDGR(n=300, d=8, seed=bench_seed + 1)
    snapshot = net.snapshot()
    buckets = benchmark.pedantic(
        poisson_slot_destination_frequency,
        args=(snapshot, 300.0),
        rounds=3,
        iterations=1,
    )
    populous = [b for b in buckets if b.num_owners >= 20]
    assert populous
    assert all(
        b.per_pair_frequency <= b.bound_at_bucket * 1.5 for b in populous
    )
