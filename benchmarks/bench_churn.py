"""Churn-kernel benchmark — fused window rounds vs per-event stepping.

The measured unit is the streaming driver's inner loop: one
death→regeneration→birth round.  The per-event path pays Python
dispatch per event; the fused path (``advance_to_time_batched`` through
``apply_round_batch``) executes a whole window of rounds with O(1)
Python overhead per round — precomputed draw plans, one batched
backend write.

Measured per size (array backend, the production configuration):

* **SDGR** (regeneration, the paper's hard case) — per-event rounds/s
  vs fused rounds/s; ``fused_speedup`` is their ratio and the guarded
  metric (``check_bench_regression.py --current-churn``).  The script
  asserts the ISSUE floor — fused ≥ ``FUSED_SPEEDUP_FLOOR``× per-event
  at the main size — before writing the payload.
* **SDG** (no regeneration) — fused rounds/s; the no-regen law
  vectorizes completely, so this is the kernel ceiling.
* An **n = 1e6 smoke row** — fused-only (per-event is minutes at that
  scale), invariants checked, demonstrating million-node routine use.

Timings never compare across stepping modes' trajectories: both paths
draw the same churn law (fused is a distinct seeded trajectory, like
``fast_warm``), and cross-backend bit-identity of the fused path is
covered by tests/test_fused_rounds.py.

    PYTHONPATH=src python benchmarks/bench_churn.py

writes ``BENCH_churn.json``; ``pytest benchmarks/bench_churn.py`` runs
the CI-scale smoke (small n, correctness-first, both backends).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import pytest

from repro.models.streaming import SDG, SDGR

DEFAULT_N = 100_000
DEFAULT_D = 8
DEFAULT_PER_EVENT_ROUNDS = 100
# Long enough that the O(n·d) per-chunk write-back amortizes: fused
# throughput is a function of window length until chunks are full-size.
DEFAULT_FUSED_ROUNDS = 20_000
SMOKE_N = 1_000_000
SMOKE_ROUNDS = 20_000

#: The ISSUE acceptance floor: fused SDGR must beat per-event by at
#: least this factor at the main size on the array backend.
FUSED_SPEEDUP_FLOOR = 5.0


def _per_event_rate(factory, n, d, rounds, seed, backend) -> float:
    net = factory(n, d, seed=seed, backend=backend, fast_warm=True)
    start = time.perf_counter()
    net.run_rounds(rounds)
    return rounds / (time.perf_counter() - start)


def _fused_rate(
    factory, n, d, rounds, seed, backend, check=False, repeats=2
) -> float:
    # Best-of-N: the fused side is fast enough that scheduler noise on a
    # shared runner dominates a single timing.
    best = 0.0
    for attempt in range(repeats):
        net = factory(n, d, seed=seed, backend=backend, fast_warm=True)
        start = time.perf_counter()
        net.advance_to_time_batched(net.now + rounds)
        elapsed = time.perf_counter() - start
        if check and attempt == 0:
            net.state.check_invariants()
            assert net.num_alive() == n
        best = max(best, rounds / elapsed)
    return best


def measure_churn(
    n: int,
    d: int,
    per_event_rounds: int,
    fused_rounds: int,
    seed: int,
    backend: str = "array",
) -> dict:
    """One benchmark row: per-event vs fused round throughput at size n."""
    # Untimed warm-up at a small size: NumPy dispatch, allocator.
    _fused_rate(SDGR, min(n, 1_000), d, 50, seed, backend)

    per_event = _per_event_rate(SDGR, n, d, per_event_rounds, seed, backend)
    fused = _fused_rate(SDGR, n, d, fused_rounds, seed, backend, check=True)
    sdg_fused = _fused_rate(SDG, n, d, fused_rounds, seed, backend, check=True)

    return {
        "n": n,
        "d": d,
        "per_event_rounds_per_s": round(per_event, 1),
        "fused_rounds_per_s": round(fused, 1),
        "fused_us_per_round": round(1e6 / fused, 3),
        "sdg_fused_rounds_per_s": round(sdg_fused, 1),
        "fused_speedup": round(fused / per_event, 2),
    }


def measure_smoke(n: int, d: int, rounds: int, seed: int) -> dict:
    """The million-node row: fused only, invariants checked."""
    fused = _fused_rate(SDGR, n, d, rounds, seed, "array", check=True)
    return {
        "n": n,
        "d": d,
        "fused_rounds_per_s": round(fused, 1),
        "fused_us_per_round": round(1e6 / fused, 3),
    }


# ----------------------------------------------------------------------
# pytest smoke (CI scale): correctness-first, both backends
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["dict", "array"])
def test_churn_bench_smoke(backend):
    row = measure_churn(
        n=500, d=4, per_event_rounds=50, fused_rounds=200,
        seed=0, backend=backend,
    )
    assert row["per_event_rounds_per_s"] > 0
    assert row["fused_rounds_per_s"] > 0
    # No speedup floor at toy sizes: fixed per-window overheads dominate
    # until the per-round work is large enough to amortize them.


def test_churn_bench_guard_is_wired():
    # The guarded key must stay in the payload the checker reads.
    from check_bench_regression import CHURN_KEYS

    assert "fused_speedup" in CHURN_KEYS


# ----------------------------------------------------------------------
# script mode: recorded to BENCH_churn.json
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--n", type=int, default=DEFAULT_N)
    parser.add_argument("--d", type=int, default=DEFAULT_D)
    parser.add_argument(
        "--per-event-rounds", type=int, default=DEFAULT_PER_EVENT_ROUNDS,
        help="rounds timed on the per-event path (it is the slow side)",
    )
    parser.add_argument(
        "--fused-rounds", type=int, default=DEFAULT_FUSED_ROUNDS,
        help="rounds timed on the fused path",
    )
    parser.add_argument(
        "--skip-smoke", action="store_true",
        help=f"skip the n={SMOKE_N:,} fused-only smoke row",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_churn.json",
    )
    args = parser.parse_args(argv)

    row = measure_churn(
        args.n, args.d, args.per_event_rounds, args.fused_rounds, args.seed
    )
    print(
        f"n={row['n']:,} d={row['d']}: per-event "
        f"{row['per_event_rounds_per_s']:,.0f} rounds/s | fused SDGR "
        f"{row['fused_rounds_per_s']:,.0f} rounds/s "
        f"({row['fused_us_per_round']:.2f} us/round) | fused SDG "
        f"{row['sdg_fused_rounds_per_s']:,.0f} rounds/s | speedup "
        f"{row['fused_speedup']:.1f}x"
    )
    if row["fused_speedup"] < FUSED_SPEEDUP_FLOOR:
        raise AssertionError(
            f"fused speedup {row['fused_speedup']}x is below the "
            f"{FUSED_SPEEDUP_FLOOR}x acceptance floor at n={args.n}"
        )

    results = [row]
    if not args.skip_smoke:
        smoke = measure_smoke(SMOKE_N, args.d, SMOKE_ROUNDS, args.seed)
        print(
            f"n={smoke['n']:,} d={smoke['d']}: fused SDGR "
            f"{smoke['fused_rounds_per_s']:,.0f} rounds/s "
            f"({smoke['fused_us_per_round']:.2f} us/round) [smoke]"
        )
        results.append(smoke)

    payload = {
        "benchmark": (
            "churn kernels (streaming rounds: fused window batching vs "
            "per-event stepping, array backend)"
        ),
        "backend": "array",
        "seed": args.seed,
        "results": results,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
