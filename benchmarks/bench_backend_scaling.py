"""Backend scaling benchmark — dict vs array on the churn+flooding hot loop.

The measured kernel is the library's hottest end-to-end path: build a warm
SDGR network of ``n`` nodes (``n`` churn rounds: the dominant cost), then
run Definition 3.3 flooding to completion (~log n rounds of boundary
expansion).  Each backend uses its natural path — the dict backend runs
per-event rounds and set-union boundaries, the array backend batched
births and the vectorized mask frontier — which is exactly the comparison
that matters for scale.

Run as a script to sweep n ∈ {1e3, 1e4, 1e5} on both backends and record
the numbers (plus the array/dict speedups) into ``BENCH_backend.json``:

    PYTHONPATH=src python benchmarks/bench_backend_scaling.py

or via ``pytest benchmarks/bench_backend_scaling.py`` for the CI-scale
subset.  The acceptance bar tracked here: the array backend is ≥ 5×
faster at n = 1e5 (the shipped BENCH_backend.json records ~16×).
"""

from __future__ import annotations

import argparse
import json
import math
import time
from pathlib import Path

import pytest

from repro.analysis.degrees import live_degree_summary
from repro.flooding import flood_discrete
from repro.models import SDGR

D = 4
SCRIPT_SIZES = (1_000, 10_000, 100_000)
SPEEDUP_FLOOR_AT_1E5 = 5.0


def churn_flood_kernel(n: int, backend: str, seed: int) -> dict:
    """Build a warm SDGR(n, d=4) and flood it; return timing metrics.

    ``rounds`` counts every simulated unit-time round (n warm-up rounds +
    the flooding rounds, each of which also applies one churn round), so
    ``rounds_per_sec`` is comparable across backends and sizes.
    """
    fast_warm = backend == "array"
    start = time.perf_counter()
    net = SDGR(n=n, d=D, seed=seed, backend=backend, fast_warm=fast_warm)
    build_seconds = time.perf_counter() - start
    start = time.perf_counter()
    result = flood_discrete(net, max_rounds=8 * int(math.log2(n)))
    flood_seconds = time.perf_counter() - start
    total = build_seconds + flood_seconds
    rounds = n + result.rounds_run
    degrees = live_degree_summary(net.state)
    return {
        "backend": backend,
        "n": n,
        "d": D,
        "mean_degree": round(degrees.mean_degree, 3),
        "max_degree": degrees.max_degree,
        "build_seconds": round(build_seconds, 4),
        "flood_seconds": round(flood_seconds, 4),
        "total_seconds": round(total, 4),
        "flood_rounds": result.rounds_run,
        "flood_completed": result.completed,
        "rounds_per_sec": round(rounds / total, 1),
    }


def compare_backends(n: int, seed: int) -> dict:
    """Run both backends at size *n* and report the array/dict speedup."""
    dict_row = churn_flood_kernel(n, "dict", seed)
    array_row = churn_flood_kernel(n, "array", seed)
    return {
        "n": n,
        "dict": dict_row,
        "array": array_row,
        "speedup": round(
            dict_row["total_seconds"] / array_row["total_seconds"], 2
        ),
    }


# ----------------------------------------------------------------------
# pytest entry points (CI scale: the 1e5 point is marked slow)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n", [1_000, 10_000])
def test_bench_backend_scaling(benchmark, bench_seed, n):
    comparison = benchmark.pedantic(
        compare_backends, args=(n, bench_seed), rounds=2, iterations=1
    )
    assert comparison["array"]["flood_completed"]
    assert comparison["dict"]["flood_completed"]
    # Generous floor: these kernels run sub-second, so scheduler noise on
    # a shared runner can dent the ratio (typical margins are 4-8x at 1e3
    # and 6-10x at 1e4). The hard 5x acceptance bar lives in the slow
    # 1e5 test and the script's exit code, where the signal dwarfs noise.
    if n >= 10_000:
        assert comparison["speedup"] >= 1.2


@pytest.mark.slow
def test_bench_backend_scaling_1e5(benchmark, bench_seed):
    comparison = benchmark.pedantic(
        compare_backends, args=(100_000, bench_seed), rounds=1, iterations=1
    )
    assert comparison["speedup"] >= SPEEDUP_FLOOR_AT_1E5


# ----------------------------------------------------------------------
# script mode: full sweep recorded to BENCH_backend.json
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_backend.json",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="*", default=list(SCRIPT_SIZES)
    )
    args = parser.parse_args(argv)
    if not args.sizes:
        parser.error("--sizes needs at least one value")

    results = []
    for n in args.sizes:
        comparison = compare_backends(n, args.seed)
        results.append(comparison)
        print(
            f"n={n:>7}: dict {comparison['dict']['total_seconds']:8.3f}s "
            f"({comparison['dict']['rounds_per_sec']:>9.1f} rounds/s) | "
            f"array {comparison['array']['total_seconds']:8.3f}s "
            f"({comparison['array']['rounds_per_sec']:>9.1f} rounds/s) | "
            f"speedup {comparison['speedup']:5.2f}x"
        )

    payload = {
        "benchmark": "churn+flooding hot loop (warm SDGR build + flood_discrete)",
        "d": D,
        "seed": args.seed,
        "results": results,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    largest = max(results, key=lambda row: row["n"])
    if largest["n"] >= 100_000 and largest["speedup"] < SPEEDUP_FLOOR_AT_1E5:
        print(
            f"FAIL: speedup {largest['speedup']}x at n={largest['n']} "
            f"is below the {SPEEDUP_FLOOR_AT_1E5}x floor"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
