"""EXP-14 benchmark — Bitcoin-like overlay vs PDGR (§1.1 / §5)."""

from __future__ import annotations

import math

from repro.analysis.components import component_summary
from repro.flooding import flood_discretized
from repro.p2p import BitcoinLikeNetwork

N = 200


def overlay_build_kernel(seed: int = 0):
    return BitcoinLikeNetwork(n=N, seed=seed)


def test_bench_overlay_build_and_flood(benchmark, bench_seed):
    net = benchmark.pedantic(
        overlay_build_kernel, args=(bench_seed,), rounds=2, iterations=1
    )
    summary = component_summary(net.snapshot())
    assert summary.is_connected
    assert summary.num_isolated == 0
    result = flood_discretized(net, max_rounds=40 * int(math.log2(N)))
    assert result.completed
    assert result.completion_round <= 6 * math.log2(N)
    # Bitcoin Core's inbound cap is never violated.
    assert all(
        net.state.in_slot_count(u) <= 125 for u in net.state.alive_ids()
    )
