"""EXP-05 benchmark — partial flooding coverage (Thms 3.8 / 4.13)."""

from __future__ import annotations

from repro.flooding import flood_discrete, flood_discretized
from repro.models import PDG, SDG
from repro.theory.flooding import (
    informed_fraction_bound_poisson,
    informed_fraction_bound_streaming,
    partial_flooding_rounds,
)

N, D = 400, 12


def sdg_partial_kernel(seed: int = 0) -> float:
    horizon = partial_flooding_rounds(N, D)
    net = SDG(n=N, d=D, seed=seed)
    net.run_rounds(N)
    result = flood_discrete(net, max_rounds=horizon)
    return result.fraction_at(horizon)


def pdg_partial_kernel(seed: int = 0) -> float:
    horizon = partial_flooding_rounds(N, D)
    net = PDG(n=N, d=D, seed=seed)
    result = flood_discretized(net, max_rounds=horizon)
    return result.fraction_at(horizon)


def test_bench_sdg_partial_flooding(benchmark, bench_seed):
    fraction = benchmark.pedantic(
        sdg_partial_kernel, args=(bench_seed,), rounds=3, iterations=1
    )
    assert fraction >= informed_fraction_bound_streaming(D) - 0.02


def test_bench_pdg_partial_flooding(benchmark, bench_seed):
    fraction = benchmark.pedantic(
        pdg_partial_kernel, args=(bench_seed,), rounds=3, iterations=1
    )
    assert fraction >= informed_fraction_bound_poisson(D) - 0.02
