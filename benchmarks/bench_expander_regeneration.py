"""EXP-03 benchmark — expander property with regeneration (Thms 3.15/4.16)."""

from __future__ import annotations

import pytest

from repro.analysis.expansion import (
    adversarial_expansion_upper_bound,
    vertex_expansion_exact,
)
from repro.models import PDGR, SDGR
from repro.theory.expansion import EXPANSION_THRESHOLD


@pytest.fixture(scope="module")
def sdgr_snapshot(bench_seed):
    net = SDGR(n=300, d=14, seed=bench_seed + 5)
    net.run_rounds(300)
    return net.snapshot()


@pytest.fixture(scope="module")
def pdgr_snapshot(bench_seed):
    return PDGR(n=300, d=35, seed=bench_seed + 6).snapshot()


def small_exact_kernel(seed: int = 7):
    net = SDGR(n=14, d=4, seed=seed)
    net.run_rounds(28)
    return vertex_expansion_exact(net.snapshot())


def test_bench_sdgr_adversarial_probe(benchmark, sdgr_snapshot, bench_seed):
    probe = benchmark.pedantic(
        adversarial_expansion_upper_bound,
        args=(sdgr_snapshot,),
        kwargs={"seed": bench_seed + 8},
        rounds=3,
        iterations=1,
    )
    assert probe.min_ratio > EXPANSION_THRESHOLD


def test_bench_pdgr_adversarial_probe(benchmark, pdgr_snapshot, bench_seed):
    probe = benchmark.pedantic(
        adversarial_expansion_upper_bound,
        args=(pdgr_snapshot,),
        kwargs={"seed": bench_seed + 9},
        rounds=3,
        iterations=1,
    )
    assert probe.min_ratio > EXPANSION_THRESHOLD


def test_bench_exact_expansion_small(benchmark, bench_seed):
    probe = benchmark.pedantic(
        small_exact_kernel, args=(bench_seed + 7,), rounds=3, iterations=1
    )
    assert probe.min_ratio > EXPANSION_THRESHOLD
