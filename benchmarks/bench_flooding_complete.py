"""EXP-06 benchmark — complete flooding in O(log n) (Thms 3.16 / 4.20)."""

from __future__ import annotations

import math

from repro.flooding import flood_asynchronous, flood_discrete, flood_discretized
from repro.models import PDGR, SDGR

N = 400


def sdgr_complete_kernel(seed: int = 0):
    net = SDGR(n=N, d=21, seed=seed)
    net.run_rounds(N)
    return flood_discrete(net, max_rounds=60 * int(math.log2(N)))


def pdgr_discretized_kernel(seed: int = 0):
    net = PDGR(n=N, d=35, seed=seed)
    return flood_discretized(net, max_rounds=60 * int(math.log2(N)))


def pdgr_async_kernel(seed: int = 0):
    net = PDGR(n=N, d=35, seed=seed)
    return flood_asynchronous(net, max_time=60.0 * math.log2(N))


def test_bench_sdgr_complete(benchmark, bench_seed):
    result = benchmark.pedantic(
        sdgr_complete_kernel, args=(bench_seed,), rounds=3, iterations=1
    )
    assert result.completed
    assert result.completion_round <= 6 * math.log2(N)


def test_bench_pdgr_discretized_complete(benchmark, bench_seed):
    result = benchmark.pedantic(
        pdgr_discretized_kernel, args=(bench_seed,), rounds=3, iterations=1
    )
    assert result.completed
    assert result.completion_round <= 6 * math.log2(N)


def test_bench_pdgr_asynchronous_complete(benchmark, bench_seed):
    result = benchmark.pedantic(
        pdgr_async_kernel, args=(bench_seed,), rounds=3, iterations=1
    )
    assert result.completed
    assert result.completion_round <= 8 * math.log2(N)
