"""Fleet-plane benchmark — two shared-store workers vs one, honestly.

The measured unit is the fleet execution path of the sweep plane
(:func:`repro.api.run_fleet`): the same SDGR replica sweep
``bench_sweep.py`` measures, executed once by a single worker and once
by **two worker processes draining one shared store** through the
claim protocol (``O_EXCL`` cell claims, content-addressed commits,
canonical-order reduction).  Before any timing counts, the two
artifacts must be **byte-identical in their canonical core** — the
benchmark doubles as the fleet-correctness check.

Honesty convention (same as ``bench_sweep.py``): two workers can only
demonstrate a speedup on a machine with at least two cores, so the row
records the measuring machine's ``cores`` and a ``parallel_meaningful``
flag, and the regression guard skips the ``fleet_speedup`` comparison
whenever either side measured on too few cores.  On a single-core
machine the recorded ratio mostly prices the claim/IPC overhead — which
is itself worth tracking for transparency.

    PYTHONPATH=src python benchmarks/bench_fleet.py

merges its row (at a distinct ``n`` from the runner bench) into
``BENCH_sweep.json``; ``pytest benchmarks/bench_fleet.py`` runs the
CI-scale smoke (tiny cells, digest-equality-first).
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

from repro.api import collect, run_fleet

from bench_sweep import replica_sweep

FLEET_SPEEDUP_FLOOR = 1.4
DEFAULT_N = 5_000
DEFAULT_HORIZON = 2_500
DEFAULT_CELLS = 8
DEFAULT_WORKERS = 2


def measure_fleet(
    n: int,
    horizon: int,
    cells: int,
    workers: int,
    seed: int,
    backend: str | None = "array",
) -> dict:
    """Time one-worker vs N-worker shared-store execution of one sweep."""
    sweep = replica_sweep(n, horizon, cells, seed, backend)
    cores = os.cpu_count() or 1
    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as tmp:
        solo_store = Path(tmp) / "solo"
        fleet_store = Path(tmp) / "fleet"

        start = time.perf_counter()
        solo = run_fleet(sweep, solo_store, workers=1)
        solo_seconds = time.perf_counter() - start

        start = time.perf_counter()
        fleet = run_fleet(sweep, fleet_store, workers=workers)
        fleet_seconds = time.perf_counter() - start

        if fleet.core_bytes() != solo.core_bytes():
            raise AssertionError(
                "fleet artifact core differs from the single-worker core "
                "— the byte-identity contract is broken"
            )

        # Warm reduction: the grid is complete, so collect() alone must
        # rebuild the identical artifact from stored cells.
        start = time.perf_counter()
        warm = collect(fleet_store, sweep, timeout=0)
        reduce_seconds = time.perf_counter() - start
        if warm.digest != solo.digest:
            raise AssertionError("warm reduction diverged from cold runs")

    return {
        "n": n,
        "horizon": horizon,
        "cells": cells,
        "workers": workers,
        "cores": cores,
        "solo_seconds": round(solo_seconds, 4),
        "fleet_seconds": round(fleet_seconds, 4),
        "reduce_seconds": round(reduce_seconds, 4),
        "fleet_speedup": round(solo_seconds / fleet_seconds, 2),
        # Same honesty convention as bench_sweep: N workers cannot beat
        # the core count, so the guard skips the ratio on starved boxes.
        "parallel_meaningful": cores >= workers,
    }


# ----------------------------------------------------------------------
# pytest entry point (CI scale: tiny cells, digest-equality-first)
# ----------------------------------------------------------------------


def test_bench_fleet_smoke(benchmark, bench_seed):
    row = benchmark.pedantic(
        measure_fleet,
        args=(500, 250, 4, 2, bench_seed),
        kwargs={"backend": None},  # respect REPRO_BACKEND in the matrix
        rounds=1,
        iterations=1,
    )
    # Correctness (core-byte identity, warm-reduction digest equality)
    # is asserted inside measure_fleet; at smoke scale the only stable
    # expectation is that the fleet completed every cell.
    assert row["cells"] == 4
    assert row["fleet_speedup"] > 0


# ----------------------------------------------------------------------
# script mode: row merged into BENCH_sweep.json
# ----------------------------------------------------------------------


def _merge_row(output: Path, row: dict, backend: str, seed: int) -> None:
    """Insert/replace the fleet row (keyed on ``n``) in BENCH_sweep.json."""
    if output.exists():
        payload = json.loads(output.read_text())
    else:
        payload = {
            "benchmark": "sweep plane",
            "backend": backend,
            "seed": seed,
            "results": [],
        }
    payload["results"] = [
        existing for existing in payload["results"] if existing["n"] != row["n"]
    ] + [row]
    payload["results"].sort(key=lambda r: r["n"])
    output.write_text(json.dumps(payload, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--n", type=int, default=DEFAULT_N)
    parser.add_argument("--horizon", type=int, default=DEFAULT_HORIZON)
    parser.add_argument("--cells", type=int, default=DEFAULT_CELLS)
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument(
        "--backend", default="array",
        help="topology backend of the measured cells (default: array)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_sweep.json",
        help="sweep-plane baseline file the fleet row is merged into",
    )
    args = parser.parse_args(argv)

    row = measure_fleet(
        args.n, args.horizon, args.cells, args.workers, args.seed,
        args.backend,
    )
    print(
        f"n={row['n']} cells={row['cells']} on {row['cores']} core(s): "
        f"1 worker {row['solo_seconds']:.2f}s | "
        f"{row['workers']} shared-store workers {row['fleet_seconds']:.2f}s "
        f"({row['fleet_speedup']:.2f}x) | "
        f"warm reduce {row['reduce_seconds']:.3f}s"
    )
    if not row["parallel_meaningful"]:
        print(
            f"note: only {row['cores']} core(s) visible — the fleet ratio "
            f"cannot demonstrate {row['workers']}-worker scaling on this "
            "machine and is recorded for transparency only"
        )

    _merge_row(args.output, row, args.backend, args.seed)
    print(f"merged fleet row into {args.output}")

    if row["parallel_meaningful"] and row["fleet_speedup"] < FLEET_SPEEDUP_FLOOR:
        print(
            f"FAIL: fleet speedup {row['fleet_speedup']}x at "
            f"{row['workers']} workers is below the "
            f"{FLEET_SPEEDUP_FLOOR}x floor"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
