"""Compare a fresh backend-scaling run against the committed baseline.

CI runs ``bench_backend_scaling.py`` to a scratch file, then this script
compares its array/dict speedups (and the array backend's absolute
rounds/sec) against the repository's ``BENCH_backend.json``.  Shared
runners are noisy, so the default tolerance is generous: a regression is
flagged when the measured speedup falls below ``tolerance`` × baseline at
any size.

    PYTHONPATH=src python benchmarks/bench_backend_scaling.py --output /tmp/bench.json
    PYTHONPATH=src python benchmarks/check_bench_regression.py --current /tmp/bench.json

Exit status 1 on regression (CI converts it into a warning, matching the
informational stance of the benchmark job).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_backend.json"


def _by_size(payload: dict) -> dict[int, dict]:
    return {row["n"]: row for row in payload["results"]}


def compare(
    baseline: dict, current: dict, tolerance: float
) -> list[str]:
    """Return a list of regression messages (empty = healthy)."""
    problems: list[str] = []
    base_rows = _by_size(baseline)
    current_rows = _by_size(current)
    shared_sizes = sorted(set(base_rows) & set(current_rows))
    if not shared_sizes:
        return ["no overlapping sizes between baseline and current run"]
    for n in shared_sizes:
        base_speedup = base_rows[n]["speedup"]
        speedup = current_rows[n]["speedup"]
        floor = tolerance * base_speedup
        status = "ok" if speedup >= floor else "REGRESSION"
        print(
            f"n={n:>7}: speedup {speedup:5.2f}x vs baseline "
            f"{base_speedup:5.2f}x (floor {floor:4.2f}x) [{status}]"
        )
        if speedup < floor:
            problems.append(
                f"speedup at n={n} fell to {speedup}x "
                f"(< {tolerance} x baseline {base_speedup}x)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help="committed reference results (default: repo BENCH_backend.json)",
    )
    parser.add_argument(
        "--current", type=Path, required=True,
        help="freshly produced bench_backend_scaling.py output",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.4,
        help="minimum acceptable fraction of the baseline speedup "
        "(default 0.4 — generous, shared runners are noisy)",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    problems = compare(baseline, current, args.tolerance)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print("backend scaling is within tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
