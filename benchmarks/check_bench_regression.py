"""Compare fresh benchmark runs against the committed baselines.

CI runs ``bench_backend_scaling.py`` (plus ``bench_bounded_degree.py``
and ``bench_analysis.py``) to scratch files, then this script compares
their speedups against the repository's ``BENCH_backend.json`` /
``BENCH_bounded.json`` / ``BENCH_analysis.json``.  All payloads share
the shape this script needs: a ``results`` list of per-size rows
carrying ``n`` and one or more speedup fields.  Shared runners are
noisy, so the default tolerance is generous: a regression is flagged
when a measured speedup falls below ``tolerance`` × baseline at any
size.

    PYTHONPATH=src python benchmarks/bench_backend_scaling.py --output /tmp/bench.json
    PYTHONPATH=src python benchmarks/check_bench_regression.py --current /tmp/bench.json

    PYTHONPATH=src python benchmarks/bench_analysis.py --output /tmp/analysis.json
    PYTHONPATH=src python benchmarks/check_bench_regression.py \
        --current-analysis /tmp/analysis.json

Pass any combination of ``--current`` / ``--current-bounded`` /
``--current-analysis`` / ``--current-sweep`` / ``--current-service`` /
``--current-churn`` to check several files in one invocation (each
against its committed baseline).  Exit status 1 on regression (CI converts it into a warning,
matching the informational stance of the benchmark jobs).

The sweep-plane payload carries a per-row ``parallel_meaningful`` flag
(process-pool scaling can only be demonstrated on a machine with at
least as many cores as workers); the parallel-speedup comparison is
skipped whenever either side measured on too few cores, while the
resume speedup is always guarded.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_backend.json"
DEFAULT_BOUNDED_BASELINE = REPO_ROOT / "BENCH_bounded.json"
DEFAULT_ANALYSIS_BASELINE = REPO_ROOT / "BENCH_analysis.json"
DEFAULT_SWEEP_BASELINE = REPO_ROOT / "BENCH_sweep.json"
DEFAULT_SERVICE_BASELINE = REPO_ROOT / "BENCH_service.json"
DEFAULT_CHURN_BASELINE = REPO_ROOT / "BENCH_churn.json"

#: The speedup fields tracked in the analysis-plane payload.  The
#: incremental probe is only benchmarked at sizes with dense cadences
#: (see bench_analysis.py); sizes where *neither* side carries a key
#: skip it, a key present on one side only is a hard failure.
ANALYSIS_KEYS = ("probe_speedup", "census_speedup", "incremental_speedup")

#: The speedup fields tracked in the sweep-plane payload.  The fleet
#: row (bench_fleet.py: two shared-store worker processes vs one) lives
#: in the same file at its own size, so both benches share one guard.
SWEEP_KEYS = ("parallel_speedup", "resume_speedup", "fleet_speedup")

#: Speedups that only demonstrate scaling when the measuring machine
#: has at least as many cores as workers; rows carry a
#: ``parallel_meaningful`` flag and the comparison is skipped whenever
#: either side measured on too few cores.
CORES_GATED_KEYS = ("parallel_speedup", "fleet_speedup")

#: The speedup fields tracked in the service-plane payload: restoring a
#: checkpoint vs cold-rebuilding the same seeded state from scratch.
SERVICE_KEYS = ("restore_speedup",)

#: The speedup fields tracked in the churn-kernel payload: fused window
#: rounds vs per-event stepping (the n=1e6 smoke row carries no speedup
#: — per-event is impractical there — and is skipped automatically).
CHURN_KEYS = ("fused_speedup",)


def _by_size(payload: dict) -> dict[int, dict]:
    return {row["n"]: row for row in payload["results"]}


def compare(
    baseline: dict,
    current: dict,
    tolerance: float,
    keys: tuple[str, ...] = ("speedup",),
) -> list[str]:
    """Return a list of regression messages (empty = healthy)."""
    problems: list[str] = []
    base_rows = _by_size(baseline)
    current_rows = _by_size(current)
    shared_sizes = sorted(set(base_rows) & set(current_rows))
    if not shared_sizes:
        return ["no overlapping sizes between baseline and current run"]
    for n in shared_sizes:
        for key in keys:
            in_base = key in base_rows[n]
            in_current = key in current_rows[n]
            if not in_base and not in_current:
                continue  # key not tracked at this size on either side
            if key in CORES_GATED_KEYS and not (
                base_rows[n].get("parallel_meaningful", True)
                and current_rows[n].get("parallel_meaningful", True)
            ):
                print(
                    f"n={n:>7} {key:>14}: skipped (measured on fewer "
                    "cores than workers on at least one side)"
                )
                continue
            if not in_base:
                problems.append(
                    f"baseline has no {key!r} at n={n} but the current "
                    f"run reports one ({current_rows[n][key]}x) — the "
                    "committed baseline predates this metric; regenerate "
                    "it (bench --output) and commit the refreshed file"
                )
                continue
            if not in_current:
                problems.append(
                    f"current run has no {key!r} at n={n} (baseline "
                    f"tracks {base_rows[n][key]}x) — the bench no longer "
                    "emits a guarded metric"
                )
                continue
            base_speedup = base_rows[n][key]
            speedup = current_rows[n][key]
            floor = tolerance * base_speedup
            status = "ok" if speedup >= floor else "REGRESSION"
            label = key if len(keys) > 1 else "speedup"
            print(
                f"n={n:>7} {label:>14}: {speedup:6.2f}x vs baseline "
                f"{base_speedup:6.2f}x (floor {floor:5.2f}x) [{status}]"
            )
            if speedup < floor:
                problems.append(
                    f"{label} at n={n} fell to {speedup}x "
                    f"(< {tolerance} x baseline {base_speedup}x)"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help="committed reference results (default: repo BENCH_backend.json)",
    )
    parser.add_argument(
        "--current", type=Path, default=None,
        help="freshly produced bench_backend_scaling.py output",
    )
    parser.add_argument(
        "--baseline-bounded", type=Path, default=DEFAULT_BOUNDED_BASELINE,
        help="committed bounded-degree results (default: repo "
        "BENCH_bounded.json)",
    )
    parser.add_argument(
        "--current-bounded", type=Path, default=None,
        help="freshly produced bench_bounded_degree.py output "
        "(checked against --baseline-bounded when given)",
    )
    parser.add_argument(
        "--baseline-analysis", type=Path, default=DEFAULT_ANALYSIS_BASELINE,
        help="committed analysis-plane results (default: repo "
        "BENCH_analysis.json)",
    )
    parser.add_argument(
        "--current-analysis", type=Path, default=None,
        help="freshly produced bench_analysis.py output (probe + census "
        "speedups are both checked against --baseline-analysis)",
    )
    parser.add_argument(
        "--baseline-sweep", type=Path, default=DEFAULT_SWEEP_BASELINE,
        help="committed sweep-plane results (default: repo BENCH_sweep.json)",
    )
    parser.add_argument(
        "--current-sweep", type=Path, default=None,
        help="freshly produced bench_sweep.py output (parallel + resume "
        "speedups checked against --baseline-sweep; the parallel check "
        "is skipped on machines with fewer cores than workers)",
    )
    parser.add_argument(
        "--baseline-service", type=Path, default=DEFAULT_SERVICE_BASELINE,
        help="committed service-plane results (default: repo "
        "BENCH_service.json)",
    )
    parser.add_argument(
        "--current-service", type=Path, default=None,
        help="freshly produced bench_service.py output (restore-vs-cold-"
        "rebuild speedup checked against --baseline-service)",
    )
    parser.add_argument(
        "--baseline-churn", type=Path, default=DEFAULT_CHURN_BASELINE,
        help="committed churn-kernel results (default: repo "
        "BENCH_churn.json)",
    )
    parser.add_argument(
        "--current-churn", type=Path, default=None,
        help="freshly produced bench_churn.py output (fused-vs-per-event "
        "round speedup checked against --baseline-churn)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.4,
        help="minimum acceptable fraction of the baseline speedup "
        "(default 0.4 — generous, shared runners are noisy)",
    )
    args = parser.parse_args(argv)

    checks: list[tuple[str, Path, Path, tuple[str, ...]]] = []
    if args.current is not None:
        checks.append(
            ("backend scaling", args.baseline, args.current, ("speedup",))
        )
    if args.current_bounded is not None:
        checks.append(
            (
                "bounded-degree placement",
                args.baseline_bounded,
                args.current_bounded,
                ("speedup",),
            )
        )
    if args.current_analysis is not None:
        checks.append(
            (
                "analysis plane",
                args.baseline_analysis,
                args.current_analysis,
                ANALYSIS_KEYS,
            )
        )
    if args.current_sweep is not None:
        checks.append(
            (
                "sweep plane",
                args.baseline_sweep,
                args.current_sweep,
                SWEEP_KEYS,
            )
        )
    if args.current_service is not None:
        checks.append(
            (
                "service plane",
                args.baseline_service,
                args.current_service,
                SERVICE_KEYS,
            )
        )
    if args.current_churn is not None:
        checks.append(
            (
                "churn kernels",
                args.baseline_churn,
                args.current_churn,
                CHURN_KEYS,
            )
        )
    if not checks:
        parser.error(
            "nothing to check: pass --current, --current-bounded, "
            "--current-analysis, --current-sweep, --current-service "
            "and/or --current-churn"
        )

    problems: list[str] = []
    for label, baseline_path, current_path, keys in checks:
        print(f"== {label} ==")
        baseline = json.loads(baseline_path.read_text())
        current = json.loads(current_path.read_text())
        problems += [
            f"{label}: {problem}"
            for problem in compare(baseline, current, args.tolerance, keys)
        ]
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print("all benchmarks are within tolerance of the committed baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
