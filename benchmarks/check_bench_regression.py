"""Compare fresh benchmark runs against the committed baselines.

CI runs ``bench_backend_scaling.py`` (and ``bench_bounded_degree.py``) to
scratch files, then this script compares their speedups against the
repository's ``BENCH_backend.json`` / ``BENCH_bounded.json``.  Both
payloads share the shape this script needs: a ``results`` list of
per-size rows carrying ``n`` and ``speedup``.  Shared runners are noisy,
so the default tolerance is generous: a regression is flagged when the
measured speedup falls below ``tolerance`` × baseline at any size.

    PYTHONPATH=src python benchmarks/bench_backend_scaling.py --output /tmp/bench.json
    PYTHONPATH=src python benchmarks/check_bench_regression.py --current /tmp/bench.json

    PYTHONPATH=src python benchmarks/bench_bounded_degree.py --output /tmp/bounded.json
    PYTHONPATH=src python benchmarks/check_bench_regression.py \
        --baseline BENCH_bounded.json --current /tmp/bounded.json

Pass ``--current-bounded`` alongside ``--current`` to check both files in
one invocation (each against its committed baseline).  Exit status 1 on
regression (CI converts it into a warning, matching the informational
stance of the benchmark jobs).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_backend.json"
DEFAULT_BOUNDED_BASELINE = REPO_ROOT / "BENCH_bounded.json"


def _by_size(payload: dict) -> dict[int, dict]:
    return {row["n"]: row for row in payload["results"]}


def compare(
    baseline: dict, current: dict, tolerance: float
) -> list[str]:
    """Return a list of regression messages (empty = healthy)."""
    problems: list[str] = []
    base_rows = _by_size(baseline)
    current_rows = _by_size(current)
    shared_sizes = sorted(set(base_rows) & set(current_rows))
    if not shared_sizes:
        return ["no overlapping sizes between baseline and current run"]
    for n in shared_sizes:
        base_speedup = base_rows[n]["speedup"]
        speedup = current_rows[n]["speedup"]
        floor = tolerance * base_speedup
        status = "ok" if speedup >= floor else "REGRESSION"
        print(
            f"n={n:>7}: speedup {speedup:5.2f}x vs baseline "
            f"{base_speedup:5.2f}x (floor {floor:4.2f}x) [{status}]"
        )
        if speedup < floor:
            problems.append(
                f"speedup at n={n} fell to {speedup}x "
                f"(< {tolerance} x baseline {base_speedup}x)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help="committed reference results (default: repo BENCH_backend.json)",
    )
    parser.add_argument(
        "--current", type=Path, required=True,
        help="freshly produced bench_backend_scaling.py output",
    )
    parser.add_argument(
        "--baseline-bounded", type=Path, default=DEFAULT_BOUNDED_BASELINE,
        help="committed bounded-degree results (default: repo "
        "BENCH_bounded.json)",
    )
    parser.add_argument(
        "--current-bounded", type=Path, default=None,
        help="freshly produced bench_bounded_degree.py output "
        "(checked against --baseline-bounded when given)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.4,
        help="minimum acceptable fraction of the baseline speedup "
        "(default 0.4 — generous, shared runners are noisy)",
    )
    args = parser.parse_args(argv)

    checks = [("backend scaling", args.baseline, args.current)]
    if args.current_bounded is not None:
        checks.append(
            ("bounded-degree placement", args.baseline_bounded, args.current_bounded)
        )

    problems: list[str] = []
    for label, baseline_path, current_path in checks:
        print(f"== {label} ==")
        baseline = json.loads(baseline_path.read_text())
        current = json.loads(current_path.read_text())
        problems += [
            f"{label}: {problem}"
            for problem in compare(baseline, current, args.tolerance)
        ]
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print("all benchmarks are within tolerance of the committed baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
