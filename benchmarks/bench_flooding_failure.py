"""EXP-04 benchmark — flooding failure without regeneration (Thms 3.7/4.12)."""

from __future__ import annotations

from repro.flooding import flood_discrete
from repro.models import SDG
from repro.theory.flooding import stall_probability_bound
from repro.util.rng import child_seeds

N, D = 150, 1


def one_flood_trial(seed) -> bool:
    """One SDG flood at d=1; True when it stalls at ≤ d+1 informed."""
    net = SDG(n=N, d=D, seed=seed)
    net.run_rounds(N)
    result = flood_discrete(net, max_rounds=N, stop_when_extinct=False)
    return result.max_informed <= D + 1


def stall_probability_kernel(trials: int = 40, seed: int = 0) -> float:
    stalls = sum(one_flood_trial(child) for child in child_seeds(seed, trials))
    return stalls / trials


def test_bench_single_flood_trial(benchmark, bench_seed):
    benchmark.pedantic(
        one_flood_trial, args=(bench_seed + 11,), rounds=5, iterations=1
    )


def test_bench_stall_probability_batch(benchmark, bench_seed):
    probability = benchmark.pedantic(
        stall_probability_kernel, args=(40, bench_seed), rounds=1, iterations=1
    )
    # Θ_d(1) stall probability, above the paper's (loose) lower bound.
    assert probability >= stall_probability_bound(D)
    assert probability < 0.8  # and far from certain


def test_bench_completion_needs_omega_n(benchmark, bench_seed):
    """Full completion (when it happens) cannot beat Ω(n): isolated nodes
    must die out first."""

    def completion_kernel(seed: int):
        net = SDG(n=N, d=2, seed=seed)
        net.run_rounds(N)
        return flood_discrete(net, max_rounds=3 * N, stop_when_extinct=False)

    result = benchmark.pedantic(
        completion_kernel, args=(bench_seed + 3,), rounds=3, iterations=1
    )
    if result.completed:
        assert result.completion_round >= 0.3 * N
