"""EXP-11 benchmark — static d-out baseline (Lemma B.1)."""

from __future__ import annotations

from repro.analysis.expansion import adversarial_expansion_upper_bound
from repro.models import SDG, static_d_out_snapshot
from repro.theory.expansion import EXPANSION_THRESHOLD

N, D = 300, 3


def static_expander_kernel(seed: int = 0) -> float:
    snap = static_d_out_snapshot(N, D, seed=seed)
    return adversarial_expansion_upper_bound(snap, seed=seed).min_ratio


def dynamic_control_kernel(seed: int = 0) -> int:
    net = SDG(n=N, d=D, seed=seed)
    net.run_rounds(N)
    return len(net.snapshot().isolated_nodes())


def test_bench_static_d3_expands(benchmark, bench_seed):
    ratio = benchmark.pedantic(
        static_expander_kernel, args=(bench_seed,), rounds=3, iterations=1
    )
    assert ratio > EXPANSION_THRESHOLD


def test_bench_dynamic_sdg_contrast(benchmark, bench_seed):
    """At the same d the dynamic model loses nodes to isolation over
    multiple seeds (single snapshots at d=3 hold ~2-3% isolated)."""
    isolated = benchmark.pedantic(
        dynamic_control_kernel, args=(bench_seed,), rounds=3, iterations=1
    )
    assert isolated >= 0  # timing kernel; the distributional claim below
    total = sum(
        dynamic_control_kernel(bench_seed + seed) for seed in range(5)
    )
    assert total > 0
