"""Service-plane benchmark — checkpoint cost and restore vs cold rebuild.

The measured unit is the service plane's unit of work: one batched
Poisson scenario session (array backend, n = 1e5) run three ways:

* **base** — the horizon with no checkpointing (what every run paid
  before the service plane existed);
* **cadenced** — the same seeded horizon with ``checkpoint_every``
  dumps into a scratch directory, asserted **bit-identical** (observer
  results and final topology) to the base run before timings count —
  the benchmark doubles as a restore-parity check at scale.  The
  batched trajectory depends on the advance stride (the gcd of all
  observer cadences, which ``checkpoint_every`` joins), so the bench
  keeps the checkpoint cadence a multiple of the observer window —
  the stride, and hence the trajectory, is unchanged by checkpointing;
* **restore** — ``Simulation.restore`` of the mid-run checkpoint,
  timed against a **cold rebuild** (re-running the seeded scenario from
  construction to the same round), the alternative a crashed multi-hour
  run would otherwise pay.

Recorded per size: the checkpoint dump/load/restore costs, the file
size, the steady-state overhead of the ``checkpoint_every`` cadence
(as a fraction of the base run), and ``restore_speedup = cold rebuild /
restore`` — the guarded metric (``check_bench_regression.py
--current-service``): restoring a checkpoint must stay well cheaper
than re-simulating, or the service plane has lost its reason to exist.

    PYTHONPATH=src python benchmarks/bench_service.py

writes ``BENCH_service.json``; ``pytest benchmarks/bench_service.py``
runs the CI-scale smoke (small n, correctness-first, both stepping
paths).
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

import pytest

from repro.scenario import ScenarioSpec, Simulation

DEFAULT_N = 100_000
DEFAULT_HORIZON = 40
DEFAULT_EVERY = 10
RESTORE_SPEEDUP_FLOOR = 2.0


def _spec(n: int, horizon: int, seed: int, backend: str) -> ScenarioSpec:
    return ScenarioSpec(
        churn="poisson",
        policy="regen",
        n=n,
        d=4,
        horizon=horizon,
        churn_params={"batch": True, "fast_warm": True},
        backend=backend,
        seed=seed,
    )


def _observers(every: int):
    return [{"name": "size", "params": {"every": every}}]


def measure_service(
    n: int, horizon: int, every: int, seed: int, backend: str = "array"
) -> dict:
    """One benchmark row: checkpoint costs + cadence overhead at size n.

    The observer window equals ``every`` so the batch stride — gcd of
    observer cadences plus the checkpoint cadence — is the same with
    and without checkpointing, keeping base and cadenced trajectories
    comparable (batched advance is not stride-invariant).
    """
    spec = _spec(n, horizon, seed, backend)
    observers = _observers(every)

    # Untimed warm-up at a small size: NumPy dispatch, allocator.
    Simulation(
        _spec(min(n, 1_000), every, seed, backend), observers=_observers(every)
    ).run()

    start = time.perf_counter()
    base = Simulation(spec, observers=observers).run()
    base_seconds = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as scratch:
        start = time.perf_counter()
        cadenced = Simulation(
            spec,
            observers=observers,
            checkpoint_every=every,
            checkpoint_dir=scratch,
        ).run()
        cadenced_seconds = time.perf_counter() - start

        # Parity first: cadence checkpointing must not perturb the run.
        if cadenced.results() != base.results():
            raise AssertionError(
                f"cadenced run diverged from base run at n={n}"
            )
        if cadenced.snapshot() != base.snapshot():
            raise AssertionError(f"cadenced topology diverged at n={n}")

        files = sorted(Path(scratch).glob("ckpt-*.json"))
        mid = files[len(files) // 2 - 1] if len(files) > 1 else files[0]
        checkpoint_mb = mid.stat().st_size / 1e6

        # One explicit dump of the finished session, timed.
        start = time.perf_counter()
        extra = cadenced.save_checkpoint(Path(scratch) / "explicit.json")
        dump_seconds = time.perf_counter() - start
        extra.unlink()

        start = time.perf_counter()
        restored = Simulation.restore(mid)
        restore_seconds = time.perf_counter() - start
        restored_rounds = restored.rounds_completed

        # The alternative to restoring: rebuild from scratch and re-run
        # the same seeded trajectory up to the checkpoint round.
        start = time.perf_counter()
        cold = Simulation(spec, observers=observers)
        cold._run_batched(float(restored_rounds))
        cold_seconds = time.perf_counter() - start

        # Restore parity at scale: finishing the restored session must
        # land exactly on the base run.
        restored.run()
        if restored.results() != base.results():
            raise AssertionError(f"restored run diverged at n={n}")
        if restored.snapshot() != base.snapshot():
            raise AssertionError(f"restored topology diverged at n={n}")

    overhead = (cadenced_seconds - base_seconds) / base_seconds
    return {
        "n": n,
        "horizon": horizon,
        "checkpoint_every": every,
        "checkpoints_written": len(files),
        "base_seconds": round(base_seconds, 4),
        "cadenced_seconds": round(cadenced_seconds, 4),
        "overhead_pct": round(100.0 * overhead, 2),
        "dump_seconds": round(dump_seconds, 4),
        "restore_seconds": round(restore_seconds, 4),
        "cold_rebuild_seconds": round(cold_seconds, 4),
        "checkpoint_mb": round(checkpoint_mb, 3),
        "restore_speedup": round(cold_seconds / restore_seconds, 2),
    }


# ----------------------------------------------------------------------
# pytest smoke (CI scale): correctness-first, both backends
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["dict", "array"])
def test_service_bench_smoke(backend):
    row = measure_service(
        n=300, horizon=12, every=4, seed=0, backend=backend
    )
    assert row["checkpoints_written"] == 3
    assert row["checkpoint_mb"] > 0
    # No speedup assertion at toy sizes: restore wins only when the
    # re-simulation it replaces is expensive.


def test_service_bench_guard_at_scale_is_wired():
    # The guarded key must stay in the payload the checker reads.
    from check_bench_regression import SERVICE_KEYS

    assert "restore_speedup" in SERVICE_KEYS


# ----------------------------------------------------------------------
# script mode: recorded to BENCH_service.json
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--n", type=int, default=DEFAULT_N)
    parser.add_argument("--horizon", type=int, default=DEFAULT_HORIZON)
    parser.add_argument("--every", type=int, default=DEFAULT_EVERY)
    parser.add_argument(
        "--backend", default="array",
        help="topology backend of the measured session (default: array)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_service.json",
    )
    args = parser.parse_args(argv)

    row = measure_service(
        args.n, args.horizon, args.every, args.seed, args.backend
    )
    print(
        f"n={row['n']}: base {row['base_seconds']:.2f}s | cadenced "
        f"{row['cadenced_seconds']:.2f}s ({row['overhead_pct']:+.1f}%) | "
        f"dump {row['dump_seconds']:.2f}s ({row['checkpoint_mb']:.1f} MB) | "
        f"restore {row['restore_seconds']:.2f}s vs cold rebuild "
        f"{row['cold_rebuild_seconds']:.2f}s "
        f"({row['restore_speedup']:.1f}x)"
    )

    payload = {
        "benchmark": (
            "service plane (batched Poisson session: checkpoint cadence "
            "overhead, dump/restore cost, restore vs cold rebuild)"
        ),
        "backend": args.backend,
        "seed": args.seed,
        "results": [row],
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    if row["restore_speedup"] < RESTORE_SPEEDUP_FLOOR:
        print(
            f"FAIL: restore speedup {row['restore_speedup']}x is below "
            f"the {RESTORE_SPEEDUP_FLOOR}x floor"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
