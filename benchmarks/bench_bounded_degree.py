"""Bounded-degree policy benchmark — per-slot rejection loop vs bulk sampler.

The measured kernel is the bounded-degree hot path that made
``CappedRegenerationPolicy`` the slow way to run EXP-15: place ``n·d``
birth requests under a hard in-degree cap, then kill a batch of nodes and
repair every orphaned slot under the same cap.  Three variants run on the
array backend:

* ``perslot`` — the sequential Python rejection loop (``bulk=False``),
  exactly what every bounded-degree run used before the bulk sampler;
* ``bulk`` — the same capped policy through
  :meth:`~repro.core.array_backend.ArraySlotBackend.place_slots_capped`
  (one ``rng.integers`` draw + ``np.bincount`` tally per accept/reject
  round);
* ``raes`` — :class:`~repro.core.edge_policy.RAESPolicy` (cap ``c·d``,
  full-pool batch births) through the same bulk sampler.

Run as a script to sweep n ∈ {1e3, 1e4, 1e5} and record the numbers (plus
the bulk/per-slot speedups) into ``BENCH_bounded.json``:

    PYTHONPATH=src python benchmarks/bench_bounded_degree.py

or via ``pytest benchmarks/bench_bounded_degree.py`` for the CI-scale
subset.  The acceptance bar tracked here: the vectorized batch path is
≥ 5× faster than the per-slot capped loop at n = 1e5.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.edge_policy import (
    BoundedInDegreePolicy,
    CappedRegenerationPolicy,
    RAESPolicy,
)
from repro.models.streaming import StreamingNetwork
from repro.sim.events import EventRecord, NodesDied

D = 4
CAP_FACTOR = 2  # in-degree cap = CAP_FACTOR * D for every variant
DEATH_FRACTION = 0.2
SCRIPT_SIZES = (1_000, 10_000, 100_000)
SPEEDUP_FLOOR_AT_1E5 = 5.0


def make_policy(variant: str) -> BoundedInDegreePolicy:
    if variant == "perslot":
        return CappedRegenerationPolicy(D, max_in_degree=CAP_FACTOR * D, bulk=False)
    if variant == "bulk":
        return CappedRegenerationPolicy(D, max_in_degree=CAP_FACTOR * D, bulk=True)
    if variant == "raes":
        return RAESPolicy(D, c=CAP_FACTOR)
    raise ValueError(f"unknown variant {variant!r}")


def bounded_churn_kernel(n: int, variant: str, seed: int) -> dict:
    """Place ``n·d`` birth requests under the cap, then repair a death wave.

    Measures the two *placement* paths the variants differ on — the
    batched birth placement (``handle_births``, via ``fast_warm``) and the
    orphan repair after a batched death
    (``repair_orphans_batched``) — on identical workloads.  The death
    bookkeeping itself (``apply_deaths``: victim removal and orphan
    collection) is identical across variants and runs outside the timers.
    """
    policy = make_policy(variant)
    start = time.perf_counter()
    net = StreamingNetwork(n, policy, seed=seed, backend="array", fast_warm=True)
    build_seconds = time.perf_counter() - start

    victims_rng = np.random.default_rng(seed + 1)
    alive = net.state.alive_ids()
    victims = victims_rng.choice(
        alive, size=int(len(alive) * DEATH_FRACTION), replace=False
    )
    orphans = net.state.apply_deaths(
        [int(v) for v in victims], death_time=net.now
    )
    record = EventRecord(time=net.now, kind=NodesDied(node_ids=tuple()))
    start = time.perf_counter()
    policy.repair_orphans_batched(net.state, orphans, net.now, net.rng, record)
    repair_seconds = time.perf_counter() - start

    state = net.state
    cap = policy.max_in_degree
    max_in = max(state.in_slot_count(u) for u in state.alive_ids())
    if max_in > cap:
        raise AssertionError(f"in-degree cap violated: {max_in} > {cap}")
    filled = sum(
        sum(1 for t in state.out_slots_of(u) if t is not None)
        for u in state.alive_ids()
    )
    total = build_seconds + repair_seconds
    return {
        "variant": variant,
        "n": n,
        "d": D,
        "cap": cap,
        "build_seconds": round(build_seconds, 4),
        "repair_seconds": round(repair_seconds, 4),
        "total_seconds": round(total, 4),
        "max_in_degree": int(max_in),
        "mean_out_degree": round(filled / state.num_alive(), 4),
        "slots_per_sec": round(n * D / total, 1),
    }


def compare_variants(n: int, seed: int) -> dict:
    """Run all three variants at size *n*; speedups are vs ``perslot``.

    A small untimed run first warms NumPy dispatch and the allocator, so
    the first measured variant is not penalized by cold-start costs.
    """
    bounded_churn_kernel(min(n, 1_000), "bulk", seed)
    perslot = bounded_churn_kernel(n, "perslot", seed)
    bulk = bounded_churn_kernel(n, "bulk", seed)
    raes = bounded_churn_kernel(n, "raes", seed)
    return {
        "n": n,
        "perslot": perslot,
        "bulk": bulk,
        "raes": raes,
        "speedup": round(perslot["total_seconds"] / bulk["total_seconds"], 2),
        "raes_speedup": round(
            perslot["total_seconds"] / raes["total_seconds"], 2
        ),
    }


# ----------------------------------------------------------------------
# pytest entry points (CI scale: the 1e5 point is marked slow)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n", [1_000, 10_000])
def test_bench_bounded_degree(benchmark, bench_seed, n):
    comparison = benchmark.pedantic(
        compare_variants, args=(n, bench_seed), rounds=2, iterations=1
    )
    assert comparison["bulk"]["max_in_degree"] <= comparison["bulk"]["cap"]
    assert comparison["raes"]["mean_out_degree"] == pytest.approx(D)
    # Generous floor at CI scale (sub-second kernels, noisy runners); the
    # hard 5x acceptance bar lives in the slow 1e5 test and script mode.
    if n >= 10_000:
        assert comparison["speedup"] >= 1.2


@pytest.mark.slow
def test_bench_bounded_degree_1e5(benchmark, bench_seed):
    comparison = benchmark.pedantic(
        compare_variants, args=(100_000, bench_seed), rounds=1, iterations=1
    )
    assert comparison["speedup"] >= SPEEDUP_FLOOR_AT_1E5


# ----------------------------------------------------------------------
# script mode: full sweep recorded to BENCH_bounded.json
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_bounded.json",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="*", default=list(SCRIPT_SIZES)
    )
    args = parser.parse_args(argv)
    if not args.sizes:
        parser.error("--sizes needs at least one value")

    results = []
    for n in args.sizes:
        comparison = compare_variants(n, args.seed)
        results.append(comparison)
        print(
            f"n={n:>7}: perslot {comparison['perslot']['total_seconds']:8.3f}s | "
            f"bulk {comparison['bulk']['total_seconds']:8.3f}s "
            f"({comparison['speedup']:5.2f}x) | "
            f"raes {comparison['raes']['total_seconds']:8.3f}s "
            f"({comparison['raes_speedup']:5.2f}x)"
        )

    payload = {
        "benchmark": (
            "bounded-degree placement (capped warm build + batched "
            "death repair on the array backend)"
        ),
        "d": D,
        "cap": CAP_FACTOR * D,
        "death_fraction": DEATH_FRACTION,
        "seed": args.seed,
        "results": results,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    largest = max(results, key=lambda row: row["n"])
    if largest["n"] >= 100_000 and largest["speedup"] < SPEEDUP_FLOOR_AT_1E5:
        print(
            f"FAIL: speedup {largest['speedup']}x at n={largest['n']} "
            f"is below the {SPEEDUP_FLOOR_AT_1E5}x floor"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
