"""EXP-10 benchmark — onion-skin processes (Claims 3.10/3.11, Lemma 7.8)."""

from __future__ import annotations

from repro.onion import run_poisson_onion_skin, run_streaming_onion_skin
from repro.theory.onion import onion_growth_factor_streaming

N, D = 2000, 200


def streaming_onion_kernel(seed: int = 0):
    return run_streaming_onion_skin(n=N, d=D, seed=seed)


def poisson_onion_kernel(seed: int = 0):
    return run_poisson_onion_skin(n=N, d=240, seed=seed)


def test_bench_streaming_onion(benchmark, bench_seed):
    result = benchmark.pedantic(
        streaming_onion_kernel, args=(bench_seed,), rounds=3, iterations=1
    )
    assert result.reached_target
    growth = result.layer_growth_factors()
    # Claim 3.10: pre-saturation growth of at least d/20 per step.
    assert growth[0] >= onion_growth_factor_streaming(D) / 2


def test_bench_poisson_onion(benchmark, bench_seed):
    result = benchmark.pedantic(
        poisson_onion_kernel, args=(bench_seed,), rounds=3, iterations=1
    )
    assert result.reached_target
