"""EXP-12 benchmark — the one-command Table 1 reproduction."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_bench_table1_summary(benchmark, bench_seed):
    result = benchmark.pedantic(
        run_experiment,
        args=("EXP-12",),
        kwargs={"quick": True, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    assert result.verdict["all_cells_agree"]
    assert result.verdict["cells_measured"] >= 8  # all Table 1 cells covered
