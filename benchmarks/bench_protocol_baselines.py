"""EXP-13 benchmark — protocol baselines (§2 related work)."""

from __future__ import annotations

from repro.analysis.components import component_summary
from repro.baselines import CentralCacheNetwork, TokenNetwork
from repro.flooding import flood_discrete

N, D = 200, 4


def central_cache_kernel(seed: int = 0):
    net = CentralCacheNetwork(n=N, d=D, seed=seed)
    net.run_rounds(N)
    return net


def token_network_kernel(seed: int = 0):
    net = TokenNetwork(n=N, d=D, seed=seed)
    net.run_rounds(N // 2)
    return net


def test_bench_central_cache(benchmark, bench_seed):
    net = benchmark.pedantic(
        central_cache_kernel, args=(bench_seed,), rounds=3, iterations=1
    )
    summary = component_summary(net.snapshot())
    assert summary.is_connected
    result = flood_discrete(net, max_rounds=100)
    assert result.completed


def test_bench_token_network(benchmark, bench_seed):
    net = benchmark.pedantic(
        token_network_kernel, args=(bench_seed,), rounds=2, iterations=1
    )
    summary = component_summary(net.snapshot())
    assert summary.giant_fraction > 0.95
