"""Every examples/*.json document must load, round-trip, and resolve —
the example files are part of the public contract and CI catches drift
when spec fields or observer registries change.

Two document kinds live side by side: scenario documents (a
``ScenarioSpec`` plus optional observers) and sweep documents (a
``SweepSpec`` — recognizable by its ``base`` key — as consumed by
``--sweep`` and the ``sweep run/worker/reduce`` fleet subcommands).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.scenario import ScenarioSpec, load_scenario_document
from repro.scenario.simulation import Simulation, resolve_observer
from repro.sweep import SweepSpec, get_measurement

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.json")
)


def _is_sweep_document(path: Path) -> bool:
    return "base" in json.loads(path.read_text(encoding="utf-8"))


SCENARIO_EXAMPLES = [p for p in EXAMPLES if not _is_sweep_document(p)]
SWEEP_EXAMPLES = [p for p in EXAMPLES if _is_sweep_document(p)]


def _ids(paths):
    return [path.name for path in paths]


def test_examples_exist():
    assert SCENARIO_EXAMPLES, "scenario examples/*.json disappeared"
    assert SWEEP_EXAMPLES, "sweep examples/*.json disappeared"


@pytest.mark.parametrize("path", SCENARIO_EXAMPLES, ids=_ids(SCENARIO_EXAMPLES))
def test_document_loads_and_spec_round_trips(path):
    document = load_scenario_document(path)
    spec = document.spec
    # JSON -> spec -> JSON -> spec must be a fixed point.
    assert ScenarioSpec.from_json(spec.to_json()) == spec
    assert ScenarioSpec.from_dict(json.loads(spec.to_json())) == spec


@pytest.mark.parametrize("path", SCENARIO_EXAMPLES, ids=_ids(SCENARIO_EXAMPLES))
def test_observer_declarations_resolve(path):
    document = load_scenario_document(path)
    for declaration in document.observers:
        observer = resolve_observer(declaration)
        assert observer.name


@pytest.mark.parametrize("path", SCENARIO_EXAMPLES, ids=_ids(SCENARIO_EXAMPLES))
def test_session_constructs(path, tmp_path, monkeypatch):
    # Building the session validates churn x policy x protocol fit and
    # the observer pipeline without paying for the full horizon.
    # File-writing observers and checkpoint dirs land in tmp_path.
    monkeypatch.chdir(tmp_path)
    document = load_scenario_document(path)
    simulation = Simulation(document.spec, observers=document.observers)
    assert simulation.network.num_alive() >= 0
    if document.should_flood:
        assert document.spec.protocol is not None


@pytest.mark.parametrize("path", SWEEP_EXAMPLES, ids=_ids(SWEEP_EXAMPLES))
def test_sweep_document_round_trips(path):
    text = path.read_text(encoding="utf-8")
    sweep = SweepSpec.from_json(text)
    # JSON -> spec -> JSON -> spec must be a fixed point.
    assert SweepSpec.from_dict(json.loads(json.dumps(sweep.to_dict()))) == sweep
    # The named measurement resolves, and the sweep's content address is
    # stable — workers on other hosts derive the same key from this file.
    assert get_measurement(sweep.measure).name == sweep.measure
    assert sweep.sweep_key() == sweep.sweep_key()
    assert len(sweep.sweep_key()) == 64
    assert sweep.num_cells > 0
