"""Every examples/*.json scenario document must load, round-trip, and
resolve — the example files are part of the public contract and CI
catches drift when spec fields or observer registries change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.scenario import ScenarioSpec, load_scenario_document
from repro.scenario.simulation import Simulation, resolve_observer

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.json")
)


def _example_ids():
    return [path.name for path in EXAMPLES]


def test_examples_exist():
    assert EXAMPLES, "examples/*.json disappeared"


@pytest.mark.parametrize("path", EXAMPLES, ids=_example_ids())
def test_document_loads_and_spec_round_trips(path):
    document = load_scenario_document(path)
    spec = document.spec
    # JSON -> spec -> JSON -> spec must be a fixed point.
    assert ScenarioSpec.from_json(spec.to_json()) == spec
    assert ScenarioSpec.from_dict(json.loads(spec.to_json())) == spec


@pytest.mark.parametrize("path", EXAMPLES, ids=_example_ids())
def test_observer_declarations_resolve(path):
    document = load_scenario_document(path)
    for declaration in document.observers:
        observer = resolve_observer(declaration)
        assert observer.name


@pytest.mark.parametrize("path", EXAMPLES, ids=_example_ids())
def test_session_constructs(path, tmp_path, monkeypatch):
    # Building the session validates churn x policy x protocol fit and
    # the observer pipeline without paying for the full horizon.
    # File-writing observers and checkpoint dirs land in tmp_path.
    monkeypatch.chdir(tmp_path)
    document = load_scenario_document(path)
    simulation = Simulation(document.spec, observers=document.observers)
    assert simulation.network.num_alive() >= 0
    if document.should_flood:
        assert document.spec.protocol is not None
