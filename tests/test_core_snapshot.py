"""Tests for Snapshot queries (boundaries, components, conversions)."""

from __future__ import annotations

import pytest

from tests.conftest import (
    complete_snapshot,
    cycle_snapshot,
    path_snapshot,
    snapshot_from_edges,
)


class TestBasics:
    def test_counts(self, path8):
        assert path8.num_nodes() == 8
        assert path8.num_edges() == 7

    def test_degrees(self, path8):
        assert path8.degree(0) == 1
        assert path8.degree(3) == 2

    def test_degrees_dict(self, cycle10):
        assert set(cycle10.degrees().values()) == {2}

    def test_ages(self):
        snap = snapshot_from_edges(
            2, [(0, 1)], time=10.0, birth_times={0: 3.0, 1: 8.0}
        )
        assert snap.age(0) == pytest.approx(7.0)
        assert snap.ages()[1] == pytest.approx(2.0)

    def test_isolated_nodes(self):
        snap = snapshot_from_edges(4, [(0, 1)])
        assert snap.isolated_nodes() == {2, 3}


class TestBoundary:
    """Definition 3.1's outer boundary."""

    def test_path_interior(self, path8):
        assert path8.outer_boundary({3}) == {2, 4}

    def test_path_end(self, path8):
        assert path8.outer_boundary({0}) == {1}

    def test_block(self, path8):
        assert path8.outer_boundary({2, 3, 4}) == {1, 5}

    def test_whole_graph_has_empty_boundary(self, cycle10):
        assert cycle10.outer_boundary(set(range(10))) == set()

    def test_expansion_of(self, path8):
        assert path8.expansion_of({3}) == pytest.approx(2.0)
        assert path8.expansion_of({0, 1, 2, 3}) == pytest.approx(0.25)

    def test_expansion_empty_raises(self, path8):
        with pytest.raises(ValueError):
            path8.expansion_of(set())

    def test_complete_graph_expansion(self, complete6):
        assert complete6.expansion_of({0, 1, 2}) == pytest.approx(1.0)


class TestComponents:
    def test_connected(self, cycle10):
        comps = cycle10.connected_components()
        assert len(comps) == 1
        assert comps[0] == set(range(10))

    def test_two_components_sorted_by_size(self):
        snap = snapshot_from_edges(6, [(0, 1), (1, 2), (3, 4)])
        comps = snap.connected_components()
        assert [len(c) for c in comps] == [3, 2, 1]

    def test_all_isolated(self):
        snap = snapshot_from_edges(4, [])
        assert len(snap.connected_components()) == 4

    def test_subgraph_adjacency(self, path8):
        sub = path8.subgraph_adjacency({2, 3, 5})
        assert sub == {2: {3}, 3: {2}, 5: set()}


class TestNetworkxExport:
    def test_roundtrip_counts(self, cycle10):
        g = cycle10.to_networkx()
        assert g.number_of_nodes() == 10
        assert g.number_of_edges() == 10

    def test_node_attributes(self):
        snap = snapshot_from_edges(
            2, [(0, 1)], time=4.0, birth_times={0: 1.0, 1: 2.0}
        )
        g = snap.to_networkx()
        assert g.nodes[0]["birth_time"] == 1.0
        assert g.nodes[0]["age"] == pytest.approx(3.0)

    def test_no_duplicate_edges(self):
        snap = complete_snapshot(5)
        g = snap.to_networkx()
        assert g.number_of_edges() == 10
