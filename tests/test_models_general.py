"""Tests for the generalized-lifetime network driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.churn.lifetime import (
    ExponentialLifetime,
    FixedLifetime,
    ParetoLifetime,
    WeibullLifetime,
)
from repro.errors import ConfigurationError
from repro.flooding import flood_discretized
from repro.models import PDGR
from repro.models.general import GDG, GDGR, exponential_reference


class TestConstruction:
    def test_expected_size_littles_law(self):
        net = GDG(ExponentialLifetime(200), d=3, seed=0, warm_time=0)
        assert net.expected_size() == pytest.approx(200)

    def test_lambda_scales_size(self):
        net = GDG(ExponentialLifetime(100), d=3, lam=2.0, seed=0, warm_time=0)
        assert net.expected_size() == pytest.approx(200)

    def test_invalid_lambda(self):
        with pytest.raises(ConfigurationError):
            GDG(ExponentialLifetime(100), d=3, lam=0.0)

    def test_warm_size_near_expected(self):
        net = GDGR(ExponentialLifetime(300), d=4, seed=1)
        assert 0.75 * 300 <= net.num_alive() <= 1.25 * 300


class TestDynamics:
    def test_invariants_under_all_laws(self):
        for law in [
            ExponentialLifetime(100),
            WeibullLifetime(100, shape=0.5),
            ParetoLifetime(100, alpha=1.5),
            FixedLifetime(100),
        ]:
            net = GDGR(law, d=3, seed=2, warm_time=300)
            net.run_rounds(50)
            net.state.check_invariants()

    def test_deaths_follow_sampled_lifetimes_fixed(self):
        """With deterministic lifetimes every node lives exactly `mean`."""
        net = GDG(FixedLifetime(50), d=2, seed=3, warm_time=200)
        snap = net.snapshot()
        assert max(snap.age(u) for u in snap.nodes) <= 50.0 + 1e-9

    def test_advance_round_is_unit_time(self):
        net = GDG(ExponentialLifetime(80), d=2, seed=4, warm_time=100)
        before = net.now
        net.advance_round()
        assert net.now == pytest.approx(before + 1.0)

    def test_event_count_increases(self):
        net = GDG(ExponentialLifetime(80), d=2, seed=5, warm_time=100)
        before = net.event_count
        net.run_rounds(20)
        assert net.event_count > before

    def test_pareto_age_distribution_heavy_tailed(self):
        """Under Pareto lifetimes some alive nodes are far older than the
        mean — the inspection-paradox signature absent at fixed lifetimes."""
        net = GDG(ParetoLifetime(100, alpha=1.3), d=2, seed=6, warm_time=1500)
        snap = net.snapshot()
        ages = sorted(snap.age(u) for u in snap.nodes)
        assert ages[-1] > 300  # an old survivor


class TestEquivalenceWithPoissonDriver:
    def test_matches_pdgr_statistics(self):
        """The generalized driver with exponential lifetimes reproduces
        the jump-chain driver's stationary statistics."""
        sizes_general = []
        sizes_jump = []
        for seed in range(3):
            g = exponential_reference(n=200, d=4, seed=seed)
            sizes_general.append(g.num_alive())
            p = PDGR(n=200, d=4, seed=seed)
            sizes_jump.append(p.num_alive())
        assert abs(np.mean(sizes_general) - np.mean(sizes_jump)) < 40

    def test_flooding_matches(self):
        g = exponential_reference(n=200, d=8, seed=7)
        result = flood_discretized(g, max_rounds=60)
        assert result.completed
        assert result.completion_round <= 10


class TestRegenerationDichotomyUnderHeavyTails:
    def test_gdgr_no_isolated(self):
        net = GDGR(ParetoLifetime(200, alpha=1.5), d=4, seed=8, warm_time=1000)
        assert len(net.snapshot().isolated_nodes()) == 0

    def test_gdg_isolates(self):
        net = GDG(ParetoLifetime(300, alpha=1.5), d=2, seed=9, warm_time=2000)
        assert len(net.snapshot().isolated_nodes()) > 0
