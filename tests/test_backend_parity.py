"""Cross-backend parity: dict and array backends must produce identical
seeded trajectories.

Both backends keep the alive set in the same IndexedSet structure and
sample through it, so a seeded run consumes the RNG identically — every
snapshot, degree vector, and flooding trajectory must match *exactly*
(not just statistically).  These tests drive both backends through the
same churn traces (streaming and Poisson, with and without regeneration)
and assert bit-identical outcomes; they are the safety net that lets the
array backend's vectorized reads replace the dict backend's loops.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.array_backend import ArraySlotBackend
from repro.core.edge_policy import (
    CappedRegenerationPolicy,
    NoRegenerationPolicy,
    RAESPolicy,
    RegenerationPolicy,
)
from repro.core.graph import DictBackend
from repro.flooding.discrete import flood_discrete
from repro.flooding.discretized import flood_discretized
from repro.models.adversarial import AdversarialStreamingNetwork
from repro.models.poisson import PDG, PDGR
from repro.models.streaming import SDG, SDGR


def both_backends(factory):
    """Build the same seeded network on each backend."""
    return factory(backend="dict"), factory(backend="array")


def assert_states_identical(a, b):
    """Snapshots, degrees, and derived queries agree exactly."""
    sa = a.state.snapshot(a.now)
    sb = b.state.snapshot(b.now)
    assert sa.to_dict() == sb.to_dict()
    assert a.state.alive_ids() == b.state.alive_ids()
    assert np.array_equal(a.state.degree_vector(), b.state.degree_vector())
    assert a.state.num_edges() == b.state.num_edges()
    for u in a.state.alive_ids():
        assert set(a.state.neighbors(u)) == set(b.state.neighbors(u))
        assert a.state.in_slot_count(u) == b.state.in_slot_count(u)
        assert a.state.out_slots_of(u) == b.state.out_slots_of(u)
        assert a.state.birth_time(u) == b.state.birth_time(u)
    a.state.check_invariants()
    b.state.check_invariants()


@pytest.mark.parametrize("model", [SDG, SDGR])
@pytest.mark.parametrize("seed", [0, 7])
def test_streaming_trace_parity(model, seed):
    a, b = both_backends(lambda backend: model(n=40, d=3, seed=seed, backend=backend))
    assert_states_identical(a, b)
    for _ in range(60):
        ra = a.advance_round()
        rb = b.advance_round()
        assert ra.births == rb.births and ra.deaths == rb.deaths
    assert_states_identical(a, b)


@pytest.mark.parametrize("model", [PDG, PDGR])
def test_poisson_trace_parity(model):
    a, b = both_backends(lambda backend: model(n=50, d=4, seed=11, backend=backend))
    assert_states_identical(a, b)
    for _ in range(30):
        ra = a.advance_round()
        rb = b.advance_round()
        assert [e.node_id for e in ra.events] == [e.node_id for e in rb.events]
    assert_states_identical(a, b)


def test_adversarial_trace_parity():
    a, b = both_backends(
        lambda backend: AdversarialStreamingNetwork(
            n=30,
            policy=RegenerationPolicy(3),
            strategy="max_degree",
            seed=5,
            backend=backend,
        )
    )
    for _ in range(40):
        a.advance_round()
        b.advance_round()
    assert_states_identical(a, b)


@pytest.mark.parametrize(
    "model,flood",
    [(SDGR, flood_discrete), (SDG, flood_discrete), (PDGR, flood_discretized)],
)
def test_flooding_trajectory_parity(model, flood):
    """The vectorized mask frontier computes the same informed set as the
    reference set frontier, round for round."""
    a, b = both_backends(lambda backend: model(n=60, d=4, seed=3, backend=backend))
    ra = flood(a, max_rounds=150)
    rb = flood(b, max_rounds=150)
    assert ra.informed_sizes == rb.informed_sizes
    assert ra.network_sizes == rb.network_sizes
    assert ra.completed == rb.completed
    assert ra.completion_round == rb.completion_round
    assert ra.extinct == rb.extinct
    assert_states_identical(a, b)


@pytest.mark.parametrize(
    "make_policy",
    [
        lambda: CappedRegenerationPolicy(3, max_in_degree=4),
        lambda: RAESPolicy(3, c=2),
    ],
    ids=["capped", "raes"],
)
def test_bounded_policy_trace_parity(make_policy):
    """Seeded bounded-degree (capped/RAES) per-event trajectories are
    bit-identical across backends — the rejection loop consumes the RNG
    through the shared IndexedSet on both."""
    from repro.models.streaming import StreamingNetwork

    a, b = both_backends(
        lambda backend: StreamingNetwork(
            n=35, policy=make_policy(), seed=13, backend=backend
        )
    )
    assert_states_identical(a, b)
    for _ in range(70):
        ra = a.advance_round()
        rb = b.advance_round()
        assert ra.births == rb.births and ra.deaths == rb.deaths
    assert_states_identical(a, b)
    cap = a.policy.max_in_degree
    for u in a.state.alive_ids():
        assert a.state.in_slot_count(u) <= cap


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=25),
    d=st.integers(min_value=1, max_value=4),
    raes=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    extra_rounds=st.integers(min_value=0, max_value=40),
)
def test_property_bounded_parity_and_cap(n, d, raes, seed, extra_rounds):
    """Property: under heavy streaming churn, bounded-degree runs are
    backend-identical and never exceed the in-degree cap (the dict-parity
    invariant suite: check_invariants also cross-checks the array
    backend's dense _in_count against its reverse-ref sets)."""
    from repro.models.streaming import StreamingNetwork

    def make_policy():
        return RAESPolicy(d, c=2) if raes else CappedRegenerationPolicy(
            d, max_in_degree=2 * d
        )

    a, b = both_backends(
        lambda backend: StreamingNetwork(
            n=n, policy=make_policy(), seed=seed, backend=backend
        )
    )
    for _ in range(extra_rounds):
        a.advance_round()
        b.advance_round()
    assert_states_identical(a, b)
    cap = 2 * d
    for u in a.state.alive_ids():
        assert a.state.in_slot_count(u) <= cap
        assert b.state.in_slot_count(u) <= cap


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=6, max_value=40),
    d=st.integers(min_value=1, max_value=4),
    raes=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_bounded_batched_cap(n, d, raes, seed):
    """Property: the bulk accept/reject path (batched births + batched
    death repair) never exceeds the cap, and _in_count stays consistent
    with the reverse refs (check_invariants)."""
    rng = np.random.default_rng(seed)
    policy = (
        RAESPolicy(d, c=2) if raes else CappedRegenerationPolicy(d, 2 * d)
    )
    state = ArraySlotBackend(initial_capacity=2, slot_width=1)
    policy.handle_births(state, state.allocate_ids(n), 0.0, rng)
    state.check_invariants()
    victims = [u for u in state.alive_ids() if u % 3 == 0][: n - 2]
    if victims:
        policy.handle_deaths(state, victims, 1.0, rng)
    state.check_invariants()
    policy.handle_births(state, state.allocate_ids(5), 2.0, rng)
    state.check_invariants()
    cap = 2 * d
    for u in state.alive_ids():
        assert state.in_slot_count(u) <= cap


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=25),
    d=st.integers(min_value=1, max_value=5),
    regen=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    extra_rounds=st.integers(min_value=0, max_value=40),
)
def test_property_streaming_parity(n, d, regen, seed, extra_rounds):
    """Property: any seeded streaming trace is backend-independent."""
    model = SDGR if regen else SDG
    a, b = both_backends(lambda backend: model(n=n, d=d, seed=seed, backend=backend))
    for _ in range(extra_rounds):
        a.advance_round()
        b.advance_round()
    assert_states_identical(a, b)


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=20),
    d=st.integers(min_value=1, max_value=4),
    regen=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_poisson_parity(n, d, regen, seed):
    """Property: any seeded Poisson jump-chain trace is backend-independent."""
    model = PDGR if regen else PDG
    a, b = both_backends(
        lambda backend: model(n=n, d=d, seed=seed, warm_time=0.0, backend=backend)
    )
    a.advance_rounds_jump(4 * n)
    b.advance_rounds_jump(4 * n)
    assert_states_identical(a, b)


def test_policy_parity_through_raw_backends():
    """Driving bare backends through one policy gives identical traces."""
    rng_a = np.random.default_rng(123)
    rng_b = np.random.default_rng(123)
    pa, pb = RegenerationPolicy(3), RegenerationPolicy(3)
    a, b = DictBackend(), ArraySlotBackend(initial_capacity=2, slot_width=1)
    for _ in range(25):
        pa.handle_birth(a, a.allocate_id(), 0.0, rng_a)
        pb.handle_birth(b, b.allocate_id(), 0.0, rng_b)
    kill_a = np.random.default_rng(9)
    kill_b = np.random.default_rng(9)
    for t in range(15):
        pa.handle_death(a, a.sample_alive(kill_a), float(t), rng_a)
        pb.handle_death(b, b.sample_alive(kill_b), float(t), rng_b)
        pa.handle_birth(a, a.allocate_id(), float(t), rng_a)
        pb.handle_birth(b, b.allocate_id(), float(t), rng_b)
    assert a.snapshot(99.0).to_dict() == b.snapshot(99.0).to_dict()
    a.check_invariants()
    b.check_invariants()


def test_no_regen_policy_parity_with_deaths():
    """SDG-style orphan loss (slots stay empty) matches across backends."""
    rng_a = np.random.default_rng(4)
    rng_b = np.random.default_rng(4)
    pa, pb = NoRegenerationPolicy(2), NoRegenerationPolicy(2)
    a, b = DictBackend(), ArraySlotBackend(initial_capacity=1, slot_width=2)
    for _ in range(12):
        pa.handle_birth(a, a.allocate_id(), 0.0, rng_a)
        pb.handle_birth(b, b.allocate_id(), 0.0, rng_b)
    for victim in (3, 7, 0):
        pa.handle_death(a, victim, 1.0, rng_a)
        pb.handle_death(b, victim, 1.0, rng_b)
    assert a.snapshot(2.0).to_dict() == b.snapshot(2.0).to_dict()
    a.check_invariants()
    b.check_invariants()
