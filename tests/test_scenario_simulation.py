"""Tests for the Simulation session object and the experiment ports."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments import run_experiment
from repro.flooding import flood_discrete
from repro.models import PDGR, SDG, SDGR
from repro.scenario import (
    CoverageObserver,
    ScenarioSpec,
    SizeObserver,
    Simulation,
    simulate,
)


class TestBitIdentity:
    """A scenario-built session must replay the hand-wired construction."""

    def test_streaming_matches_direct(self, backend_name):
        spec = ScenarioSpec(
            churn="streaming", policy="none", n=80, d=3, horizon=80,
            backend=backend_name,
        )
        sim = simulate(spec, seed=11)
        net = SDG(n=80, d=3, seed=11, backend=backend_name)
        net.run_rounds(80)
        assert sim.snapshot() == net.snapshot()

    def test_poisson_matches_direct(self, backend_name):
        spec = ScenarioSpec(
            churn="poisson", policy="regen", n=60, d=4, backend=backend_name
        )
        sim = simulate(spec, seed=5)
        assert sim.snapshot() == PDGR(n=60, d=4, seed=5, backend=backend_name).snapshot()

    def test_flood_matches_direct(self, backend_name):
        spec = ScenarioSpec(
            churn="streaming", policy="regen", n=100, d=8, horizon=100,
            protocol="discrete", protocol_params={"max_rounds": 200},
            backend=backend_name,
        )
        via_scenario = simulate(spec, seed=3).flood()
        net = SDGR(n=100, d=8, seed=3, backend=backend_name)
        net.run_rounds(100)
        direct = flood_discrete(net, max_rounds=200)
        assert via_scenario.informed_sizes == direct.informed_sizes
        assert via_scenario.completion_round == direct.completion_round

    def test_spec_seed_used_when_no_override(self):
        spec = ScenarioSpec(churn="streaming", policy="none", n=50, d=2, seed=9)
        assert simulate(spec).snapshot() == simulate(spec, seed=9).snapshot()


class TestSession:
    def test_run_returns_self_and_counts_rounds(self):
        sim = Simulation(ScenarioSpec(churn="streaming", n=40, d=2, horizon=10))
        assert sim.run() is sim
        assert sim.rounds_completed == 10
        assert sim.network.round_number == 50  # 40 warm + 10 run

    def test_explicit_rounds_override_horizon(self):
        sim = Simulation(ScenarioSpec(churn="streaming", n=40, d=2, horizon=10))
        sim.run(rounds=3)
        assert sim.rounds_completed == 3

    def test_flood_without_protocol_raises(self):
        sim = Simulation(ScenarioSpec(churn="streaming", n=40, d=2))
        with pytest.raises(ConfigurationError, match="no spreading protocol"):
            sim.flood()

    def test_flood_protocol_override(self):
        sim = simulate(
            ScenarioSpec(churn="streaming", policy="regen", n=60, d=8, horizon=60)
        )
        result = sim.flood(protocol="gossip", seed=1, max_rounds=300)
        assert result.max_informed > 1

    def test_bad_observer_declaration(self):
        spec = ScenarioSpec(churn="streaming", n=40, d=2)
        with pytest.raises(ConfigurationError, match="unknown observer"):
            Simulation(spec, observers=["scribe"])
        with pytest.raises(ConfigurationError, match="needs a 'name'"):
            Simulation(spec, observers=[{"params": {}}])
        with pytest.raises(ConfigurationError, match="cannot interpret"):
            Simulation(spec, observers=[42])

    def test_batched_run_requires_support(self):
        # The adversarial driver picks victims off the evolving topology
        # and has no batched window path (streaming gained one in the
        # fused-kernel work, so it no longer serves here).
        spec = ScenarioSpec(
            churn="adversarial", n=40, d=2, horizon=5,
            churn_params={"batch": True, "strategy": "max_degree"},
        )
        with pytest.raises(ConfigurationError, match="no batched advance"):
            Simulation(spec).run()

    def test_batched_poisson_run(self):
        spec = ScenarioSpec(
            churn="poisson", policy="regen", n=80, d=4, horizon=30,
            churn_params={"batch": True},
        )
        sim = simulate(spec, seed=2, observers=[SizeObserver(every=10)])
        sim.state.check_invariants()
        sizes = sim.results()["size"]["sizes"]
        # three windows (rounds 10/20/30); the last lands on the horizon,
        # so the finish notification is suppressed — no duplicate reading.
        assert len(sizes) == 3
        assert all(s > 0 for s in sizes)
        assert sim.network.now == pytest.approx(3 * 80 + 30)


class TestObserverPipeline:
    def test_observers_compose_in_one_pass(self):
        spec = ScenarioSpec(churn="streaming", policy="regen", n=60, d=6, horizon=20)
        sim = simulate(
            spec,
            seed=4,
            observers=[
                "isolated",
                {"name": "degrees", "params": {"every": 10}},
                SizeObserver(every=5),
            ],
        )
        results = sim.results()
        assert results["isolated"]["final"]["fraction"] == 0.0
        # Cadences divide the horizon, so each observer's final window IS
        # its horizon reading (on_finish adds nothing for them).
        assert len(results["degrees"]["series"]) == 2  # rounds 10, 20
        assert len(results["size"]["sizes"]) == 4
        assert results["size"]["total_births"] == 20

    def test_coverage_observer_sees_floods(self):
        spec = ScenarioSpec(
            churn="streaming", policy="regen", n=60, d=8, horizon=60,
            protocol="discrete",
        )
        sim = simulate(spec, seed=1, observers=[CoverageObserver()])
        sim.flood()
        sim.flood()
        coverage = sim.results()["coverage"]
        assert len(coverage["runs"]) == 2
        assert coverage["all_completed"] is True

    @pytest.mark.parametrize("batch", [False, True])
    def test_window_on_horizon_emits_exactly_once(self, batch):
        """The cadence edge case: a window boundary landing exactly on
        the horizon must produce its final report once — not zero times,
        not twice — on both stepping paths."""
        spec = ScenarioSpec(
            churn="poisson", policy="regen", n=50, d=3, horizon=20,
            churn_params={"batch": True} if batch else {},
        )
        sim = simulate(spec, seed=6, observers=[SizeObserver(every=5)])
        result = sim.results()["size"]
        # Windows at rounds 5/10/15/20 — the round-20 reading IS the
        # horizon reading; no duplicate from on_finish.
        assert len(result["sizes"]) == 4
        assert result["times"][-1] == sim.network.now
        assert result["final_size"] == sim.network.num_alive()

    @pytest.mark.parametrize("batch", [False, True])
    def test_horizon_off_cadence_still_reports_final_state(self, batch):
        """When the horizon is NOT on the cadence, on_finish still
        delivers the final state exactly once."""
        spec = ScenarioSpec(
            churn="poisson", policy="regen", n=50, d=3, horizon=22,
            churn_params={"batch": True} if batch else {},
        )
        sim = simulate(spec, seed=6, observers=[SizeObserver(every=5)])
        result = sim.results()["size"]
        # Windows at 5/10/15/20 plus the distinct finish reading at 22.
        assert len(result["sizes"]) == 5
        assert result["times"][-1] == sim.network.now
        assert result["times"][-1] != result["times"][-2]

    def test_duplicate_observer_names_keep_both(self):
        spec = ScenarioSpec(churn="streaming", n=40, d=2, horizon=4)
        sim = simulate(spec, observers=[SizeObserver(every=1), SizeObserver(every=2)])
        results = sim.results()
        assert set(results) == {"size", "size_2"}


class TestPortedExperimentParity:
    """Cross-backend seeded parity for ported experiments: the scenario
    layer preserves the bit-identical dict/array guarantee end to end."""

    @pytest.mark.parametrize("experiment_id", ["EXP-01", "EXP-02", "EXP-11"])
    def test_dict_array_identical(self, experiment_id):
        on_dict = run_experiment(experiment_id, quick=True, seed=0, backend="dict")
        on_array = run_experiment(experiment_id, quick=True, seed=0, backend="array")
        assert [dict(r) for r in on_dict.rows] == [dict(r) for r in on_array.rows]
        assert on_dict.verdict == on_array.verdict
