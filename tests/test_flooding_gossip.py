"""Tests for the push/pull gossip extension."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.flooding import gossip_push_pull
from repro.models import SDGR


class TestGossip:
    def test_push_pull_completes(self):
        net = SDGR(n=150, d=6, seed=0)
        net.run_rounds(150)
        result = gossip_push_pull(net, seed=1)
        assert result.completed

    def test_push_only_completes(self):
        net = SDGR(n=100, d=6, seed=1)
        net.run_rounds(100)
        result = gossip_push_pull(net, seed=2, pull=False, max_rounds=200)
        assert result.completed

    def test_pull_only_completes(self):
        net = SDGR(n=100, d=6, seed=2)
        net.run_rounds(100)
        result = gossip_push_pull(net, seed=3, push=False, max_rounds=400)
        assert result.completed

    def test_neither_rejected(self):
        net = SDGR(n=50, d=3, seed=3)
        with pytest.raises(ConfigurationError):
            gossip_push_pull(net, push=False, pull=False)

    def test_gossip_slower_than_flooding(self):
        """Gossip contacts one neighbour/round, so it cannot beat flooding."""
        from repro.flooding import flood_discrete

        flood_net = SDGR(n=150, d=6, seed=4)
        flood_net.run_rounds(150)
        flood_result = flood_discrete(flood_net)

        gossip_net = SDGR(n=150, d=6, seed=4)
        gossip_net.run_rounds(150)
        gossip_result = gossip_push_pull(gossip_net, seed=5)

        assert gossip_result.completed
        assert gossip_result.completion_round >= flood_result.completion_round

    def test_growth_bounded_by_doubling_plus_pull(self):
        """Push adds at most |I| new nodes per round; sanity check."""
        net = SDGR(n=200, d=5, seed=6)
        net.run_rounds(200)
        result = gossip_push_pull(net, seed=7, pull=False)
        for a, b in zip(result.informed_sizes, result.informed_sizes[1:]):
            assert b <= 2 * a

    def test_deterministic_given_seeds(self):
        a_net = SDGR(n=80, d=4, seed=8)
        a_net.run_rounds(80)
        a = gossip_push_pull(a_net, seed=9)
        b_net = SDGR(n=80, d=4, seed=8)
        b_net.run_rounds(80)
        b = gossip_push_pull(b_net, seed=9)
        assert a.informed_sizes == b.informed_sizes
