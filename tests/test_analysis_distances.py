"""Tests for the distance/diameter analysis."""

from __future__ import annotations

import math

import pytest

from repro.analysis.distances import (
    average_shortest_path_sample,
    bfs_distances,
    eccentricity,
    giant_component_diameter,
)
from repro.errors import AnalysisError
from repro.models import SDGR, static_d_out_snapshot
from tests.conftest import cycle_snapshot, path_snapshot, snapshot_from_edges


class TestBfs:
    def test_path_distances(self):
        snap = path_snapshot(5)
        assert bfs_distances(snap, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_unreachable_not_included(self):
        snap = snapshot_from_edges(4, [(0, 1)])
        assert bfs_distances(snap, 0) == {0: 0, 1: 1}

    def test_unknown_source(self):
        with pytest.raises(AnalysisError):
            bfs_distances(path_snapshot(3), 99)

    def test_eccentricity(self):
        snap = path_snapshot(7)
        assert eccentricity(snap, 0) == 6
        assert eccentricity(snap, 3) == 3


class TestDiameter:
    def test_path(self):
        assert giant_component_diameter(path_snapshot(9)) == 8

    def test_cycle(self):
        assert giant_component_diameter(cycle_snapshot(10)) == 5

    def test_isolated_only(self):
        snap = snapshot_from_edges(3, [])
        assert giant_component_diameter(snap) == 0

    def test_uses_giant_component(self):
        snap = snapshot_from_edges(7, [(0, 1), (1, 2), (2, 3), (5, 6)])
        assert giant_component_diameter(snap) == 3

    def test_double_sweep_matches_exact_on_cycle(self):
        snap = cycle_snapshot(24)
        exact = giant_component_diameter(snap, exact_limit=600)
        sweep = giant_component_diameter(snap, exact_limit=1, seed=0)
        assert sweep == exact

    def test_expander_diameter_logarithmic(self):
        """Static 3-out expanders have O(log n) diameter."""
        snap = static_d_out_snapshot(500, 3, seed=0)
        assert giant_component_diameter(snap, seed=1) <= 4 * math.log2(500)

    def test_sdgr_diameter_logarithmic(self):
        net = SDGR(n=300, d=8, seed=1)
        net.run_rounds(300)
        assert giant_component_diameter(net.snapshot(), seed=2) <= 4 * math.log2(300)


class TestAveragePath:
    def test_path_graph_average(self):
        value = average_shortest_path_sample(path_snapshot(6), num_sources=6, seed=0)
        assert 1.0 < value < 5.0

    def test_requires_component(self):
        with pytest.raises(AnalysisError):
            average_shortest_path_sample(snapshot_from_edges(3, []))

    def test_smaller_than_diameter(self):
        snap = cycle_snapshot(20)
        avg = average_shortest_path_sample(snap, seed=1)
        assert avg <= giant_component_diameter(snap)
