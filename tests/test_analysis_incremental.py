"""Tests for the incremental analysis plane: mutation tracking and the
window-to-window :class:`~repro.analysis.incremental.ProbeCache`.

The headline property: after *any* churn history, an incremental probe
is bit-identical — probe minimum, witness, witness size, and
``candidates_checked`` — to a cold recompute of the same portfolio, on
both topology backends.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.expansion import adversarial_expansion_upper_bound
from repro.analysis.incremental import ProbeCache
from repro.core.array_backend import ArraySlotBackend
from repro.core.graph import DictBackend
from repro.errors import ConfigurationError
from repro.models import SDGR
from repro.models.streaming import StreamingNetwork
from repro.core.edge_policy import RAESPolicy


def assert_probe_equal(a, b):
    assert a.min_ratio == b.min_ratio
    assert a.witness == b.witness
    assert a.witness_size == b.witness_size
    assert a.candidates_checked == b.candidates_checked


class TestMutationTracking:
    @pytest.fixture(params=[DictBackend, ArraySlotBackend])
    def backend(self, request):
        return request.param()

    def test_drain_requires_tracking(self, backend):
        with pytest.raises(ConfigurationError):
            backend.drain_touched()

    def test_epoch_advances_on_mutation(self, backend):
        before = backend.mutation_epoch()
        backend.add_node(0, birth_time=0.0, num_slots=2)
        assert backend.mutation_epoch() > before

    def test_births_touch_both_endpoints(self, backend):
        backend.track_mutations()
        backend.add_node(0, birth_time=0.0, num_slots=2)
        backend.add_node(1, birth_time=0.0, num_slots=2)
        backend.drain_touched()
        backend.assign_slot(0, 0, 1)
        assert backend.drain_touched() == {0, 1}
        assert backend.drain_touched() == set()  # drained

    def test_death_touches_neighbours_and_orphans(self, backend):
        backend.track_mutations()
        for u in range(3):
            backend.add_node(u, birth_time=0.0, num_slots=2)
        backend.assign_slot(0, 0, 1)  # 0 -> 1
        backend.assign_slot(2, 0, 0)  # 2 -> 0
        backend.drain_touched()
        backend.remove_node(0, death_time=1.0)
        # the dead node, its out-target, and the orphaned source
        assert backend.drain_touched() == {0, 1, 2}

    def test_tracking_is_idempotent(self, backend):
        backend.track_mutations()
        backend.add_node(7, birth_time=0.0, num_slots=1)
        backend.track_mutations()  # must not clear the pending set
        assert 7 in backend.drain_touched()


class TestProbeCacheProperty:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        windows=st.integers(1, 4),
        rounds_between=st.integers(1, 6),
    )
    def test_incremental_bit_identical_after_random_churn(
        self, seed, windows, rounds_between
    ):
        probes = []
        for backend in ("dict", "array"):
            net = StreamingNetwork(
                80, RAESPolicy(d=3, c=2), seed=seed, backend=backend
            )
            net.run_rounds(80)
            cache = ProbeCache(
                net.state, num_random_sets=8, greedy_restarts=3, max_size=16
            )
            for _ in range(windows):
                view = net.state.csr_view(net.now)
                incremental = cache.probe(view, seed=seed)
                cold = adversarial_expansion_upper_bound(
                    net.state.csr_view(net.now),
                    seed=seed,
                    num_random_sets=8,
                    greedy_restarts=3,
                    max_size=16,
                )
                assert_probe_equal(incremental, cold)
                net.run_rounds(rounds_between)
            probes.append(incremental)
        assert_probe_equal(*probes)  # and identical across backends


class TestProbeCacheMechanics:
    def test_stats_account_for_every_alive_root(self):
        net = SDGR(n=120, d=4, seed=9, backend="array")
        net.run_rounds(120)
        cache = ProbeCache(
            net.state, num_random_sets=8, greedy_restarts=2, max_size=20
        )
        cache.probe(net.state.csr_view(net.now), seed=0)
        assert cache.last_stats["recomputed"] == 120
        net.run_rounds(2)
        cache.probe(net.state.csr_view(net.now), seed=0)
        stats = cache.last_stats
        assert stats["replayed"] + stats["recomputed"] == stats["alive"]
        assert stats["dirty"] > 0

    def test_flush_forces_cold_recompute(self):
        net = SDGR(n=80, d=3, seed=4, backend="array")
        net.run_rounds(80)
        cache = ProbeCache(
            net.state, num_random_sets=4, greedy_restarts=2, max_size=12
        )
        cache.probe(net.state.csr_view(net.now), seed=1)
        cache.flush()
        probe = cache.probe(net.state.csr_view(net.now), seed=1)
        assert cache.last_stats["recomputed"] == 80
        cold = adversarial_expansion_upper_bound(
            net.state.csr_view(net.now),
            seed=1,
            num_random_sets=4,
            greedy_restarts=2,
            max_size=12,
        )
        assert_probe_equal(probe, cold)

    def test_cache_arena_entries_grouped_by_root(self):
        net = SDGR(n=60, d=3, seed=2, backend="array")
        net.run_rounds(60)
        cache = ProbeCache(
            net.state, num_random_sets=4, greedy_restarts=2, max_size=10
        )
        cache.probe(net.state.csr_view(net.now), seed=0)
        assert np.all(np.diff(cache._roots) > 0)  # unique, ascending
        assert cache._eoff[0] == 0
        assert cache._eoff[-1] == cache._e_root.size
        for i in range(cache._roots.size):
            block = cache._e_root[cache._eoff[i] : cache._eoff[i + 1]]
            assert np.all(block == cache._roots[i])
