"""Unit tests for benchmarks/check_bench_regression.py's compare logic.

The checker lives outside the package (it is a CI script), so it is
loaded by file path via importlib.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_spec = importlib.util.spec_from_file_location(
    "check_bench_regression",
    REPO_ROOT / "benchmarks" / "check_bench_regression.py",
)
checker = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(checker)


def payload(rows):
    return {"results": rows}


class TestCompare:
    def test_healthy_run_passes(self):
        base = payload([{"n": 1000, "probe_speedup": 8.0}])
        current = payload([{"n": 1000, "probe_speedup": 7.5}])
        assert (
            checker.compare(
                base, current, tolerance=0.4, keys=("probe_speedup",)
            )
            == []
        )

    def test_regression_flagged(self):
        base = payload([{"n": 1000, "probe_speedup": 8.0}])
        current = payload([{"n": 1000, "probe_speedup": 1.0}])
        problems = checker.compare(
            base, current, tolerance=0.4, keys=("probe_speedup",)
        )
        assert len(problems) == 1
        assert "n=1000" in problems[0]

    def test_no_overlapping_sizes(self):
        base = payload([{"n": 1000, "probe_speedup": 8.0}])
        current = payload([{"n": 2000, "probe_speedup": 8.0}])
        assert checker.compare(
            base, current, tolerance=0.4, keys=("probe_speedup",)
        ) == ["no overlapping sizes between baseline and current run"]

    def test_key_missing_from_baseline_is_clear_failure(self):
        """A metric the current bench emits but the committed baseline
        lacks must produce a pointed message, not a KeyError."""
        base = payload([{"n": 1000, "probe_speedup": 8.0}])
        current = payload(
            [{"n": 1000, "probe_speedup": 8.0, "incremental_speedup": 5.0}]
        )
        problems = checker.compare(
            base,
            current,
            tolerance=0.4,
            keys=("probe_speedup", "incremental_speedup"),
        )
        assert len(problems) == 1
        assert "incremental_speedup" in problems[0]
        assert "regenerate" in problems[0]

    def test_key_missing_from_current_is_clear_failure(self):
        base = payload(
            [{"n": 1000, "probe_speedup": 8.0, "incremental_speedup": 5.0}]
        )
        current = payload([{"n": 1000, "probe_speedup": 8.0}])
        problems = checker.compare(
            base,
            current,
            tolerance=0.4,
            keys=("probe_speedup", "incremental_speedup"),
        )
        assert len(problems) == 1
        assert "no longer emits" in problems[0]

    def test_key_absent_on_both_sides_is_skipped(self):
        """Sizes without a metric on either side (e.g. the incremental
        probe is only benchmarked at dense-cadence sizes) pass clean."""
        base = payload([{"n": 1000, "probe_speedup": 8.0}])
        current = payload([{"n": 1000, "probe_speedup": 8.0}])
        assert (
            checker.compare(
                base,
                current,
                tolerance=0.4,
                keys=("probe_speedup", "incremental_speedup"),
            )
            == []
        )

    def test_parallel_speedup_skipped_when_not_meaningful(self):
        base = payload(
            [{"n": 500, "parallel_speedup": 3.0, "parallel_meaningful": False}]
        )
        current = payload(
            [{"n": 500, "parallel_speedup": 0.5, "parallel_meaningful": True}]
        )
        assert (
            checker.compare(
                base, current, tolerance=0.4, keys=("parallel_speedup",)
            )
            == []
        )
