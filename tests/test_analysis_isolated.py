"""Tests for the isolated-node census (Lemmas 3.5 / 4.10 machinery)."""

from __future__ import annotations

import pytest

from repro.analysis.isolated import (
    count_isolated,
    isolated_fraction,
    lifetime_isolated_census,
)
from repro.models import SDG, SDGR
from repro.theory.isolated import (
    isolated_fraction_lower_bound_streaming,
    isolated_fraction_prediction_streaming,
)
from tests.conftest import snapshot_from_edges


class TestCounts:
    def test_count(self):
        snap = snapshot_from_edges(5, [(0, 1)])
        assert count_isolated(snap) == 3

    def test_fraction(self):
        snap = snapshot_from_edges(4, [(0, 1)])
        assert isolated_fraction(snap) == pytest.approx(0.5)

    def test_no_isolated(self):
        snap = snapshot_from_edges(3, [(0, 1), (1, 2)])
        assert count_isolated(snap) == 0


class TestSDGIsolation:
    def test_fraction_above_paper_bound(self):
        """Lemma 3.5: at least e^{-2d}/6 of nodes are isolated."""
        d = 2
        net = SDG(n=600, d=d, seed=0)
        net.run_rounds(1200)
        frac = isolated_fraction(net.snapshot())
        assert frac >= isolated_fraction_lower_bound_streaming(d)

    def test_fraction_matches_prediction(self):
        """First-order prediction ∫ a^d e^{-da} da tracks simulation."""
        d = 3
        net = SDG(n=2000, d=d, seed=1)
        net.run_rounds(4000)
        frac = isolated_fraction(net.snapshot())
        predicted = isolated_fraction_prediction_streaming(d)
        assert frac == pytest.approx(predicted, rel=0.5)

    def test_sdgr_has_no_isolated(self):
        net = SDGR(n=400, d=3, seed=2)
        net.run_rounds(800)
        assert count_isolated(net.snapshot()) == 0


class TestLifetimeCensus:
    def test_census_accounts_for_every_tracked_node(self):
        net = SDG(n=200, d=2, seed=3)
        net.run_rounds(400)
        census = lifetime_isolated_census(net, max_rounds=200)
        assert (
            census.reconnected + census.died_isolated + census.still_alive
            == census.initial_isolated
        )

    def test_most_isolated_nodes_stay_isolated(self):
        """Lemma 3.5's second claim: isolated nodes remain isolated for
        their whole life (they have no out-requests left and in-requests
        arrive at rate d/n)."""
        net = SDG(n=400, d=2, seed=4)
        net.run_rounds(800)
        census = lifetime_isolated_census(net, max_rounds=400)
        if census.initial_isolated >= 5:
            assert census.forever_isolated_fraction_of_tracked > 0.5

    def test_initial_fraction(self):
        net = SDG(n=300, d=2, seed=5)
        net.run_rounds(600)
        census = lifetime_isolated_census(net, max_rounds=0)
        assert census.initial_fraction == pytest.approx(
            census.initial_isolated / 300
        )

    def test_streaming_all_dead_within_n_rounds(self):
        net = SDG(n=150, d=2, seed=6)
        net.run_rounds(300)
        census = lifetime_isolated_census(net, max_rounds=150)
        assert census.still_alive == 0
