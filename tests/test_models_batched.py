"""Batched churn (grouped apply_births/apply_deaths) parity tests.

The batched paths draw the same churn *law* as the per-event paths with
different RNG stream consumption, so the tests are statistical: the size
process must match the per-event distribution, topology invariants must
hold, and the batched records must flatten correctly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.churn.lifetime import WeibullLifetime
from repro.models import GDGR, PDG, PDGR
from repro.models.base import RoundReport
from repro.models.general import GDG
from repro.sim.events import EventRecord, NodeBorn, NodesBorn, NodesDied


class TestRoundReportFlattening:
    def test_births_flatten_batched_records(self):
        report = RoundReport(
            start_time=0.0,
            end_time=1.0,
            events=[
                EventRecord(time=0.2, kind=NodeBorn(node_id=7)),
                EventRecord(time=0.9, kind=NodesBorn(node_ids=(8, 9, 10))),
            ],
        )
        assert report.births == [7, 8, 9, 10]
        assert report.deaths == []

    def test_deaths_flatten_batched_records(self):
        report = RoundReport(
            start_time=0.0,
            end_time=1.0,
            events=[EventRecord(time=0.5, kind=NodesDied(node_ids=(1, 2)))],
        )
        assert report.deaths == [1, 2]
        assert report.births == []

    def test_batched_kinds_have_no_single_node_id(self):
        record = EventRecord(time=0.0, kind=NodesBorn(node_ids=(1,)))
        assert record.is_birth and not record.is_death
        assert record.node_ids == (1,)
        with pytest.raises(ValueError):
            record.node_id


class TestPoissonBatched:
    def test_batched_reaches_target_time(self, backend_name):
        net = PDG(n=50, d=2, seed=0, warm_time=0, backend=backend_name)
        report = net.advance_to_time_batched(120.0)
        assert net.now == pytest.approx(120.0)
        assert report.end_time == pytest.approx(120.0)
        net.state.check_invariants()

    def test_batched_emits_grouped_records(self):
        net = PDG(n=50, d=2, seed=1, warm_time=0)
        report = net.advance_to_time_batched(100.0)
        kinds = [type(e.kind).__name__ for e in report.events]
        assert "NodesBorn" in kinds
        assert len(report.births) > 20
        assert net.num_alive() == len(report.births) - len(report.deaths)

    def test_windowed_batches_cover_span(self):
        net = PDGR(n=60, d=3, seed=2, warm_time=0)
        report = net.advance_to_time_batched(90.0, window=10.0)
        assert net.now == pytest.approx(90.0)
        # one NodesBorn record per window that had births
        born_records = [e for e in report.events if e.is_birth]
        assert len(born_records) >= 5
        net.state.check_invariants()

    def test_event_count_matches_flattened_records(self):
        net = PDGR(n=40, d=2, seed=3, warm_time=0)
        report = net.advance_to_time_batched(80.0)
        assert net.event_count == len(report.births) + len(report.deaths)

    def test_size_process_distribution_matches_per_event(self):
        """Same stationary size law on both paths (they simulate the same
        jump chain; only the topology application is grouped)."""
        batched, per_event = [], []
        for seed in range(24):
            fast = PDGR(n=60, d=2, seed=seed, fast_warm=True)
            slow = PDGR(n=60, d=2, seed=seed)
            batched.append(fast.num_alive())
            per_event.append(slow.num_alive())
        # M/M/∞ at n=60: mean 60, sd ≈ √60 ≈ 7.7.  24-trial means have
        # sd ≈ 1.6; a 6-sd corridor keeps the flake rate negligible.
        assert abs(np.mean(batched) - np.mean(per_event)) < 10.0

    def test_degree_distribution_matches_per_event(self):
        fast_means, slow_means = [], []
        for seed in range(8):
            fast = PDGR(n=80, d=4, seed=seed, fast_warm=True, backend="array")
            slow = PDGR(n=80, d=4, seed=seed, backend="array")
            fast_means.append(float(np.mean(fast.state.degree_vector())))
            slow_means.append(float(np.mean(slow.state.degree_vector())))
        assert abs(np.mean(fast_means) - np.mean(slow_means)) < 1.0

    def test_fast_warm_invariants_both_backends(self, backend_name):
        net = PDGR(n=100, d=3, seed=5, fast_warm=True, backend=backend_name)
        net.state.check_invariants()
        assert 50 < net.num_alive() < 150
        # the warmed network keeps evolving normally on the per-event path
        net.advance_round()
        net.state.check_invariants()


class TestGeneralBatched:
    def test_batched_reaches_target_and_schedules_lifetimes(self):
        law = WeibullLifetime(50.0, shape=0.5)
        net = GDGR(law, d=3, seed=0, warm_time=0)
        report = net.advance_to_time_batched(150.0, window=25.0)
        assert net.now == pytest.approx(150.0)
        assert len(report.births) > 50
        assert len(report.deaths) > 0  # Weibull k=0.5 has many infant deaths
        net.state.check_invariants()
        # every survivor still has a scheduled death
        assert len(net.deaths) == net.num_alive()

    def test_size_process_distribution_matches_per_event(self):
        batched, per_event = [], []
        for seed in range(12):
            fast = GDG(WeibullLifetime(40.0, shape=0.5), d=2, seed=seed,
                       warm_time=120.0, fast_warm=True)
            slow = GDG(WeibullLifetime(40.0, shape=0.5), d=2, seed=seed,
                       warm_time=120.0)
            batched.append(fast.num_alive())
            per_event.append(slow.num_alive())
        assert abs(np.mean(batched) - np.mean(per_event)) < 12.0

    def test_fast_warm_invariants(self, backend_name):
        net = GDGR(
            WeibullLifetime(60.0, shape=0.5), d=3, seed=4,
            fast_warm=True, backend=backend_name,
        )
        net.state.check_invariants()
        assert net.num_alive() > 10
