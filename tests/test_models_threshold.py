"""Tests for the threshold-driven streaming driver (Angileri et al. 2025)."""

from __future__ import annotations

import pytest

from repro.core.edge_policy import NoRegenerationPolicy, RegenerationPolicy
from repro.errors import ConfigurationError, SimulationError
from repro.models import TSDG
from repro.models.threshold import ThresholdStreamingNetwork
from repro.scenario import ScenarioSpec, load_scenario_document, simulate


class TestConstruction:
    def test_rejects_tiny_n(self):
        with pytest.raises(ConfigurationError):
            ThresholdStreamingNetwork(1, NoRegenerationPolicy(2), threshold=1)

    def test_rejects_non_positive_threshold(self):
        with pytest.raises(ConfigurationError):
            ThresholdStreamingNetwork(10, NoRegenerationPolicy(2), threshold=0)

    def test_warm_fills_network(self):
        net = TSDG(n=50, d=3, seed=0)
        assert net.num_alive() == 50
        assert net.round_number == 50

    def test_invariant_not_meaningful_before_first_sweep(self):
        net = TSDG(n=20, d=3, seed=0)
        with pytest.raises(SimulationError):
            net.check_threshold_invariant()


class TestDynamics:
    @pytest.mark.parametrize("backend", ["dict", "array"])
    def test_invariant_holds_after_every_round(self, backend):
        net = ThresholdStreamingNetwork(
            60, NoRegenerationPolicy(4), threshold=4, seed=3, backend=backend
        )
        for _ in range(80):
            net.advance_round()
            net.check_threshold_invariant()

    @pytest.mark.parametrize("backend", ["dict", "array"])
    def test_invariant_holds_under_regeneration(self, backend):
        net = ThresholdStreamingNetwork(
            60, RegenerationPolicy(4), threshold=5, seed=3, backend=backend
        )
        for _ in range(80):
            net.advance_round()
            net.check_threshold_invariant()

    def test_threshold_departures_happen(self):
        # At threshold = d without regeneration, nodes whose request
        # placements collapse (duplicates, dead targets) must leave.
        net = TSDG(n=100, d=4, threshold=4, seed=0)
        deaths = 0
        for _ in range(300):
            deaths += len(net.advance_round().deaths)
        assert deaths > 0
        assert net.num_alive() < 100 + 300  # strictly fewer than births

    def test_supercritical_regime_grows(self):
        # threshold << d with regeneration: degrees never drop below the
        # threshold, so nobody leaves and the network grows 1/round.
        net = ThresholdStreamingNetwork(
            50, RegenerationPolicy(4), threshold=2, seed=1
        )
        for _ in range(60):
            net.advance_round()
        assert net.num_alive() == 50 + 60

    def test_core_regime_self_regulates(self):
        # threshold = d + 1 with regeneration prunes to the (d+1)-core,
        # whose size then stays put while newborns revolve through.
        net = ThresholdStreamingNetwork(
            200, RegenerationPolicy(6), threshold=7, seed=0
        )
        for _ in range(100):
            net.advance_round()
        size_after_prune = net.num_alive()
        for _ in range(200):
            net.advance_round()
        assert abs(net.num_alive() - size_after_prune) <= 3
        assert 0 < size_after_prune < 200

    def test_grace_round_protects_the_newborn(self):
        # Every node needs an in-link (threshold d+1): a newborn's own d
        # requests cannot meet the threshold, so without the one-round
        # grace it could never even audition for the core.
        net = ThresholdStreamingNetwork(
            200, RegenerationPolicy(6), threshold=7, seed=0
        )
        report = net.advance_round()
        newborn = report.births[0]
        assert net.state.is_alive(newborn)
        net.check_threshold_invariant()  # newborn exempt, rest >= 7

    def test_seeded_trajectories_bit_identical_across_backends(self):
        nets = [
            ThresholdStreamingNetwork(
                80, NoRegenerationPolicy(3), threshold=3, seed=11,
                backend=backend,
            )
            for backend in ("dict", "array")
        ]
        for _ in range(120):
            for net in nets:
                net.advance_round()
        snaps = [net.snapshot() for net in nets]
        assert snaps[0].nodes == snaps[1].nodes
        assert snaps[0].adjacency == snaps[1].adjacency
        assert snaps[0].birth_times == snaps[1].birth_times

    def test_fast_warm_same_size_different_trajectory(self):
        slow = TSDG(n=60, d=3, seed=2, fast_warm=False)
        fast = TSDG(n=60, d=3, seed=2, fast_warm=True)
        assert slow.num_alive() == fast.num_alive() == 60


class TestScenarioIntegration:
    def test_registry_builds_and_runs(self):
        spec = ScenarioSpec(
            churn="threshold",
            policy="regen",
            n=60,
            d=4,
            churn_params={"threshold": 3},
            horizon=40,
        )
        sim = simulate(spec, seed=0)
        assert sim.network.num_alive() > 0
        assert isinstance(sim.network, ThresholdStreamingNetwork)
        assert sim.network.threshold == 3

    def test_default_threshold_is_half_d(self):
        spec = ScenarioSpec(churn="threshold", policy="regen", n=40, d=6)
        sim = simulate(spec, seed=0)
        assert sim.network.threshold == 3

    def test_json_round_trip(self):
        spec = ScenarioSpec(
            churn="threshold",
            policy="none",
            n=50,
            d=4,
            churn_params={"threshold": 4},
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                churn="threshold", churn_params={"lifetime": "exponential"}
            )

    def test_bad_threshold_rejected_at_spec_time(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(churn="threshold", churn_params={"threshold": 0})

    def test_example_document_loads(self):
        document = load_scenario_document("examples/threshold_streaming.json")
        assert document.spec.churn == "threshold"
        assert document.should_flood

    def test_flooding_completes_on_threshold_graph(self):
        spec = ScenarioSpec(
            churn="threshold",
            policy="none",
            n=80,
            d=6,
            churn_params={"threshold": 6},
            horizon=80,
            protocol="discrete",
            protocol_params={"max_rounds": 60},
        )
        result = simulate(spec, seed=0).flood()
        assert result.completed
