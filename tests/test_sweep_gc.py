"""Worker claim batching and store garbage collection.

Claim batching (``run_worker(..., claim_batch=K)``) amortizes one store
scan over up to K claimed cells; the claim/heartbeat/TTL protocol is
unchanged, so every fleet acceptance property (byte-identical artifacts,
takeover of expired claims) holds — these tests cover the batching knob
itself and the ``gc_store`` census that prunes cells no submitted
``sweeps/*.spec.json`` can reach.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import (
    DEFAULT_CLAIM_BATCH,
    gc_store,
    run_fleet,
    run_worker,
    submit_sweep,
)
from repro.cli.sweep import main as sweep_main
from repro.errors import SweepError
from repro.scenario import ScenarioSpec
from repro.sweep import ResultStore, SweepSpec, measurement
from repro.util.rng import SeedLike, make_rng

BASE = ScenarioSpec(churn="streaming", policy="none", n=30, d=2, horizon=5)


@measurement("pytest-gc-echo")
def gc_echo(spec: ScenarioSpec, seed: SeedLike) -> dict:
    return {"draw": float(make_rng(seed).random()), "d": spec.d}


def make_sweep(stream: str, **changes) -> SweepSpec:
    defaults = dict(
        base=BASE,
        axes=[("d", (2, 3))],
        replicas=2,
        seed=0,
        stream=stream,
        measure="pytest-gc-echo",
    )
    defaults.update(changes)
    return SweepSpec(**defaults)


class TestClaimBatching:
    def test_default_batch_size(self):
        assert DEFAULT_CLAIM_BATCH == 16

    @pytest.mark.parametrize("claim_batch", [1, 2, 16])
    def test_worker_drains_grid_at_any_batch_size(
        self, tmp_path, claim_batch
    ):
        sweep = make_sweep(f"gc-batch-{claim_batch}")
        submission = submit_sweep(sweep, tmp_path)
        report = run_worker(
            tmp_path, submission.key, claim_batch=claim_batch
        )
        assert len(report.executed) == 4
        assert not report.failures

    def test_batched_fleet_reduces_like_sequential(self, tmp_path):
        sweep = make_sweep("gc-fleet")
        sequential = run_fleet(
            sweep, tmp_path / "s1", workers=1, claim_batch=1
        )
        batched = run_fleet(sweep, tmp_path / "s2", workers=2, claim_batch=2)
        assert sequential.core_bytes() == batched.core_bytes()
        assert sequential.digest == batched.digest

    def test_max_cells_caps_the_batch(self, tmp_path):
        sweep = make_sweep("gc-maxcells")
        submission = submit_sweep(sweep, tmp_path)
        first = run_worker(
            tmp_path, submission.key, max_cells=3, claim_batch=16
        )
        assert len(first.executed) == 3
        rest = run_worker(tmp_path, submission.key, claim_batch=16)
        assert len(rest.executed) == 1

    def test_invalid_batch_size_rejected(self, tmp_path):
        sweep = make_sweep("gc-invalid")
        submission = submit_sweep(sweep, tmp_path)
        with pytest.raises(SweepError):
            run_worker(tmp_path, submission.key, claim_batch=0)


class TestGcStore:
    def _populated_store(self, tmp_path):
        store = tmp_path / "store"
        keep = make_sweep("gc-keep")
        drop = make_sweep("gc-drop", axes=[("d", (2, 3, 4))], replicas=1)
        run_fleet(keep, store, workers=1)
        dropped = submit_sweep(drop, store)
        run_worker(store, dropped.key)
        return store, dropped

    def test_clean_store_has_nothing_unreachable(self, tmp_path):
        store, _ = self._populated_store(tmp_path)
        summary = gc_store(store)
        assert summary["unreachable_cells"] == 0
        assert summary["stored_cells"] == 7
        assert summary["sweeps"] == 2
        assert summary["deleted"] is False

    def test_dry_run_reports_without_deleting(self, tmp_path):
        store, dropped = self._populated_store(tmp_path)
        spec_doc = next(
            p
            for p in (store / "sweeps").glob("*.spec.json")
            if dropped.key in p.name
        )
        spec_doc.unlink()
        summary = gc_store(store)
        assert summary["unreachable_cells"] == 3
        assert summary["reclaimed_bytes"] > 0
        assert summary["deleted"] is False
        assert len(list(ResultStore(store).keys())) == 7

    def test_yes_deletes_only_unreachable(self, tmp_path):
        store, dropped = self._populated_store(tmp_path)
        next(
            p
            for p in (store / "sweeps").glob("*.spec.json")
            if dropped.key in p.name
        ).unlink()
        summary = gc_store(store, yes=True)
        assert summary["deleted"] is True
        assert summary["unreachable_cells"] == 3
        remaining = list(ResultStore(store).keys())
        assert len(remaining) == 4
        # idempotent: a second pass finds nothing
        again = gc_store(store, yes=True)
        assert again["unreachable_cells"] == 0
        assert len(list(ResultStore(store).keys())) == 4

    def test_deleted_cells_are_re_executable(self, tmp_path):
        store, dropped = self._populated_store(tmp_path)
        next(
            p
            for p in (store / "sweeps").glob("*.spec.json")
            if dropped.key in p.name
        ).unlink()
        gc_store(store, yes=True)
        # resubmitting brings the cells back through normal execution
        resubmitted = submit_sweep(dropped.sweep, store)
        report = run_worker(store, resubmitted.key)
        assert len(report.executed) == 3

    def test_empty_store(self, tmp_path):
        summary = gc_store(tmp_path / "empty")
        assert summary["stored_cells"] == 0
        assert summary["unreachable_cells"] == 0

    def test_corrupt_spec_doc_aborts_without_deleting(self, tmp_path):
        store, dropped = self._populated_store(tmp_path)
        doc = next(iter((store / "sweeps").glob("*.spec.json")))
        doc.write_text("{ not json", encoding="utf-8")
        with pytest.raises(SweepError):
            gc_store(store, yes=True)
        assert len(list(ResultStore(store).keys())) == 7


class TestCli:
    def test_gc_dry_run_prints_json(self, tmp_path, capsys):
        store = tmp_path / "store"
        run_fleet(make_sweep("gc-cli"), store, workers=1)
        rc = sweep_main(["gc", "--store", str(store)])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["deleted"] is False
        assert summary["stored_cells"] == 4

    def test_claim_batch_flag_parses(self, tmp_path, capsys):
        store = tmp_path / "store"
        sweep = make_sweep("gc-cli-batch")
        spec_file = tmp_path / "sweep.json"
        spec_file.write_text(sweep.to_json(), encoding="utf-8")
        rc = sweep_main(
            [
                "run",
                str(spec_file),
                "--store",
                str(store),
                "--claim-batch",
                "2",
            ]
        )
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out["cells"] == 4
