"""Tests for DynamicGraphState, including a hypothesis invariant property."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.edge_policy import NoRegenerationPolicy, RegenerationPolicy
from repro.core.graph import DynamicGraphState
from repro.errors import SimulationError
from repro.util.rng import make_rng


def build_triangle() -> DynamicGraphState:
    """Three nodes; 0→1, 1→2, 2→0 single-slot requests."""
    state = DynamicGraphState()
    for _ in range(3):
        state.add_node(state.allocate_id(), birth_time=0.0, num_slots=1)
    state.assign_slot(0, 0, 1)
    state.assign_slot(1, 0, 2)
    state.assign_slot(2, 0, 0)
    return state


class TestBasicTopology:
    def test_add_node(self):
        state = DynamicGraphState()
        state.add_node(state.allocate_id(), 0.0, num_slots=3)
        assert state.num_alive() == 1
        assert state.record(0).out_slots == [None, None, None]

    def test_duplicate_node_rejected(self):
        state = DynamicGraphState()
        state.add_node(0, 0.0, 1)
        with pytest.raises(SimulationError):
            state.add_node(0, 1.0, 1)

    def test_assign_creates_edge_both_ways(self):
        state = build_triangle()
        assert 1 in set(state.neighbors(0))
        assert 0 in set(state.neighbors(1))

    def test_degrees(self):
        state = build_triangle()
        assert all(state.degree(u) == 2 for u in range(3))

    def test_num_edges(self):
        assert build_triangle().num_edges() == 3

    def test_self_loop_rejected(self):
        state = DynamicGraphState()
        state.add_node(0, 0.0, 1)
        with pytest.raises(SimulationError):
            state.assign_slot(0, 0, 0)

    def test_assign_to_dead_rejected(self):
        state = build_triangle()
        state.remove_node(2, death_time=1.0)
        state.add_node(state.allocate_id(), 1.0, 1)
        with pytest.raises(SimulationError):
            state.assign_slot(3, 0, 2)

    def test_double_assign_rejected(self):
        state = build_triangle()
        with pytest.raises(SimulationError):
            state.assign_slot(0, 0, 2)

    def test_clear_slot(self):
        state = build_triangle()
        old = state.clear_slot(0, 0)
        assert old == 1
        assert 1 not in set(state.neighbors(0))
        assert state.record(0).out_slots == [None]

    def test_clear_empty_slot_returns_none(self):
        state = DynamicGraphState()
        state.add_node(0, 0.0, 1)
        assert state.clear_slot(0, 0) is None

    def test_parallel_slots_single_edge(self):
        state = DynamicGraphState()
        state.add_node(0, 0.0, 2)
        state.add_node(1, 0.0, 0)
        state.assign_slot(0, 0, 1)
        state.assign_slot(0, 1, 1)
        assert state.degree(0) == 1
        assert state.num_edges() == 1
        state.clear_slot(0, 0)
        # The second parallel request still supports the edge.
        assert state.degree(0) == 1

    def test_check_invariants_on_valid_state(self):
        build_triangle().check_invariants()


class TestRemoveNode:
    def test_returns_orphans(self):
        state = build_triangle()
        orphans = state.remove_node(1, death_time=2.0)
        assert orphans == [(0, 0)]

    def test_dead_node_not_alive(self):
        state = build_triangle()
        state.remove_node(1, death_time=2.0)
        assert not state.is_alive(1)
        assert state.num_alive() == 2

    def test_death_time_recorded(self):
        state = build_triangle()
        state.remove_node(1, death_time=2.5)
        assert state.record(1).death_time == 2.5

    def test_orphan_slots_cleared(self):
        state = build_triangle()
        state.remove_node(1, death_time=2.0)
        assert state.record(0).out_slots == [None]

    def test_dead_nodes_own_slots_cleared(self):
        state = build_triangle()
        state.remove_node(1, death_time=2.0)
        assert state.record(1).out_slots == [None]
        # node 2 no longer has 1 as a neighbour
        assert 1 not in set(state.neighbors(2))

    def test_remove_dead_rejected(self):
        state = build_triangle()
        state.remove_node(1, death_time=2.0)
        with pytest.raises(SimulationError):
            state.remove_node(1, death_time=3.0)

    def test_invariants_after_removal(self):
        state = build_triangle()
        state.remove_node(0, death_time=1.0)
        state.check_invariants()


class TestSampling:
    def test_sample_targets_excludes_self(self):
        state = build_triangle()
        rng = make_rng(0)
        for _ in range(50):
            targets = state.sample_targets(rng, 4, exclude=0)
            assert 0 not in targets
            assert len(targets) == 4

    def test_sample_targets_empty_network(self):
        state = DynamicGraphState()
        state.add_node(0, 0.0, 1)
        assert state.sample_targets(make_rng(0), 3, exclude=0) == []


class TestSnapshot:
    def test_snapshot_is_frozen_copy(self):
        state = build_triangle()
        snap = state.snapshot(time=5.0)
        state.remove_node(0, death_time=6.0)
        assert 0 in snap.nodes
        assert snap.degree(0) == 2

    def test_snapshot_metadata(self):
        state = build_triangle()
        snap = state.snapshot(time=5.0)
        assert snap.time == 5.0
        assert snap.birth_times[1] == 0.0
        assert snap.out_slots[0] == (1,)


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_ops=st.integers(1, 120),
    regen=st.booleans(),
)
def test_property_random_churn_preserves_invariants(seed, num_ops, regen):
    """Random birth/death sequences never violate the state invariants."""
    rng = make_rng(seed)
    policy = (RegenerationPolicy if regen else NoRegenerationPolicy)(d=3)
    state = DynamicGraphState()
    # Track, per node, the minimum network size seen since its birth: a
    # regeneration slot can only stay empty if the network dropped to a
    # single node at some point (no candidate to re-sample).
    min_alive_since_birth: dict[int, int] = {}
    for _ in range(num_ops):
        if state.num_alive() == 0 or rng.random() < 0.55:
            new_id = state.allocate_id()
            policy.handle_birth(state, new_id, 0.0, rng)
            min_alive_since_birth[new_id] = state.num_alive()
        else:
            victim = state.alive.sample(rng)
            policy.handle_death(state, victim, 0.0, rng)
            min_alive_since_birth.pop(victim, None)
        size = state.num_alive()
        for u in min_alive_since_birth:
            min_alive_since_birth[u] = min(min_alive_since_birth[u], size)
    state.check_invariants()
    # With regeneration, every node that always had a candidate available
    # keeps its full out-degree of 3.
    if regen:
        for u in state.alive_ids():
            if min_alive_since_birth[u] >= 2:
                assert state.record(u).out_degree() == 3
