"""Tests for the theory modules (paper constants and predictions)."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.theory import (
    EXPANSION_THRESHOLD,
    infinite_product_success_probability,
    informed_fraction_bound_poisson,
    informed_fraction_bound_streaming,
    isolated_forever_fraction_prediction_poisson,
    isolated_forever_fraction_prediction_streaming,
    isolated_fraction_lower_bound_poisson,
    isolated_fraction_lower_bound_streaming,
    isolated_fraction_prediction_poisson,
    isolated_fraction_prediction_streaming,
    jump_probability_bounds,
    large_set_window_poisson,
    large_set_window_streaming,
    lifetime_horizon_rounds,
    min_degree_for_expansion,
    size_concentration_bounds,
    stall_probability_bound,
    static_d_out_expander_min_d,
    success_probability_poisson,
    success_probability_streaming,
)
from repro.theory.churn import expected_size_at
from repro.theory.flooding import (
    complete_flooding_rounds,
    partial_flooding_rounds,
    stall_probability_prediction,
)
from repro.theory.onion import (
    claim_311_lower_bound,
    onion_growth_factor_poisson,
    onion_growth_factor_streaming,
    phases_to_reach,
)
from repro.theory.static import nonexpansion_union_bound


class TestIsolatedTheory:
    def test_lemma_35_constant(self):
        assert isolated_fraction_lower_bound_streaming(2) == pytest.approx(
            math.exp(-4) / 6
        )

    def test_lemma_410_constant(self):
        assert isolated_fraction_lower_bound_poisson(2) == pytest.approx(
            math.exp(-4) / 18
        )

    def test_prediction_above_bound(self):
        """The sharp prediction dominates the paper's loose bound."""
        for d in range(1, 8):
            assert (
                isolated_fraction_prediction_streaming(d)
                > isolated_fraction_lower_bound_streaming(d)
            )
            assert (
                isolated_fraction_prediction_poisson(d)
                > isolated_fraction_lower_bound_poisson(d)
            )

    def test_prediction_decreases_in_d(self):
        values = [isolated_fraction_prediction_streaming(d) for d in range(1, 10)]
        assert values == sorted(values, reverse=True)

    def test_forever_isolated_closed_form(self):
        """∫ a^d e^{-da} e^{-d(1-a)} da = e^{-d}/(d+1)."""
        for d in [1, 3, 5]:
            assert isolated_forever_fraction_prediction_streaming(
                d
            ) == pytest.approx(math.exp(-d) / (d + 1))

    def test_forever_smaller_than_isolated(self):
        for d in [1, 2, 4]:
            assert (
                isolated_forever_fraction_prediction_poisson(d)
                < isolated_fraction_prediction_poisson(d)
            )


class TestExpansionTheory:
    def test_threshold(self):
        assert EXPANSION_THRESHOLD == 0.1

    def test_streaming_window(self):
        low, high = large_set_window_streaming(1000, 20)
        assert low == math.ceil(1000 * math.exp(-2))
        assert high == 500

    def test_poisson_window_wider(self):
        s_low, _ = large_set_window_streaming(1000, 20)
        p_low, _ = large_set_window_poisson(1000, 20)
        assert p_low > s_low  # e^{-d/20} > e^{-d/10}

    def test_min_degrees(self):
        assert min_degree_for_expansion("sdgr") == 14
        assert min_degree_for_expansion("pdgr") == 35
        assert min_degree_for_expansion("static") == 3

    def test_unknown_model(self):
        with pytest.raises(ConfigurationError):
            min_degree_for_expansion("nope")


class TestFloodingTheory:
    def test_informed_fraction_bounds(self):
        assert informed_fraction_bound_streaming(10) == pytest.approx(1 - math.exp(-1))
        assert informed_fraction_bound_poisson(20) == pytest.approx(1 - math.exp(-1))

    def test_success_probabilities_increase_with_d(self):
        assert success_probability_streaming(400) > success_probability_streaming(200)
        assert success_probability_poisson(2000) > success_probability_poisson(1152)

    def test_stall_bound_tiny_but_positive(self):
        for d in [1, 2, 3]:
            b = stall_probability_bound(d)
            assert 0.0 < b < 1.0

    def test_stall_prediction_dominates_bound(self):
        """The proof's literal constant is much smaller than the
        first-order prediction of the same event."""
        for d in [1, 2]:
            assert stall_probability_prediction(d) > stall_probability_bound(d)

    def test_horizons_grow_logarithmically(self):
        t1 = partial_flooding_rounds(1000, 8)
        t2 = partial_flooding_rounds(1_000_000, 8)
        assert t2 - t1 < t1  # doubling log n far less than doubling rounds
        assert complete_flooding_rounds(4000) > complete_flooding_rounds(100)


class TestChurnTheory:
    def test_size_concentration_fields(self):
        c = size_concentration_bounds(400)
        assert c.low == pytest.approx(360)
        assert c.high == pytest.approx(440)
        assert c.min_time == pytest.approx(1200)
        assert 0 < c.failure_probability < 1

    def test_jump_bounds(self):
        b = jump_probability_bounds()
        assert b.event_low == 0.47
        assert b.event_high == 0.53

    def test_lifetime_horizon(self):
        assert lifetime_horizon_rounds(100) == pytest.approx(700 * math.log(100))

    def test_expected_size_converges(self):
        assert expected_size_at(0.0, 100) == 0.0
        assert expected_size_at(1e9, 100) == pytest.approx(100.0)
        assert expected_size_at(100.0, 100) == pytest.approx(
            100 * (1 - math.exp(-1))
        )


class TestOnionTheory:
    def test_growth_factors(self):
        assert onion_growth_factor_streaming(200) == 10.0
        assert onion_growth_factor_poisson(480) == 10.0

    def test_infinite_product_close_to_claim(self):
        """Claim 3.11: product ≥ 1 − 4e^{−d/100} for d ≥ 200."""
        for d in [200, 400, 800]:
            product = infinite_product_success_probability(d)
            assert product >= claim_311_lower_bound(d)
            assert product <= 1.0

    def test_product_zero_when_growth_too_small(self):
        assert infinite_product_success_probability(10) < 0.2

    def test_phases_to_reach(self):
        assert phases_to_reach(10_000, 200) <= 4
        with pytest.raises(ValueError):
            phases_to_reach(100, 10)  # growth 0.5 ≤ 1


class TestStaticTheory:
    def test_min_d(self):
        assert static_d_out_expander_min_d() == 3

    def test_union_bound_small_for_d3(self):
        assert nonexpansion_union_bound(500, 3) < 0.5

    def test_union_bound_shrinks_with_d(self):
        b3 = nonexpansion_union_bound(300, 3)
        b5 = nonexpansion_union_bound(300, 5)
        assert b5 < b3

    def test_union_bound_useless_for_d1(self):
        assert nonexpansion_union_bound(300, 1) > 1.0
