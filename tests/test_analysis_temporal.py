"""Tests for the temporal analysis helpers."""

from __future__ import annotations

import math

import pytest

from repro.analysis.temporal import (
    edge_lifetime_stats,
    node_survival_curve,
    snapshot_jaccard,
    stationarity_diagnostic,
    topology_change_rate,
)
from repro.errors import AnalysisError
from repro.models import PDGR, SDG, SDGR


class TestEdgeLifetimes:
    def test_streaming_edge_lifetimes_bounded_by_n(self):
        net = SDGR(n=60, d=3, seed=0)
        stats = edge_lifetime_stats(net, rounds=180)
        assert stats.observed > 0
        assert 0 < stats.median <= 60
        assert stats.mean <= 60

    def test_needs_complete_lifetimes(self):
        net = SDGR(n=50, d=3, seed=1)
        with pytest.raises(AnalysisError):
            edge_lifetime_stats(net, rounds=0)

    def test_percentiles_ordered(self):
        net = PDGR(n=80, d=3, seed=2)
        stats = edge_lifetime_stats(net, rounds=150)
        assert stats.median <= stats.p90


class TestJaccard:
    def test_identical_snapshots(self):
        net = SDGR(n=50, d=3, seed=3)
        snap = net.snapshot()
        assert snapshot_jaccard(snap, snap) == 1.0

    def test_decay_over_time(self):
        """Similarity decreases (weakly) with time lag."""
        net = SDGR(n=100, d=3, seed=4)
        base = net.snapshot()
        net.run_rounds(10)
        near = snapshot_jaccard(base, net.snapshot())
        net.run_rounds(90)
        far = snapshot_jaccard(base, net.snapshot())
        assert far < near < 1.0

    def test_full_turnover_is_zero(self):
        """After n rounds every streaming node (hence edge) is new."""
        net = SDGR(n=40, d=3, seed=5)
        base = net.snapshot()
        net.run_rounds(40)
        assert snapshot_jaccard(base, net.snapshot()) == 0.0

    def test_empty_graphs(self):
        net = SDG(n=10, d=1, seed=6, warm=False)
        net.run_rounds(1)
        snap = net.snapshot()
        assert snapshot_jaccard(snap, snap) == 1.0


class TestSurvivalCurve:
    def test_streaming_linear_ramp(self):
        """Streaming cohorts decay linearly: after k rounds, k/n are gone."""
        net = SDG(n=100, d=2, seed=7)
        curve = node_survival_curve(net, [25, 50, 100])
        assert curve[0] == pytest.approx(0.75, abs=0.01)
        assert curve[1] == pytest.approx(0.50, abs=0.01)
        assert curve[2] == pytest.approx(0.0, abs=0.01)

    def test_poisson_exponential_decay(self):
        net = PDGR(n=200, d=2, seed=8)
        curve = node_survival_curve(net, [100, 200])
        assert curve[0] == pytest.approx(math.exp(-0.5), abs=0.12)
        assert curve[1] == pytest.approx(math.exp(-1.0), abs=0.12)

    def test_unsorted_horizons_rejected(self):
        net = SDG(n=50, d=2, seed=9)
        with pytest.raises(AnalysisError):
            node_survival_curve(net, [10, 5])


class TestChangeRateAndStationarity:
    def test_streaming_change_rate(self):
        """Each SDGR round destroys ~2d edges (the dead node's) and
        creates ~2d (regeneration + newborn)."""
        net = SDGR(n=100, d=4, seed=10)
        rate = topology_change_rate(net, rounds=100)
        assert 8 <= rate <= 24

    def test_stationarity_of_warm_network(self):
        net = SDGR(n=100, d=3, seed=11)
        diagnostic = stationarity_diagnostic(net, probes=6, spacing=10)
        assert diagnostic["size_drift"] == pytest.approx(0.0, abs=1e-9)
        assert diagnostic["edge_drift"] < 0.05

    def test_cold_start_shows_drift(self):
        net = PDGR(n=300, d=3, seed=12, warm_time=0)
        diagnostic = stationarity_diagnostic(net, probes=6, spacing=30)
        assert diagnostic["size_drift"] > 0.2  # still filling up

    def test_too_few_probes(self):
        net = SDGR(n=50, d=2, seed=13)
        with pytest.raises(AnalysisError):
            stationarity_diagnostic(net, probes=1, spacing=5)
