"""Store-layer tests: portable canonical JSON, durable atomic writes,
and the multi-host claim protocol (O_EXCL acquisition, TTL takeover,
crash consistency)."""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import time

import pytest

from repro.scenario import ScenarioSpec
from repro.sweep import (
    ResultStore,
    SweepSpec,
    cell_key,
    decode_nonfinite,
    encode_nonfinite,
    measurement,
    run_sweep,
)
from repro.sweep.store import DEFAULT_CLAIM_TTL, atomic_write_text, canonical_json
from repro.util.rng import SeedLike

BASE = ScenarioSpec(churn="streaming", policy="none", n=40, d=2, horizon=10)


@measurement("pytest-nonfinite")
def nonfinite(spec: ScenarioSpec, seed: SeedLike) -> dict:
    return {"nan": float("nan"), "inf": float("inf"), "ninf": float("-inf")}


class TestCanonicalJson:
    def test_rejects_nothing_emits_standard_json(self):
        # Regression: canonical_json used to allow_nan=True, emitting the
        # non-standard NaN/Infinity literals — unreadable by strict JSON
        # parsers on other hosts, and NaN broke fresh == cached equality.
        text = canonical_json({"x": float("nan"), "y": [float("inf"), float("-inf")]})
        assert text == '{"x":"NaN","y":["Infinity","-Infinity"]}'

        def reject(constant):  # a strict parser: any literal is fatal
            raise AssertionError(f"non-standard literal {constant!r}")

        assert json.loads(text, parse_constant=reject) == {
            "x": "NaN",
            "y": ["Infinity", "-Infinity"],
        }

    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_encode_decode_roundtrip(self):
        value = {
            "a": float("nan"),
            "b": [float("inf"), 1.5, {"c": float("-inf")}],
            "d": "plain",
        }
        encoded = encode_nonfinite(value)
        assert encoded["a"] == "NaN"
        assert encoded["b"][0] == "Infinity"
        decoded = decode_nonfinite(encoded)
        assert math.isnan(decoded["a"])
        assert decoded["b"][0] == float("inf")
        assert decoded["b"][2]["c"] == float("-inf")
        assert decoded["d"] == "plain"

    def test_cell_key_stable_under_nonfinite_params(self):
        args = dict(
            scenario=BASE.to_dict(),
            measure="m",
            measure_params={"threshold": float("inf")},
            seed=0,
            stream="s",
            index=0,
            backend="dict",
        )
        assert cell_key(**args) == cell_key(**args)

    def test_nonfinite_measurement_cached_equals_fresh(self, tmp_path):
        # NaN != NaN, so this equality only holds because values are
        # sentinel-encoded before normalization and storage.
        sweep = SweepSpec(
            base=BASE,
            replicas=2,
            seed=3,
            stream="nonfinite",
            measure="pytest-nonfinite",
        )
        cold = run_sweep(sweep, store=tmp_path)
        warm = run_sweep(sweep, store=tmp_path, resume=True)
        assert warm.executed == 0
        assert cold.values() == warm.values()
        assert cold.values()[0]["nan"] == "NaN"


class TestAtomicWrite:
    def test_writes_and_leaves_no_temp(self, tmp_path):
        path = tmp_path / "deep" / "file.json"
        atomic_write_text(path, "payload\n")
        assert path.read_text() == "payload\n"
        assert [p.name for p in path.parent.iterdir()] == ["file.json"]

    def test_overwrites_atomically(self, tmp_path):
        path = tmp_path / "f.json"
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        assert path.read_text() == "two"

    def test_put_durable_and_clean(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ab" + "0" * 62
        store.put(key, {"v": 1}, 0.5, host="me")
        payload = store.get(key)
        assert payload["value"] == {"v": 1}
        assert payload["host"] == "me"
        # No staging files left behind in the fan-out directory.
        assert list(tmp_path.glob("??/.*.tmp")) == []

    def test_sweep_orphans_removes_only_stale_temps(self, tmp_path):
        store = ResultStore(tmp_path)
        fan = tmp_path / "ab"
        fan.mkdir()
        stale = fan / ".dead1234-xyz.tmp"
        fresh = fan / ".live5678-xyz.tmp"
        stale.write_text("{")
        fresh.write_text("{")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        assert store.sweep_orphans(max_age=3600) == 1
        assert not stale.exists()
        assert fresh.exists()  # a write possibly in flight survives


def _race_claim(root, key, owner, barrier, queue):
    store = ResultStore(root)
    barrier.wait()
    queue.put((owner, store.claim(key, owner=owner)))


class TestClaims:
    KEY = "cd" + "1" * 62

    def test_claim_lifecycle(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.claim_info(self.KEY) is None
        assert store.claim(self.KEY, owner="alice")
        info = store.claim_info(self.KEY)
        assert info["owner"] == "alice"
        assert info["heartbeat"] == 0
        assert not info["expired"]
        assert list(store.claims()) == [self.KEY]
        # A live claim blocks other owners.
        assert not store.claim(self.KEY, owner="bob")
        # Heartbeats bump the counter and refresh the mtime.
        assert store.heartbeat(self.KEY, "alice")
        assert store.claim_info(self.KEY)["heartbeat"] == 1
        # Only the owner can heartbeat.
        assert not store.heartbeat(self.KEY, "bob")
        store.release(self.KEY)
        assert store.claim_info(self.KEY) is None
        store.release(self.KEY)  # idempotent

    def test_expired_claim_taken_over(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.claim(self.KEY, owner="alice", ttl=0.05)
        time.sleep(0.1)
        assert store.claim_info(self.KEY)["expired"]
        # Bob takes the stale claim over; Alice's heartbeat now fails.
        assert store.claim(self.KEY, owner="bob", ttl=10.0)
        assert store.claim_info(self.KEY)["owner"] == "bob"
        assert not store.heartbeat(self.KEY, "alice")

    def test_heartbeat_keeps_claim_alive(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.claim(self.KEY, owner="alice", ttl=0.3)
        for _ in range(3):
            time.sleep(0.15)
            assert store.heartbeat(self.KEY, "alice")
        # 0.45s elapsed > ttl, but the claim was refreshed throughout.
        assert not store.claim_info(self.KEY)["expired"]
        assert not store.claim(self.KEY, owner="bob")

    def test_unreadable_claim_counts_with_default_ttl(self, tmp_path):
        # A claimer that crashed mid-create leaves garbage: it must still
        # block (it may be alive), expiring on the default TTL.
        store = ResultStore(tmp_path)
        path = store.claim_path(self.KEY)
        path.parent.mkdir(parents=True)
        path.write_text("{truncated")
        info = store.claim_info(self.KEY)
        assert info["owner"] is None
        assert info["ttl"] == DEFAULT_CLAIM_TTL
        assert not info["expired"]
        assert not store.claim(self.KEY, owner="bob")

    def test_two_processes_race_one_wins(self, tmp_path):
        # The acceptance race: two real processes contend the same cell
        # through O_EXCL; exactly one acquisition may succeed.
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        queue = ctx.Queue()
        procs = [
            ctx.Process(
                target=_race_claim,
                args=(str(tmp_path), self.KEY, owner, barrier, queue),
            )
            for owner in ("p1", "p2")
        ]
        for proc in procs:
            proc.start()
        outcomes = dict(queue.get(timeout=10) for _ in procs)
        for proc in procs:
            proc.join(timeout=10)
        assert sorted(outcomes.values()) == [False, True]
        winner = next(o for o, won in outcomes.items() if won)
        store = ResultStore(tmp_path)
        assert store.claim_info(self.KEY)["owner"] == winner

    def test_result_commit_is_last_writer_wins(self, tmp_path):
        # Two workers that both executed an (expired-claim) cell commit
        # identical deterministic payloads; put never errors, the second
        # write simply replaces the first.
        store = ResultStore(tmp_path)
        store.put(self.KEY, {"v": 1}, 0.1, host="a")
        store.put(self.KEY, {"v": 1}, 0.2, host="b")
        payload = store.get(self.KEY)
        assert payload["value"] == {"v": 1}
        assert payload["host"] == "b"
