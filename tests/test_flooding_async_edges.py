"""Edge-case tests for asynchronous flooding (Definition 4.2)."""

from __future__ import annotations

from repro.flooding import flood_asynchronous
from repro.models import PDG, PDGR


class TestAsyncEdgeCases:
    def test_newborn_gets_informed_via_birth_edge(self):
        """New nodes attach to informed nodes and receive the message one
        time unit later — completion would be impossible otherwise."""
        net = PDGR(n=100, d=6, seed=0)
        result = flood_asynchronous(net)
        assert result.completed

    def test_trajectory_is_sampled_per_unit_time(self):
        net = PDGR(n=80, d=4, seed=1)
        result = flood_asynchronous(net, max_time=10.0)
        # At least one sample per elapsed unit (plus start and end).
        assert len(result.informed_sizes) >= 2

    def test_small_network_runs_terminate_cleanly(self):
        """At tiny n the source can die before its first delivery (the
        theorems are only w.h.p.); every run must still end in a definite
        state — completed or extinct, never hung."""
        completed = 0
        for seed in range(5):
            net = PDGR(n=30, d=4, seed=seed)
            result = flood_asynchronous(net)
            assert result.completed or result.extinct
            completed += result.completed
        assert completed >= 3

    def test_extinction_detected_on_isolated_source(self):
        """A source whose component dies out ends extinct, not hung."""
        for seed in range(20):
            net = PDG(n=60, d=1, seed=seed)
            snap = net.snapshot()
            isolated = sorted(snap.isolated_nodes())
            if not isolated:
                continue
            result = flood_asynchronous(net, source=isolated[0], max_time=500.0)
            if result.extinct:
                assert result.informed_sizes[-1] == 0
                return
        # Isolation at d=1 is common; reaching here means no run went
        # extinct, which with 20 seeds is effectively impossible.
        raise AssertionError("no extinction observed across seeds")

    def test_completion_round_is_ceiling_of_time(self):
        net = PDGR(n=60, d=8, seed=3)
        result = flood_asynchronous(net)
        assert result.completed
        assert isinstance(result.completion_round, int)
        assert result.completion_round >= 1

    def test_informed_counts_never_exceed_network(self):
        net = PDGR(n=70, d=5, seed=4)
        result = flood_asynchronous(net, max_time=20.0)
        for informed, alive in zip(result.informed_sizes, result.network_sizes):
            assert informed <= alive + 1  # +1: sampling race at record time
