"""Tests for repro.util.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.rng import (
    child_seeds,
    derive_seed,
    derive_seeds,
    make_rng,
    sample_indices_with_replacement,
    spawn_rngs,
    stream_root,
)


def _states(seqs, words: int = 2) -> set[tuple[int, ...]]:
    return {tuple(s.generate_state(words).tolist()) for s in seqs}


class TestMakeRng:
    def test_int_seed_is_deterministic(self):
        a = make_rng(42).integers(0, 1_000_000, size=10)
        b = make_rng(42).integers(0, 1_000_000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 1_000_000, size=10)
        b = make_rng(2).integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        rng = make_rng(seq)
        assert isinstance(rng, np.random.Generator)


class TestChildSeeds:
    def test_count(self):
        assert len(child_seeds(0, 5)) == 5

    def test_reproducible(self):
        a = [s.generate_state(1)[0] for s in child_seeds(3, 4)]
        b = [s.generate_state(1)[0] for s in child_seeds(3, 4)]
        assert a == b

    def test_children_distinct(self):
        states = [s.generate_state(1)[0] for s in child_seeds(3, 8)]
        assert len(set(states)) == 8

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            child_seeds(0, -1)

    def test_generator_seed_advances(self):
        gen = np.random.default_rng(0)
        first = [s.generate_state(1)[0] for s in child_seeds(gen, 2)]
        second = [s.generate_state(1)[0] for s in child_seeds(gen, 2)]
        assert first != second


class TestNamedStreams:
    def test_reproducible(self):
        assert _states(derive_seeds(7, "exp01-sdg", 4)) == _states(
            derive_seeds(7, "exp01-sdg", 4)
        )

    def test_distinct_streams_do_not_collide(self):
        a = _states(derive_seeds(0, "exp01-sdg", 16))
        b = _states(derive_seeds(0, "exp01-pdg", 16))
        assert len(a) == len(b) == 16
        assert not (a & b)

    def test_no_aliasing_across_master_seeds(self):
        # The fragile scheme this replaces: child_seeds(seed + 1, ...) of
        # seed s aliases child_seeds(seed, ...) of seed s + 1.  Named
        # streams of neighbouring master seeds must stay disjoint.
        neighbours = _states(
            seq
            for master in range(-2, 3)
            for seq in derive_seeds(master, "sweep", 8)
        )
        assert len(neighbours) == 5 * 8

    def test_disjoint_from_positional_children(self):
        positional = _states(
            seq for offset in range(4) for seq in child_seeds(offset, 8)
        )
        named = _states(derive_seeds(0, "sweep", 8))
        assert not (positional & named)

    def test_derive_seed_indexes_the_stream(self):
        family = derive_seeds(3, "cells", 5)
        one = derive_seed(3, "cells", 4)
        assert one.generate_state(2).tolist() == family[4].generate_state(2).tolist()

    def test_matches_seed_sequence_spawn(self):
        spawned = stream_root(11, "cells").spawn(3)
        assert _states(spawned) == _states(derive_seeds(11, "cells", 3))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            derive_seeds(0, "", 2)
        with pytest.raises(ValueError):
            derive_seeds(0, "s", -1)
        with pytest.raises(ValueError):
            derive_seed(0, "s", -1)
        with pytest.raises(TypeError):
            stream_root(np.random.default_rng(0), "s")


class TestSpawnRngs:
    def test_independent_streams(self):
        rngs = spawn_rngs(9, 3)
        draws = [r.integers(0, 2**31) for r in rngs]
        assert len(set(draws)) == 3

    def test_reproducible(self):
        a = [r.integers(0, 2**31) for r in spawn_rngs(9, 3)]
        b = [r.integers(0, 2**31) for r in spawn_rngs(9, 3)]
        assert a == b


class TestStateRoundTrip:
    """Generator state serialization (the service plane's checkpoint
    contract): ``bit_generator.state`` must survive a JSON round trip and
    resume the exact stream, for every way this module hands out
    generators."""

    def _generators(self):
        yield make_rng(42)
        yield make_rng(np.random.SeedSequence(7))
        yield from spawn_rngs(9, 3)
        yield make_rng(derive_seed(3, "service", 0))
        yield make_rng(stream_root(11, "cells"))

    def test_state_survives_json_round_trip(self):
        import json

        for rng in self._generators():
            rng.integers(0, 2**31, size=5)  # advance off the seed point
            state = json.loads(json.dumps(rng.bit_generator.state))
            clone = np.random.default_rng(0)
            clone.bit_generator.state = state
            assert np.array_equal(
                clone.integers(0, 2**31, size=16),
                rng.integers(0, 2**31, size=16),
            )

    def test_state_is_plain_json_types(self):
        # The checkpoint codec embeds the state dict verbatim, so it must
        # contain only JSON-native scalars/containers (no ndarrays).
        def check(value):
            if isinstance(value, dict):
                for item in value.values():
                    check(item)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    check(item)
            else:
                assert isinstance(value, (int, float, str, bool, type(None)))

        for rng in self._generators():
            check(rng.bit_generator.state)

    def test_restored_state_is_independent_of_original(self):
        rng = make_rng(5)
        state = rng.bit_generator.state
        clone = np.random.default_rng(0)
        clone.bit_generator.state = state
        first = clone.integers(0, 2**31, size=8)
        rng.integers(0, 2**31, size=100)  # advancing one must not touch the other
        clone2 = np.random.default_rng(0)
        clone2.bit_generator.state = state
        assert np.array_equal(clone2.integers(0, 2**31, size=8), first)


class TestSampleIndices:
    def test_range(self):
        rng = make_rng(0)
        samples = sample_indices_with_replacement(rng, 10, 100)
        assert len(samples) == 100
        assert all(0 <= s < 10 for s in samples)

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            sample_indices_with_replacement(make_rng(0), 0, 1)
