"""Tests for the related-work protocol baselines."""

from __future__ import annotations

import pytest

from repro.analysis.components import component_summary
from repro.baselines import CentralCacheNetwork, TokenNetwork
from repro.errors import ConfigurationError
from repro.flooding import flood_discrete


class TestCentralCache:
    def test_stays_connected(self):
        net = CentralCacheNetwork(n=150, d=4, seed=0)
        net.run_rounds(150)
        assert component_summary(net.snapshot()).is_connected

    def test_invariants(self):
        net = CentralCacheNetwork(n=100, d=3, seed=1)
        net.run_rounds(50)
        net.state.check_invariants()

    def test_cache_holds_alive_nodes(self):
        net = CentralCacheNetwork(n=100, d=3, seed=2)
        net.run_rounds(120)
        assert all(net.state.is_alive(c) for c in net.cache)

    def test_cache_size_bounded(self):
        net = CentralCacheNetwork(n=100, d=3, cache_size=10, seed=3)
        net.run_rounds(60)
        assert len(net.cache) <= 11  # cache + the newborn insertion

    def test_flooding_completes_quickly(self):
        net = CentralCacheNetwork(n=200, d=4, seed=4)
        net.run_rounds(200)
        result = flood_discrete(net, max_rounds=60)
        assert result.completed

    def test_cache_smaller_than_d_rejected(self):
        with pytest.raises(ConfigurationError):
            CentralCacheNetwork(n=50, d=8, cache_size=4)

    def test_size_steady(self):
        net = CentralCacheNetwork(n=80, d=3, seed=5)
        net.run_rounds(100)
        assert net.num_alive() == 80


class TestTokenNetwork:
    def test_giant_component(self):
        net = TokenNetwork(n=150, d=4, seed=0)
        net.run_rounds(150)
        assert component_summary(net.snapshot()).giant_fraction > 0.95

    def test_invariants(self):
        net = TokenNetwork(n=80, d=3, seed=1)
        net.run_rounds(40)
        net.state.check_invariants()

    def test_tokens_owned_by_alive_nodes_only_after_deaths(self):
        net = TokenNetwork(n=60, d=3, seed=2)
        net.run_rounds(80)
        assert all(net.state.is_alive(t.owner) for t in net.tokens)

    def test_token_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenNetwork(n=50, d=4, tokens_per_node=2)

    def test_newborn_gets_d_connections(self):
        net = TokenNetwork(n=100, d=4, seed=3)
        net.run_rounds(120)
        newest = net.newest_id()
        assert net.state.record(newest).out_degree() == 4

    def test_flooding_completes(self):
        net = TokenNetwork(n=150, d=4, seed=4)
        net.run_rounds(150)
        result = flood_discrete(net, max_rounds=80)
        assert result.completed
