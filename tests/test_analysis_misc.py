"""Tests for degrees, components, ages, KL, and spectral analyses."""

from __future__ import annotations

import math

import pytest

from repro.analysis.ages import age_profile, age_slices, geometric_decay_rate, mean_age
from repro.analysis.components import component_summary, giant_component_fraction
from repro.analysis.degrees import (
    degree_histogram,
    degree_summary,
    in_out_degree_split,
    max_degree,
)
from repro.analysis.kl import (
    kl_divergence,
    nonexpansion_exponent,
    paper_profile_distribution,
    profile_distribution_mass,
)
from repro.analysis.spectral import cheeger_bounds, normalized_laplacian_lambda2
from repro.errors import AnalysisError
from repro.models import PDGR, SDG, SDGR, static_d_out_snapshot
from tests.conftest import (
    complete_snapshot,
    cycle_snapshot,
    path_snapshot,
    snapshot_from_edges,
)


class TestDegrees:
    def test_summary_on_cycle(self):
        s = degree_summary(cycle_snapshot(10))
        assert s.mean_degree == pytest.approx(2.0)
        assert s.max_degree == 2
        assert s.min_degree == 2
        assert s.num_edges == 10

    def test_max_degree(self):
        assert max_degree(path_snapshot(5)) == 2
        assert max_degree(snapshot_from_edges(3, [])) == 0

    def test_histogram(self):
        hist = degree_histogram(path_snapshot(4))
        assert hist == {1: 2, 2: 2}

    def test_in_out_split_sdgr(self):
        net = SDGR(n=60, d=3, seed=0)
        net.run_rounds(60)
        split = in_out_degree_split(net.snapshot())
        outs = [o for o, _ in split.values()]
        ins = [i for _, i in split.values()]
        assert all(o == 3 for o in outs)
        assert sum(ins) == sum(outs)

    def test_mean_degree_lemma_61(self):
        """Lemma 6.1: expected degree d in the streaming model."""
        net = SDG(n=500, d=4, seed=1)
        net.run_rounds(1000)
        s = degree_summary(net.snapshot())
        assert s.mean_degree == pytest.approx(4.0, rel=0.15)

    def test_max_degree_logarithmic(self):
        """§5 remark: max degree O(log n) — check it is far below n."""
        net = SDGR(n=500, d=3, seed=2)
        net.run_rounds(1000)
        assert max_degree(net.snapshot()) < 12 * math.log(500)


class TestComponents:
    def test_connected_cycle(self):
        s = component_summary(cycle_snapshot(8))
        assert s.is_connected
        assert s.giant_fraction == 1.0

    def test_split_graph(self):
        snap = snapshot_from_edges(7, [(0, 1), (1, 2), (3, 4)])
        s = component_summary(snap)
        assert s.num_components == 4
        assert s.giant_size == 3
        assert s.second_size == 2
        assert s.num_isolated == 2

    def test_giant_fraction_sdg(self):
        """SDG keeps a giant component despite isolated nodes."""
        net = SDG(n=500, d=4, seed=3)
        net.run_rounds(1000)
        frac = giant_component_fraction(net.snapshot())
        assert frac > 0.8


class TestAges:
    def test_age_slices_default(self):
        assert age_slices(100) == math.ceil(7 * math.log(100))

    def test_age_slices_override(self):
        assert age_slices(100, 5) == 5

    def test_profile_counts_everything(self):
        net = PDGR(n=100, d=3, seed=4)
        snap = net.snapshot()
        profile = age_profile(snap)
        assert profile.total == snap.num_nodes()

    def test_streaming_profile_in_first_slice(self):
        """All streaming ages are < n, so slice 0 holds everything."""
        net = SDG(n=80, d=3, seed=5)
        net.run_rounds(80)
        profile = age_profile(net.snapshot(), slice_width=80.0)
        assert profile.counts[0] == 80
        assert profile.oldest_nonempty_slice() == 0

    def test_poisson_profile_decays(self):
        """Exponential lifetimes put geometrically fewer nodes in older
        slices (the demographics the PDGR proof exploits)."""
        net = PDGR(n=400, d=3, seed=6, warm_time=4000.0)
        snap = net.snapshot()
        profile = age_profile(snap, slice_width=400.0)
        assert profile.counts[0] > profile.counts[1] > 0
        rate = geometric_decay_rate(profile)
        assert 0.0 < rate < 1.0

    def test_mean_age(self):
        snap = snapshot_from_edges(2, [(0, 1)], time=10.0, birth_times={0: 0.0, 1: 5.0})
        assert mean_age(snap) == pytest.approx(7.5)

    def test_mean_age_empty_raises(self):
        snap = snapshot_from_edges(2, [(0, 1)])
        with pytest.raises(ValueError):
            mean_age(snap, subset=[])


class TestKL:
    def test_kl_nonnegative_for_distributions(self):
        p = [0.2, 0.3, 0.5]
        q = [0.3, 0.3, 0.4]
        assert kl_divergence(p, q) >= 0.0

    def test_kl_zero_iff_equal(self):
        p = [0.25, 0.25, 0.5]
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_kl_infinite_when_q_zero(self):
        assert kl_divergence([1.0], [0.0]) == float("inf")

    def test_kl_negative_for_subdistribution_possible(self):
        # q sums to 2 > 1 → KL can go negative; the proof's direction.
        p = [1.0]
        q = [2.0]
        assert kl_divergence(p, q) < 0.0

    def test_length_mismatch(self):
        with pytest.raises(AnalysisError):
            kl_divergence([1.0], [0.5, 0.5])

    def test_paper_q_is_subdistribution_in_regime(self):
        """The proof of Lemma 4.18 needs Σ q_m ≤ 1 for d ≥ 30, k ≤ n/14."""
        n = 10_000.0
        length = age_slices(n)
        for d in [30, 35, 50]:
            for k in [int(n / math.log(n) ** 2) + 1, int(n / 20), int(n / 14)]:
                assert profile_distribution_mass(k, n, d, length) <= 1.0

    def test_paper_q_positive(self):
        q = paper_profile_distribution(k=100, n=1000.0, d=35, num_slices=10)
        assert all(v > 0 for v in q)

    def test_nonexpansion_exponent_positive_in_regime(self):
        """Formula (23): the KL bound makes the exponent ≥ 0 (plus the
        log(10/9) slack) for profiles from the paper's regime."""
        n = 10_000.0
        counts = [500, 150, 40, 10, 3, 1] + [0] * 10
        value = nonexpansion_exponent(counts, n, d=35)
        assert value > 0.0


class TestSpectral:
    def test_lambda2_complete_graph(self):
        """λ₂ of normalized Laplacian of K_n is n/(n-1)."""
        lam2 = normalized_laplacian_lambda2(complete_snapshot(8))
        assert lam2 == pytest.approx(8 / 7, rel=1e-6)

    def test_lambda2_path_small(self):
        lam2 = normalized_laplacian_lambda2(path_snapshot(10))
        assert 0.0 < lam2 < 0.3

    def test_disconnected_uses_giant(self):
        snap = snapshot_from_edges(7, [(0, 1), (1, 2), (2, 3), (4, 5)])
        lam2 = normalized_laplacian_lambda2(snap, on_giant=True)
        assert lam2 > 0.0

    def test_too_small_rejected(self):
        with pytest.raises(AnalysisError):
            normalized_laplacian_lambda2(snapshot_from_edges(2, [(0, 1)]))

    def test_cheeger_sandwich(self):
        bounds = cheeger_bounds(cycle_snapshot(12))
        assert bounds.conductance_lower <= bounds.conductance_upper
        assert bounds.vertex_expansion_lower >= 0.0

    def test_expander_has_large_gap(self):
        snap = static_d_out_snapshot(300, 4, seed=0)
        lam2 = normalized_laplacian_lambda2(snap)
        assert lam2 > 0.15

    def test_sparse_path_solver_large(self):
        """Exercise the sparse eigensolver branch (n > 400)."""
        snap = static_d_out_snapshot(500, 3, seed=1)
        lam2 = normalized_laplacian_lambda2(snap)
        assert lam2 > 0.05
