"""Hypothesis property tests for the churn processes and drivers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.churn.poisson import PoissonJumpChain
from repro.churn.streaming import StreamingSchedule
from repro.models import GDG, PDG, SDG
from repro.churn.lifetime import ExponentialLifetime
from repro.util.rng import make_rng


@settings(max_examples=60, deadline=None)
@given(n=st.integers(1, 200), round_number=st.integers(1, 2000))
def test_property_streaming_schedule_consistency(n, round_number):
    """Birth/death bookkeeping is internally consistent at every round."""
    schedule = StreamingSchedule(n)
    born = schedule.birth_id(round_number)
    assert schedule.birth_round(born) == round_number
    assert schedule.alive_at(born, round_number)
    assert not schedule.alive_at(born, round_number + n)
    dead = schedule.death_id(round_number)
    if round_number <= n:
        assert dead is None
    else:
        assert dead is not None
        assert schedule.death_round(dead) == round_number
        assert not schedule.alive_at(dead, round_number)
        assert schedule.alive_at(dead, round_number - 1)


@settings(max_examples=60, deadline=None)
@given(
    lam=st.floats(0.1, 5.0),
    n=st.floats(2.0, 10_000.0),
    alive=st.integers(0, 20_000),
)
def test_property_jump_chain_probabilities_normalise(lam, n, alive):
    chain = PoissonJumpChain(lam=lam, n=n)
    birth = chain.birth_probability(alive)
    death = chain.death_probability(alive)
    assert birth + death == pytest.approx(1.0)
    assert 0.0 < birth <= 1.0
    assert 0.0 <= death < 1.0
    if alive:
        assert chain.fixed_node_death_probability(alive) == pytest.approx(
            death / alive
        )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(10, 60))
def test_property_streaming_driver_size_and_ages(seed, n):
    """After warm-up the streaming network always holds exactly n nodes
    with ages 0 … n−1."""
    net = SDG(n=n, d=2, seed=seed)
    net.run_rounds(int(make_rng(seed).integers(0, 3 * n)))
    assert net.num_alive() == n
    snap = net.snapshot()
    assert sorted(int(snap.age(u)) for u in snap.nodes) == list(range(n))


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_poisson_driver_clock_monotone(seed):
    net = PDG(n=50, d=2, seed=seed, warm_time=0)
    last = net.now
    for _ in range(30):
        net.advance_one_event()
        assert net.now >= last
        last = net.now


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_general_driver_matches_alive_count(seed):
    """The death queue and the alive set agree: every alive node has a
    pending death event, and counts match."""
    net = GDG(ExponentialLifetime(40), d=2, seed=seed, warm_time=120)
    assert len(net.deaths) == net.num_alive()
    net.run_rounds(10)
    assert len(net.deaths) == net.num_alive()
    net.state.check_invariants()
