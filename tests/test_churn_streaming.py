"""Tests for the streaming churn schedule (Definition 3.2)."""

from __future__ import annotations

import pytest

from repro.churn.streaming import StreamingSchedule
from repro.errors import ConfigurationError


class TestSchedule:
    def test_birth_id_is_round_minus_one(self):
        s = StreamingSchedule(10)
        assert s.birth_id(1) == 0
        assert s.birth_id(17) == 16

    def test_no_death_during_warmup(self):
        s = StreamingSchedule(10)
        for r in range(1, 11):
            assert s.death_id(r) is None

    def test_first_death(self):
        s = StreamingSchedule(10)
        assert s.death_id(11) == 0

    def test_lifetime_is_exactly_n(self):
        s = StreamingSchedule(7)
        node = 4
        alive_rounds = [
            r for r in range(1, 40) if s.alive_at(node, r)
        ]
        assert len(alive_rounds) == 7
        assert alive_rounds[0] == s.birth_round(node)
        assert alive_rounds[-1] == s.death_round(node) - 1

    def test_age(self):
        s = StreamingSchedule(10)
        assert s.age_at(node_id=4, round_number=5) == 0
        assert s.age_at(node_id=4, round_number=14) == 9

    def test_ages_form_full_range_in_steady_state(self):
        s = StreamingSchedule(5)
        round_number = 12
        alive = [u for u in range(20) if s.alive_at(u, round_number)]
        ages = sorted(s.age_at(u, round_number) for u in alive)
        assert ages == [0, 1, 2, 3, 4]

    def test_expected_size(self):
        s = StreamingSchedule(10)
        assert s.expected_size(3) == 3
        assert s.expected_size(10) == 10
        assert s.expected_size(99) == 10

    def test_invalid_round(self):
        with pytest.raises(ValueError):
            StreamingSchedule(5).birth_id(0)

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            StreamingSchedule(0)

    def test_death_id_matches_birth_round(self):
        s = StreamingSchedule(8)
        for r in range(9, 30):
            dead = s.death_id(r)
            assert dead is not None
            assert s.death_round(dead) == r
