"""Vectorized (mask-frontier) gossip and lossy flooding, and the protocol
registry's uniform run/step interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.flooding import (
    flood_discrete,
    flood_lossy,
    get_protocol,
    gossip_push_pull,
    protocol_names,
)
from repro.models import PDGR, SDGR
from repro.util.rng import make_rng


def _warm_sdgr(n=120, d=6, seed=0, backend="array"):
    net = SDGR(n=n, d=d, seed=seed, backend=backend)
    net.run_rounds(n)
    return net


class TestVectorizedLossy:
    def test_loss_zero_equals_discrete_flooding(self):
        """With loss=0 every boundary transmission succeeds, so lossy
        flooding — set path and mask path alike — must replay
        flood_discrete's informed trajectory exactly."""
        reference = flood_discrete(_warm_sdgr(seed=3), max_rounds=100)
        set_path = flood_lossy(_warm_sdgr(seed=3), loss=0.0, seed=1)
        mask_path = flood_lossy(
            _warm_sdgr(seed=3), loss=0.0, seed=1, vectorized=True
        )
        assert set_path.informed_sizes == reference.informed_sizes
        assert mask_path.informed_sizes == reference.informed_sizes
        assert mask_path.completion_round == reference.completion_round

    def test_vectorized_needs_array_backend(self):
        net = _warm_sdgr(backend="dict")
        with pytest.raises(ConfigurationError, match="vectorized"):
            flood_lossy(net, loss=0.1, seed=0, vectorized=True)

    def test_vectorized_completes_under_loss(self):
        result = flood_lossy(_warm_sdgr(seed=5), loss=0.3, seed=2, vectorized=True)
        assert result.completed
        # retries slow flooding down, they never block it
        assert result.completion_round is not None

    def test_distributionally_close_to_set_path(self):
        set_rounds, mask_rounds = [], []
        for seed in range(6):
            set_rounds.append(
                flood_lossy(_warm_sdgr(seed=seed), loss=0.4, seed=seed).completion_round
            )
            mask_rounds.append(
                flood_lossy(
                    _warm_sdgr(seed=seed), loss=0.4, seed=seed, vectorized=True
                ).completion_round
            )
        assert abs(np.mean(set_rounds) - np.mean(mask_rounds)) < 3.0


class TestVectorizedGossip:
    def test_vectorized_completes(self):
        result = gossip_push_pull(
            _warm_sdgr(seed=1), seed=4, vectorized=True, max_rounds=400
        )
        assert result.completed

    def test_push_only_and_pull_only(self):
        push = gossip_push_pull(
            _warm_sdgr(seed=2), seed=1, pull=False, vectorized=True, max_rounds=600
        )
        pull = gossip_push_pull(
            _warm_sdgr(seed=2), seed=1, push=False, vectorized=True, max_rounds=600
        )
        assert push.completed and pull.completed

    def test_vectorized_needs_array_backend(self):
        net = _warm_sdgr(backend="dict")
        with pytest.raises(ConfigurationError, match="vectorized"):
            gossip_push_pull(net, seed=0, vectorized=True)

    def test_distributionally_close_to_set_path(self):
        set_rounds, mask_rounds = [], []
        for seed in range(6):
            set_rounds.append(
                gossip_push_pull(_warm_sdgr(seed=seed), seed=seed).completion_round
            )
            mask_rounds.append(
                gossip_push_pull(
                    _warm_sdgr(seed=seed), seed=seed, vectorized=True
                ).completion_round
            )
        assert abs(np.mean(set_rounds) - np.mean(mask_rounds)) < 3.0


class TestProtocolRegistry:
    def test_all_five_registered(self):
        assert protocol_names() == [
            "asynchronous", "discrete", "discretized", "gossip", "lossy",
        ]

    def test_unknown_protocol(self):
        with pytest.raises(ConfigurationError, match="unknown flooding protocol"):
            get_protocol("smoke-signals")

    def test_registry_run_matches_function(self, backend_name):
        via_registry = get_protocol("discrete").run(
            _warm_sdgr(seed=7, backend=backend_name), max_rounds=100
        )
        direct = flood_discrete(
            _warm_sdgr(seed=7, backend=backend_name), max_rounds=100
        )
        assert via_registry.informed_sizes == direct.informed_sizes

    def test_asynchronous_requires_poisson(self):
        protocol = get_protocol("asynchronous")
        with pytest.raises(ConfigurationError, match="PoissonNetwork"):
            protocol.run(_warm_sdgr())
        result = protocol.run(PDGR(n=60, d=35, seed=0), max_time=200.0)
        assert result.completed

    def test_step_interface_replays_discrete_flooding(self):
        """proposal → advance → absorb, hand-driven, equals flood_discrete."""
        protocol = get_protocol("discrete")
        assert protocol.supports_step
        net = _warm_sdgr(seed=9)
        reference = flood_discrete(_warm_sdgr(seed=9), max_rounds=50)

        source = net.state.youngest_alive()
        frontier = protocol.make_frontier(net, {source})
        sizes = [frontier.count()]
        rng = make_rng(0)
        for _ in range(reference.rounds_run):
            proposal = protocol.proposal(frontier, rng)
            report = net.advance_round()
            frontier.absorb(proposal, report)
            sizes.append(frontier.count())
        assert sizes == reference.informed_sizes

    def test_step_interface_gossip_mask(self):
        protocol = get_protocol("gossip")
        net = _warm_sdgr(seed=4)
        source = net.state.youngest_alive()
        frontier = protocol.make_frontier(net, {source}, vectorized=True)
        rng = make_rng(1)
        for _ in range(60):
            proposal = protocol.proposal(frontier, rng, push=True, pull=True)
            report = net.advance_round()
            frontier.absorb(proposal, report)
            if frontier.count() == net.num_alive():
                break
        assert frontier.count() > net.num_alive() * 0.9

    def test_non_steppable_protocols_say_so(self):
        protocol = get_protocol("asynchronous")
        assert not protocol.supports_step
        with pytest.raises(ConfigurationError, match="per-round stepping"):
            protocol.make_frontier(None, set())


class TestDeadSourceFrontier:
    """Regression: seeding a frontier with an already-dead id.

    MaskFrontier.__init__ used to crash with a KeyError (rows_for had no
    row for a dead id) where SetFrontier silently tolerated dead sources
    — they simply drop out at the first absorb.  Both representations
    must now accept dead seeds and compute identical informed sets from
    round 1 on.
    """

    @staticmethod
    def _informed_ids(frontier, state):
        from repro.flooding.frontier import MaskFrontier

        if isinstance(frontier, MaskFrontier):
            rows = np.nonzero(frontier.mask)[0]
            return {int(i) for i in state.ids_for_rows(rows)}
        return set(frontier.informed)

    def test_mask_frontier_accepts_dead_seed(self):
        from repro.flooding.frontier import MaskFrontier

        net = _warm_sdgr(n=60, seed=2)
        report = net.advance_round()
        dead = report.deaths[0]
        assert not net.state.is_alive(dead)
        frontier = MaskFrontier(net.state, {dead, net.newest_id()})
        assert frontier.count() == 1  # the dead seed contributes no row

    def test_rows_for_skips_dead_ids(self):
        net = _warm_sdgr(n=50, seed=3)
        report = net.advance_round()
        dead = report.deaths[0]
        alive = net.newest_id()
        rows = net.state.rows_for([dead, alive])
        assert rows.tolist() == [net.state.row_for(alive)]

    def test_boundary_of_tolerates_dead_members(self):
        net = _warm_sdgr(n=50, seed=5)
        report = net.advance_round()
        dead = report.deaths[0]
        alive = net.newest_id()
        with_dead = net.state.boundary_of({dead, alive})
        without = net.state.boundary_of({alive})
        assert with_dead == without

    def test_flood_from_dead_source_identical_across_frontiers(self):
        """Drive the Definition 3.3 round loop from an informed set
        containing a pre-round-0 corpse on both representations (and both
        backends) — every post-absorb informed set must match exactly."""
        from repro.flooding.frontier import MaskFrontier, SetFrontier

        seeds = []
        trajectories = []
        for backend, frontier_cls in [
            ("dict", SetFrontier),
            ("array", SetFrontier),
            ("array", MaskFrontier),
        ]:
            net = _warm_sdgr(n=60, d=4, seed=7, backend=backend)
            report = net.advance_round()
            dead = report.deaths[0]
            source = net.newest_id()
            seeds.append((dead, source))
            frontier = frontier_cls(net.state, {dead, source})
            rounds = []
            for _ in range(12):
                boundary = frontier.boundary()
                report = net.advance_round()
                frontier.absorb(boundary, report)
                rounds.append(
                    frozenset(self._informed_ids(frontier, net.state))
                )
            trajectories.append(rounds)
        assert seeds[0] == seeds[1] == seeds[2]
        assert trajectories[0] == trajectories[1] == trajectories[2]
        assert trajectories[0][-1]  # the flood actually progressed
