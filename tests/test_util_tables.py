"""Tests for repro.util.tables."""

from __future__ import annotations

from repro.util.tables import format_value, render_kv, render_table


class TestFormatValue:
    def test_none(self):
        assert format_value(None) == "-"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_float_sig_digits(self):
        assert format_value(3.14159) == "3.142"

    def test_small_float_scientific(self):
        assert "e" in format_value(1.23e-7)

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_nan(self):
        assert format_value(float("nan")) == "nan"

    def test_int_passthrough(self):
        assert format_value(42) == "42"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"


class TestRenderTable:
    def test_contains_headers_and_values(self):
        out = render_table(["a", "b"], [{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert "| a" in out
        assert "| 1" in out
        assert "| 4" in out

    def test_missing_cell_is_dash(self):
        out = render_table(["a", "b"], [{"a": 1}])
        assert "-" in out.splitlines()[-2]

    def test_title(self):
        out = render_table(["x"], [{"x": 1}], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        out = render_table(["col"], [])
        assert "col" in out

    def test_alignment_consistency(self):
        out = render_table(["col"], [{"col": "longvalue"}])
        lines = [l for l in out.splitlines() if l.startswith("|")]
        assert len({len(l) for l in lines}) == 1


class TestRenderKv:
    def test_pairs(self):
        out = render_kv({"alpha": 1, "b": 2.5})
        assert "alpha : 1" in out
        assert "2.5" in out

    def test_title(self):
        out = render_kv({"k": 1}, title="Verdict")
        assert out.splitlines()[0] == "Verdict"

    def test_empty(self):
        assert render_kv({}) == ""
