"""Fleet-plane tests: the submit → worker → reduce lifecycle and its
acceptance bar — sequential, N local workers, concurrent workers on a
shared store, and warm resume must all reduce to byte-identical
artifact cores, on both topology backends; a worker killed mid-cell
must leave the store consistent and its claim takeoverable."""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.api import (
    collect,
    load_submission,
    run_fleet,
    run_worker,
    submit_sweep,
    sweep_status,
)
from repro.errors import SweepError
from repro.scenario import ScenarioSpec
from repro.sweep import ResultStore, SweepResult, SweepSpec, measurement
from repro.sweep.artifact import artifact_path, submitted_spec_path, sweep_key
from repro.util.rng import SeedLike, make_rng

BASE = ScenarioSpec(churn="streaming", policy="none", n=40, d=2, horizon=10)


@measurement("pytest-fleet-echo")
def fleet_echo(spec: ScenarioSpec, seed: SeedLike) -> dict:
    return {"draw": float(make_rng(seed).random()), "d": spec.d}


@measurement("pytest-fleet-fail-at-d3")
def fleet_fail_at_d3(spec: ScenarioSpec, seed: SeedLike) -> dict:
    if spec.d == 3:
        raise ValueError("d=3 fleet cell exploded (intentionally)")
    return {"d": spec.d}


@measurement("pytest-fleet-kill-once")
def fleet_kill_once(
    spec: ScenarioSpec, seed: SeedLike, marker: str = ""
) -> dict:
    """Dies mid-cell (no cleanup, claim left behind) exactly once."""
    if spec.d == 3 and marker and not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("killed here")
        os._exit(1)
    return {"d": spec.d}


def fleet_sweep(**changes) -> SweepSpec:
    defaults = dict(
        base=BASE,
        axes=[("d", (2, 3))],
        replicas=3,
        seed=0,
        stream="pytest-fleet",
        measure="pytest-fleet-echo",
    )
    defaults.update(changes)
    return SweepSpec(**defaults)


class TestByteIdentity:
    @pytest.mark.parametrize("backend", ["dict", "array"])
    def test_all_execution_shapes_reduce_identically(self, tmp_path, backend):
        sweep = fleet_sweep()
        sequential = run_fleet(sweep, tmp_path / "s1", workers=1, backend=backend)
        parallel = run_fleet(sweep, tmp_path / "s2", workers=2, backend=backend)
        assert sequential.core_bytes() == parallel.core_bytes()
        assert sequential.digest == parallel.digest
        # Warm resume: reducing the already-complete store again, with no
        # workers at all, yields the same core.
        warm = collect(tmp_path / "s2", sweep, backend=backend, timeout=0)
        assert warm.core_bytes() == sequential.core_bytes()
        # And the artifact on disk round-trips to the same core.
        loaded = SweepResult.load(tmp_path / "s1", sequential.key)
        assert loaded is not None
        assert loaded.core_bytes() == sequential.core_bytes()

    def test_two_workers_one_store_split_the_grid(self, tmp_path):
        # Concurrent workers against one store: the grid completes, no
        # cell is lost, and the reduction equals the sequential core.
        sweep = fleet_sweep()
        submission = submit_sweep(sweep, tmp_path / "shared")
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(
                target=run_worker,
                args=(str(tmp_path / "shared"), submission.key),
                kwargs={"host": f"racer-{rank}", "wait": 10.0},
            )
            for rank in range(2)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        shared = collect(tmp_path / "shared", submission, timeout=0)
        solo = run_fleet(sweep, tmp_path / "solo", workers=1)
        assert shared.core_bytes() == solo.core_bytes()

    def test_backend_is_part_of_sweep_identity(self):
        sweep = fleet_sweep()
        assert sweep_key(sweep, "dict") != sweep_key(sweep, "array")
        assert sweep.sweep_key("dict") == sweep_key(sweep, "dict")


class TestLifecycle:
    def test_submit_is_idempotent(self, tmp_path):
        sweep = fleet_sweep()
        first = submit_sweep(sweep, tmp_path)
        doc = submitted_spec_path(tmp_path, first.key).read_bytes()
        second = submit_sweep(sweep, tmp_path)
        assert first == second
        assert submitted_spec_path(tmp_path, first.key).read_bytes() == doc

    def test_load_submission_by_key(self, tmp_path):
        sweep = fleet_sweep()
        submitted = submit_sweep(sweep, tmp_path)
        loaded = load_submission(tmp_path, submitted.key)
        assert loaded.sweep == sweep
        assert loaded.backend == submitted.backend
        assert loaded.measure_module == submitted.measure_module

    def test_load_submission_rejects_tampered_document(self, tmp_path):
        sweep = fleet_sweep()
        submitted = submit_sweep(sweep, tmp_path)
        path = submitted_spec_path(tmp_path, submitted.key)
        doc = json.loads(path.read_text())
        doc["sweep"]["seed"] = 999  # key no longer derives from content
        path.write_text(json.dumps(doc))
        with pytest.raises(SweepError, match="does not verify"):
            load_submission(tmp_path, submitted.key)

    def test_status_tracks_progress(self, tmp_path):
        sweep = fleet_sweep()
        submission = submit_sweep(sweep, tmp_path)
        before = sweep_status(tmp_path, submission)
        assert (before.total, before.done, before.claimed) == (6, 0, 0)
        assert before.pending == 6 and not before.complete
        report = run_worker(tmp_path, submission, max_cells=2)
        assert len(report.executed) == 2
        mid = sweep_status(tmp_path, submission)
        assert mid.done == 2 and mid.missing == (2, 3, 4, 5)
        run_worker(tmp_path, submission)
        after = sweep_status(tmp_path, submission)
        assert after.complete and after.missing == ()

    def test_second_worker_sees_warm_store(self, tmp_path):
        sweep = fleet_sweep()
        first = run_worker(tmp_path, sweep)
        assert len(first.executed) == sweep.num_cells
        second = run_worker(tmp_path, sweep)
        assert second.executed == ()
        assert second.cached == sweep.num_cells

    def test_collect_timeout_names_missing_cells(self, tmp_path):
        sweep = fleet_sweep()
        submission = submit_sweep(sweep, tmp_path)
        run_worker(tmp_path, submission, max_cells=4)
        with pytest.raises(SweepError, match=r"2/6 cells"):
            collect(tmp_path, submission, timeout=0)
        assert not artifact_path(tmp_path, submission.key).exists()

    def test_collect_records_provenance(self, tmp_path):
        sweep = fleet_sweep()
        run_worker(tmp_path, sweep, host="prov-worker")
        result = collect(tmp_path, sweep, timeout=0, host="prov-reducer")
        assert result.hosts == ("prov-worker",) * sweep.num_cells
        assert result.reduced_by == "prov-reducer"
        assert len(result.elapsed) == sweep.num_cells
        # Provenance is excluded from the digest.
        on_disk = json.loads(artifact_path(tmp_path, result.key).read_text())
        assert on_disk["digest"] == result.digest
        assert on_disk["provenance"]["reduced_by"] == "prov-reducer"


class TestFailureIsolation:
    def test_failing_cells_reported_not_stored(self, tmp_path):
        sweep = fleet_sweep(measure="pytest-fleet-fail-at-d3")
        report = run_worker(tmp_path, sweep)
        assert len(report.failures) == 3  # the d=3 replicas
        assert not report.ok
        assert len(report.executed) == 3  # the healthy d=2 replicas
        assert len(ResultStore(tmp_path)) == 3  # failures don't poison
        # No claims linger on the failed cells.
        assert list(ResultStore(tmp_path).claims()) == []
        with pytest.raises(SweepError, match="cell 3"):
            report.raise_if_failed()

    def test_run_fleet_surfaces_worker_failures(self, tmp_path):
        sweep = fleet_sweep(measure="pytest-fleet-fail-at-d3")
        with pytest.raises(SweepError, match="exploded"):
            run_fleet(sweep, tmp_path, workers=2)


def _doomed_worker(store: str, key: str, ttl: float) -> None:
    run_worker(store, key, ttl=ttl)


class TestCrashRecovery:
    def test_killed_worker_leaves_store_consistent_and_takeoverable(
        self, tmp_path
    ):
        marker = tmp_path / "killed.marker"
        sweep = fleet_sweep(
            measure="pytest-fleet-kill-once",
            measure_params={"marker": str(marker)},
        )
        store_dir = tmp_path / "store"
        submission = submit_sweep(sweep, store_dir)

        ctx = multiprocessing.get_context("fork")
        doomed = ctx.Process(
            target=_doomed_worker,
            args=(str(store_dir), submission.key, 0.5),
        )
        doomed.start()
        doomed.join(timeout=60)
        assert doomed.exitcode == 1  # died mid-cell via os._exit
        assert marker.exists()

        # Consistency: every stored entry parses and serves; the killed
        # cell left no result, only (at most) a stale claim; no staging
        # temp files are visible to readers.
        store = ResultStore(store_dir)
        done_before = 0
        for task in submission.tasks():
            payload = store.get(task.key)
            if payload is not None:
                done_before += 1
                assert payload["value"]["d"] == 2
        assert done_before == 3  # cells 0..2 (d=2) committed before the kill
        status = sweep_status(store_dir, submission)
        assert status.done == 3 and not status.complete
        # The dead worker batch-claimed the whole grid up front (claims
        # release cell-by-cell as results commit), so the mid-cell kill
        # leaves the executing cell's claim plus the unexecuted rest of
        # the batch — all expiring after one TTL.
        assert len(list(store.claims())) == 3

        # Takeover: a healthy worker waits out the 0.5s TTL, claims the
        # dead worker's cell, and completes the grid.
        rescue = run_worker(
            store_dir, submission, host="rescuer", ttl=5.0, wait=30.0
        )
        assert rescue.ok
        assert len(rescue.executed) == 3  # the three d=3 cells
        final = sweep_status(store_dir, submission)
        assert final.complete
        result = collect(store_dir, submission, timeout=0)
        assert len(result.values) == sweep.num_cells
        assert list(store.claims()) == []  # takeover released the claim
