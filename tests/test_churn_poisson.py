"""Tests for the Poisson churn jump chain (Lemmas 4.4, 4.6, 4.7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.churn.poisson import PoissonJumpChain
from repro.errors import ConfigurationError
from repro.util.rng import make_rng


class TestConstruction:
    def test_n_shorthand(self):
        chain = PoissonJumpChain(lam=1.0, n=100)
        assert chain.mu == pytest.approx(0.01)
        assert chain.expected_size == pytest.approx(100.0)

    def test_mu_direct(self):
        chain = PoissonJumpChain(lam=2.0, mu=0.5)
        assert chain.expected_size == pytest.approx(4.0)

    def test_both_params_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonJumpChain(lam=1.0, mu=0.1, n=10)

    def test_neither_param_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonJumpChain(lam=1.0)

    def test_nonpositive_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            PoissonJumpChain(lam=0.0, n=10)
        with pytest.raises(ConfigurationError):
            PoissonJumpChain(lam=1.0, n=-5)


class TestProbabilities:
    """Lemma 4.6's transition probabilities."""

    def test_birth_death_sum_to_one(self):
        chain = PoissonJumpChain(lam=1.0, n=50)
        for n_alive in [0, 1, 10, 100]:
            total = chain.birth_probability(n_alive) + chain.death_probability(n_alive)
            assert total == pytest.approx(1.0)

    def test_empty_network_always_births(self):
        chain = PoissonJumpChain(lam=1.0, n=50)
        assert chain.birth_probability(0) == pytest.approx(1.0)

    def test_lemma_46_death_formula(self):
        chain = PoissonJumpChain(lam=1.0, n=100)
        n_alive = 100
        expected = (n_alive * chain.mu) / (n_alive * chain.mu + chain.lam)
        assert chain.death_probability(n_alive) == pytest.approx(expected)

    def test_fixed_node_death_probability(self):
        chain = PoissonJumpChain(lam=1.0, n=100)
        assert chain.fixed_node_death_probability(
            100
        ) == pytest.approx(chain.death_probability(100) / 100)

    def test_fixed_node_death_empty(self):
        chain = PoissonJumpChain(lam=1.0, n=100)
        assert chain.fixed_node_death_probability(0) == 0.0

    def test_stationary_probabilities_near_half(self):
        """Lemma 4.7: at N ≈ n both jump probabilities are in [0.47, 0.53]."""
        chain = PoissonJumpChain(lam=1.0, n=1000)
        for n_alive in [900, 1000, 1100]:
            assert 0.47 <= chain.birth_probability(n_alive) <= 0.53
            assert 0.47 <= chain.death_probability(n_alive) <= 0.53

    def test_fixed_death_bounds_lemma_47(self):
        """Lemma 4.7: fixed-node next-round death prob in [1/2.2n, 1/1.8n]."""
        n = 1000
        chain = PoissonJumpChain(lam=1.0, n=n)
        for n_alive in [900, 1000, 1100]:
            p = chain.fixed_node_death_probability(n_alive)
            assert 1 / (2.2 * n) <= p <= 1 / (1.8 * n)


class TestSampling:
    def test_next_event_dt_positive(self):
        chain = PoissonJumpChain(lam=1.0, n=10)
        rng = make_rng(0)
        for _ in range(100):
            event = chain.next_event(5, rng)
            assert event.dt > 0

    def test_birth_frequency_matches_probability(self):
        chain = PoissonJumpChain(lam=1.0, n=100)
        rng = make_rng(1)
        n_alive = 100
        births = sum(chain.next_event(n_alive, rng).is_birth for _ in range(20000))
        assert births / 20000 == pytest.approx(chain.birth_probability(n_alive), abs=0.02)

    def test_mean_waiting_time(self):
        chain = PoissonJumpChain(lam=1.0, n=100)
        rng = make_rng(2)
        n_alive = 100
        dts = [chain.next_event(n_alive, rng).dt for _ in range(20000)]
        expected = 1.0 / chain.total_rate(n_alive)
        assert np.mean(dts) == pytest.approx(expected, rel=0.05)

    def test_negative_alive_rejected(self):
        chain = PoissonJumpChain(lam=1.0, n=10)
        with pytest.raises(ValueError):
            chain.next_event(-1, make_rng(0))

    def test_lifetime_mean(self):
        chain = PoissonJumpChain(lam=1.0, n=50)
        rng = make_rng(3)
        lifetimes = [chain.sample_lifetime(rng) for _ in range(20000)]
        assert np.mean(lifetimes) == pytest.approx(50.0, rel=0.05)
