"""Tests for repro.util.stats."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import (
    exponential_decay_fit,
    fraction_true,
    geometric_growth_rate,
    linear_fit,
    log_scaling_fit,
    mean_confidence_interval,
    summarize,
)


class TestConfidenceInterval:
    def test_mean(self):
        ci = mean_confidence_interval([1.0, 2.0, 3.0])
        assert ci.mean == pytest.approx(2.0)

    def test_interval_contains_mean(self):
        ci = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert ci.low < ci.mean < ci.high

    def test_single_sample_has_nan_width(self):
        ci = mean_confidence_interval([5.0])
        assert math.isnan(ci.half_width)

    def test_zero_variance(self):
        ci = mean_confidence_interval([2.0] * 10)
        assert ci.half_width == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_str_formats(self):
        assert "±" in str(mean_confidence_interval([1.0, 2.0]))


class TestLinearFit:
    def test_exact_line(self):
        fit = linear_fit([0, 1, 2, 3], [1, 3, 5, 7])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = linear_fit([0, 1], [0, 2])
        assert fit.predict(3) == pytest.approx(6.0)

    def test_flat_line_r2(self):
        fit = linear_fit([0, 1, 2], [5, 5, 5])
        assert fit.slope == pytest.approx(0.0, abs=1e-12)
        assert fit.r_squared == pytest.approx(1.0)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1, 2])

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1])


class TestLogScalingFit:
    def test_recovers_log_law(self):
        ns = [100, 200, 400, 800, 1600]
        values = [3.0 * math.log(n) + 1.5 for n in ns]
        fit = log_scaling_fit(ns, values)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(1.5)
        assert fit.r_squared > 0.999


class TestExponentialDecayFit:
    def test_recovers_rate(self):
        ds = [4, 8, 12, 16, 20]
        residuals = [math.exp(-0.5 * d) for d in ds]
        fit = exponential_decay_fit(ds, residuals)
        assert fit.slope == pytest.approx(-0.5)

    def test_zero_residual_clamped(self):
        fit = exponential_decay_fit([1, 2, 3], [0.1, 0.01, 0.0])
        assert math.isfinite(fit.slope)


class TestGeometricGrowthRate:
    def test_constant_factor(self):
        sizes = [1, 3, 9, 27, 81]
        assert geometric_growth_rate(sizes) == pytest.approx(3.0)

    def test_dead_process_is_nan(self):
        assert math.isnan(geometric_growth_rate([0, 0, 0]))

    def test_ignores_zero_pairs(self):
        assert geometric_growth_rate([0, 2, 4]) == pytest.approx(2.0)


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["mean"] == pytest.approx(2.5)
        assert s["median"] == pytest.approx(2.5)
        assert s["count"] == 4

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])


class TestFractionTrue:
    def test_basic(self):
        assert fraction_true([True, False, True, True]) == pytest.approx(0.75)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            fraction_true([])


@settings(max_examples=100, deadline=None)
@given(
    slope=st.floats(-5, 5),
    intercept=st.floats(-10, 10),
    xs=st.lists(st.floats(0, 100), min_size=3, max_size=20, unique=True).filter(
        # Exact recovery needs identifiable data: with all xs within a
        # hair of each other, slope*x underflows below float resolution
        # and no fitter can tell the line's slope from the samples.
        lambda xs: max(xs) - min(xs) >= 1e-3
    ),
)
def test_property_linear_fit_recovers_exact_lines(slope, intercept, xs):
    ys = [slope * x + intercept for x in xs]
    fit = linear_fit(xs, ys)
    assert fit.slope == pytest.approx(slope, abs=1e-6)
    assert fit.intercept == pytest.approx(intercept, abs=1e-5)
