"""Interface-layer tests: the ``sweep`` subcommands, the CLI split
(``repro.cli`` owning what ``repro.experiments.__main__`` re-exports),
and the thin-shim contract."""

from __future__ import annotations

import json

import pytest

from repro.cli.main import main as cli_main
from repro.experiments.__main__ import main as legacy_main
from repro.scenario import ScenarioSpec
from repro.sweep import SweepSpec, measurement
from repro.util.rng import SeedLike, make_rng


@measurement("pytest-cli-echo")
def cli_echo(spec: ScenarioSpec, seed: SeedLike) -> dict:
    return {"draw": float(make_rng(seed).random()), "d": spec.d}


@pytest.fixture
def sweep_file(tmp_path):
    document = {
        "base": {
            "churn": "streaming",
            "policy": "none",
            "n": 40,
            "d": 2,
            "horizon": 10,
        },
        "axes": [{"field": "d", "values": [2, 3]}],
        "replicas": 2,
        "seed": 0,
        "stream": "pytest-cli",
        "measure": "pytest-cli-echo",
    }
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps(document))
    return path


def _last_json(captured: str) -> dict:
    """The machine-readable payload: the trailing JSON object on stdout."""
    start = captured.index("{")
    return json.loads(captured[start:])


class TestShim:
    def test_legacy_module_is_a_thin_reexport(self):
        # Both entry points must be the same callable, so behavior can
        # never drift between `python -m repro.experiments` and
        # `python -m repro.cli`.
        assert legacy_main is cli_main

    def test_legacy_helpers_still_importable(self):
        from repro.experiments.__main__ import (  # noqa: F401
            run_restore,
            run_scenario_file,
            run_sweep_file,
        )

    def test_list_still_works_through_both(self, capsys):
        assert legacy_main(["--list"]) == 0
        assert "EXP-01" in capsys.readouterr().out


class TestSweepRun:
    def test_sequential_and_parallel_digests_match(
        self, tmp_path, sweep_file, capsys
    ):
        assert cli_main(
            ["sweep", "run", str(sweep_file), "--store", str(tmp_path / "s1")]
        ) == 0
        solo = _last_json(capsys.readouterr().out)
        assert cli_main(
            [
                "sweep", "run", str(sweep_file),
                "--store", str(tmp_path / "s2"), "--workers", "2",
            ]
        ) == 0
        duo = _last_json(capsys.readouterr().out)
        assert solo["digest"] == duo["digest"]
        assert solo["key"] == duo["key"]
        assert solo["cells"] == duo["cells"] == 4

    def test_values_flag_prints_canonical_values(
        self, tmp_path, sweep_file, capsys
    ):
        assert cli_main(
            [
                "sweep", "run", str(sweep_file),
                "--store", str(tmp_path), "--values",
            ]
        ) == 0
        out = capsys.readouterr().out
        values = json.loads(out[out.index("[") :])
        assert len(values) == 4
        assert [v["d"] for v in values] == [2, 2, 3, 3]

    def test_backend_flag_changes_the_key(self, tmp_path, sweep_file, capsys):
        assert cli_main(
            [
                "sweep", "run", str(sweep_file),
                "--store", str(tmp_path / "d"), "--backend", "dict",
            ]
        ) == 0
        dict_key = _last_json(capsys.readouterr().out)["key"]
        assert cli_main(
            [
                "sweep", "run", str(sweep_file),
                "--store", str(tmp_path / "a"), "--backend", "array",
            ]
        ) == 0
        array_key = _last_json(capsys.readouterr().out)["key"]
        assert dict_key != array_key


class TestWorkerReduceStatus:
    def test_two_terminal_flow(self, tmp_path, sweep_file, capsys):
        store = str(tmp_path / "shared")
        # Terminal 1: a worker drains the grid.
        assert cli_main(["sweep", "worker", str(sweep_file), "--store", store]) == 0
        capsys.readouterr()
        # Terminal 2: the reducer finds the grid complete and writes the
        # artifact; a second worker would have found only cached cells.
        assert cli_main(
            ["sweep", "reduce", str(sweep_file), "--store", store, "--timeout", "0"]
        ) == 0
        summary = _last_json(capsys.readouterr().out)
        assert summary["cells"] == 4

        # The bare key round-trips through status (submitted spec doc).
        assert cli_main(["sweep", "status", summary["key"], "--store", store]) == 0
        assert "4/4 done" in capsys.readouterr().out

    def test_status_incomplete_exits_nonzero(self, tmp_path, sweep_file, capsys):
        store = str(tmp_path / "empty")
        assert cli_main(
            ["sweep", "status", str(sweep_file), "--store", store, "--json"]
        ) == 1
        census = _last_json(capsys.readouterr().out)
        assert census["done"] == 0
        assert census["pending"] == 4
        assert not census["complete"]

    def test_reduce_timeout_fails_cleanly(self, tmp_path, sweep_file, capsys):
        assert cli_main(
            [
                "sweep", "reduce", str(sweep_file),
                "--store", str(tmp_path), "--timeout", "0",
            ]
        ) == 1
        assert "incomplete" in capsys.readouterr().err

    def test_bad_spec_operand_fails_cleanly(self, tmp_path, capsys):
        assert cli_main(
            ["sweep", "status", "no-such-file.json", "--store", str(tmp_path)]
        ) == 1
        assert "neither" in capsys.readouterr().err
