"""Tests for trace-driven churn: repro.churn.trace, the ``trace`` churn
model, and the ``record_trace`` observer.

The headline contract: a trace recorded from *any* scenario replays
through ``churn="trace"`` with an identical population trajectory —
the same alive set at every instant from the recorder's attach point on
— composable with every edge policy.
"""

from __future__ import annotations

import json

import pytest

from repro.churn.trace import ChurnTrace, TraceEvent
from repro.errors import ConfigurationError
from repro.scenario import ScenarioSpec, Simulation, build_network
from repro.service import TraceRecorder


def _join(t, node_id):
    return {"t": float(t), "op": "join", "id": node_id}


def _leave(t, node_id):
    return {"t": float(t), "op": "leave", "id": node_id}


class TestChurnTrace:
    def test_round_trip_through_jsonl(self, tmp_path):
        trace = ChurnTrace.from_dicts(
            [_join(0, 0), _join(0.5, 1), _leave(2, 0), _join(2, 2)]
        )
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        # One JSON object per line, loadable line by line.
        lines = path.read_text().strip().split("\n")
        assert [json.loads(line) for line in lines] == trace.to_dicts()
        assert ChurnTrace.load(path) == trace

    def test_iteration_yields_events(self):
        trace = ChurnTrace.from_dicts([_join(0, 7)])
        assert list(trace) == [TraceEvent(time=0.0, op="join", node_id=7)]
        assert len(trace) == 1
        assert trace.max_id == 7
        assert trace.end_time == 0.0

    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigurationError, match="op"):
            ChurnTrace.from_dicts([{"t": 0.0, "op": "jump", "id": 1}])

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="key"):
            ChurnTrace.from_dicts([{"t": 0.0, "op": "join", "id": 1, "x": 2}])

    def test_decreasing_times_rejected(self):
        with pytest.raises(ConfigurationError, match="goes backwards"):
            ChurnTrace.from_dicts([_join(3, 0), _join(2, 1)])

    def test_double_join_rejected(self):
        with pytest.raises(ConfigurationError, match="already present"):
            ChurnTrace.from_dicts([_join(0, 0), _join(1, 0)])

    def test_leave_without_join_rejected(self):
        with pytest.raises(ConfigurationError, match="leaves while absent"):
            ChurnTrace.from_dicts([_leave(0, 5)])


class TestTraceChurnModel:
    def test_registry_requires_exactly_one_source(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            ScenarioSpec(churn="trace", n=10, d=2, churn_params={})
        with pytest.raises(ConfigurationError, match="exactly one"):
            ScenarioSpec(
                churn="trace",
                n=10,
                d=2,
                churn_params={"path": "x.jsonl", "events": []},
            )

    def test_inline_events_validated_at_spec_time(self):
        with pytest.raises(ConfigurationError, match="leaves while absent"):
            ScenarioSpec(
                churn="trace", n=10, d=2, churn_params={"events": [_leave(0, 1)]}
            )

    def test_replay_from_path(self, tmp_path, backend_name):
        path = tmp_path / "trace.jsonl"
        ChurnTrace.from_dicts([_join(t, t) for t in range(8)]).save(path)
        spec = ScenarioSpec(
            churn="trace",
            policy="regen",
            n=8,
            d=2,
            horizon=8,
            churn_params={"path": str(path)},
            backend=backend_name,
            seed=0,
        )
        sim = Simulation(spec).run()
        assert sim.network.num_alive() == 8
        assert sim.network.exhausted

    def test_replay_population_trajectory(self, backend_name):
        events = [_join(t, t) for t in range(6)] + [
            _leave(6, 0),
            _leave(7, 3),
            _join(7, 10),
        ]
        spec = ScenarioSpec(
            churn="trace",
            policy="regen",
            n=6,
            d=2,
            horizon=8,
            churn_params={"events": events},
            backend=backend_name,
            seed=1,
        )
        sim = Simulation(spec, observers=["size"])
        sizes = []
        for _ in range(8):
            sim.network.advance_round()
            sizes.append(sim.network.num_alive())
        # Round k covers (k-1, k]; the t=0 join is applied in round 1
        # together with the t=1 join, hence the leading 2.
        assert sizes == [2, 3, 4, 5, 6, 5, 5, 5]
        assert sorted(sim.network.state.alive_ids()) == [1, 2, 4, 5, 10]

    def test_ids_beyond_trace_do_not_collide(self, backend_name):
        # Policies may allocate nodes after the trace's ids; the floor
        # guarantees fresh ids never collide with replayed ones.
        events = [_join(0, 100)]
        spec = ScenarioSpec(
            churn="trace",
            policy="regen",
            n=2,
            d=1,
            horizon=1,
            churn_params={"events": events},
            backend=backend_name,
        )
        network = build_network(spec, seed=0)
        assert network.state.allocate_id() > 100


class TestRecordReplay:
    @pytest.mark.parametrize(
        "churn,params",
        [
            ("streaming", {}),
            ("general", {"lifetime": "pareto"}),
            ("poisson", {}),
        ],
    )
    def test_recorded_trace_replays_population_exactly(
        self, backend_name, churn, params
    ):
        spec = ScenarioSpec(
            churn=churn,
            policy="regen",
            n=30,
            d=3,
            horizon=12,
            churn_params=params,
            backend=backend_name,
            seed=21,
        )
        recorder = TraceRecorder()
        original = Simulation(spec, observers=[recorder, "size"]).run()
        trace = recorder.trace()
        observed = original.results()["size"]
        # The recorded population trajectory, keyed by round boundary.
        expected = dict(zip(observed["times"], observed["sizes"]))

        replay_spec = ScenarioSpec(
            churn="trace",
            policy="regen",
            n=30,
            d=3,
            horizon=original.network.now,
            churn_params={"events": trace.to_dicts()},
            backend=backend_name,
            seed=99,  # different seed: wiring differs, population must not
        )
        replay = Simulation(replay_spec)
        replayed = {}
        for _ in range(int(original.network.now)):
            replay.network.advance_round()
            replayed[replay.network.now] = replay.network.num_alive()
        # The alive count matches at every observed round boundary, and
        # the final alive sets are identical node for node.
        for t, size in expected.items():
            assert replayed[t] == size
        assert sorted(replay.network.state.alive_ids()) == sorted(
            original.network.state.alive_ids()
        )

    def test_recorder_streams_jsonl(self, tmp_path):
        path = tmp_path / "rec.jsonl"
        spec = ScenarioSpec(
            churn="streaming", policy="regen", n=10, d=2, horizon=5, seed=0
        )
        Simulation(spec, observers=[TraceRecorder(path=str(path))]).run()
        records = [
            json.loads(line) for line in path.read_text().strip().split("\n")
        ]
        # 10 initial joins + 5 rounds of one replacement (join + leave).
        assert len(records) == 10 + 10
        ChurnTrace.from_dicts(records)  # validates as a replayable trace

    def test_recorder_rejects_every_zero(self):
        with pytest.raises(ConfigurationError, match="every >= 1"):
            TraceRecorder(every=0)
