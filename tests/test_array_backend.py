"""Unit tests for the array slot-store backend.

Parity with the dict backend is covered by test_backend_parity; these
tests exercise the array backend's own machinery — row recycling, array
growth, the lazy CSR, the vectorized boundary, and the batched churn
paths — including the corners the parity traces may not hit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.array_backend import ArraySlotBackend
from repro.core.backend import create_backend, default_backend_name, use_backend
from repro.core.edge_policy import CappedRegenerationPolicy, RegenerationPolicy
from repro.core.graph import DictBackend
from repro.errors import ConfigurationError, SimulationError
from repro.models.streaming import SDGR


def build_triangle() -> ArraySlotBackend:
    state = ArraySlotBackend(initial_capacity=2, slot_width=1)
    for _ in range(3):
        state.add_node(state.allocate_id(), birth_time=0.0, num_slots=1)
    state.assign_slot(0, 0, 1)
    state.assign_slot(1, 0, 2)
    state.assign_slot(2, 0, 0)
    return state


class TestBasics:
    def test_triangle_queries(self):
        state = build_triangle()
        assert state.num_alive() == 3
        assert state.num_edges() == 3
        assert state.neighbors(0) == {1, 2}
        assert state.degree(1) == 2
        assert state.in_slot_count(2) == 1
        assert state.out_slots_of(2) == [0]
        assert state.has_edge(0, 1) and state.has_edge(1, 0)
        assert not state.has_edge(0, 3)
        state.check_invariants()

    def test_parallel_slots_collapse_to_one_edge(self):
        state = ArraySlotBackend(initial_capacity=2, slot_width=2)
        state.add_node(0, birth_time=0.0, num_slots=2)
        state.add_node(1, birth_time=0.0, num_slots=2)
        state.assign_slot(0, 0, 1)
        state.assign_slot(0, 1, 1)
        assert state.num_edges() == 1
        assert state.degree(0) == 1
        state.clear_slot(0, 0)
        assert state.num_edges() == 1  # still supported by slot 1
        state.clear_slot(0, 1)
        assert state.num_edges() == 0
        state.check_invariants()

    def test_error_paths_match_dict_backend(self):
        state = build_triangle()
        with pytest.raises(SimulationError):
            state.add_node(0, birth_time=0.0, num_slots=1)
        with pytest.raises(SimulationError):
            state.assign_slot(0, 0, 2)  # already assigned
        state.clear_slot(0, 0)
        with pytest.raises(SimulationError):
            state.assign_slot(0, 0, 0)  # self-loop
        with pytest.raises(SimulationError):
            state.assign_slot(0, 0, 99)  # not alive
        with pytest.raises(SimulationError):
            state.remove_node(99, death_time=0.0)

    def test_out_slots_of_returns_a_copy(self, backend_name):
        state = create_backend(backend_name)
        state.add_node(0, birth_time=0.0, num_slots=1)
        state.add_node(1, birth_time=0.0, num_slots=1)
        state.assign_slot(0, 0, 1)
        slots = state.out_slots_of(0)
        slots[0] = None  # mutating the returned list must not touch state
        assert state.out_slots_of(0) == [1]
        state.check_invariants()

    def test_record_synthesis(self):
        state = build_triangle()
        record = state.record(1)
        assert record.node_id == 1
        assert record.out_slots == [2]
        assert record.is_alive
        state.remove_node(1, death_time=1.0)
        with pytest.raises(SimulationError):
            state.record(1)


class TestRecyclingAndGrowth:
    def test_rows_are_recycled(self):
        state = ArraySlotBackend(initial_capacity=4, slot_width=1)
        for _ in range(3):
            state.add_node(state.allocate_id(), 0.0, 1)
        row = state.row_for(1)
        state.remove_node(1, death_time=1.0)
        new_id = state.allocate_id()
        state.add_node(new_id, 2.0, 1)
        assert state.row_for(new_id) == row  # LIFO free list reuses the row
        assert state.birth_time(new_id) == 2.0
        assert state.in_slot_count(new_id) == 0
        assert state.out_slots_of(new_id) == [None]
        state.check_invariants()

    def test_capacity_growth_preserves_topology(self):
        state = ArraySlotBackend(initial_capacity=1, slot_width=1)
        rng = np.random.default_rng(0)
        policy = RegenerationPolicy(2)
        for _ in range(50):
            policy.handle_birth(state, state.allocate_id(), 0.0, rng)
        assert state.row_capacity() >= 50
        state.check_invariants()
        before = state.snapshot(0.0).to_dict()
        state.add_node(state.allocate_id(), 0.0, num_slots=6)  # widens columns
        state.check_invariants()
        after = state.snapshot(0.0)
        for u, nbrs in before["adjacency"].items():
            assert sorted(after.adjacency[int(u)]) == nbrs

    def test_memory_stays_bounded_under_churn(self):
        net = SDGR(n=16, d=2, seed=0, backend="array")
        cap_after_warm = net.state.row_capacity()
        net.run_rounds(400)  # 400 deaths + births through the free list
        assert net.state.row_capacity() == cap_after_warm
        net.state.check_invariants()


class TestVectorizedReads:
    def test_degree_vector_matches_per_node_degrees(self):
        net = SDGR(n=30, d=3, seed=1, backend="array")
        degs = net.state.degree_vector()
        for node_id, deg in zip(net.state.alive_ids(), degs):
            assert net.state.degree(node_id) == deg

    def test_boundary_of_matches_reference(self):
        net = SDGR(n=40, d=3, seed=2, backend="array")
        ids = net.state.alive_ids()
        for subset in (ids[:1], ids[:7], ids[: len(ids) // 2], ids):
            # Generic set-union implementation from the base class.
            generic = super(ArraySlotBackend, net.state).boundary_of(subset)
            assert net.state.boundary_of(subset) == generic

    def test_csr_is_rebuilt_lazily(self):
        state = build_triangle()
        state.num_edges()
        first_epoch = state._csr_epoch
        state.num_edges()
        assert state._csr_epoch == first_epoch  # cached, no rebuild
        state.clear_slot(0, 0)
        state.num_edges()
        assert state._csr_epoch != first_epoch  # mutation invalidates

    def test_snapshot_equals_dict_snapshot(self):
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
        a, b = DictBackend(), ArraySlotBackend(initial_capacity=2, slot_width=3)
        policy_a, policy_b = RegenerationPolicy(3), RegenerationPolicy(3)
        for _ in range(20):
            policy_a.handle_birth(a, a.allocate_id(), 1.0, rng_a)
            policy_b.handle_birth(b, b.allocate_id(), 1.0, rng_b)
        assert a.snapshot(9.0).to_dict() == b.snapshot(9.0).to_dict()


class TestBatchedChurn:
    def test_apply_births_marginals(self):
        """Batched births reproduce the sequential birth law (smoke check
        of sizes and structure; the law itself is uniform-with-replacement
        over the pre-existing pool)."""
        state = ArraySlotBackend(initial_capacity=8, slot_width=2)
        rng = np.random.default_rng(0)
        ids = state.allocate_ids(500)
        state.apply_births(ids, times=0.0, num_slots=2, rng=rng)
        assert state.num_alive() == 500
        state.check_invariants()
        # First node had no candidates; everyone else filled both slots.
        assert state.out_slots_of(0) == [None, None]
        filled = [
            sum(1 for s in state.out_slots_of(u) if s is not None) for u in ids[1:]
        ]
        assert all(f == 2 for f in filled)
        # Newborn k can only point at earlier nodes.
        for u in ids[1:]:
            assert all(t < u for t in state.out_slots_of(u) if t is not None)

    def test_apply_births_generic_fallback_matches_sequential(self):
        """The dict backend's generic batch path consumes the RNG exactly
        like per-node handle_birth, so the two are bit-identical."""
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        a, b = DictBackend(), DictBackend()
        policy = RegenerationPolicy(2)
        for node_id in a.allocate_ids(30):
            policy.handle_birth(a, node_id, float(node_id), rng_a)
        b.apply_births(b.allocate_ids(30), np.arange(30.0), 2, rng_b)
        assert a.snapshot(50.0).to_dict() == b.snapshot(50.0).to_dict()

    def test_apply_deaths_batch(self):
        state = ArraySlotBackend(initial_capacity=8, slot_width=2)
        rng = np.random.default_rng(1)
        policy = RegenerationPolicy(2)
        for node_id in state.allocate_ids(30):
            policy.handle_birth(state, node_id, 0.0, rng)
        victims = [3, 4, 5, 6]
        orphans = state.apply_deaths(victims, death_time=1.0)
        assert all(not state.is_alive(v) for v in victims)
        # Orphans belong to survivors only, and their slots are cleared.
        for source, slot_index in orphans:
            assert state.is_alive(source)
            assert state.out_slots_of(source)[slot_index] is None
        state.check_invariants()

    def test_batched_warm_matches_model_distribution(self):
        """fast_warm builds a full-size network with the right shape."""
        net = SDGR(n=200, d=4, seed=6, backend="array", fast_warm=True)
        assert net.num_alive() == 200
        assert net.round_number == 200
        assert net.now == 200.0
        net.state.check_invariants()
        # Regeneration holds from here on: run churn rounds and re-check.
        net.run_rounds(50)
        net.state.check_invariants()
        degs = net.state.degree_vector()
        assert degs.mean() == pytest.approx(2 * 4, rel=0.25)

    def test_apply_births_rejects_duplicate_ids(self):
        state = ArraySlotBackend(initial_capacity=4, slot_width=1)
        rng = np.random.default_rng(0)
        state.apply_births([0, 1, 2], times=0.0, num_slots=1, rng=rng)
        with pytest.raises(SimulationError):
            state.apply_births([2], times=1.0, num_slots=1, rng=rng)
        with pytest.raises(SimulationError):
            state.apply_births([5, 5], times=1.0, num_slots=1, rng=rng)
        state.check_invariants()

    def test_handle_deaths_batch_parity(self):
        """Policy-level batched deaths: identical topology on both
        backends, and one aggregate NodesDied record carrying every
        victim and all regenerated edges."""
        rng_a, rng_b = np.random.default_rng(2), np.random.default_rng(2)
        pa, pb = RegenerationPolicy(2), RegenerationPolicy(2)
        a, b = DictBackend(), ArraySlotBackend(initial_capacity=4, slot_width=2)
        for node_id in a.allocate_ids(25):
            pa.handle_birth(a, node_id, 0.0, rng_a)
        for node_id in b.allocate_ids(25):
            pb.handle_birth(b, node_id, 0.0, rng_b)
        victims = [2, 9, 17]
        ra = pa.handle_deaths(a, victims, 1.0, rng_a)
        rb = pb.handle_deaths(b, victims, 1.0, rng_b)
        for record in (ra, rb):
            assert record.is_death and not record.is_birth
            assert record.node_ids == tuple(victims)
            with pytest.raises(ValueError):
                record.node_id
        assert [e.endpoints() for e in ra.edges_created] == [
            e.endpoints() for e in rb.edges_created
        ]
        # Destroyed edges are recorded once each, victim–victim included.
        destroyed_a = {tuple(sorted(e.endpoints())) for e in ra.edges_destroyed}
        destroyed_b = {tuple(sorted(e.endpoints())) for e in rb.edges_destroyed}
        assert destroyed_a == destroyed_b
        assert len(destroyed_a) == len(ra.edges_destroyed)  # deduped
        assert all(set(pair) & set(victims) for pair in destroyed_a)
        # Regenerated edges never target a same-batch victim.
        assert all(
            set(e.endpoints()).isdisjoint(victims) for e in ra.edges_created
        )
        assert a.snapshot(2.0).to_dict() == b.snapshot(2.0).to_dict()
        a.check_invariants()
        b.check_invariants()

    def test_capped_policy_rejects_batch_path(self):
        policy = CappedRegenerationPolicy(d=2, max_in_degree=3)
        assert not policy.supports_batch_birth
        state = ArraySlotBackend()
        rng = np.random.default_rng(0)
        policy.handle_births(state, state.allocate_ids(40), 0.0, rng)
        assert state.num_alive() == 40
        assert all(state.in_slot_count(u) <= 3 for u in state.alive_ids())
        state.check_invariants()


class TestBackendAnalysis:
    def test_live_degree_summary_matches_snapshot_summary(self, backend_name):
        from repro.analysis.degrees import degree_summary, live_degree_summary

        net = SDGR(n=50, d=3, seed=8, backend=backend_name)
        live = live_degree_summary(net.state)
        snap = degree_summary(net.snapshot())
        assert live == snap

    def test_probe_network_expansion_matches_snapshot_probe(self, backend_name):
        from repro.analysis.expansion import (
            adversarial_expansion_upper_bound,
            probe_network_expansion,
        )

        # d=2 produces heavy degree ties, stressing the (degree, id)
        # tie-break contract shared by the two paths.
        for n, d in [(60, 6), (80, 2)]:
            net = SDGR(n=n, d=d, seed=9, backend=backend_name)
            fast = probe_network_expansion(net, seed=1)
            reference = adversarial_expansion_upper_bound(net.snapshot(), seed=1)
            # Same candidate portfolio scored either way: identical minimum.
            assert fast.min_ratio == pytest.approx(reference.min_ratio)


class TestFactory:
    def test_every_driver_accepts_backend_kwarg(self):
        from repro.baselines import CentralCacheNetwork, TokenNetwork
        from repro.churn.lifetime import ExponentialLifetime
        from repro.models.general import GDG, GDGR
        from repro.p2p import BitcoinLikeNetwork

        drivers = [
            GDG(ExponentialLifetime(20), d=2, seed=0, warm_time=10.0, backend="array"),
            GDGR(ExponentialLifetime(20), d=2, seed=0, warm_time=10.0, backend="array"),
            CentralCacheNetwork(n=12, d=2, seed=0, backend="array"),
            TokenNetwork(n=12, d=2, seed=0, backend="array"),
            BitcoinLikeNetwork(n=12, seed=0, warm_time=5.0, backend="array"),
        ]
        for net in drivers:
            assert isinstance(net.state, ArraySlotBackend)
            net.state.check_invariants()

    def test_create_backend_names(self):
        assert isinstance(create_backend("dict"), DictBackend)
        assert isinstance(create_backend("array"), ArraySlotBackend)
        with pytest.raises(ConfigurationError):
            create_backend("bogus")

    def test_instance_passthrough(self):
        state = ArraySlotBackend()
        assert create_backend(state) is state

    def test_use_backend_override(self):
        base = default_backend_name()
        with use_backend("array"):
            assert default_backend_name() == "array"
            assert isinstance(create_backend(), ArraySlotBackend)
            with use_backend(None):
                assert default_backend_name() == "array"
        assert default_backend_name() == base

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "array")
        assert default_backend_name() == "array"
        assert isinstance(create_backend(), ArraySlotBackend)
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(ConfigurationError):
            create_backend()
