"""Tests for the experiment harness (registry, CLI, quick runs)."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import all_experiments, get_experiment, run_experiment
from repro.experiments.__main__ import main as cli_main
from repro.experiments.common import ExperimentResult, Stopwatch, trial_seeds
from repro.util.rng import derive_seeds


class TestRegistry:
    def test_all_seventeen_registered(self):
        ids = [e.experiment_id for e in all_experiments()]
        assert ids == [f"EXP-{i:02d}" for i in range(1, 18)]

    def test_get_known(self):
        exp = get_experiment("EXP-01")
        assert "Isolated" in exp.title

    def test_get_unknown(self):
        with pytest.raises(ExperimentError):
            get_experiment("EXP-99")

    def test_paper_references_present(self):
        for exp in all_experiments():
            assert exp.paper_reference


class TestCommon:
    def test_trial_seeds_removed_with_pointed_message(self):
        with pytest.raises(ExperimentError, match="derive_seeds"):
            trial_seeds(0, 4)

    def test_named_streams_are_the_replacement(self):
        seeds = derive_seeds(0, "trials", 4)
        assert len(seeds) == 4
        states = [s.generate_state(1)[0] for s in seeds]
        assert len(set(states)) == 4

    def test_stopwatch(self):
        with Stopwatch() as watch:
            sum(range(1000))
        assert watch.elapsed >= 0.0

    def test_result_rendering(self):
        result = ExperimentResult(
            experiment_id="EXP-00",
            title="demo",
            paper_reference="none",
            columns=["a"],
            rows=[{"a": 1}],
            verdict={"ok": True, "value": 3.2},
            notes="a note",
        )
        text = result.to_text()
        assert "EXP-00" in text
        assert "a note" in text
        assert "verdict" in text

    def test_passed_checks_bools_only(self):
        good = ExperimentResult("E", "t", "p", [], verdict={"ok": True, "x": 0.5})
        bad = ExperimentResult("E", "t", "p", [], verdict={"ok": False, "x": 0.5})
        assert good.passed()
        assert not bad.passed()


class TestQuickRuns:
    """Each experiment runs green in quick mode (the full reproduction
    statement lives in EXPERIMENTS.md; these guard against regressions)."""

    @pytest.mark.parametrize(
        "experiment_id",
        [f"EXP-{i:02d}" for i in range(1, 18) if i != 12],
    )
    def test_quick_run_passes(self, experiment_id):
        result = run_experiment(experiment_id, quick=True, seed=0)
        assert result.rows, f"{experiment_id} produced no rows"
        assert result.passed(), (
            f"{experiment_id} failing verdict: {result.verdict}"
        )

    @pytest.mark.slow
    def test_table1_quick_run_passes(self):
        result = run_experiment("EXP-12", quick=True, seed=0)
        assert result.passed()


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "EXP-01" in out and "EXP-14" in out

    def test_default_is_list(self, capsys):
        assert cli_main([]) == 0
        assert "EXP-01" in capsys.readouterr().out

    def test_run_single(self, capsys):
        assert cli_main(["EXP-01", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "verdict" in out


class TestSweepCli:
    def _spec(self):
        from repro.scenario import ScenarioSpec
        from repro.sweep import SweepSpec

        return SweepSpec(
            base=ScenarioSpec(
                churn="streaming", policy="regen", n=30, d=3, horizon=10
            ),
            axes=[("d", [2, 3])],
            replicas=2,
            seed=7,
        )

    def test_sweep_round_trip(self, tmp_path, capsys):
        """A SweepSpec serialized with to_json runs through --sweep and
        prints exactly the values run_sweep computes for that spec."""
        import json

        from repro.sweep import SweepSpec, run_sweep

        sweep = self._spec()
        path = tmp_path / "sweep.json"
        path.write_text(sweep.to_json(), encoding="utf-8")
        assert SweepSpec.from_json(path.read_text(encoding="utf-8")) == sweep

        assert cli_main(["--sweep", str(path)]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed == run_sweep(sweep).values()

    def test_sweep_conflicts_with_experiment_ids(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(self._spec().to_json(), encoding="utf-8")
        with pytest.raises(SystemExit):
            cli_main(["EXP-01", "--sweep", str(path)])
        with pytest.raises(SystemExit):
            cli_main(["--sweep", str(path), "--scenario", str(path)])

    def test_sweep_honors_store_and_resume(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        path.write_text(self._spec().to_json(), encoding="utf-8")
        store = tmp_path / "store"
        assert cli_main(["--sweep", str(path), "--store", str(store)]) == 0
        capsys.readouterr()
        assert (
            cli_main(
                ["--sweep", str(path), "--store", str(store), "--resume"]
            )
            == 0
        )
