"""Scenario smoke matrix: every registered protocol × both backends.

Quick-scale end-to-end runs through the declarative layer — churn model,
edge policy, protocol and observers all resolved by name, exactly the way
a JSON scenario would.  CI runs this file as its own job (see
``.github/workflows/ci.yml``); each case asserts the broadcast makes real
progress, not exact trajectories.
"""

from __future__ import annotations

import math

import pytest

from repro.flooding import protocol_names
from repro.scenario import ScenarioSpec, observer_names, simulate

#: protocol → a quick scenario exercising it (n kept small for CI).
PROTOCOL_SCENARIOS: dict[str, ScenarioSpec] = {
    "discrete": ScenarioSpec(
        churn="streaming", policy="regen", n=100, d=8, horizon=100,
        protocol="discrete", protocol_params={"max_rounds": 120},
    ),
    "discretized": ScenarioSpec(
        churn="poisson", policy="regen", n=100, d=35,
        protocol="discretized", protocol_params={"max_rounds": 120},
    ),
    "asynchronous": ScenarioSpec(
        churn="poisson", policy="regen", n=100, d=35,
        protocol="asynchronous", protocol_params={"max_time": 120.0},
    ),
    "gossip": ScenarioSpec(
        churn="streaming", policy="regen", n=100, d=8, horizon=100,
        protocol="gossip",
        protocol_params={"max_rounds": 400, "seed": 1},
    ),
    "lossy": ScenarioSpec(
        churn="streaming", policy="regen", n=100, d=8, horizon=100,
        protocol="lossy",
        protocol_params={"loss": 0.2, "max_rounds": 400, "seed": 1},
    ),
}


def test_matrix_covers_every_registered_protocol():
    assert sorted(PROTOCOL_SCENARIOS) == protocol_names()


@pytest.mark.parametrize("backend", ["dict", "array"])
@pytest.mark.parametrize("protocol", sorted(PROTOCOL_SCENARIOS))
def test_protocol_backend_smoke(protocol, backend):
    spec = PROTOCOL_SCENARIOS[protocol].with_(backend=backend)
    if backend == "array" and protocol in ("gossip", "lossy"):
        # exercise the mask-frontier fast path where it exists
        spec = spec.with_(
            protocol_params={**spec.protocol_params, "vectorized": True}
        )
    sim = simulate(spec, seed=0)
    result = sim.flood()
    assert result.completed, f"{protocol} on {backend} did not complete"
    n = spec.n
    assert result.completion_round <= 12 * math.log2(n) or protocol in (
        "gossip", "lossy",
    )
    sim.state.check_invariants()


@pytest.mark.parametrize("backend", ["dict", "array"])
def test_observer_matrix_smoke(backend):
    spec = ScenarioSpec(
        churn="streaming", policy="regen", n=60, d=6, horizon=30,
        protocol="discrete", backend=backend,
    )
    sim = simulate(
        spec,
        seed=0,
        observers=[name for name in observer_names()],
    )
    sim.flood()
    results = sim.results()
    assert set(results) == set(observer_names())
    assert results["coverage"]["all_completed"] is True
    assert results["isolated"]["final"]["fraction"] == 0.0
    assert results["degrees"]["final"]["mean_degree"] > 6


@pytest.mark.parametrize("backend", ["dict", "array"])
def test_batched_scenario_smoke(backend):
    spec = ScenarioSpec(
        churn="poisson", policy="regen", n=100, d=35, horizon=20,
        churn_params={"batch": True, "fast_warm": True},
        protocol="discretized", protocol_params={"max_rounds": 120},
        backend=backend,
    )
    sim = simulate(spec, seed=0)
    assert sim.flood().completed
    sim.state.check_invariants()


@pytest.mark.parametrize("backend", ["dict", "array"])
def test_raes_scenario_smoke(backend):
    """RAES bounded-degree maintenance end-to-end on both backends: cap
    held, out-degrees full, broadcast completes at O(log n) speed."""
    spec = ScenarioSpec(
        churn="streaming", policy="raes", policy_params={"c": 2},
        n=100, d=8, horizon=100,
        protocol="discrete", protocol_params={"max_rounds": 120},
        backend=backend,
    )
    sim = simulate(spec, seed=0)
    cap = 2 * spec.d
    state = sim.state
    for u in state.alive_ids():
        assert state.in_slot_count(u) <= cap
        assert all(t is not None for t in state.out_slots_of(u))
    result = sim.flood()
    assert result.completed
    assert result.completion_round <= 12 * math.log2(spec.n)
    state.check_invariants()


@pytest.mark.parametrize("backend", ["dict", "array"])
def test_raes_batched_scenario_smoke(backend):
    """RAES through the batched Poisson windows (the bulk accept/reject
    sampler on the array backend, the sequential fallback on dict)."""
    spec = ScenarioSpec(
        churn="poisson", policy="raes", policy_params={"c": 2},
        n=100, d=8, horizon=20,
        churn_params={"batch": True, "fast_warm": True},
        protocol="discretized", protocol_params={"max_rounds": 120},
        backend=backend,
    )
    sim = simulate(spec, seed=0)
    cap = 2 * spec.d
    for u in sim.state.alive_ids():
        assert sim.state.in_slot_count(u) <= cap
    assert sim.flood().completed
    sim.state.check_invariants()
