"""Tests for the event engine and clock."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.engine import EventEngine


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_to(self):
        c = SimClock()
        c.advance_to(5.0)
        assert c.now == 5.0

    def test_advance_by(self):
        c = SimClock(2.0)
        c.advance_by(1.5)
        assert c.now == 3.5

    def test_backwards_rejected(self):
        c = SimClock(10.0)
        with pytest.raises(SimulationError):
            c.advance_to(9.0)

    def test_negative_step_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().advance_by(-1.0)


class TestEventEngine:
    def test_orders_by_time(self):
        e = EventEngine()
        e.schedule(3.0, "c")
        e.schedule(1.0, "a")
        e.schedule(2.0, "b")
        assert [e.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_tiebreak(self):
        e = EventEngine()
        e.schedule(1.0, "first")
        e.schedule(1.0, "second")
        assert e.pop().payload == "first"
        assert e.pop().payload == "second"

    def test_len_tracks_live_events(self):
        e = EventEngine()
        h = e.schedule(1.0, "x")
        e.schedule(2.0, "y")
        assert len(e) == 2
        e.cancel(h)
        assert len(e) == 1

    def test_cancelled_event_skipped(self):
        e = EventEngine()
        h = e.schedule(1.0, "x")
        e.schedule(2.0, "y")
        e.cancel(h)
        assert e.pop().payload == "y"

    def test_double_cancel_is_noop(self):
        e = EventEngine()
        h = e.schedule(1.0, "x")
        e.cancel(h)
        e.cancel(h)
        assert len(e) == 0

    def test_peek_time(self):
        e = EventEngine()
        assert e.peek_time() is None
        e.schedule(4.0, "x")
        assert e.peek_time() == 4.0

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventEngine().pop()

    def test_pop_until(self):
        e = EventEngine()
        for t in [1.0, 2.0, 3.0, 4.0]:
            e.schedule(t, t)
        popped = e.pop_until(2.5)
        assert [ev.payload for ev in popped] == [1.0, 2.0]
        assert len(e) == 2

    def test_run_dispatches_in_order(self):
        e = EventEngine()
        seen: list[str] = []
        e.schedule(1.0, "a")
        e.schedule(2.0, "b")
        e.schedule(5.0, "late")
        count = e.run(lambda ev: seen.append(ev.payload), until=3.0)
        assert seen == ["a", "b"]
        assert count == 2

    def test_handler_can_schedule_more(self):
        e = EventEngine()
        seen: list[float] = []

        def handler(ev):
            seen.append(ev.time)
            if ev.time < 3.0:
                e.schedule(ev.time + 1.0, None)

        e.schedule(1.0, None)
        e.run(handler, until=10.0)
        assert seen == [1.0, 2.0, 3.0]
