"""Tests for snapshot serialization and multi-source flooding."""

from __future__ import annotations

import json

import pytest

from repro.core.snapshot import Snapshot
from repro.errors import ConfigurationError
from repro.flooding import flood_discrete, flood_discretized
from repro.models import PDGR, SDGR


class TestSerialization:
    def test_round_trip_equality(self):
        net = SDGR(n=60, d=3, seed=0)
        net.run_rounds(60)
        snap = net.snapshot()
        restored = Snapshot.from_dict(snap.to_dict())
        assert restored.time == snap.time
        assert restored.nodes == snap.nodes
        assert restored.adjacency == snap.adjacency
        assert restored.birth_times == snap.birth_times
        assert restored.out_slots == snap.out_slots

    def test_json_round_trip(self):
        net = PDGR(n=50, d=3, seed=1)
        snap = net.snapshot()
        payload = json.loads(json.dumps(snap.to_dict()))
        restored = Snapshot.from_dict(payload)
        assert restored.adjacency == snap.adjacency
        assert restored.num_edges() == snap.num_edges()

    def test_none_slots_survive(self):
        from repro.models import SDG

        net = SDG(n=60, d=3, seed=2)
        net.run_rounds(120)
        snap = net.snapshot()
        has_empty = any(
            None in slots for slots in snap.out_slots.values()
        )
        assert has_empty  # old SDG nodes lose out-slots
        restored = Snapshot.from_dict(json.loads(json.dumps(snap.to_dict())))
        assert restored.out_slots == snap.out_slots

    def test_queries_work_after_restore(self):
        net = SDGR(n=40, d=4, seed=3)
        net.run_rounds(40)
        snap = net.snapshot()
        restored = Snapshot.from_dict(snap.to_dict())
        subset = list(restored.nodes)[:5]
        assert restored.outer_boundary(subset) == snap.outer_boundary(subset)
        assert restored.connected_components() == snap.connected_components()


class TestMultiSourceFlooding:
    def test_multi_source_completes_faster_or_equal(self):
        single_net = SDGR(n=200, d=5, seed=4)
        single_net.run_rounds(200)
        single = flood_discrete(single_net)

        multi_net = SDGR(n=200, d=5, seed=4)
        multi_net.run_rounds(200)
        seeds = multi_net.state.alive_ids()[:10]
        multi = flood_discrete(multi_net, sources=seeds)

        assert multi.completed
        assert multi.completion_round <= single.completion_round

    def test_initial_size_matches_sources(self):
        net = SDGR(n=100, d=4, seed=5)
        net.run_rounds(100)
        seeds = net.state.alive_ids()[:7]
        result = flood_discrete(net, sources=seeds, max_rounds=1)
        assert result.informed_sizes[0] == 7

    def test_discretized_multi_source(self):
        net = PDGR(n=100, d=5, seed=6)
        seeds = net.state.alive_ids()[:5]
        result = flood_discretized(net, sources=seeds)
        assert result.completed

    def test_empty_sources_rejected(self):
        net = SDGR(n=50, d=3, seed=7)
        with pytest.raises(ConfigurationError):
            flood_discrete(net, sources=[])

    def test_dead_source_in_set_rejected(self):
        net = SDGR(n=50, d=3, seed=8)
        with pytest.raises(ConfigurationError):
            flood_discrete(net, sources=[10**9])
