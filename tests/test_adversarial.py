"""Tests for adversarial churn strategies and the adversarial driver."""

from __future__ import annotations

import pytest

from repro.churn.adversarial import (
    STRATEGIES,
    get_strategy,
    max_degree_victim,
    min_degree_victim,
    oldest_victim,
    random_victim,
)
from repro.core.edge_policy import NoRegenerationPolicy, RegenerationPolicy
from repro.errors import ConfigurationError
from repro.models.adversarial import AdversarialStreamingNetwork
from repro.models.streaming import SDG
from repro.util.rng import make_rng


class TestStrategies:
    def test_registry_contents(self):
        assert set(STRATEGIES) == {"oldest", "random", "max_degree", "min_degree"}

    def test_get_strategy(self):
        assert get_strategy("oldest") is oldest_victim

    def test_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            get_strategy("sneaky")

    def test_oldest_picks_smallest_id(self):
        net = SDG(n=20, d=2, seed=0)
        net.run_rounds(5)
        assert oldest_victim(net.state, make_rng(0)) == min(net.state.alive_ids())

    def test_random_picks_alive(self):
        net = SDG(n=20, d=2, seed=1)
        rng = make_rng(1)
        for _ in range(10):
            assert net.state.is_alive(random_victim(net.state, rng))

    def test_max_degree_picks_hub(self):
        net = SDG(n=30, d=3, seed=2)
        net.run_rounds(30)
        victim = max_degree_victim(net.state, make_rng(0))
        top = max(net.state.degree(u) for u in net.state.alive_ids())
        assert net.state.degree(victim) == top

    def test_min_degree_picks_fringe(self):
        net = SDG(n=30, d=3, seed=3)
        net.run_rounds(30)
        victim = min_degree_victim(net.state, make_rng(0))
        bottom = min(net.state.degree(u) for u in net.state.alive_ids())
        assert net.state.degree(victim) == bottom


class TestAdversarialDriver:
    def test_constant_size(self):
        net = AdversarialStreamingNetwork(
            40, RegenerationPolicy(3), strategy="max_degree", seed=0
        )
        for _ in range(30):
            net.advance_round()
            assert net.num_alive() == 40

    def test_invariants_under_hub_removal(self):
        net = AdversarialStreamingNetwork(
            50, RegenerationPolicy(4), strategy="max_degree", seed=1
        )
        net.run_rounds(60)
        net.state.check_invariants()

    def test_oldest_strategy_matches_streaming_semantics(self):
        """With the 'oldest' strategy the victim sequence equals SDG's."""
        net = AdversarialStreamingNetwork(
            30, NoRegenerationPolicy(2), strategy="oldest", seed=2
        )
        report = net.advance_round()
        assert report.deaths == [0]

    def test_callable_strategy(self):
        calls = []

        def chooser(state, rng):
            victim = min(state.alive_ids())
            calls.append(victim)
            return victim

        net = AdversarialStreamingNetwork(
            20, NoRegenerationPolicy(2), strategy=chooser, seed=3
        )
        net.advance_round()
        assert calls == [0]

    def test_hub_removal_fragments_no_regen(self):
        """The EXP-16 headline: targeted hub deletion without regeneration
        shatters the graph at small d."""
        hub = AdversarialStreamingNetwork(
            200, NoRegenerationPolicy(3), strategy="max_degree", seed=4
        )
        hub.run_rounds(200)
        oblivious = AdversarialStreamingNetwork(
            200, NoRegenerationPolicy(3), strategy="oldest", seed=4
        )
        oblivious.run_rounds(200)
        from repro.analysis.components import giant_component_fraction

        assert (
            giant_component_fraction(hub.snapshot())
            < giant_component_fraction(oblivious.snapshot()) - 0.1
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdversarialStreamingNetwork(1, RegenerationPolicy(2))
