"""Tests for the streaming metrics sink (repro.service.metrics)."""

from __future__ import annotations

import json
import os
import tempfile

import pytest

from repro.errors import ConfigurationError
from repro.scenario import ScenarioSpec, Simulation, make_observer
from repro.service import MetricsSink, prometheus_text


def _spec(**overrides):
    defaults = dict(
        churn="streaming", policy="regen", n=30, d=3, horizon=10, seed=5
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestMetricsSink:
    def test_jsonl_parses_line_by_line(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        sim = Simulation(
            _spec(protocol="discrete"),
            observers=[MetricsSink(path=str(path), every=2)],
        ).run()
        sim.flood()
        records = [
            json.loads(line) for line in path.read_text().strip().split("\n")
        ]
        events = [record["event"] for record in records]
        # 5 windows (every=2 over horizon 10); the last window lands on
        # the horizon so there is no separate summary line; then a flood.
        assert events == ["window"] * 5 + ["flood"]
        for record in records[:5]:
            assert record["alive"] == 30
            assert record["births"] == 2 and record["deaths"] == 2
            assert "wall_ms" in record or record is records[0]
        assert records[-1]["completed"] in (True, False)

    def test_counters_match_size_observer(self):
        sim = Simulation(
            _spec(), observers=[MetricsSink(every=1), "size"]
        ).run()
        results = sim.results()
        assert (
            results["metrics"]["total_births"]
            == results["size"]["total_births"]
        )
        assert (
            results["metrics"]["total_deaths"]
            == results["size"]["total_deaths"]
        )
        windows = [
            r for r in sim.observers[0].lines if r["event"] == "window"
        ]
        assert [w["alive"] for w in windows] == results["size"]["sizes"]

    def test_summary_emitted_when_cadence_misses_horizon(self):
        sink = MetricsSink(every=4, wallclock=False)
        Simulation(_spec(horizon=10), observers=[sink]).run()
        events = [record["event"] for record in sink.lines]
        # Windows at rounds 4 and 8; the horizon (10) is not on the
        # cadence, so the finish notification emits the summary line.
        assert events == ["window", "window", "summary"]
        assert sink.lines[-1]["rounds"] == 10

    def test_probe_uses_shared_view(self):
        sink = MetricsSink(every=5, probe=True, probe_sets=8, wallclock=False)
        Simulation(_spec(), observers=[sink]).run()
        windows = [r for r in sink.lines if r["event"] == "window"]
        assert len(windows) == 2
        for window in windows:
            assert 0.0 < window["probe_min_ratio"] <= 3.0
            assert window["probe_witness_size"] >= 1

    def test_restore_rewrites_stream_exactly_once(self, tmp_path):
        path_full = tmp_path / "full.jsonl"
        path_cut = tmp_path / "cut.jsonl"
        spec = _spec()
        Simulation(
            spec, observers=[MetricsSink(path=str(path_full), wallclock=False)]
        ).run()
        partial = Simulation(
            spec, observers=[MetricsSink(path=str(path_cut), wallclock=False)]
        )
        partial._run_per_event(6)
        checkpoint = partial.save_checkpoint(tmp_path / "ck.json")
        # Simulate the kill: blow away the interrupted stream entirely.
        os.remove(path_cut)
        restored = Simulation.restore(checkpoint)
        restored.run()
        # The restored sink rewrote the pre-checkpoint prefix and kept
        # appending: byte-identical output with wallclock disabled.
        assert path_cut.read_bytes() == path_full.read_bytes()

    def test_registry_name(self):
        sink = make_observer("metrics", every=3, wallclock=False)
        assert isinstance(sink, MetricsSink)
        assert sink.every == 3

    def test_rejects_every_zero(self):
        with pytest.raises(ConfigurationError, match="every >= 1"):
            MetricsSink(every=0)

    def test_gauges_reflect_latest_window(self):
        sink = MetricsSink(every=2, wallclock=False)
        Simulation(_spec(), observers=[sink]).run()
        gauges = sink.gauges()
        assert gauges["alive"] == 30
        assert gauges["rounds"] == 10
        assert gauges["total_births"] == 10


class TestPrometheusText:
    def test_renders_sorted_gauges(self):
        text = prometheus_text({"b": 2, "a": 1.5})
        assert text == (
            "# TYPE repro_a gauge\nrepro_a 1.5\n"
            "# TYPE repro_b gauge\nrepro_b 2\n"
        )

    def test_skips_non_numeric_and_bool(self):
        text = prometheus_text({"path": "x.jsonl", "flag": True, "n": 3})
        assert "path" not in text and "flag" not in text
        assert "repro_n 3" in text

    def test_skips_unconvertible_numbers(self):
        # complex is a numbers.Number but float() raises on it; such
        # values are skipped, per the "non-numeric values are skipped"
        # contract, rather than blowing up the exposition.
        text = prometheus_text({"z": 1 + 2j, "n": 3})
        assert "repro_z" not in text
        assert "repro_n 3" in text

    def test_custom_prefix_and_empty(self):
        assert prometheus_text({}) == ""
        assert prometheus_text({"x": 1}, prefix="svc").startswith("# TYPE svc_x")

    def test_round_trips_sink_gauges(self):
        sink = MetricsSink(every=5, wallclock=False)
        Simulation(_spec(), observers=[sink]).run()
        text = prometheus_text(sink.gauges())
        assert "repro_alive 30" in text
        assert "repro_total_births 10" in text
