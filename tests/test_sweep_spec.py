"""Tests for the declarative sweep grid (repro.sweep.spec)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.scenario import ScenarioSpec
from repro.sweep import SweepAxis, SweepSpec
from repro.util.rng import derive_seed

BASE = ScenarioSpec(churn="streaming", policy="none", n=50, d=2)


class TestAxisValidation:
    def test_plain_field(self):
        axis = SweepAxis("d", (1, 2, 3))
        assert axis.values == (1, 2, 3)

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepAxis("degree", (1,))

    def test_seed_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepAxis("seed", (1, 2))

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepAxis("d", ())

    def test_dotted_path_needs_param_field(self):
        SweepAxis("churn_params.lam", (0.5, 1.0))
        with pytest.raises(ConfigurationError):
            SweepAxis("horizon.lam", (1,))

    def test_scenario_axis_values_must_be_mappings(self):
        SweepAxis("scenario", ({"d": 2},))
        with pytest.raises(ConfigurationError):
            SweepAxis("scenario", (3,))

    def test_scenario_axis_cannot_nest(self):
        with pytest.raises(ConfigurationError):
            SweepAxis("scenario", ({"scenario": {"d": 2}},))

    def test_scenario_axis_validates_inner_fields(self):
        with pytest.raises(ConfigurationError):
            SweepAxis("scenario", ({"degree": 2},))


class TestGrid:
    def test_canonical_order_last_axis_fastest(self):
        sweep = SweepSpec(
            base=BASE,
            axes=[("d", (2, 3)), ("n", (40, 50))],
            replicas=2,
            measure="network_summary",
        )
        assert sweep.num_points == 4
        assert sweep.num_cells == 8
        cells = list(sweep.cells())
        combos = [(c.spec.d, c.spec.n, c.replica) for c in cells]
        assert combos == [
            (2, 40, 0), (2, 40, 1),
            (2, 50, 0), (2, 50, 1),
            (3, 40, 0), (3, 40, 1),
            (3, 50, 0), (3, 50, 1),
        ]
        assert [c.index for c in cells] == list(range(8))

    def test_dotted_axis_merges_into_params(self):
        base = ScenarioSpec(churn="poisson", policy="none", n=50)
        sweep = SweepSpec(base=base, axes=[("churn_params.lam", (0.5, 2.0))])
        specs = [cell.spec for cell in sweep.cells()]
        assert [s.churn_params["lam"] for s in specs] == [0.5, 2.0]

    def test_dotted_axis_preserves_other_params(self):
        base = ScenarioSpec(
            churn="poisson", policy="none", n=50,
            churn_params={"warm_time": 10.0},
        )
        sweep = SweepSpec(base=base, axes=[("churn_params.lam", (2.0,))])
        spec = next(sweep.cells()).spec
        assert spec.churn_params == {"warm_time": 10.0, "lam": 2.0}

    def test_scenario_axis_applies_all_fields(self):
        sweep = SweepSpec(
            base=BASE,
            axes=[
                (
                    "scenario",
                    (
                        {"churn": "streaming", "horizon": 50},
                        {"churn": "poisson", "horizon": 0},
                    ),
                )
            ],
        )
        specs = [cell.spec for cell in sweep.cells()]
        assert [(s.churn, s.horizon) for s in specs] == [
            ("streaming", 50), ("poisson", 0),
        ]

    def test_cell_accessor_matches_iteration(self):
        sweep = SweepSpec(base=BASE, axes=[("d", (2, 3))], replicas=2)
        for cell in sweep.cells():
            assert sweep.cell(cell.index).spec == cell.spec
        with pytest.raises(ConfigurationError):
            sweep.cell(99)

    def test_invalid_point_fails_at_declaration(self):
        # policy "capped" without max_in_degree is invalid — the typo
        # must surface when the sweep is declared, not inside a worker.
        with pytest.raises(ConfigurationError):
            SweepSpec(base=BASE, axes=[("policy", ("capped",))])

    def test_base_seed_is_ignored(self):
        sweep = SweepSpec(base=BASE.with_(seed=123), axes=[("d", (2,))])
        assert next(sweep.cells()).spec.seed is None


class TestSeeding:
    def test_cell_seeds_come_from_the_named_stream(self):
        sweep = SweepSpec(base=BASE, replicas=4, seed=9, stream="my-study")
        for index in range(4):
            expected = derive_seed(9, "my-study", index)
            got = sweep.cell_seed(index)
            assert (
                got.generate_state(2).tolist()
                == expected.generate_state(2).tolist()
            )

    def test_distinct_cells_distinct_seeds(self):
        sweep = SweepSpec(base=BASE, axes=[("d", (2, 3))], replicas=8)
        states = {
            tuple(sweep.cell_seed(i).generate_state(2).tolist())
            for i in range(sweep.num_cells)
        }
        assert len(states) == sweep.num_cells

    def test_replicas_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(base=BASE, replicas=0)

    def test_seed_must_be_integer(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(base=BASE, seed=np.random.default_rng(0))


class TestRoundTrip:
    def test_json_round_trip(self):
        sweep = SweepSpec(
            base=BASE,
            axes=[
                ("d", (2, 3)),
                ("scenario", ({"policy": "regen"}, {"policy": "none"})),
            ],
            replicas=3,
            seed=7,
            stream="study",
            measure="flood_stats",
            measure_params={"extra": 1},
        )
        clone = SweepSpec.from_json(sweep.to_json())
        assert clone == sweep

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec.from_dict({"base": BASE.to_dict(), "reps": 3})

    def test_base_required(self):
        with pytest.raises(ConfigurationError):
            SweepSpec.from_dict({"replicas": 3})

    def test_non_object_document_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec.from_json("[1, 2]")
