"""Cross-module integration tests: full pipelines over several components."""

from __future__ import annotations

import math

import pytest

from repro import (
    PDG,
    PDGR,
    SDG,
    SDGR,
    flood_asynchronous,
    flood_discrete,
    flood_discretized,
    isolated_fraction,
)
from repro.analysis.components import component_summary
from repro.analysis.expansion import adversarial_expansion_upper_bound
from repro.theory.isolated import isolated_fraction_prediction_streaming


class TestPaperStory:
    """The paper's four-model narrative, end to end on one seed."""

    def test_regeneration_dichotomy_streaming(self):
        """Same churn, same d: no-regen leaves unreachable nodes at small
        d while regen floods everyone."""
        n, d = 300, 3
        sdg = SDG(n=n, d=d, seed=11)
        sdg.run_rounds(n)
        sdgr = SDGR(n=n, d=d, seed=11)
        sdgr.run_rounds(n)

        assert isolated_fraction(sdg.snapshot()) > 0
        assert isolated_fraction(sdgr.snapshot()) == 0

        sdgr_flood = flood_discrete(sdgr, max_rounds=120)
        assert sdgr_flood.completed

    def test_regeneration_dichotomy_poisson(self):
        n, d = 300, 3
        pdg = PDG(n=n, d=d, seed=12)
        pdgr = PDGR(n=n, d=d, seed=12)
        assert isolated_fraction(pdg.snapshot()) > 0
        assert isolated_fraction(pdgr.snapshot()) == 0

    def test_flooding_through_live_churn_keeps_invariants(self):
        """Flooding mutates the network; state must stay consistent."""
        net = SDGR(n=120, d=6, seed=13)
        flood_discrete(net, max_rounds=50)
        net.state.check_invariants()

        pnet = PDGR(n=120, d=6, seed=14)
        flood_discretized(pnet, max_rounds=50)
        pnet.state.check_invariants()

        anet = PDGR(n=120, d=6, seed=15)
        flood_asynchronous(anet, max_time=50.0)
        anet.state.check_invariants()

    def test_snapshot_isolated_matches_analysis(self):
        net = SDG(n=500, d=3, seed=16)
        net.run_rounds(1000)
        measured = isolated_fraction(net.snapshot())
        predicted = isolated_fraction_prediction_streaming(3)
        assert measured == pytest.approx(predicted, rel=0.6)

    def test_expander_implies_fast_flooding(self):
        """The paper's causal chain: snapshot expansion (Thm 3.15) ⇒
        O(log n) flooding (Thm 3.16), checked jointly on one instance."""
        n = 400
        net = SDGR(n=n, d=14, seed=17)
        net.run_rounds(n)
        probe = adversarial_expansion_upper_bound(net.snapshot(), seed=18)
        assert probe.min_ratio > 0.1
        result = flood_discrete(net)
        assert result.completed
        assert result.completion_round <= 6 * math.log2(n)

    def test_components_flooding_consistency(self):
        """Discrete flooding on a static-ish window reaches at least the
        source's current component."""
        net = SDG(n=200, d=8, seed=19)
        net.run_rounds(200)
        snap = net.snapshot()
        source = max(snap.nodes, key=lambda u: snap.birth_times[u])
        component = next(
            c for c in snap.connected_components() if source in c
        )
        result = flood_discrete(net, source=source, max_rounds=60)
        assert result.max_informed >= 0.8 * len(component)


class TestContinuousVsDiscrete:
    def test_poisson_round_count_consistency(self):
        """advance_round() applies the same churn distribution as the raw
        jump chain: sizes agree with Lemma 4.4 under both drivers."""
        via_rounds = PDG(n=300, d=2, seed=20)
        via_rounds.run_rounds(100)
        via_jumps = PDG(n=300, d=2, seed=21)
        via_jumps.advance_rounds_jump(200)
        for net in (via_rounds, via_jumps):
            assert 0.75 * 300 <= net.num_alive() <= 1.25 * 300

    def test_all_models_share_flooding_interface(self):
        """Every model driver works with every applicable flooding call."""
        streaming = SDGR(n=80, d=5, seed=22)
        streaming.run_rounds(80)
        assert flood_discrete(streaming, max_rounds=40).completed

        poisson = PDGR(n=80, d=5, seed=23)
        assert flood_discretized(poisson, max_rounds=60).completed
