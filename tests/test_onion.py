"""Tests for the onion-skin process simulators."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.onion import run_poisson_onion_skin, run_streaming_onion_skin
from repro.theory.onion import onion_growth_factor_streaming


class TestStreamingOnion:
    def test_reaches_target_at_paper_d(self):
        result = run_streaming_onion_skin(n=2000, d=200, seed=0)
        assert result.reached_target

    def test_success_rate_matches_claim_311(self):
        """Claim 3.11: success probability ≥ 1 − 4e^{−d/100} ≈ 0.73 at d=200."""
        successes = sum(
            run_streaming_onion_skin(n=1500, d=200, seed=s).reached_target
            for s in range(25)
        )
        assert successes / 25 >= 0.7

    def test_layer_growth_meets_claim_310(self):
        """Pre-saturation layers grow by at least ~d/20."""
        result = run_streaming_onion_skin(n=4000, d=200, seed=1)
        growth = result.layer_growth_factors()
        assert growth
        assert growth[0] >= onion_growth_factor_streaming(200) / 2

    def test_small_d_often_dies(self):
        """With growth factor d/20 < 1 the process cannot take off."""
        successes = sum(
            run_streaming_onion_skin(n=500, d=4, seed=s).reached_target
            for s in range(20)
        )
        assert successes <= 10

    def test_layer_sequence_interleaving(self):
        result = run_streaming_onion_skin(n=1000, d=60, seed=2)
        sequence = result.layer_sequence()
        assert sequence[0] == 1
        assert len(sequence) >= 2

    def test_totals_consistent(self):
        result = run_streaming_onion_skin(n=1000, d=60, seed=3)
        assert result.total_informed == result.total_young + result.total_old
        assert result.total_young == 1 + sum(result.young_layers)

    def test_odd_d_rejected(self):
        with pytest.raises(ConfigurationError):
            run_streaming_onion_skin(n=100, d=5)

    def test_tiny_n_rejected(self):
        with pytest.raises(ConfigurationError):
            run_streaming_onion_skin(n=10, d=4)

    def test_deterministic(self):
        a = run_streaming_onion_skin(n=800, d=100, seed=9)
        b = run_streaming_onion_skin(n=800, d=100, seed=9)
        assert a.old_layers == b.old_layers
        assert a.young_layers == b.young_layers


class TestPoissonOnion:
    def test_reaches_target(self):
        result = run_poisson_onion_skin(n=2000, d=240, seed=0)
        assert result.reached_target

    def test_death_coin_removes_some_nodes_eventually(self):
        """With removal probability log n/n per informed node, large runs
        remove at least one node with overwhelming probability."""
        removed = sum(
            run_poisson_onion_skin(n=1000, d=240, seed=s).removed_by_death
            for s in range(5)
        )
        assert removed > 0

    def test_m_defaults_to_n(self):
        result = run_poisson_onion_skin(n=500, d=48, seed=1)
        assert result.m == 500

    def test_explicit_m(self):
        result = run_poisson_onion_skin(n=500, d=48, m=450, seed=2)
        assert result.m == 450

    def test_small_d_fails(self):
        """At d=2 the pooled layer growth rate is ≈ d/4 = 0.5 < 1, so the
        process dies out before reaching the target."""
        successes = sum(
            run_poisson_onion_skin(n=500, d=2, seed=s).reached_target
            for s in range(10)
        )
        assert successes <= 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_poisson_onion_skin(n=500, d=7)
        with pytest.raises(ConfigurationError):
            run_poisson_onion_skin(n=5, d=8)
