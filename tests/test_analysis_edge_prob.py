"""Tests for empirical edge-destination probabilities (Lemmas 3.14/4.15)."""

from __future__ import annotations

import pytest

from repro.analysis.edge_prob import (
    poisson_bound,
    poisson_slot_destination_frequency,
    streaming_bound,
    streaming_slot_destination_frequency,
)
from repro.errors import ConfigurationError
from repro.models import PDGR


class TestBounds:
    def test_streaming_bound_grows_with_age(self):
        assert streaming_bound(100, 50) > streaming_bound(100, 1)

    def test_streaming_bound_base(self):
        assert streaming_bound(101, 0) == pytest.approx(0.01)

    def test_streaming_bound_at_max_age_is_e_over_n(self):
        """(1+1/(n-1))^{n-1} → e: the bound never exceeds e/(n−1)."""
        n = 200
        import math

        assert streaming_bound(n, n - 1) <= math.e / (n - 1) * 1.001

    def test_poisson_bound_grows_with_rounds(self):
        assert poisson_bound(100.0, 700 * 100) > poisson_bound(100.0, 1)


class TestStreamingFrequency:
    def test_empirical_within_bound(self):
        """Lemma 3.14: the per-request frequency respects the bound."""
        result = streaming_slot_destination_frequency(
            n=50, owner_rounds=30, target_age=40, trials=40_000, seed=0
        )
        assert result.within_bound

    def test_frequency_between_uniform_and_bound(self):
        """The frequency sits between the uniform baseline 1/(n−1) (an
        older target can only be *over*-selected via regeneration) and the
        lemma's bound with a small model-convention slack (our replacement
        re-samples among n−2 survivors, the paper's accounting uses n−1)."""
        n, k = 50, 10
        result = streaming_slot_destination_frequency(
            n=n, owner_rounds=k, target_age=30, trials=60_000, seed=1
        )
        assert result.empirical >= (1 / (n - 1)) * 0.9
        assert result.empirical <= streaming_bound(n, k) * 1.35

    def test_regeneration_inflates_old_owner_frequency(self):
        """An owner that lived longer has had more re-assignments, so its
        request points at a given older node with higher frequency."""
        young = streaming_slot_destination_frequency(
            n=40, owner_rounds=5, target_age=40 - 1, trials=80_000, seed=2
        )
        old = streaming_slot_destination_frequency(
            n=40, owner_rounds=35, target_age=40 - 1, trials=80_000, seed=3
        )
        assert old.empirical > young.empirical * 0.9  # noise guard

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            streaming_slot_destination_frequency(n=50, owner_rounds=0, target_age=10)
        with pytest.raises(ConfigurationError):
            streaming_slot_destination_frequency(n=50, owner_rounds=10, target_age=5)
        with pytest.raises(ConfigurationError):
            streaming_slot_destination_frequency(n=50, owner_rounds=10, target_age=50)


class TestPoissonFrequency:
    def test_buckets_cover_owners(self):
        net = PDGR(n=300, d=5, seed=4)
        buckets = poisson_slot_destination_frequency(net.snapshot(), n=300.0)
        assert sum(b.num_owners for b in buckets) > 0

    def test_frequencies_within_bounds(self):
        """Lemma 4.15: per-pair frequency ≤ (1/0.8n)(1+i/1.7n) per bucket."""
        net = PDGR(n=400, d=5, seed=5)
        buckets = poisson_slot_destination_frequency(net.snapshot(), n=400.0)
        for b in buckets:
            if b.num_owners >= 10:
                assert b.per_pair_frequency <= b.bound_at_bucket * 1.5

    def test_tiny_snapshot_rejected(self):
        net = PDGR(n=2, d=1, seed=6, warm_time=0)
        net.advance_one_event()
        with pytest.raises(ConfigurationError):
            poisson_slot_destination_frequency(net.snapshot(), n=2.0)
