"""Tests for the streaming drivers (SDG / SDGR)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.models import SDG, SDGR


class TestWarmup:
    def test_warm_network_is_full(self):
        net = SDG(n=50, d=3, seed=0)
        assert net.num_alive() == 50
        assert net.round_number == 50
        assert net.now == 50.0

    def test_cold_network_is_empty(self):
        net = SDG(n=50, d=3, seed=0, warm=False)
        assert net.num_alive() == 0
        assert net.round_number == 0

    def test_warmup_ids_sequential(self):
        net = SDG(n=20, d=2, seed=1)
        assert sorted(net.state.alive_ids()) == list(range(20))

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            SDG(n=1, d=2)


class TestSteadyState:
    def test_size_constant(self):
        net = SDG(n=30, d=3, seed=2)
        for _ in range(60):
            net.advance_round()
            assert net.num_alive() == 30

    def test_one_birth_one_death_per_round(self):
        net = SDGR(n=30, d=3, seed=3)
        report = net.advance_round()
        assert len(report.births) == 1
        assert len(report.deaths) == 1

    def test_oldest_dies(self):
        net = SDG(n=30, d=3, seed=4)
        report = net.advance_round()  # round 31 kills node 0
        assert report.deaths == [0]
        assert report.births == [30]

    def test_ages_form_full_range(self):
        net = SDG(n=25, d=3, seed=5)
        net.run_rounds(40)
        snap = net.snapshot()
        ages = sorted(int(snap.age(u)) for u in snap.nodes)
        assert ages == list(range(25))

    def test_newest_and_oldest_ids(self):
        net = SDG(n=25, d=3, seed=6)
        net.run_rounds(10)
        assert net.newest_id() == 34
        assert net.oldest_id() == 10

    def test_invariants_hold_over_time(self):
        net = SDGR(n=40, d=4, seed=7)
        for _ in range(20):
            net.advance_round()
        net.state.check_invariants()


class TestSDGTopology:
    def test_out_slots_decay_with_age(self):
        """In SDG, old nodes have fewer live out-requests (no repair)."""
        net = SDG(n=200, d=5, seed=8)
        net.run_rounds(400)
        snap = net.snapshot()
        young = [u for u in snap.nodes if snap.age(u) < 20]
        old = [u for u in snap.nodes if snap.age(u) > 180]
        live_out = lambda u: sum(1 for t in snap.out_slots[u] if t is not None)
        mean_young = sum(live_out(u) for u in young) / len(young)
        mean_old = sum(live_out(u) for u in old) / len(old)
        assert mean_young > mean_old

    def test_mean_degree_close_to_d(self):
        """Lemma 6.1: expected degree is d."""
        net = SDG(n=400, d=6, seed=9)
        net.run_rounds(800)
        snap = net.snapshot()
        mean_degree = 2 * snap.num_edges() / snap.num_nodes()
        assert mean_degree == pytest.approx(6.0, rel=0.15)


class TestSDGRTopology:
    def test_out_degree_always_full(self):
        net = SDGR(n=100, d=4, seed=10)
        net.run_rounds(250)
        snap = net.snapshot()
        for u in snap.nodes:
            assigned = sum(1 for t in snap.out_slots[u] if t is not None)
            assert assigned == 4

    def test_total_requests_equal_dn(self):
        net = SDGR(n=100, d=4, seed=11)
        net.run_rounds(250)
        snap = net.snapshot()
        total = sum(
            sum(1 for t in slots if t is not None)
            for slots in snap.out_slots.values()
        )
        assert total == 4 * 100

    def test_no_isolated_nodes_with_regen(self):
        net = SDGR(n=200, d=4, seed=12)
        net.run_rounds(400)
        assert len(net.snapshot().isolated_nodes()) == 0


class TestDeterminism:
    def test_same_seed_same_topology(self):
        a = SDGR(n=50, d=3, seed=42)
        b = SDGR(n=50, d=3, seed=42)
        a.run_rounds(100)
        b.run_rounds(100)
        assert a.snapshot().adjacency == b.snapshot().adjacency

    def test_different_seed_different_topology(self):
        a = SDGR(n=50, d=3, seed=1)
        b = SDGR(n=50, d=3, seed=2)
        a.run_rounds(100)
        b.run_rounds(100)
        assert a.snapshot().adjacency != b.snapshot().adjacency
