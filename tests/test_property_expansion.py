"""Hypothesis property tests for the expansion machinery."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.expansion import (
    adversarial_expansion_upper_bound,
    vertex_expansion_exact,
)
from repro.core.snapshot import Snapshot
from repro.util.rng import make_rng


def random_snapshot(seed: int, n: int, edge_probability: float) -> Snapshot:
    """An Erdős–Rényi-style snapshot without the networkx detour."""
    rng = make_rng(seed)
    adjacency: dict[int, set[int]] = {u: set() for u in range(n)}
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < edge_probability:
                adjacency[u].add(v)
                adjacency[v].add(u)
    return Snapshot(
        time=0.0,
        nodes=frozenset(range(n)),
        adjacency={u: frozenset(nbrs) for u, nbrs in adjacency.items()},
        birth_times={u: float(-u) for u in range(n)},
        out_slots={u: () for u in range(n)},
    )


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(4, 12),
    p=st.floats(0.05, 0.9),
)
def test_property_probe_upper_bounds_exact(seed, n, p):
    """The adversarial probe never reports a value below the true h_out."""
    snap = random_snapshot(seed, n, p)
    exact = vertex_expansion_exact(snap)
    probe = adversarial_expansion_upper_bound(snap, seed=seed, num_random_sets=50)
    assert probe.min_ratio >= exact.min_ratio - 1e-12


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(4, 14),
    p=st.floats(0.05, 0.9),
)
def test_property_witness_is_honest(seed, n, p):
    """Both searches return a set whose expansion equals the reported
    minimum — every reported number is backed by a concrete witness."""
    snap = random_snapshot(seed, n, p)
    for probe in (
        vertex_expansion_exact(snap),
        adversarial_expansion_upper_bound(snap, seed=seed, num_random_sets=30),
    ):
        assert 1 <= probe.witness_size <= n // 2
        assert snap.expansion_of(probe.witness) == pytest.approx(probe.min_ratio)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(4, 12))
def test_property_isolated_node_forces_zero(seed, n):
    """Adding an isolated node forces h_out to exactly 0, found by both."""
    snap = random_snapshot(seed, n, 0.6)
    nodes = set(snap.nodes) | {n}
    adjacency = dict(snap.adjacency)
    adjacency[n] = frozenset()
    bigger = Snapshot(
        time=0.0,
        nodes=frozenset(nodes),
        adjacency=adjacency,
        birth_times={**dict(snap.birth_times), n: 0.0},
        out_slots={**dict(snap.out_slots), n: ()},
    )
    assert vertex_expansion_exact(bigger).min_ratio == 0.0
    assert adversarial_expansion_upper_bound(bigger, seed=seed).min_ratio == 0.0


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(6, 12),
    p=st.floats(0.1, 0.9),
)
def test_property_boundary_definition(seed, n, p):
    """∂out(S) from the snapshot matches the brute-force definition."""
    snap = random_snapshot(seed, n, p)
    rng = make_rng(seed)
    size = int(rng.integers(1, n // 2 + 1))
    subset = set(int(x) for x in rng.choice(n, size=size, replace=False))
    expected = {
        v
        for v in snap.nodes
        if v not in subset and any(v in snap.adjacency[u] for u in subset)
    }
    assert snap.outer_boundary(subset) == expected
