"""Tests for the Poisson drivers (PDG / PDGR)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models import PDG, PDGR
from repro.models.poisson import lifetime_age_bound


class TestWarmup:
    def test_warm_size_near_n(self):
        """Lemma 4.4: after 3n time, |N_t| ∈ [0.9n, 1.1n] w.h.p."""
        net = PDG(n=500, d=3, seed=0)
        assert 0.8 * 500 <= net.num_alive() <= 1.2 * 500

    def test_cold_start_empty(self):
        net = PDG(n=100, d=3, seed=0, warm_time=0)
        assert net.num_alive() == 0
        assert net.now == 0.0

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            PDG(n=1, d=3)


class TestEventMechanics:
    def test_first_event_is_birth(self):
        net = PDG(n=100, d=3, seed=1, warm_time=0)
        record = net.advance_one_event()
        assert record.is_birth
        assert net.num_alive() == 1

    def test_event_count_tracks(self):
        net = PDG(n=100, d=2, seed=2, warm_time=0)
        net.advance_rounds_jump(50)
        assert net.event_count == 50

    def test_advance_to_time_sets_clock(self):
        net = PDG(n=100, d=2, seed=3, warm_time=0)
        net.advance_to_time(25.0)
        assert net.now == pytest.approx(25.0)

    def test_advance_round_is_unit_time(self):
        net = PDG(n=100, d=2, seed=4)
        before = net.now
        report = net.advance_round()
        assert net.now == pytest.approx(before + 1.0)
        assert report.end_time - report.start_time == pytest.approx(1.0)

    def test_events_have_increasing_times(self):
        net = PDG(n=50, d=2, seed=5, warm_time=0)
        records = net.advance_to_time(100.0)
        times = [r.time for r in records]
        assert times == sorted(times)

    def test_event_rate_near_two_lambda(self):
        """At stationarity events arrive at rate λ + nµ = 2 per time unit."""
        net = PDG(n=400, d=2, seed=6)
        start_events, start_time = net.event_count, net.now
        net.advance_to_time(start_time + 200.0)
        rate = (net.event_count - start_events) / 200.0
        assert rate == pytest.approx(2.0, rel=0.2)


class TestStationarity:
    def test_size_concentration(self):
        """Lemma 4.4's window holds at several probe times."""
        net = PDG(n=1000, d=2, seed=7)
        sizes = []
        for _ in range(20):
            net.advance_to_time(net.now + 50.0)
            sizes.append(net.num_alive())
        assert all(0.85 * 1000 <= s <= 1.15 * 1000 for s in sizes)

    def test_mean_size_near_n(self):
        net = PDG(n=500, d=2, seed=8)
        sizes = []
        for _ in range(40):
            net.advance_to_time(net.now + 25.0)
            sizes.append(net.num_alive())
        assert np.mean(sizes) == pytest.approx(500, rel=0.08)

    def test_no_ancient_nodes(self):
        """Lemma 4.8: no alive node is older than ~7 n log n rounds
        (≈ 3.5 n log n time units)."""
        n = 200
        net = PDG(n=n, d=2, seed=9, warm_time=10.0 * n)
        snap = net.snapshot()
        max_age_time = max(snap.age(u) for u in snap.nodes)
        assert max_age_time < lifetime_age_bound(n)  # very loose in time units

    def test_invariants_after_long_run(self):
        net = PDGR(n=150, d=4, seed=10)
        net.advance_to_time(net.now + 300.0)
        net.state.check_invariants()


class TestPDGRTopology:
    def test_full_out_degree(self):
        net = PDGR(n=200, d=5, seed=11)
        snap = net.snapshot()
        aged = [u for u in snap.nodes if snap.age(u) > 0]
        # All but possibly the very earliest nodes keep out-degree d.
        full = sum(
            1
            for u in aged
            if sum(1 for t in snap.out_slots[u] if t is not None) == 5
        )
        assert full / len(aged) > 0.99

    def test_no_isolated_nodes(self):
        net = PDGR(n=300, d=5, seed=12)
        snap = net.snapshot()
        assert len(snap.isolated_nodes()) == 0


class TestPDGTopology:
    def test_isolated_nodes_exist_at_small_d(self):
        net = PDG(n=800, d=2, seed=13)
        snap = net.snapshot()
        assert len(snap.isolated_nodes()) > 0


class TestDeterminism:
    def test_same_seed_reproduces(self):
        a = PDGR(n=100, d=3, seed=77)
        b = PDGR(n=100, d=3, seed=77)
        assert a.snapshot().adjacency == b.snapshot().adjacency
        assert a.now == b.now
