"""Tests for the Bitcoin-like P2P overlay substrate."""

from __future__ import annotations

import pytest

from repro.analysis.components import component_summary
from repro.errors import ConfigurationError
from repro.flooding import flood_discretized
from repro.p2p import AddressManager, BitcoinLikeNetwork
from repro.util.rng import make_rng


class TestAddressManager:
    def test_add_and_contains(self):
        am = AddressManager(owner=0, capacity=4)
        am.add(1, make_rng(0))
        assert 1 in am
        assert len(am) == 1

    def test_never_stores_self(self):
        am = AddressManager(owner=0)
        am.add(0, make_rng(0))
        assert len(am) == 0

    def test_capacity_eviction(self):
        am = AddressManager(owner=0, capacity=3)
        rng = make_rng(1)
        am.add_many([1, 2, 3, 4, 5], rng)
        assert len(am) == 3

    def test_remove(self):
        am = AddressManager(owner=0)
        rng = make_rng(2)
        am.add(7, rng)
        am.remove(7)
        assert 7 not in am

    def test_sample_empty(self):
        assert AddressManager(owner=0).sample(make_rng(0)) is None

    def test_sample_member(self):
        am = AddressManager(owner=0)
        rng = make_rng(3)
        am.add_many([1, 2, 3], rng)
        for _ in range(10):
            assert am.sample(rng) in {1, 2, 3}

    def test_advertise_subset(self):
        am = AddressManager(owner=0)
        rng = make_rng(4)
        am.add_many(list(range(1, 11)), rng)
        ad = am.advertise(rng, 4)
        assert len(ad) == 4
        assert len(set(ad)) == 4
        assert all(a in am for a in ad)

    def test_advertise_more_than_known(self):
        am = AddressManager(owner=0)
        rng = make_rng(5)
        am.add(1, rng)
        assert am.advertise(rng, 10) == [1]

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            AddressManager(owner=0, capacity=0)


class TestBitcoinLikeNetwork:
    @pytest.fixture(scope="class")
    def overlay(self):
        return BitcoinLikeNetwork(n=150, seed=0)

    def test_size_near_n(self, overlay):
        assert 100 <= overlay.num_alive() <= 200

    def test_invariants(self, overlay):
        overlay.state.check_invariants()

    def test_connected_no_isolated(self, overlay):
        summary = component_summary(overlay.snapshot())
        assert summary.is_connected
        assert summary.num_isolated == 0

    def test_outbound_target_mostly_met(self, overlay):
        snap = overlay.snapshot()
        full = sum(
            1
            for u in snap.nodes
            if sum(1 for t in snap.out_slots[u] if t is not None) == 8
        )
        assert full / snap.num_nodes() > 0.9

    def test_inbound_cap_respected(self, overlay):
        assert all(
            overlay.state.in_slot_count(u) <= 125
            for u in overlay.state.alive_ids()
        )

    def test_dial_statistics_accumulate(self, overlay):
        assert overlay.successful_dials > 0

    def test_flooding_completes(self):
        net = BitcoinLikeNetwork(n=150, seed=1)
        result = flood_discretized(net, max_rounds=60)
        assert result.completed

    def test_addrman_stale_fraction_bounded(self):
        """Stale addresses are evicted on failed dials, so tables settle
        well short of all-dead (a 256-slot table on a 100-node network
        inevitably carries a dead majority tail, but bounded)."""
        net = BitcoinLikeNetwork(n=100, seed=2)
        net.run_rounds(30)
        stale_fractions = []
        for _, am in net.addrmans.items():
            known = am.known()
            if known:
                stale = sum(1 for a in known if not net.state.is_alive(a))
                stale_fractions.append(stale / len(known))
        assert sum(stale_fractions) / len(stale_fractions) < 0.8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BitcoinLikeNetwork(n=1)
        with pytest.raises(ConfigurationError):
            BitcoinLikeNetwork(n=50, target_outbound=0)

    def test_small_cap_variant(self):
        """A tight inbound cap still yields a connected overlay."""
        net = BitcoinLikeNetwork(
            n=80, target_outbound=4, max_inbound=8, seed=3, warm_time=160.0
        )
        net.state.check_invariants()
        assert all(
            net.state.in_slot_count(u) <= 8 for u in net.state.alive_ids()
        )
        assert component_summary(net.snapshot()).giant_fraction > 0.9
