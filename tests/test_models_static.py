"""Tests for the static baselines (Lemma B.1 graph and comparisons)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.models import (
    erdos_renyi_snapshot,
    random_regular_snapshot,
    static_d_out_snapshot,
)


class TestStaticDOut:
    def test_node_count(self):
        snap = static_d_out_snapshot(100, 3, seed=0)
        assert snap.num_nodes() == 100

    def test_all_out_slots_assigned(self):
        snap = static_d_out_snapshot(50, 4, seed=1)
        for u in snap.nodes:
            assert sum(1 for t in snap.out_slots[u] if t is not None) == 4

    def test_min_degree_at_least_d(self):
        """Every node has at least its own d requests (minus collisions)."""
        snap = static_d_out_snapshot(200, 3, seed=2)
        assert min(len(snap.adjacency[u]) for u in snap.nodes) >= 1

    def test_connected_for_d3(self):
        """Lemma B.1 graphs at d=3 are connected (w.h.p.; fixed seeds)."""
        for seed in range(5):
            snap = static_d_out_snapshot(300, 3, seed=seed)
            assert len(snap.connected_components()) == 1

    def test_edge_count_bounds(self):
        snap = static_d_out_snapshot(100, 3, seed=3)
        # ≤ nd requests; ≥ nd/2 distinct edges (collisions only shrink).
        assert 150 <= snap.num_edges() <= 300

    def test_no_self_loops(self):
        snap = static_d_out_snapshot(60, 5, seed=4)
        for u, slots in snap.out_slots.items():
            assert u not in slots

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            static_d_out_snapshot(1, 3)
        with pytest.raises(ConfigurationError):
            static_d_out_snapshot(10, 0)

    def test_deterministic(self):
        a = static_d_out_snapshot(40, 3, seed=9)
        b = static_d_out_snapshot(40, 3, seed=9)
        assert a.adjacency == b.adjacency


class TestErdosRenyi:
    def test_sizes(self):
        snap = erdos_renyi_snapshot(100, 0.05, seed=0)
        assert snap.num_nodes() == 100
        assert snap.num_edges() > 0

    def test_invalid_p(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi_snapshot(10, 1.5)

    def test_empty_graph(self):
        snap = erdos_renyi_snapshot(20, 0.0, seed=1)
        assert snap.num_edges() == 0


class TestRandomRegular:
    def test_regular(self):
        snap = random_regular_snapshot(50, 4, seed=0)
        assert all(len(snap.adjacency[u]) == 4 for u in snap.nodes)

    def test_parity_rejected(self):
        with pytest.raises(ConfigurationError):
            random_regular_snapshot(9, 3)
