"""Tests for the discretized (Def. 4.3) and asynchronous (Def. 4.2) flooding."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.flooding import flood_asynchronous, flood_discretized
from repro.models import PDG, PDGR


class TestDiscretized:
    def test_source_defaults_to_youngest(self):
        net = PDGR(n=50, d=4, seed=0)
        snap = net.snapshot()
        youngest = max(snap.nodes, key=lambda u: snap.birth_times[u])
        result = flood_discretized(net, max_rounds=1)
        assert result.source == youngest

    def test_dead_source_rejected(self):
        net = PDGR(n=50, d=4, seed=1)
        with pytest.raises(ConfigurationError):
            flood_discretized(net, source=10**9)

    def test_completes_on_pdgr(self):
        net = PDGR(n=300, d=8, seed=2)
        result = flood_discretized(net)
        assert result.completed

    def test_completion_logarithmic_shape(self):
        """Theorem 4.20: completion within O(log n) unit intervals."""
        for n in [200, 800]:
            net = PDGR(n=n, d=10, seed=n)
            result = flood_discretized(net)
            assert result.completed
            assert result.completion_round <= 8 * math.log2(n)

    def test_partial_on_pdg(self):
        """Theorem 4.13 shape: large informed fraction at moderate d."""
        net = PDG(n=400, d=12, seed=3)
        result = flood_discretized(net, max_rounds=40)
        assert result.fraction_at(40) > 0.85

    def test_trajectory_lengths_match(self):
        net = PDGR(n=100, d=4, seed=4)
        result = flood_discretized(net, max_rounds=10, stop_when_extinct=False)
        assert len(result.informed_sizes) == len(result.network_sizes)

    def test_informer_must_survive_interval(self):
        """Discretized flooding is a (weak) lower bound on discrete flooding:
        it can never inform more nodes per round than there are neighbours
        of surviving informed nodes, so the informed count never exceeds
        the network size."""
        net = PDGR(n=80, d=4, seed=5)
        result = flood_discretized(net, max_rounds=20, stop_when_extinct=False)
        for informed, alive in zip(result.informed_sizes, result.network_sizes):
            assert informed <= alive


class TestAsynchronous:
    def test_completes_on_pdgr(self):
        net = PDGR(n=300, d=8, seed=6)
        result = flood_asynchronous(net)
        assert result.completed

    def test_completion_time_reasonable(self):
        net = PDGR(n=200, d=10, seed=7)
        result = flood_asynchronous(net)
        assert result.completed
        assert result.completion_round <= 8 * math.log2(200)

    def test_async_no_slower_than_discretized(self):
        """Asynchronous flooding dominates the discretized process (the
        paper uses the discretized one exactly because it is a worst case).
        Compare on identical seeds: async should not be slower by more
        than one round (sampling granularity)."""
        slow = flood_discretized(PDGR(n=200, d=8, seed=8))
        fast = flood_asynchronous(PDGR(n=200, d=8, seed=8))
        assert fast.completed and slow.completed
        assert fast.completion_round <= slow.completion_round + 1

    def test_dead_source_rejected(self):
        net = PDGR(n=50, d=3, seed=9)
        with pytest.raises(ConfigurationError):
            flood_asynchronous(net, source=10**9)

    def test_max_time_cap(self):
        net = PDG(n=100, d=1, seed=10)
        result = flood_asynchronous(net, max_time=5.0)
        assert result.rounds_run <= 7  # 5 time units + completion slack

    def test_pdg_low_d_does_not_complete_quickly(self):
        """With d=1 and no regeneration, many nodes are unreachable."""
        net = PDG(n=300, d=1, seed=11)
        result = flood_asynchronous(net, max_time=30.0)
        assert not result.completed
