"""Tests for the lifetime distributions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.churn.lifetime import (
    ExponentialLifetime,
    FixedLifetime,
    ParetoLifetime,
    WeibullLifetime,
)
from repro.errors import ConfigurationError
from repro.util.rng import make_rng


class TestExponential:
    def test_mean_property(self):
        assert ExponentialLifetime(100).mean == 100

    def test_sample_mean(self):
        rng = make_rng(0)
        dist = ExponentialLifetime(50)
        samples = dist.sample_many(rng, 20_000)
        assert np.mean(samples) == pytest.approx(50, rel=0.05)

    def test_invalid_mean(self):
        with pytest.raises(ConfigurationError):
            ExponentialLifetime(0)


class TestWeibull:
    def test_mean_normalisation(self):
        rng = make_rng(1)
        for shape in [0.5, 1.0, 2.0]:
            dist = WeibullLifetime(80, shape=shape)
            samples = dist.sample_many(rng, 30_000)
            assert np.mean(samples) == pytest.approx(80, rel=0.08)

    def test_shape_one_is_exponential(self):
        dist = WeibullLifetime(60, shape=1.0)
        assert dist.scale == pytest.approx(60)

    def test_heavy_tail_median_below_mean(self):
        """Shape < 1: the median sits well below the mean."""
        rng = make_rng(2)
        dist = WeibullLifetime(100, shape=0.5)
        samples = dist.sample_many(rng, 20_000)
        assert np.median(samples) < 60

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            WeibullLifetime(10, shape=0)
        with pytest.raises(ConfigurationError):
            WeibullLifetime(-1, shape=1)


class TestPareto:
    def test_mean_normalisation(self):
        rng = make_rng(3)
        dist = ParetoLifetime(100, alpha=2.5)
        samples = dist.sample_many(rng, 60_000)
        assert np.mean(samples) == pytest.approx(100, rel=0.1)

    def test_median_closed_form(self):
        rng = make_rng(4)
        dist = ParetoLifetime(100, alpha=1.8)
        samples = dist.sample_many(rng, 40_000)
        assert np.median(samples) == pytest.approx(dist.median(), rel=0.07)

    def test_median_far_below_mean_for_small_alpha(self):
        dist = ParetoLifetime(100, alpha=1.2)
        assert dist.median() < 0.3 * dist.mean

    def test_alpha_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            ParetoLifetime(10, alpha=1.0)


class TestFixed:
    def test_always_mean(self):
        dist = FixedLifetime(42)
        rng = make_rng(5)
        assert all(s == 42 for s in dist.sample_many(rng, 10))


@settings(max_examples=40, deadline=None)
@given(
    mean=st.floats(1.0, 1000.0),
    seed=st.integers(0, 1000),
    law=st.sampled_from(["exp", "weibull", "pareto", "fixed"]),
)
def test_property_samples_positive_and_mean_reported(mean, seed, law):
    dist = {
        "exp": lambda: ExponentialLifetime(mean),
        "weibull": lambda: WeibullLifetime(mean, shape=0.7),
        "pareto": lambda: ParetoLifetime(mean, alpha=1.7),
        "fixed": lambda: FixedLifetime(mean),
    }[law]()
    rng = make_rng(seed)
    assert dist.mean == pytest.approx(mean)
    for _ in range(20):
        assert dist.sample(rng) >= 0.0
