"""Tests for ScenarioSpec: round trips, validation, error paths."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenario import (
    ScenarioSpec,
    load_scenario_document,
    make_observer,
    observer_names,
)


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = ScenarioSpec(
            churn="adversarial",
            n=300,
            d=8,
            policy="capped",
            policy_params={"max_in_degree": 16},
            churn_params={"strategy": "max_degree"},
            protocol="gossip",
            protocol_params={"push": True, "pull": False},
            horizon=300,
            seed=7,
            backend="array",
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = ScenarioSpec(
            churn="general",
            n=100,
            d=4,
            policy="regen",
            churn_params={"lifetime": "weibull", "lifetime_params": {"shape": 0.5}},
            protocol="lossy",
            protocol_params={"loss": 0.3},
        )
        text = spec.to_json()
        json.loads(text)  # well-formed JSON
        assert ScenarioSpec.from_json(text) == spec

    def test_to_dict_copies_params(self):
        spec = ScenarioSpec(protocol="lossy", protocol_params={"loss": 0.1})
        data = spec.to_dict()
        data["protocol_params"]["loss"] = 0.9
        assert spec.protocol_params["loss"] == 0.1

    def test_with_replaces(self):
        spec = ScenarioSpec(n=100, d=4)
        bigger = spec.with_(n=200, horizon=50)
        assert bigger.n == 200 and bigger.horizon == 50
        assert spec.n == 100 and spec.horizon == 0
        assert bigger.d == spec.d

    def test_defaults_validate(self):
        spec = ScenarioSpec()
        assert spec.churn == "streaming"
        assert spec.protocol is None

    def test_null_params_mean_empty(self):
        spec = ScenarioSpec.from_dict(
            {"churn": "streaming", "policy": "regen", "churn_params": None,
             "protocol_params": None}
        )
        assert spec.churn_params == {} and spec.protocol_params == {}

    def test_non_mapping_params_rejected(self):
        with pytest.raises(ConfigurationError, match="must be an object"):
            ScenarioSpec(churn_params=[1, 2])


class TestValidation:
    def test_unknown_churn(self):
        with pytest.raises(ConfigurationError, match="unknown churn model"):
            ScenarioSpec(churn="quantum")

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError, match="unknown edge policy"):
            ScenarioSpec(policy="psychic")

    def test_unknown_protocol(self):
        with pytest.raises(ConfigurationError, match="unknown flooding protocol"):
            ScenarioSpec(protocol="telepathy")

    def test_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            ScenarioSpec(backend="gpu")

    def test_unknown_spec_field(self):
        with pytest.raises(ConfigurationError, match="unknown scenario field"):
            ScenarioSpec.from_dict({"churn": "streaming", "colour": "red"})

    def test_capped_needs_max_in_degree(self):
        with pytest.raises(ConfigurationError, match="max_in_degree"):
            ScenarioSpec(policy="capped")

    def test_unknown_policy_param(self):
        with pytest.raises(ConfigurationError, match="unknown policy parameter"):
            ScenarioSpec(policy="regen", policy_params={"bogus": 1})

    def test_unknown_churn_param_fails_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown streaming churn"):
            ScenarioSpec(churn="streaming", churn_params={"warm_tiem": True})

    def test_protocol_managed_model_rejects_edge_policy_at_construction(self):
        with pytest.raises(ConfigurationError, match="policy='none'"):
            ScenarioSpec(churn="bitcoin", policy="regen")

    def test_unknown_lifetime_fails_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown lifetime law"):
            ScenarioSpec(churn="general", churn_params={"lifetime": "uniform"})

    def test_bad_scale(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(n=1)
        with pytest.raises(ConfigurationError):
            ScenarioSpec(d=0)
        with pytest.raises(ConfigurationError):
            ScenarioSpec(horizon=-1)


class TestBoundedPolicySpecs:
    """Spec-level validation and round trips for the bounded policies."""

    def test_raes_round_trip(self):
        spec = ScenarioSpec(
            churn="streaming",
            n=200,
            d=4,
            policy="raes",
            policy_params={"c": 2, "max_attempts": 32},
            protocol="discrete",
            backend="array",
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_unknown_policy_rejected_on_round_trip(self):
        # The error path must fire at from_dict/from_json time too, not
        # only for hand-built specs: a typo'd JSON sweep fails at load.
        data = ScenarioSpec(policy="regen").to_dict()
        data["policy"] = "raes2"
        with pytest.raises(ConfigurationError, match="unknown edge policy"):
            ScenarioSpec.from_dict(data)
        with pytest.raises(ConfigurationError, match="unknown edge policy"):
            ScenarioSpec.from_json(json.dumps(data))

    def test_raes_cap_below_d_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="cap"):
            ScenarioSpec(policy="raes", d=4, policy_params={"c": 0.5})

    def test_raes_cap_below_d_rejected_on_round_trip(self):
        data = ScenarioSpec(
            policy="raes", d=4, policy_params={"c": 2}
        ).to_dict()
        data["policy_params"]["c"] = 0.25
        with pytest.raises(ConfigurationError, match="cap"):
            ScenarioSpec.from_dict(data)
        with pytest.raises(ConfigurationError, match="cap"):
            ScenarioSpec.from_json(json.dumps(data))

    def test_raes_unknown_param_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown policy parameter"):
            ScenarioSpec(policy="raes", policy_params={"cap": 8})

    def test_raes_bad_max_attempts_rejected(self):
        with pytest.raises(ConfigurationError, match="max_attempts"):
            ScenarioSpec(policy="raes", policy_params={"max_attempts": 0})

    def test_capped_bad_max_attempts_rejected(self):
        with pytest.raises(ConfigurationError, match="max_attempts"):
            ScenarioSpec(
                policy="capped",
                policy_params={"max_in_degree": 8, "max_attempts": -3},
            )


class TestScenarioDocument:
    def test_flat_spec_document(self):
        doc = load_scenario_document({"churn": "poisson", "n": 50, "policy": "none"})
        assert doc.spec.churn == "poisson"
        assert doc.observers == ()
        assert not doc.should_flood  # no protocol configured

    def test_full_document(self):
        doc = load_scenario_document(
            {
                "scenario": {"churn": "streaming", "n": 50, "protocol": "discrete"},
                "observers": ["size", {"name": "degrees", "params": {"every": 5}}],
            }
        )
        assert doc.spec.protocol == "discrete"
        assert len(doc.observers) == 2
        assert doc.should_flood  # protocol present, flood unset

    def test_flood_override(self):
        doc = load_scenario_document(
            {"scenario": {"churn": "streaming", "protocol": "discrete"},
             "flood": False}
        )
        assert not doc.should_flood

    def test_unknown_document_field(self):
        with pytest.raises(ConfigurationError, match="unknown scenario document"):
            load_scenario_document(
                {"scenario": {"churn": "streaming"}, "observer": []}
            )

    def test_json_text_source(self):
        doc = load_scenario_document('{"churn": "streaming", "n": 64}')
        assert doc.spec.n == 64

    def test_file_source(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(ScenarioSpec(churn="poisson", policy="none").to_json())
        doc = load_scenario_document(path)
        assert doc.spec.churn == "poisson"

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_scenario_document(tmp_path / "no_such_scenario.json")


class TestObserverRegistry:
    def test_stock_names(self):
        assert {"size", "degrees", "expansion", "isolated", "coverage"} <= set(
            observer_names()
        )

    def test_unknown_observer(self):
        with pytest.raises(ConfigurationError, match="unknown observer"):
            make_observer("scribe")

    def test_bad_observer_params(self):
        with pytest.raises(ConfigurationError, match="bad parameters"):
            make_observer("size", cadence=3)
