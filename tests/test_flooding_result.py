"""Tests for the FloodingResult record."""

from __future__ import annotations

import pytest

from repro.flooding.result import FloodingResult


def make_result(informed: list[int], sizes: list[int]) -> FloodingResult:
    result = FloodingResult(source=0, start_time=0.0)
    for i, s in zip(informed, sizes):
        result.record_round(i, s)
    return result


class TestFloodingResult:
    def test_rounds_run(self):
        result = make_result([1, 3, 9], [10, 10, 10])
        assert result.rounds_run == 2

    def test_empty_result(self):
        result = FloodingResult(source=0, start_time=0.0)
        assert result.rounds_run == 0
        assert result.final_informed == 0
        assert result.final_fraction == 0.0

    def test_final_values(self):
        result = make_result([1, 5], [10, 12])
        assert result.final_informed == 5
        assert result.final_network_size == 12
        assert result.final_fraction == pytest.approx(5 / 12)

    def test_max_informed_tracks_peak_not_final(self):
        result = make_result([1, 8, 3], [10, 10, 10])
        assert result.max_informed == 8

    def test_fraction_at_clamps(self):
        result = make_result([1, 5], [10, 10])
        assert result.fraction_at(99) == pytest.approx(0.5)
        assert result.fraction_at(0) == pytest.approx(0.1)

    def test_fraction_at_zero_network(self):
        result = make_result([0], [0])
        assert result.fraction_at(0) == 0.0

    def test_defaults(self):
        result = FloodingResult(source=3, start_time=2.0)
        assert not result.completed
        assert not result.extinct
        assert result.completion_round is None
        assert result.extinction_round is None
