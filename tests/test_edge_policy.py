"""Tests for the edge policies (topology dynamics of Defs 3.4/3.13 + capped ext)."""

from __future__ import annotations

import pytest

from repro.core.edge_policy import (
    CappedRegenerationPolicy,
    NoRegenerationPolicy,
    RegenerationPolicy,
)
from repro.core.graph import DynamicGraphState
from repro.errors import ConfigurationError
from repro.util.rng import make_rng


def seeded_state(policy, num_nodes: int, seed: int = 0) -> DynamicGraphState:
    state = DynamicGraphState()
    rng = make_rng(seed)
    for _ in range(num_nodes):
        policy.handle_birth(state, state.allocate_id(), 0.0, rng)
    return state


class TestBirth:
    def test_first_node_has_empty_slots(self):
        policy = NoRegenerationPolicy(d=4)
        state = seeded_state(policy, 1)
        assert state.record(0).out_slots == [None] * 4

    def test_birth_assigns_d_slots(self):
        policy = NoRegenerationPolicy(d=4)
        state = seeded_state(policy, 5)
        for u in range(1, 5):
            assert state.record(u).out_degree() == 4

    def test_birth_event_record(self):
        policy = NoRegenerationPolicy(d=3)
        state = DynamicGraphState()
        rng = make_rng(1)
        policy.handle_birth(state, state.allocate_id(), 0.0, rng)
        record = policy.handle_birth(state, state.allocate_id(), 1.0, rng)
        assert record.is_birth
        assert record.node_id == 1
        assert len(record.edges_created) == 3
        assert all(e.source == 1 and e.target == 0 for e in record.edges_created)

    def test_invalid_d(self):
        with pytest.raises(ConfigurationError):
            NoRegenerationPolicy(d=0)


class TestNoRegenerationDeath:
    def test_orphans_stay_empty(self):
        policy = NoRegenerationPolicy(d=2)
        state = seeded_state(policy, 2, seed=3)
        # node 1's two requests both target node 0.
        assert state.record(1).out_slots == [0, 0]
        record = policy.handle_death(state, 0, 5.0, make_rng(0))
        assert record.is_death
        assert state.record(1).out_slots == [None, None]
        assert record.edges_created == []
        assert len(record.edges_destroyed) == 1  # one distinct undirected edge

    def test_death_destroys_all_incident_edges(self):
        policy = NoRegenerationPolicy(d=1)
        state = seeded_state(policy, 6, seed=5)
        victim = 0  # every later node may point at 0; 0 has no out-edges
        degree_before = state.degree(victim)
        record = policy.handle_death(state, victim, 9.0, make_rng(0))
        assert len(record.edges_destroyed) == degree_before
        state.check_invariants()


class TestRegenerationDeath:
    def test_orphans_resampled(self):
        policy = RegenerationPolicy(d=2)
        state = seeded_state(policy, 5, seed=7)
        rng = make_rng(11)
        policy.handle_death(state, 0, 5.0, rng)
        state.check_invariants()
        # Every survivor keeps full out-degree: candidates always exist.
        for u in state.alive_ids():
            assert state.record(u).out_degree() == 2

    def test_regenerated_edges_reported(self):
        policy = RegenerationPolicy(d=3)
        state = seeded_state(policy, 2, seed=1)
        # node 1 points at node 0 three times; killing 0 regenerates,
        # but the only candidate is... nobody (only node 1 remains).
        record = policy.handle_death(state, 0, 2.0, make_rng(2))
        assert record.edges_created == []
        assert state.record(1).out_slots == [None, None, None]

    def test_regeneration_with_candidates(self):
        policy = RegenerationPolicy(d=2)
        state = seeded_state(policy, 4, seed=9)
        orphan_count = sum(
            sum(1 for t in state.record(u).out_slots if t == 0)
            for u in range(1, 4)
        )
        record = policy.handle_death(state, 0, 3.0, make_rng(13))
        # Every orphaned slot was re-assigned (3 nodes remain, so a
        # candidate always exists), and each re-assignment was reported.
        assert len(record.edges_created) == orphan_count
        for u in state.alive_ids():
            if u != 0:
                assert state.record(u).out_degree() == 2
        state.check_invariants()


class TestCappedRegeneration:
    def test_cap_respected_at_birth(self):
        policy = CappedRegenerationPolicy(d=3, max_in_degree=2)
        state = seeded_state(policy, 30, seed=21)
        for u in state.alive_ids():
            assert len(state.in_refs[u]) <= 2

    def test_cap_respected_after_deaths(self):
        policy = CappedRegenerationPolicy(d=3, max_in_degree=2)
        state = seeded_state(policy, 30, seed=22)
        rng = make_rng(23)
        for victim in [0, 1, 2, 3, 4]:
            policy.handle_death(state, victim, 1.0, rng)
            state.check_invariants()
        for u in state.alive_ids():
            assert len(state.in_refs[u]) <= 2

    def test_invalid_cap(self):
        with pytest.raises(ConfigurationError):
            CappedRegenerationPolicy(d=2, max_in_degree=0)

    def test_slot_left_empty_when_all_capped(self):
        # d=5 into a 2-node network: the single other node caps at 1.
        policy = CappedRegenerationPolicy(d=5, max_in_degree=1, max_attempts=8)
        state = seeded_state(policy, 2, seed=24)
        assert state.record(1).out_degree() <= 1
