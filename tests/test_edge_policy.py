"""Tests for the edge policies (Defs 3.4/3.13 + the bounded-degree extensions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.array_backend import ArraySlotBackend
from repro.core.edge_policy import (
    CappedRegenerationPolicy,
    NoRegenerationPolicy,
    RAESPolicy,
    RegenerationPolicy,
)
from repro.core.graph import DynamicGraphState
from repro.errors import ConfigurationError
from repro.util.rng import make_rng


def seeded_state(policy, num_nodes: int, seed: int = 0) -> DynamicGraphState:
    state = DynamicGraphState()
    rng = make_rng(seed)
    for _ in range(num_nodes):
        policy.handle_birth(state, state.allocate_id(), 0.0, rng)
    return state


class TestBirth:
    def test_first_node_has_empty_slots(self):
        policy = NoRegenerationPolicy(d=4)
        state = seeded_state(policy, 1)
        assert state.record(0).out_slots == [None] * 4

    def test_birth_assigns_d_slots(self):
        policy = NoRegenerationPolicy(d=4)
        state = seeded_state(policy, 5)
        for u in range(1, 5):
            assert state.record(u).out_degree() == 4

    def test_birth_event_record(self):
        policy = NoRegenerationPolicy(d=3)
        state = DynamicGraphState()
        rng = make_rng(1)
        policy.handle_birth(state, state.allocate_id(), 0.0, rng)
        record = policy.handle_birth(state, state.allocate_id(), 1.0, rng)
        assert record.is_birth
        assert record.node_id == 1
        assert len(record.edges_created) == 3
        assert all(e.source == 1 and e.target == 0 for e in record.edges_created)

    def test_invalid_d(self):
        with pytest.raises(ConfigurationError):
            NoRegenerationPolicy(d=0)


class TestNoRegenerationDeath:
    def test_orphans_stay_empty(self):
        policy = NoRegenerationPolicy(d=2)
        state = seeded_state(policy, 2, seed=3)
        # node 1's two requests both target node 0.
        assert state.record(1).out_slots == [0, 0]
        record = policy.handle_death(state, 0, 5.0, make_rng(0))
        assert record.is_death
        assert state.record(1).out_slots == [None, None]
        assert record.edges_created == []
        assert len(record.edges_destroyed) == 1  # one distinct undirected edge

    def test_death_destroys_all_incident_edges(self):
        policy = NoRegenerationPolicy(d=1)
        state = seeded_state(policy, 6, seed=5)
        victim = 0  # every later node may point at 0; 0 has no out-edges
        degree_before = state.degree(victim)
        record = policy.handle_death(state, victim, 9.0, make_rng(0))
        assert len(record.edges_destroyed) == degree_before
        state.check_invariants()


class TestRegenerationDeath:
    def test_orphans_resampled(self):
        policy = RegenerationPolicy(d=2)
        state = seeded_state(policy, 5, seed=7)
        rng = make_rng(11)
        policy.handle_death(state, 0, 5.0, rng)
        state.check_invariants()
        # Every survivor keeps full out-degree: candidates always exist.
        for u in state.alive_ids():
            assert state.record(u).out_degree() == 2

    def test_regenerated_edges_reported(self):
        policy = RegenerationPolicy(d=3)
        state = seeded_state(policy, 2, seed=1)
        # node 1 points at node 0 three times; killing 0 regenerates,
        # but the only candidate is... nobody (only node 1 remains).
        record = policy.handle_death(state, 0, 2.0, make_rng(2))
        assert record.edges_created == []
        assert state.record(1).out_slots == [None, None, None]

    def test_regeneration_with_candidates(self):
        policy = RegenerationPolicy(d=2)
        state = seeded_state(policy, 4, seed=9)
        orphan_count = sum(
            sum(1 for t in state.record(u).out_slots if t == 0)
            for u in range(1, 4)
        )
        record = policy.handle_death(state, 0, 3.0, make_rng(13))
        # Every orphaned slot was re-assigned (3 nodes remain, so a
        # candidate always exists), and each re-assignment was reported.
        assert len(record.edges_created) == orphan_count
        for u in state.alive_ids():
            if u != 0:
                assert state.record(u).out_degree() == 2
        state.check_invariants()


class TestCappedRegeneration:
    def test_cap_respected_at_birth(self):
        policy = CappedRegenerationPolicy(d=3, max_in_degree=2)
        state = seeded_state(policy, 30, seed=21)
        for u in state.alive_ids():
            assert len(state.in_refs[u]) <= 2

    def test_cap_respected_after_deaths(self):
        policy = CappedRegenerationPolicy(d=3, max_in_degree=2)
        state = seeded_state(policy, 30, seed=22)
        rng = make_rng(23)
        for victim in [0, 1, 2, 3, 4]:
            policy.handle_death(state, victim, 1.0, rng)
            state.check_invariants()
        for u in state.alive_ids():
            assert len(state.in_refs[u]) <= 2

    def test_invalid_cap(self):
        with pytest.raises(ConfigurationError):
            CappedRegenerationPolicy(d=2, max_in_degree=0)

    @pytest.mark.parametrize("max_attempts", [0, -1])
    def test_invalid_max_attempts(self, max_attempts):
        # Regression: max_attempts < 1 used to be accepted silently, and
        # every placement loop became a no-op — births and repairs
        # produced zero edges with no error anywhere.
        with pytest.raises(ConfigurationError, match="max_attempts"):
            CappedRegenerationPolicy(d=2, max_in_degree=4, max_attempts=max_attempts)
        with pytest.raises(ConfigurationError, match="max_attempts"):
            RAESPolicy(d=2, c=2, max_attempts=max_attempts)

    def test_slot_left_empty_when_all_capped(self):
        # d=5 into a 2-node network: the single other node caps at 1.
        policy = CappedRegenerationPolicy(d=5, max_in_degree=1, max_attempts=8)
        state = seeded_state(policy, 2, seed=24)
        assert state.record(1).out_degree() <= 1


class TestRAES:
    def test_cap_is_c_times_d(self):
        policy = RAESPolicy(d=4, c=2)
        assert policy.max_in_degree == 8
        assert policy.d == 4

    def test_fractional_c_floors(self):
        assert RAESPolicy(d=4, c=1.5).max_in_degree == 6

    def test_cap_below_d_rejected(self):
        # c*d < d can never host all n*d requests: refuse at construction.
        with pytest.raises(ConfigurationError, match="cap"):
            RAESPolicy(d=4, c=0.5)

    def test_invalid_d(self):
        with pytest.raises(ConfigurationError):
            RAESPolicy(d=0)

    def test_cap_respected_under_churn(self):
        policy = RAESPolicy(d=3, c=1)
        state = seeded_state(policy, 30, seed=31)
        rng = make_rng(32)
        for victim in [4, 9, 0, 17]:
            policy.handle_death(state, victim, 1.0, rng)
            state.check_invariants()
        for u in state.alive_ids():
            assert state.in_slot_count(u) <= 3

    def test_full_out_degree_with_slack(self):
        # c=2 leaves spare capacity everywhere, so every request places.
        policy = RAESPolicy(d=3, c=2)
        state = seeded_state(policy, 40, seed=33)
        rng = make_rng(34)
        for victim in [5, 12, 3]:
            policy.handle_death(state, victim, 1.0, rng)
        for u in state.alive_ids():
            if u == 0:
                continue  # born into an empty network: no candidates ever
            assert state.record(u).out_degree() == 3


class TestBulkPlacement:
    """The vectorized accept/reject path on the array backend."""

    def _bulk_births(self, policy, count, seed=0):
        state = ArraySlotBackend(initial_capacity=4, slot_width=1)
        rng = make_rng(seed)
        policy.handle_births(state, state.allocate_ids(count), 0.0, rng)
        return state

    def test_bulk_births_respect_cap(self):
        policy = CappedRegenerationPolicy(d=4, max_in_degree=5)
        state = self._bulk_births(policy, 200, seed=41)
        state.check_invariants()
        for u in state.alive_ids():
            assert state.in_slot_count(u) <= 5

    def test_raes_bulk_births_fill_every_slot(self):
        policy = RAESPolicy(d=4, c=2)
        state = self._bulk_births(policy, 300, seed=42)
        state.check_invariants()
        for u in state.alive_ids():
            assert state.in_slot_count(u) <= 8
            assert all(t is not None for t in state.out_slots_of(u))

    def test_bulk_matches_sequential_law_support(self):
        # bulk=False forces the sequential loop on the same backend; both
        # must satisfy the cap invariant and leave full out-degrees when
        # capacity is slack (they differ only in RNG stream consumption;
        # node 0 is sequential-special: it is born into an empty network).
        for bulk in (True, False):
            policy = RAESPolicy(d=3, c=2, bulk=bulk)
            state = self._bulk_births(policy, 120, seed=43)
            state.check_invariants()
            for u in state.alive_ids():
                if u == 0 and not bulk:
                    continue
                assert all(t is not None for t in state.out_slots_of(u))

    def test_bulk_death_repair_respects_cap(self):
        policy = RAESPolicy(d=3, c=1)
        state = self._bulk_births(policy, 80, seed=44)
        rng = make_rng(45)
        policy.handle_deaths(state, list(range(0, 40, 3)), 1.0, rng)
        state.check_invariants()
        for u in state.alive_ids():
            assert state.in_slot_count(u) <= 3

    def test_bulk_repair_reports_created_edges(self):
        policy = RAESPolicy(d=3, c=2)
        state = self._bulk_births(policy, 50, seed=46)
        record = policy.handle_deaths(state, [1, 2, 3], 1.0, make_rng(47))
        # Spare capacity everywhere: every orphaned slot was re-placed,
        # and each replacement is reported on the aggregate record.
        assert record.edges_created
        for edge in record.edges_created:
            assert state.is_alive(edge.source)
            assert state.is_alive(edge.target)
        for u in state.alive_ids():
            assert all(t is not None for t in state.out_slots_of(u))

    def test_place_slots_rejects_occupied_slot(self):
        from repro.errors import SimulationError

        policy = RAESPolicy(d=2, c=2)
        state = self._bulk_births(policy, 10, seed=48)
        with pytest.raises(SimulationError, match="empty"):
            state.place_slots_capped(
                np.array([0]), np.array([0]), 4, 8, make_rng(0)
            )
