"""Tests for sweep execution: parallelism, caching, failure isolation."""

from __future__ import annotations

import json

import pytest

from repro.errors import SweepError
from repro.experiments import run_experiment
from repro.scenario import ScenarioSpec, simulate
from repro.sweep import (
    ResultStore,
    SweepRunner,
    SweepSpec,
    cell_key,
    current_sweep_options,
    measurement,
    run_sweep,
    use_sweep_options,
)
from repro.util.rng import SeedLike, make_rng

BASE = ScenarioSpec(churn="streaming", policy="none", n=40, d=2, horizon=10)


@measurement("pytest-echo")
def echo(spec: ScenarioSpec, seed: SeedLike, offset: float = 0.0) -> dict:
    """Deterministic cheap cell: one draw from the cell's seed stream."""
    return {"draw": float(make_rng(seed).random()) + offset, "d": spec.d}


@measurement("pytest-fail-at-d3")
def fail_at_d3(spec: ScenarioSpec, seed: SeedLike) -> dict:
    if spec.d == 3:
        raise ValueError("d=3 cell exploded (intentionally)")
    return {"d": spec.d}


@measurement("pytest-unserializable")
def unserializable(spec: ScenarioSpec, seed: SeedLike) -> object:
    return object()


@measurement("pytest-kill-worker-at-d3")
def kill_worker_at_d3(spec: ScenarioSpec, seed: SeedLike) -> dict:
    if spec.d == 3:
        import os

        os._exit(1)  # simulate an OOM-killed / segfaulted worker
    return {"d": spec.d}


def small_sweep(**changes) -> SweepSpec:
    defaults = dict(
        base=BASE,
        axes=[("d", (2, 3))],
        replicas=3,
        seed=0,
        stream="pytest-sweep",
        measure="pytest-echo",
    )
    defaults.update(changes)
    return SweepSpec(**defaults)


class TestBitIdentity:
    def test_parallel_equals_sequential_cheap_cells(self):
        sweep = small_sweep()
        assert run_sweep(sweep, jobs=1).values() == run_sweep(
            sweep, jobs=2
        ).values()

    @pytest.mark.parametrize("backend", ["dict", "array"])
    def test_parallel_equals_sequential_real_simulations(self, backend):
        # Full churn + flooding cells on each topology backend: the
        # acceptance bar of the sweep plane.  Workers resolve *backend*
        # through the shipped cell payload / REPRO_BACKEND.
        sweep = SweepSpec(
            base=ScenarioSpec(
                churn="streaming", policy="regen", n=50, d=4, horizon=50,
                protocol="discrete", backend=backend,
            ),
            axes=[("d", (3, 4))],
            replicas=2,
            seed=1,
            stream="pytest-flood",
            measure="flood_stats",
        )
        sequential = run_sweep(sweep, jobs=1)
        parallel = run_sweep(sweep, jobs=2)
        assert sequential.values() == parallel.values()
        assert sequential.backend == parallel.backend == backend

    def test_results_in_canonical_order(self):
        sweep = small_sweep()
        result = run_sweep(sweep, jobs=2)
        assert [c.index for c in result.cells] == list(range(6))
        assert [c.value["d"] for c in result.cells] == [2, 2, 2, 3, 3, 3]

    def test_value_groups_shape(self):
        groups = run_sweep(small_sweep()).value_groups()
        assert len(groups) == 2
        assert all(len(group) == 3 for group in groups)


class TestStore:
    def test_cold_run_populates_store(self, tmp_path):
        sweep = small_sweep()
        result = run_sweep(sweep, store=tmp_path)
        assert result.executed == sweep.num_cells
        assert len(ResultStore(tmp_path)) == sweep.num_cells

    def test_resume_executes_zero_cells(self, tmp_path):
        sweep = small_sweep()
        cold = run_sweep(sweep, store=tmp_path)
        warm = run_sweep(sweep, store=tmp_path, resume=True)
        assert warm.executed == 0
        assert warm.from_cache == sweep.num_cells
        assert warm.values() == cold.values()

    def test_store_without_resume_recomputes(self, tmp_path):
        sweep = small_sweep()
        run_sweep(sweep, store=tmp_path)
        again = run_sweep(sweep, store=tmp_path)
        assert again.executed == sweep.num_cells

    def test_partial_resume_mixes_cache_and_execution(self, tmp_path):
        sweep = small_sweep()
        cold = run_sweep(sweep, store=tmp_path)
        store = ResultStore(tmp_path)
        victims = list(store.keys())[:2]
        for key in victims:
            store.path_for(key).unlink()
        warm = run_sweep(sweep, store=tmp_path, resume=True, jobs=2)
        assert warm.executed == 2
        assert warm.from_cache == sweep.num_cells - 2
        assert warm.values() == cold.values()

    def test_changed_identity_changes_key(self):
        scenario = BASE.to_dict()
        base_args = dict(
            scenario=scenario, measure="m", measure_params={},
            seed=0, stream="s", index=0, backend="dict",
        )
        key = cell_key(**base_args)
        for change in (
            {"seed": 1},
            {"stream": "other"},
            {"index": 1},
            {"backend": "array"},
            {"measure": "m2"},
            {"measure_params": {"x": 1}},
        ):
            assert cell_key(**{**base_args, **change}) != key

    def test_corrupted_entries_recovered(self, tmp_path):
        sweep = small_sweep()
        cold = run_sweep(sweep, store=tmp_path)
        store = ResultStore(tmp_path)
        keys = list(store.keys())
        # Three corruption flavours: truncated JSON, valid JSON of the
        # wrong shape, and a payload whose recorded key mismatches.
        store.path_for(keys[0]).write_text("{'not json")
        store.path_for(keys[1]).write_text(json.dumps({"value": 1}))
        wrong = dict(store.get(keys[2]))
        wrong["key"] = "0" * 64
        store.path_for(keys[2]).write_text(json.dumps(wrong))
        warm = run_sweep(sweep, store=tmp_path, resume=True)
        assert warm.executed == 3
        assert warm.values() == cold.values()
        # The corrupted entries were rewritten and now serve cleanly.
        healed = run_sweep(sweep, store=tmp_path, resume=True)
        assert healed.executed == 0

    def test_cached_values_identical_to_fresh(self, tmp_path):
        # Float round-tripping: a value served from JSON-on-disk must be
        # bit-identical to the normalized fresh value.
        sweep = small_sweep(measure_params={"offset": 0.1234567890123457})
        cold = run_sweep(sweep, store=tmp_path)
        warm = run_sweep(sweep, store=tmp_path, resume=True)
        assert cold.values() == warm.values()


class TestFailureIsolation:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failing_cell_is_isolated(self, jobs):
        sweep = small_sweep(measure="pytest-fail-at-d3")
        result = run_sweep(sweep, jobs=jobs)
        assert len(result.failures) == 3  # the three d=3 replicas
        healthy = [c for c in result.cells if c.ok]
        assert len(healthy) == 3
        assert all(c.value["d"] == 2 for c in healthy)

    def test_values_surfaces_the_failing_cell(self):
        result = run_sweep(small_sweep(measure="pytest-fail-at-d3"))
        with pytest.raises(SweepError) as excinfo:
            result.values()
        message = str(excinfo.value)
        assert "cell 3" in message
        assert "d=3 cell exploded" in message
        assert "'d': 3" in message  # the overrides identify the cell

    def test_failures_do_not_poison_the_store(self, tmp_path):
        sweep = small_sweep(measure="pytest-fail-at-d3")
        run_sweep(sweep, store=tmp_path)
        assert len(ResultStore(tmp_path)) == 3  # only the healthy cells

    def test_crashed_worker_is_isolated_not_fatal(self):
        # A worker that dies outright (no Python exception to pickle —
        # the BrokenProcessPool path) must surface as cell failures,
        # not abort the sweep.
        sweep = small_sweep(measure="pytest-kill-worker-at-d3")
        result = run_sweep(sweep, jobs=2)  # jobs>1: the kill must not
        # take the test process down, only a pool worker
        assert len(result.failures) >= 3  # all d=3 cells at minimum
        assert any(
            "worker process died" in failure.error
            for failure in result.failures
        )
        with pytest.raises(SweepError):
            result.values()

    def test_unserializable_value_is_a_cell_failure(self):
        result = run_sweep(small_sweep(measure="pytest-unserializable"))
        assert len(result.failures) == result.spec.num_cells
        assert "non-JSON-serializable" in result.failures[0].error


class TestAmbientOptions:
    def test_defaults(self):
        options = current_sweep_options()
        assert options.jobs == 1
        assert options.store is None
        assert not options.resume

    def test_nesting_inherits_unset_fields(self, tmp_path):
        with use_sweep_options(jobs=4, store=tmp_path):
            with use_sweep_options(resume=True):
                options = current_sweep_options()
                assert options.jobs == 4
                assert options.store == tmp_path
                assert options.resume
            assert not current_sweep_options().resume
        assert current_sweep_options().jobs == 1

    def test_resume_requires_store(self):
        with pytest.raises(SweepError):
            with use_sweep_options(resume=True):
                pass  # pragma: no cover

    def test_run_sweep_picks_up_ambient_options(self, tmp_path):
        sweep = small_sweep()
        with use_sweep_options(store=tmp_path):
            run_sweep(sweep)
        with use_sweep_options(store=tmp_path, resume=True):
            warm = run_sweep(sweep)
        assert warm.executed == 0

    def test_run_experiment_threads_options(self, tmp_path):
        cold = run_experiment("EXP-01", quick=True, seed=0, store=tmp_path)
        warm = run_experiment(
            "EXP-01", quick=True, seed=0, jobs=2, store=tmp_path, resume=True
        )
        assert warm.rows == cold.rows
        assert warm.verdict == cold.verdict


class TestRunnerObject:
    def test_runner_is_reusable(self, tmp_path):
        runner = SweepRunner(jobs=1, store=tmp_path, resume=True)
        sweep = small_sweep()
        first = runner.run(sweep)
        second = runner.run(sweep)
        assert first.executed == sweep.num_cells
        assert second.executed == 0
        assert first.values() == second.values()

    def test_rejects_bad_jobs(self):
        with pytest.raises(SweepError):
            SweepRunner(jobs=0)

    def test_per_cell_timing_recorded(self):
        result = run_sweep(small_sweep())
        assert all(c.elapsed >= 0.0 for c in result.cells)
        assert result.elapsed > 0.0


class TestScenarioSeedParity:
    def test_cell_equals_direct_simulation(self):
        # A sweep cell must reproduce exactly what a hand-rolled
        # simulate(spec, seed=derive_seed(...)) loop would measure.
        sweep = SweepSpec(
            base=ScenarioSpec(
                churn="streaming", policy="none", n=40, d=2, horizon=40
            ),
            replicas=2,
            seed=5,
            stream="parity",
            measure="network_summary",
        )
        result = run_sweep(sweep)
        for cell_result in result.cells:
            sim = simulate(
                cell_result.cell.spec, seed=sweep.cell_seed(cell_result.index)
            )
            view = sim.csr_view()
            assert cell_result.value == {
                "alive": view.n,
                "edges": view.num_edges(),
                "time": sim.network.now,
            }
