"""Tests for repro.util.sampling.IndexedSet, including hypothesis properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import make_rng
from repro.util.sampling import IndexedSet


class TestBasicOps:
    def test_add_and_contains(self):
        s = IndexedSet()
        s.add(3)
        assert 3 in s
        assert 4 not in s

    def test_len(self):
        s = IndexedSet([1, 2, 3])
        assert len(s) == 3

    def test_duplicate_add_is_noop(self):
        s = IndexedSet()
        s.add(1)
        s.add(1)
        assert len(s) == 1

    def test_discard(self):
        s = IndexedSet([1, 2, 3])
        s.discard(2)
        assert 2 not in s
        assert len(s) == 2

    def test_discard_absent_is_noop(self):
        s = IndexedSet([1])
        s.discard(9)
        assert len(s) == 1

    def test_remove_raises_on_absent(self):
        with pytest.raises(KeyError):
            IndexedSet([1]).remove(2)

    def test_iteration_covers_members(self):
        s = IndexedSet([5, 6, 7])
        assert sorted(s) == [5, 6, 7]

    def test_as_list_is_copy(self):
        s = IndexedSet([1, 2])
        lst = s.as_list()
        lst.append(99)
        assert 99 not in s


class TestSampling:
    def test_sample_from_singleton(self):
        s = IndexedSet([42])
        assert s.sample(make_rng(0)) == 42

    def test_sample_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedSet().sample(make_rng(0))

    def test_sample_is_member(self):
        s = IndexedSet(range(100))
        rng = make_rng(1)
        for _ in range(50):
            assert s.sample(rng) in s

    def test_sample_excluding(self):
        s = IndexedSet([1, 2])
        rng = make_rng(2)
        for _ in range(20):
            assert s.sample_excluding(rng, 1) == 2

    def test_sample_excluding_no_candidate(self):
        s = IndexedSet([1])
        with pytest.raises(IndexError):
            s.sample_excluding(make_rng(0), 1)

    def test_sample_many_counts(self):
        s = IndexedSet(range(10))
        out = s.sample_many(make_rng(0), 25)
        assert len(out) == 25

    def test_sample_many_excludes(self):
        s = IndexedSet([7, 8])
        out = s.sample_many(make_rng(0), 50, exclude=7)
        assert out == [8] * 50

    def test_sample_many_empty(self):
        assert IndexedSet().sample_many(make_rng(0), 5) == []

    def test_sample_many_only_excluded(self):
        s = IndexedSet([3])
        assert s.sample_many(make_rng(0), 5, exclude=3) == []

    def test_sampling_is_roughly_uniform(self):
        s = IndexedSet(range(4))
        rng = make_rng(3)
        counts = {i: 0 for i in range(4)}
        trials = 8000
        for _ in range(trials):
            counts[s.sample(rng)] += 1
        for c in counts.values():
            assert abs(c / trials - 0.25) < 0.03


class TestSwapPopConsistency:
    def test_interleaved_ops(self):
        s = IndexedSet()
        reference: set[int] = set()
        rng = np.random.default_rng(5)
        for _ in range(2000):
            x = int(rng.integers(0, 50))
            if rng.random() < 0.5:
                s.add(x)
                reference.add(x)
            else:
                s.discard(x)
                reference.discard(x)
            assert len(s) == len(reference)
        assert sorted(s) == sorted(reference)


@settings(max_examples=200, deadline=None)
@given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 20)), max_size=60))
def test_property_matches_builtin_set(ops):
    """IndexedSet behaves exactly like a built-in set under add/discard."""
    s = IndexedSet()
    reference: set[int] = set()
    for is_add, value in ops:
        if is_add:
            s.add(value)
            reference.add(value)
        else:
            s.discard(value)
            reference.discard(value)
    assert set(s.as_list()) == reference
    assert len(s) == len(reference)
    for v in range(21):
        assert (v in s) == (v in reference)
