"""Cross-path parity suite for the CSR analysis plane.

The contract under test (see ``docs/architecture.md``): every hot
analysis returns *identical* results whether it runs on the frozen dict
:class:`Snapshot` (reference path) or on a :class:`CSRView` — built
zero-copy from the array backend, one-shot from the dict backend, or
converted from a snapshot — and identical across topology backends.
For the expansion probes "identical" means the exact probe minimum, the
exact witness set, and the exact ``candidates_checked`` count.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.components import component_summary
from repro.analysis.degrees import degree_histogram, degree_summary, max_degree
from repro.analysis.expansion import (
    _CSRProbe,
    adversarial_expansion_upper_bound,
    expansion_of_set,
    large_set_expansion_probe,
    probe_network_expansion,
)
from repro.analysis.distances import (
    average_shortest_path_sample,
    bfs_distances,
    eccentricity,
    giant_component_diameter,
)
from repro.analysis.incremental import ProbeCache
from repro.analysis.isolated import count_isolated, isolated_fraction
from repro.analysis.temporal import snapshot_jaccard
from repro.analysis.spectral import cheeger_bounds, normalized_laplacian_lambda2
from repro.core.csr import (
    candidate_key,
    candidate_key_array,
    csr_view_from_snapshot,
    mix64,
    mix64_array,
)
from repro.core.edge_policy import RAESPolicy, RegenerationPolicy
from repro.models import PDG, SDG, SDGR
from repro.models.streaming import StreamingNetwork
from repro.scenario import (
    DegreeStatsObserver,
    ExpansionObserver,
    IsolatedNodesObserver,
    Observer,
    ScenarioSpec,
    Simulation,
    simulate,
)
from tests.conftest import cycle_snapshot, path_snapshot, snapshot_from_edges


def seeded_networks(backend: str):
    """The seeded graph menagerie the parity contract is asserted on."""
    sdg = SDG(n=90, d=2, seed=3, backend=backend)  # isolated nodes + ties
    sdg.run_rounds(90)
    sdgr = SDGR(n=110, d=6, seed=7, backend=backend)  # expander
    sdgr.run_rounds(110)
    pdg = PDG(n=70, d=3, seed=5, backend=backend)
    pdg.run_rounds(50)
    raes = StreamingNetwork(
        60, RAESPolicy(d=3, c=2), seed=11, backend=backend
    )
    raes.run_rounds(60)
    return [("SDG", sdg), ("SDGR", sdgr), ("PDG", pdg), ("RAES", raes)]


def assert_probe_equal(a, b):
    assert a.min_ratio == b.min_ratio
    assert a.witness_size == b.witness_size
    assert a.witness == b.witness
    assert a.candidates_checked == b.candidates_checked


class TestHashing:
    def test_scalar_and_vector_mix_agree(self):
        ids = np.array([0, 1, 7, 123456, 2**40], dtype=np.int64)
        vector = mix64_array(ids)
        for node_id, mixed in zip(ids.tolist(), vector.tolist()):
            assert mix64(node_id) == mixed

    def test_candidate_keys_agree(self):
        sizes = np.array([1, 5, 400], dtype=np.uint64)
        xors = mix64_array(np.array([9, 10, 11]))
        keys = candidate_key_array(sizes, xors)
        for size, xor, key in zip(
            sizes.tolist(), xors.tolist(), keys.tolist()
        ):
            assert candidate_key(int(size), int(xor)) == key

    def test_key_is_order_independent(self):
        xor_ab = mix64(3) ^ mix64(17)
        xor_ba = mix64(17) ^ mix64(3)
        assert candidate_key(2, xor_ab) == candidate_key(2, xor_ba)


class TestViewConstruction:
    def test_backends_export_identical_views(self):
        views = []
        for backend in ("dict", "array"):
            net = SDGR(n=60, d=4, seed=2, backend=backend)
            net.run_rounds(60)
            views.append(net.state.csr_view(net.now))
        a, b = views
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.degrees, b.degrees)
        assert a.num_edges() == b.num_edges()
        assert np.array_equal(
            a.birth[a.alive_verts], b.birth[b.alive_verts]
        )

    def test_array_view_is_zero_copy(self):
        net = SDGR(n=40, d=3, seed=1, backend="array")
        net.run_rounds(40)
        state = net.state
        view = state.csr_view(net.now)
        indptr, indices = state.adjacency_csr()
        assert view.indptr is indptr
        assert view.indices is indices
        assert view.vert_ids is state._id_of
        assert view.birth is state._birth

    def test_snapshot_conversion_matches_backend_view(self, backend_name):
        net = SDG(n=50, d=3, seed=4, backend=backend_name)
        net.run_rounds(50)
        direct = net.state.csr_view(net.now)
        converted = csr_view_from_snapshot(net.snapshot())
        assert converted.time == direct.time
        assert np.array_equal(converted.ids, direct.ids)
        assert np.array_equal(converted.degrees, direct.degrees)
        assert converted.num_edges() == direct.num_edges()

    def test_view_of_empty_graph(self):
        from repro.core.graph import DictBackend

        view = DictBackend().csr_view(0.0)
        assert view.n == 0
        assert view.num_edges() == 0
        assert degree_summary(view).num_nodes == 0

    def test_vert_id_round_trip(self, backend_name):
        net = SDGR(n=30, d=2, seed=9, backend=backend_name)
        net.run_rounds(30)
        view = net.state.csr_view(net.now)
        for node_id in view.ids.tolist():
            assert int(view.vert_ids[view.vert_of(node_id)]) == node_id


class TestCensusParity:
    @pytest.fixture(params=["dict", "array"])
    def graphs(self, request):
        return [
            (name, net.snapshot(), net.state.csr_view(net.now))
            for name, net in seeded_networks(request.param)
        ]

    def test_degree_summary(self, graphs):
        for name, snap, view in graphs:
            ref, fast = degree_summary(snap), degree_summary(view)
            assert ref.num_nodes == fast.num_nodes, name
            assert ref.num_edges == fast.num_edges, name
            assert ref.min_degree == fast.min_degree, name
            assert ref.max_degree == fast.max_degree, name
            assert ref.mean_degree == pytest.approx(fast.mean_degree)
            assert ref.std_degree == pytest.approx(fast.std_degree)

    def test_max_degree_and_histogram(self, graphs):
        for name, snap, view in graphs:
            assert max_degree(snap) == max_degree(view), name
            assert degree_histogram(snap) == degree_histogram(view), name

    def test_isolated_census(self, graphs):
        for name, snap, view in graphs:
            assert count_isolated(snap) == count_isolated(view), name
            assert isolated_fraction(snap) == isolated_fraction(view), name

    def test_component_census(self, graphs):
        for name, snap, view in graphs:
            assert component_summary(snap) == component_summary(view), name

    def test_component_census_on_crafted_graphs(self):
        # Long path (stresses pointer-jumping convergence), disconnected
        # pieces, and isolated nodes.
        crafted = [
            path_snapshot(200),
            cycle_snapshot(64),
            snapshot_from_edges(9, [(0, 1), (1, 2), (3, 4), (4, 5)]),
            snapshot_from_edges(5, []),
        ]
        for snap in crafted:
            view = csr_view_from_snapshot(snap)
            assert component_summary(snap) == component_summary(view)


class TestSpectralParity:
    """λ₂ via the CSR view equals the Snapshot reference path.

    The view path extracts the giant component in the same ascending-id
    row order the snapshot path uses, so the assembled Laplacians are
    the same matrix and the eigenvalues agree to solver roundoff.
    """

    @pytest.fixture(params=["dict", "array"])
    def graphs(self, request):
        return [
            (name, net.snapshot(), net.state.csr_view(net.now))
            for name, net in seeded_networks(request.param)
        ]

    def test_lambda2_parity(self, graphs):
        for name, snap, view in graphs:
            ref = normalized_laplacian_lambda2(snap)
            fast = normalized_laplacian_lambda2(view)
            assert fast == pytest.approx(ref, abs=1e-9), name

    def test_lambda2_parity_from_snapshot_view(self, graphs):
        for name, snap, _ in graphs:
            ref = normalized_laplacian_lambda2(snap)
            fast = normalized_laplacian_lambda2(csr_view_from_snapshot(snap))
            assert fast == pytest.approx(ref, abs=1e-9), name

    def test_cheeger_parity(self, graphs):
        for name, snap, view in graphs:
            ref, fast = cheeger_bounds(snap), cheeger_bounds(view)
            assert fast.lambda2 == pytest.approx(ref.lambda2, abs=1e-9), name
            assert fast.conductance_lower == pytest.approx(
                ref.conductance_lower, abs=1e-9
            )
            assert fast.conductance_upper == pytest.approx(
                ref.conductance_upper, abs=1e-9
            )
            assert fast.vertex_expansion_lower == pytest.approx(
                ref.vertex_expansion_lower, abs=1e-9
            )

    def test_giant_restriction_on_disconnected_graph(self):
        snap = snapshot_from_edges(
            8, [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2), (4, 5), (5, 6)]
        )
        view = csr_view_from_snapshot(snap)
        ref = normalized_laplacian_lambda2(snap, on_giant=True)
        fast = normalized_laplacian_lambda2(view, on_giant=True)
        assert fast == pytest.approx(ref, abs=1e-12)
        assert fast > 0.0

    def test_disconnected_without_giant_restriction_is_zero(self):
        snap = snapshot_from_edges(
            8, [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2), (4, 5), (5, 6), (6, 7)]
        )
        view = csr_view_from_snapshot(snap)
        assert normalized_laplacian_lambda2(
            view, on_giant=False
        ) == pytest.approx(0.0, abs=1e-9)

    def test_small_component_rejected(self):
        from repro.errors import AnalysisError

        view = csr_view_from_snapshot(snapshot_from_edges(2, [(0, 1)]))
        with pytest.raises(AnalysisError):
            normalized_laplacian_lambda2(view)


class TestProbeParity:
    @pytest.mark.parametrize("backend", ["dict", "array"])
    def test_adversarial_probe_identical(self, backend):
        for name, net in seeded_networks(backend):
            snap = net.snapshot()
            reference = adversarial_expansion_upper_bound(snap, seed=1)
            for view in (net.state.csr_view(net.now), snap.csr_view()):
                assert_probe_equal(
                    adversarial_expansion_upper_bound(view, seed=1), reference
                )

    @pytest.mark.parametrize("backend", ["dict", "array"])
    def test_large_set_probe_identical(self, backend):
        for name, net in seeded_networks(backend):
            snap = net.snapshot()
            n = snap.num_nodes()
            reference = large_set_expansion_probe(
                snap, min_size=4, max_size=n // 2, seed=2
            )
            fast = large_set_expansion_probe(
                net.state.csr_view(net.now), min_size=4, max_size=n // 2, seed=2
            )
            assert_probe_equal(fast, reference)

    def test_probes_identical_across_backends(self):
        probes = []
        for backend in ("dict", "array"):
            net = SDG(n=80, d=2, seed=6, backend=backend)
            net.run_rounds(80)
            view = net.state.csr_view(net.now)
            probes.append(
                (
                    adversarial_expansion_upper_bound(view, seed=3),
                    large_set_expansion_probe(view, min_size=5, seed=4),
                )
            )
        assert_probe_equal(probes[0][0], probes[1][0])
        assert_probe_equal(probes[0][1], probes[1][1])

    def test_probe_network_expansion_is_view_path(self, backend_name):
        net = SDGR(n=70, d=5, seed=8, backend=backend_name)
        net.run_rounds(70)
        assert_probe_equal(
            probe_network_expansion(net, seed=1),
            adversarial_expansion_upper_bound(net.snapshot(), seed=1),
        )

    def test_size_window_respected_on_view(self):
        snap = cycle_snapshot(20)
        probe = adversarial_expansion_upper_bound(
            csr_view_from_snapshot(snap), seed=4, min_size=3, max_size=5
        )
        assert 3 <= probe.witness_size <= 5
        assert snap.expansion_of(probe.witness) == pytest.approx(
            probe.min_ratio
        )

    def test_witness_ratio_is_real_on_view(self):
        net = SDG(n=60, d=3, seed=12, backend="array")
        net.run_rounds(60)
        view = net.state.csr_view(net.now)
        probe = adversarial_expansion_upper_bound(view, seed=5)
        assert expansion_of_set(view, probe.witness) == probe.min_ratio
        assert net.snapshot().expansion_of(probe.witness) == probe.min_ratio

    def test_duplicate_candidates_counted_once(self):
        # On a complete graph every BFS ball of radius 1 is the whole
        # vertex set and every closed neighbourhood coincides; dedupe
        # must collapse them on both paths identically.
        from tests.conftest import complete_snapshot

        snap = complete_snapshot(8)
        reference = adversarial_expansion_upper_bound(
            snap, seed=0, num_random_sets=16
        )
        fast = adversarial_expansion_upper_bound(
            csr_view_from_snapshot(snap), seed=0, num_random_sets=16
        )
        assert_probe_equal(fast, reference)
        # n singletons + 16 random sets at most, plus greedy chains —
        # far fewer than the undeduplicated portfolio would count.
        assert reference.candidates_checked <= 8 + 16 + 8 * 3


class TestBallProperty:
    """Vectorized BFS balls equal set-based balls (the ISSUE property)."""

    @staticmethod
    def _set_ball(snapshot, root: int, radius: int) -> frozenset[int]:
        ball = {root}
        frontier = {root}
        for _ in range(radius):
            shell = set()
            for u in frontier:
                shell.update(snapshot.adjacency[u])
            shell -= ball
            if not shell:
                break
            ball |= shell
            frontier = shell
        return frozenset(ball)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 50),
        root_rank=st.integers(0, 59),
        radius=st.integers(0, 5),
    )
    def test_ball_members_match_reference(self, seed, root_rank, radius):
        net = SDG(n=60, d=3, seed=seed, backend="array")
        net.run_rounds(60)
        snap = net.snapshot()
        view = net.state.csr_view(net.now)
        root = sorted(snap.nodes)[root_rank]
        probe = _CSRProbe(view, 1, view.n)
        members = probe._ball_members(view.vert_of(root), radius)
        assert frozenset(
            int(i) for i in view.vert_ids[members]
        ) == self._set_ball(snap, root, radius)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 50),
        d=st.integers(2, 6),
        max_size=st.integers(1, 40),
    )
    def test_ball_only_portfolio_identical(self, seed, d, max_size):
        """With greedy and random phases disabled, the portfolio is
        exactly the singleton/neighbourhood/ball family — the probes
        agree on it for arbitrary roots and max_size windows."""
        net = SDGR(n=48, d=d, seed=seed, backend="array")
        net.run_rounds(48)
        reference = adversarial_expansion_upper_bound(
            net.snapshot(),
            seed=0,
            num_random_sets=0,
            greedy_restarts=0,
            max_size=max_size,
        )
        fast = adversarial_expansion_upper_bound(
            net.state.csr_view(net.now),
            seed=0,
            num_random_sets=0,
            greedy_restarts=0,
            max_size=max_size,
        )
        assert_probe_equal(fast, reference)


class TestDistanceParity:
    """CSR mask-frontier BFS equals the dict reference, ties included."""

    @pytest.fixture(params=["dict", "array"])
    def graphs(self, request):
        return [
            (name, net.snapshot(), net.state.csr_view(net.now))
            for name, net in seeded_networks(request.param)
        ]

    def test_bfs_distances_and_eccentricity(self, graphs):
        for name, snap, view in graphs:
            for source in sorted(snap.nodes)[:5]:
                assert bfs_distances(snap, source) == bfs_distances(
                    view, source
                ), name
                assert eccentricity(snap, source) == eccentricity(
                    view, source
                ), name

    def test_unknown_source_rejected_on_view(self):
        from repro.errors import AnalysisError

        view = csr_view_from_snapshot(path_snapshot(4))
        with pytest.raises(AnalysisError):
            bfs_distances(view, 99)

    def test_giant_component_diameter(self, graphs):
        for name, snap, view in graphs:
            assert giant_component_diameter(
                snap, seed=2
            ) == giant_component_diameter(view, seed=2), name
            # Double-sweep path (exact_limit below component size): same
            # RNG draws, same canonical far-node tie-break.
            assert giant_component_diameter(
                snap, exact_limit=1, seed=4
            ) == giant_component_diameter(view, exact_limit=1, seed=4), name

    def test_average_shortest_path_sample(self, graphs):
        for name, snap, view in graphs:
            assert average_shortest_path_sample(
                snap, seed=9
            ) == average_shortest_path_sample(view, seed=9), name

    def test_diameter_on_crafted_graphs(self):
        for snap in (path_snapshot(9), cycle_snapshot(10),
                     snapshot_from_edges(7, [(0, 1), (1, 2), (2, 3), (5, 6)])):
            view = csr_view_from_snapshot(snap)
            assert giant_component_diameter(snap) == giant_component_diameter(
                view
            )

    def test_snapshot_jaccard_mixed_paths(self, graphs):
        (_, snap_a, view_a), (_, snap_b, view_b) = graphs[:2]
        reference = snapshot_jaccard(snap_a, snap_b)
        assert snapshot_jaccard(view_a, view_b) == reference
        assert snapshot_jaccard(snap_a, view_b) == reference
        assert snapshot_jaccard(view_a, snap_b) == reference
        assert snapshot_jaccard(view_a, view_a) == 1.0


class TestIncrementalParity:
    """ProbeCache replays are bit-identical to cold recomputes."""

    PARAMS = dict(num_random_sets=16, greedy_restarts=4, max_size=25)

    @pytest.mark.parametrize("backend", ["dict", "array"])
    def test_incremental_equals_cold_across_windows(self, backend):
        net = SDGR(n=200, d=4, seed=7, backend=backend)
        net.run_rounds(200)
        cache = ProbeCache(net.state, **self.PARAMS)
        replayed_any = False
        for _ in range(5):
            view = net.state.csr_view(net.now)
            incremental = cache.probe(view, seed=1)
            cold = adversarial_expansion_upper_bound(
                net.state.csr_view(net.now), seed=1, **self.PARAMS
            )
            assert_probe_equal(incremental, cold)
            replayed_any |= cache.last_stats["replayed"] > 0
            net.run_rounds(3)
        assert replayed_any  # the cache actually reused balls

    def test_zero_churn_window_is_full_replay(self):
        net = SDGR(n=150, d=4, seed=3, backend="array")
        net.run_rounds(150)
        cache = ProbeCache(net.state, **self.PARAMS)
        first = cache.probe(net.state.csr_view(net.now), seed=5)
        again = cache.probe(net.state.csr_view(net.now), seed=5)
        assert cache.last_stats["replayed"] == 150
        assert cache.last_stats["recomputed"] == 0
        assert_probe_equal(first, again)

    def test_changed_size_window_flushes(self):
        net = SDGR(n=100, d=4, seed=2, backend="array")
        net.run_rounds(100)
        cache = ProbeCache(net.state, num_random_sets=8, greedy_restarts=2)
        cache.probe(net.state.csr_view(net.now), seed=0)
        cache.max_size = 10  # narrower window: every trajectory changes
        probe = cache.probe(net.state.csr_view(net.now), seed=0)
        assert cache.last_stats["recomputed"] == 100
        cold = adversarial_expansion_upper_bound(
            net.state.csr_view(net.now),
            seed=0,
            num_random_sets=8,
            greedy_restarts=2,
            max_size=10,
        )
        assert_probe_equal(probe, cold)

    def test_incremental_observer_matches_cold_observer(self):
        def run(incremental):
            spec = ScenarioSpec(
                churn="streaming", policy="regen", n=120, d=4, horizon=30
            )
            observer = ExpansionObserver(
                every=5, seed=2, incremental=incremental, **self.PARAMS
            )
            Simulation(spec, observers=[observer], seed=5).run()
            return observer.result()

        assert run(True) == run(False)


class TestObserverSharing:
    def test_one_view_per_window(self):
        spec = ScenarioSpec(churn="streaming", policy="regen", n=40, d=4, horizon=20)
        sim = Simulation(
            spec,
            observers=[
                DegreeStatsObserver(every=5),
                IsolatedNodesObserver(every=5),
                ExpansionObserver(every=10, num_random_sets=16),
            ],
            seed=1,
        )
        builds = 0
        original = sim.network.state.csr_view

        def counting(time):
            nonlocal builds
            builds += 1
            return original(time)

        sim.network.state.csr_view = counting
        sim.run()
        # 4 cadence windows (rounds 5/10/15/20): one build each, shared
        # by every due observer.  The last window lands exactly on the
        # horizon, so the finish notification is skipped — no double
        # reading of the final state.
        assert builds == 4
        results = sim.results()
        assert len(results["degrees"]["series"]) == 4
        assert len(results["isolated"]["series"]) == 4
        assert len(results["expansion"]["series"]) == 2

    def test_view_observers_match_snapshot_analyses(self):
        spec = ScenarioSpec(churn="streaming", policy="none", n=60, d=2, horizon=60)
        sim = simulate(
            spec,
            seed=3,
            observers=[DegreeStatsObserver(), IsolatedNodesObserver()],
        )
        snap = sim.snapshot()
        results = sim.results()
        summary = degree_summary(snap)
        final = results["degrees"]["final"]
        assert final["min_degree"] == summary.min_degree
        assert final["max_degree"] == summary.max_degree
        assert final["mean_degree"] == pytest.approx(summary.mean_degree)
        assert results["isolated"]["final"]["isolated"] == count_isolated(snap)

    def test_legacy_snapshot_observer_still_fed(self):
        class SnapshotEcho(Observer):
            name = "snapshot_echo"

            def __init__(self):
                super().__init__(every=4)
                self.snapshots = []

            def on_round(self, report, snapshot):
                self.snapshots.append(snapshot)

            def on_finish(self, snapshot):
                self.snapshots.append(snapshot)

        echo = SnapshotEcho()
        spec = ScenarioSpec(churn="streaming", policy="regen", n=30, d=3, horizon=8)
        Simulation(spec, observers=[echo], seed=2).run()
        # Cadence windows at rounds 4 and 8; round 8 is the horizon, so
        # on_finish is suppressed for this already-flushed observer.
        assert len(echo.snapshots) == 2
        assert all(s is not None and s.num_nodes() == 30 for s in echo.snapshots)

    def test_no_builds_when_nobody_asks(self):
        spec = ScenarioSpec(churn="streaming", policy="regen", n=30, d=3, horizon=6)
        sim = Simulation(spec, observers=[], seed=2)
        sim.network.state.csr_view = None  # would raise if called
        sim.network.state.snapshot = None
        sim.run()

    def test_expansion_observer_params_round_trip(self):
        spec = ScenarioSpec(churn="streaming", policy="regen", n=40, d=4, horizon=40)
        sim = simulate(
            spec,
            seed=5,
            observers=[
                {
                    "name": "expansion",
                    "params": {"num_random_sets": 8, "max_size": 10, "seed": 1},
                }
            ],
        )
        series = sim.results()["expansion"]["series"]
        assert len(series) == 1
        reference = adversarial_expansion_upper_bound(
            sim.snapshot(), seed=1, num_random_sets=8, max_size=10
        )
        assert series[0]["min_ratio"] == reference.min_ratio


class TestSnapshotMemoization:
    def test_num_edges_and_degrees_cached(self):
        snap = cycle_snapshot(12)
        assert snap.num_edges() == 12
        assert snap.degrees() is snap.degrees()
        first = snap.num_edges()
        assert first == snap.num_edges() == 12

    def test_cache_does_not_leak_into_equality_or_serialization(self):
        a = cycle_snapshot(10)
        b = cycle_snapshot(10)
        a.num_edges(), a.degrees()  # populate caches on one side only
        assert a == b
        restored = type(a).from_dict(a.to_dict())
        assert restored == a
        assert restored.num_edges() == a.num_edges()
