"""Shared fixtures and helpers for the test suite.

The whole suite runs against whichever topology backend the
``REPRO_BACKEND`` environment variable selects (``dict`` by default,
``array`` for the vectorized backend) — every driver resolves its default
backend through :func:`repro.core.backend.create_backend`, so no test
needs to thread the choice explicitly.  CI runs the suite once per
backend; seeded churn trajectories (and flood_discrete/discretized)
are bit-identical across the two runs, while neighbour-order-sensitive
processes (gossip, lossy flooding) agree only in distribution.
"""

from __future__ import annotations

import os

import pytest

from repro.core.backend import BACKEND_NAMES, default_backend_name
from repro.core.snapshot import Snapshot


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers", "slow: long-running test (full experiment configurations)"
    )
    name = os.environ.get("REPRO_BACKEND")
    if name and name not in BACKEND_NAMES:
        raise pytest.UsageError(
            f"REPRO_BACKEND={name!r} is not one of {BACKEND_NAMES}"
        )


def pytest_report_header(config: pytest.Config) -> str:
    del config
    return f"repro topology backend: {default_backend_name()}"


@pytest.fixture(params=list(BACKEND_NAMES))
def backend_name(request: pytest.FixtureRequest) -> str:
    """Parametrized backend name, for tests that must cover both."""
    return request.param


def snapshot_from_edges(
    num_nodes: int,
    edges: list[tuple[int, int]],
    time: float = 0.0,
    birth_times: dict[int, float] | None = None,
) -> Snapshot:
    """Build a Snapshot from an explicit undirected edge list.

    Nodes are ``0 .. num_nodes-1``; out_slots are left empty (tests that
    need slots build real models instead).
    """
    adjacency: dict[int, set[int]] = {u: set() for u in range(num_nodes)}
    for u, v in edges:
        if u == v:
            raise ValueError("no self loops in tests")
        adjacency[u].add(v)
        adjacency[v].add(u)
    births = birth_times or {u: 0.0 for u in range(num_nodes)}
    return Snapshot(
        time=time,
        nodes=frozenset(range(num_nodes)),
        adjacency={u: frozenset(nbrs) for u, nbrs in adjacency.items()},
        birth_times=births,
        out_slots={u: () for u in range(num_nodes)},
    )


def path_snapshot(num_nodes: int) -> Snapshot:
    """A path 0-1-2-…-(n-1)."""
    return snapshot_from_edges(
        num_nodes, [(i, i + 1) for i in range(num_nodes - 1)]
    )


def cycle_snapshot(num_nodes: int) -> Snapshot:
    """A cycle on num_nodes nodes."""
    edges = [(i, (i + 1) % num_nodes) for i in range(num_nodes)]
    return snapshot_from_edges(num_nodes, edges)


def complete_snapshot(num_nodes: int) -> Snapshot:
    """The complete graph K_n."""
    edges = [
        (i, j) for i in range(num_nodes) for j in range(i + 1, num_nodes)
    ]
    return snapshot_from_edges(num_nodes, edges)


@pytest.fixture
def path8() -> Snapshot:
    return path_snapshot(8)


@pytest.fixture
def cycle10() -> Snapshot:
    return cycle_snapshot(10)


@pytest.fixture
def complete6() -> Snapshot:
    return complete_snapshot(6)
