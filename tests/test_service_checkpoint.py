"""Tests for the service plane's checkpoint/restore (repro.service.checkpoint).

The headline property, enforced as a hypothesis property over random
checkpoint rounds on both topology backends: a run checkpointed at round
k and restored is **bit-identical** — events, observer reports, final
topology, final RNG state, flood results — to the same seeded run left
uninterrupted.
"""

from __future__ import annotations

import json
import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CheckpointError, ConfigurationError
from repro.scenario import ScenarioSpec, Simulation
from repro.scenario.observers import Observer, register_observer
from repro.service import checkpoint as checkpoint_io
from repro.service import use_service_options

HORIZON = 16

DRIVER_PARAMS = [
    ("streaming", {}),
    ("threshold", {}),
    ("adversarial", {"strategy": "max_degree"}),
    ("poisson", {}),
    ("general", {"lifetime": "pareto"}),
]


def _spec(churn, params, backend, **overrides):
    defaults = dict(
        churn=churn,
        policy="regen",
        n=40,
        d=3,
        horizon=HORIZON,
        churn_params=dict(params),
        backend=backend,
        seed=13,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


OBSERVERS = ("size", {"name": "degrees", "params": {"every": 4}})


def _run_uninterrupted(spec):
    return Simulation(spec, observers=OBSERVERS).run()


def _run_interrupted(spec, checkpoint_round):
    """Advance to checkpoint_round, dump, restore, finish the horizon."""
    partial = Simulation(spec, observers=OBSERVERS)
    partial._run_per_event(checkpoint_round)
    with tempfile.TemporaryDirectory() as scratch:
        path = partial.save_checkpoint(os.path.join(scratch, "ck.json"))
        return Simulation.restore(path).run()


def _assert_sessions_identical(restored, baseline):
    assert restored.rounds_completed == baseline.rounds_completed
    assert restored.network.now == baseline.network.now
    assert restored.results() == baseline.results()
    assert restored.snapshot() == baseline.snapshot()
    assert (
        restored.network.rng.bit_generator.state
        == baseline.network.rng.bit_generator.state
    )


class TestRestoreParityProperty:
    """The hypothesis property: restore parity at any checkpoint round."""

    @settings(max_examples=12, deadline=None)
    @given(
        checkpoint_round=st.integers(min_value=1, max_value=HORIZON - 1),
        driver=st.sampled_from(DRIVER_PARAMS),
        backend=st.sampled_from(["dict", "array"]),
    )
    def test_restored_run_is_bit_identical(
        self, checkpoint_round, driver, backend
    ):
        churn, params = driver
        spec = _spec(churn, params, backend)
        baseline = _run_uninterrupted(spec)
        restored = _run_interrupted(spec, checkpoint_round)
        _assert_sessions_identical(restored, baseline)


class TestRestoreParityDeterministic:
    """Pinned (non-hypothesis) parity cases CI can bisect on."""

    @pytest.mark.parametrize("churn,params", DRIVER_PARAMS)
    def test_mid_run_restore(self, backend_name, churn, params):
        spec = _spec(churn, params, backend_name)
        baseline = _run_uninterrupted(spec)
        restored = _run_interrupted(spec, HORIZON // 2)
        _assert_sessions_identical(restored, baseline)

    def test_trace_driver_restores(self, backend_name):
        events = [{"t": float(t), "op": "join", "id": t} for t in range(12)]
        events += [
            {"t": 12.0 + t, "op": "leave", "id": t} for t in range(4)
        ]
        spec = ScenarioSpec(
            churn="trace",
            policy="regen",
            n=12,
            d=2,
            horizon=HORIZON,
            churn_params={"events": events},
            backend=backend_name,
            seed=4,
        )
        baseline = _run_uninterrupted(spec)
        restored = _run_interrupted(spec, 7)
        _assert_sessions_identical(restored, baseline)

    def test_batched_restore_parity(self, backend_name):
        spec = _spec(
            "poisson", {"batch": True}, backend_name, n=60, horizon=20
        )
        baseline = _run_uninterrupted(spec)
        with tempfile.TemporaryDirectory() as scratch:
            cadenced = Simulation(
                spec,
                observers=OBSERVERS,
                checkpoint_every=8,
                checkpoint_dir=scratch,
            ).run()
            # Cadence checkpointing must not perturb the run itself.
            assert cadenced.results() == baseline.results()
            assert cadenced.snapshot() == baseline.snapshot()
            files = sorted(
                f for f in os.listdir(scratch) if f.startswith("ckpt-")
            )
            assert [checkpoint_io._rounds_in_name(f) for f in files] == [8, 16]
            restored = Simulation.restore(
                os.path.join(scratch, files[0])
            ).run()
        _assert_sessions_identical(restored, baseline)

    def test_mixed_cadence_observer_restore(self, backend_name, tmp_path):
        # Regression: feeds exist only for every>0 observers, so the
        # checkpoint must record observer-list indices, not feed-list
        # positions.  With a cadence-0 observer *ahead* of a cadenced one
        # the buggy encoding re-attached the feed to the wrong observer
        # and the cadenced observer lost every post-restore window.
        spec = _spec("streaming", {}, backend_name)
        mixed = ("coverage", {"name": "size", "params": {"every": 1}})
        baseline = Simulation(spec, observers=mixed).run()
        partial = Simulation(spec, observers=mixed)
        partial._run_per_event(6)
        path = partial.save_checkpoint(tmp_path / "ck.json")
        restored = Simulation.restore(path)
        assert [f.observer.name for f in restored._feeds] == ["size"]
        restored.run()
        assert restored.results() == baseline.results()
        assert restored.snapshot() == baseline.snapshot()
        assert len(restored.results()["size"]["sizes"]) == HORIZON

    def test_flood_after_restore_matches(self, backend_name):
        spec = _spec(
            "streaming",
            {},
            backend_name,
            protocol="discrete",
            protocol_params={"max_rounds": 100},
        )
        baseline = _run_uninterrupted(spec)
        base_flood = baseline.flood()
        restored = _run_interrupted(spec, 5)
        restored_flood = restored.flood()
        assert restored_flood.informed_sizes == base_flood.informed_sizes
        assert restored_flood.completion_round == base_flood.completion_round


class TestCheckpointFiles:
    def test_directory_restore_picks_most_advanced(self, tmp_path):
        spec = _spec("streaming", {}, "dict")
        sim = Simulation(
            spec,
            observers=OBSERVERS,
            checkpoint_every=4,
            checkpoint_dir=tmp_path,
        ).run()
        assert sim.rounds_completed == HORIZON
        latest = checkpoint_io.latest_checkpoint(tmp_path)
        assert checkpoint_io._rounds_in_name(latest.name) == HORIZON
        resumed = Simulation.restore(tmp_path)
        assert resumed.restored_from == latest
        assert resumed.rounds_completed == HORIZON
        # Nothing left to run: the session is already at its horizon.
        resumed.run()
        assert resumed.rounds_completed == HORIZON

    def test_directory_restore_falls_back_past_corrupt_latest(self, tmp_path):
        # A damaged most-advanced file must not make the directory
        # unrestorable: load_checkpoint warns and uses the next one.
        spec = _spec("streaming", {}, "dict")
        Simulation(
            spec,
            observers=OBSERVERS,
            checkpoint_every=4,
            checkpoint_dir=tmp_path,
        ).run()
        ranked = checkpoint_io.ranked_checkpoints(tmp_path)
        assert len(ranked) == 4
        ranked[-1].write_text(ranked[-1].read_text()[:80])
        with pytest.warns(RuntimeWarning, match="skipping unusable"):
            checkpoint = checkpoint_io.load_checkpoint(tmp_path)
        assert checkpoint.path == ranked[-2]
        assert checkpoint.rounds_completed == 12
        # Every file damaged -> a CheckpointError naming the failures.
        for path in ranked:
            path.write_text("not json")
        with pytest.warns(RuntimeWarning):
            with pytest.raises(CheckpointError, match="no loadable"):
                checkpoint_io.load_checkpoint(tmp_path)

    def test_checkpoint_envelope_shape(self, tmp_path):
        sim = Simulation(_spec("streaming", {}, "dict"), observers=OBSERVERS)
        sim._run_per_event(3)
        path = sim.save_checkpoint(tmp_path / "ck.json")
        envelope = json.loads(path.read_text())
        assert envelope["format"] == checkpoint_io.FORMAT
        assert envelope["version"] == checkpoint_io.VERSION
        assert set(envelope["payload"]) == {
            "spec",
            "time",
            "rounds_completed",
            "backend",
            "driver",
            "rng",
            "observers",
            "feeds",
        }

    def test_corrupted_payload_rejected(self, tmp_path):
        sim = Simulation(_spec("streaming", {}, "dict"))
        sim._run_per_event(2)
        path = sim.save_checkpoint(tmp_path / "ck.json")
        envelope = json.loads(path.read_text())
        envelope["payload"]["rounds_completed"] = 999
        path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError, match="content-hash"):
            checkpoint_io.load_checkpoint(path)

    def test_truncated_file_rejected(self, tmp_path):
        sim = Simulation(_spec("streaming", {}, "dict"))
        sim._run_per_event(2)
        path = sim.save_checkpoint(tmp_path / "ck.json")
        path.write_text(path.read_text()[: 100])
        with pytest.raises(CheckpointError, match="not valid JSON"):
            checkpoint_io.load_checkpoint(path)

    def test_version_mismatch_rejected(self, tmp_path):
        sim = Simulation(_spec("streaming", {}, "dict"))
        sim._run_per_event(2)
        path = sim.save_checkpoint(tmp_path / "ck.json")
        envelope = json.loads(path.read_text())
        envelope["version"] = 999
        path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError, match="version"):
            checkpoint_io.load_checkpoint(path)

    def test_not_a_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(CheckpointError, match="not a repro-checkpoint"):
            checkpoint_io.load_checkpoint(path)

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="no ckpt-"):
            checkpoint_io.load_checkpoint(tmp_path)

    def test_backend_pinned_to_recorded_kind(self, tmp_path):
        # A checkpoint taken on the array backend restores as array even
        # when the restoring process defaults to dict.
        spec = _spec("streaming", {}, "array")
        sim = Simulation(spec, observers=OBSERVERS)
        sim._run_per_event(4)
        path = sim.save_checkpoint(tmp_path / "ck.json")
        restored = Simulation.restore(path)
        assert type(restored.state).__name__ == "ArraySlotBackend"


class TestObserverRestore:
    def test_custom_observer_needs_declaration(self, tmp_path):
        class Custom(Observer):
            name = "custom_probe_for_restore"
            needs_snapshot = False

            def __init__(self):
                super().__init__(every=2)
                self.ticks = 0

            def on_round(self, report, snapshot):
                self.ticks += 1

        sim = Simulation(
            _spec("streaming", {}, "dict"), observers=[Custom()]
        )
        sim._run_per_event(6)
        path = sim.save_checkpoint(tmp_path / "ck.json")
        with pytest.raises(CheckpointError, match="cannot rebuild observer"):
            Simulation.restore(path)
        restored = Simulation.restore(path, observers=[Custom()])
        assert restored.observers[0].ticks == 3

    def test_declaration_name_mismatch_rejected(self, tmp_path):
        sim = Simulation(_spec("streaming", {}, "dict"), observers=["size"])
        sim._run_per_event(2)
        path = sim.save_checkpoint(tmp_path / "ck.json")
        with pytest.raises(CheckpointError, match="do not match"):
            Simulation.restore(path, observers=["degrees"])


class TestCli:
    """Kill-and-resume through the CLI: checkpoint a JSON scenario run,
    restore from the mid-run file, and get the identical final report."""

    def _scenario_file(self, tmp_path):
        spec = _spec("poisson", {"batch": True}, "array", n=50)
        document = {
            "scenario": spec.to_dict(),
            "observers": ["size"],
            "flood": False,
        }
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(document))
        return path

    def test_kill_and_resume_round_trip(self, tmp_path, capsys):
        from repro.experiments.__main__ import main as cli_main

        scenario = self._scenario_file(tmp_path)
        ckpt_dir = tmp_path / "ckpts"
        assert (
            cli_main(
                [
                    "--scenario",
                    str(scenario),
                    "--checkpoint-dir",
                    str(ckpt_dir),
                    "--checkpoint-every",
                    "4",
                ]
            )
            == 0
        )
        baseline = capsys.readouterr().out
        files = sorted(
            f for f in os.listdir(ckpt_dir) if f.startswith("ckpt-")
        )
        assert [checkpoint_io._rounds_in_name(f) for f in files] == [
            4, 8, 12, 16,
        ]
        # "Kill" after round 8: restore from that file and finish.
        assert (
            cli_main(["--restore", str(ckpt_dir / files[1])]) == 0
        )
        resumed = capsys.readouterr().out
        # Identical observer report and final network line.
        tail = baseline[baseline.index("observers:"):]
        assert resumed.endswith(tail)

    def test_restore_conflicts_with_scenario(self, tmp_path):
        from repro.experiments.__main__ import main as cli_main

        with pytest.raises(SystemExit):
            cli_main(["--restore", "x", "--scenario", "y"])

    def test_checkpoint_every_needs_dir(self):
        from repro.experiments.__main__ import main as cli_main

        with pytest.raises(SystemExit):
            cli_main(["EXP-01", "--checkpoint-every", "5"])


class TestConfiguration:
    def test_cadence_without_directory_rejected(self):
        with pytest.raises(ConfigurationError, match="checkpoint directory"):
            Simulation(_spec("streaming", {}, "dict"), checkpoint_every=4)

    def test_spec_carries_service_settings(self, tmp_path):
        spec = _spec(
            "streaming",
            {},
            "dict",
            checkpoint_every=8,
            checkpoint_dir=str(tmp_path),
        )
        sim = Simulation(spec).run()
        assert sim.rounds_completed == HORIZON
        files = [f for f in os.listdir(tmp_path) if f.startswith("ckpt-")]
        assert len(files) == 2  # rounds 8 and 16

    def test_ambient_service_options(self, tmp_path):
        with use_service_options(checkpoint_every=8, checkpoint_dir=tmp_path):
            sim = Simulation(_spec("streaming", {}, "dict")).run()
        assert sim.checkpoint_every == 8
        files = [f for f in os.listdir(tmp_path) if f.startswith("ckpt-")]
        assert len(files) == 2

    def test_spec_and_restore_mutually_exclusive(self, tmp_path):
        sim = Simulation(_spec("streaming", {}, "dict"))
        sim._run_per_event(2)
        path = sim.save_checkpoint(tmp_path / "ck.json")
        with pytest.raises(ConfigurationError, match="not both"):
            Simulation(_spec("streaming", {}, "dict"), restore_from=path)

    def test_run_twice_is_idempotent_at_horizon(self):
        sim = Simulation(_spec("streaming", {}, "dict"), observers=OBSERVERS)
        sim.run()
        results = sim.results()
        sim.run()  # nothing left to the horizon: a no-op for the feeds
        assert sim.rounds_completed == HORIZON
        assert sim.results()["size"]["sizes"] == results["size"]["sizes"]

    def test_unsupported_driver_rejected(self):
        class NotADriver:
            pass

        with pytest.raises(CheckpointError, match="does not support"):
            checkpoint_io._driver_codec(NotADriver())
