"""Fused streaming-round kernels: parity, partition invariance, events.

The fused window path (`_advance_window_batched` on the streaming and
threshold drivers) executes W death→regeneration→birth rounds with one
batched backend write.  Its contract, tested here:

* **Bit-identity across backends** — a seeded fused run produces the
  same topology on the dict and array backends (the DictBackend
  `apply_round_batch` is the reference implementation, consuming the
  RNG draw-for-draw identically).
* **Partition invariance** (streaming only) — the trajectory depends
  only on the round sequence, never on how rounds are grouped into
  windows: W=1 == W=7 == one window covering everything.  This is what
  makes checkpoint-mid-window restore exact.  The threshold driver's
  fused path discards speculative draws on a failed stopping-condition
  exam, so it is deliberately *excluded* from partition tests.
* **Law parity** — fused and per-event runs follow the same churn law
  on distinct seeded trajectories (like ``fast_warm``), so degree
  summaries, isolated fractions and population trajectories agree in
  distribution.
* **Coalesced events** — a fused window emits one ``NodesDied`` and one
  ``NodesBorn`` record per chunk instead of per-round singles, and the
  flattened id lists match the per-event law exactly (streaming ids are
  deterministic: round r kills r−n−1 and births r−1).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.edge_policy import NoRegenerationPolicy, RegenerationPolicy
from repro.core.round_batch import WindowDrawPlan
from repro.errors import ConfigurationError
from repro.models.streaming import SDG, SDGR
from repro.models.threshold import TSDG
from repro.sim.events import NodesBorn, NodesDied
from repro.util.rng import make_rng


def snap_key(net):
    """A comparable, order-independent topology fingerprint."""
    snap = net.snapshot()
    return sorted(
        (node, tuple(sorted(snap.adjacency[node])), snap.out_slots[node])
        for node in snap.nodes
    )


def fused(factory, n, d, seed, rounds, backend="array", window=None):
    net = factory(n, d, seed=seed, backend=backend)
    net.advance_to_time_batched(net.now + rounds, window=window)
    return net


def per_event(factory, n, d, seed, rounds, backend="array"):
    net = factory(n, d, seed=seed, backend=backend)
    net.run_rounds(rounds)
    return net


SHAPES = [(50, 3, 120), (7, 2, 40), (3, 1, 25)]


class TestCrossBackendIdentity:
    @pytest.mark.parametrize("factory", [SDG, SDGR], ids=["SDG", "SDGR"])
    @pytest.mark.parametrize("n,d,rounds", SHAPES)
    def test_fused_is_bit_identical_across_backends(
        self, factory, n, d, rounds
    ):
        array_net = fused(factory, n, d, 42, rounds, backend="array")
        dict_net = fused(factory, n, d, 42, rounds, backend="dict")
        assert snap_key(array_net) == snap_key(dict_net)
        array_net.state.check_invariants()
        dict_net.state.check_invariants()

    @pytest.mark.parametrize("factory", [SDG, SDGR], ids=["SDG", "SDGR"])
    def test_fused_alive_set_matches_streaming_law(self, factory):
        n, d, rounds = 50, 3, 120
        net = fused(factory, n, d, 42, rounds)
        assert net.num_alive() == n
        assert net.round_number == n + rounds
        assert sorted(net.state.alive_ids()) == list(
            range(rounds, rounds + n)
        )

    def test_threshold_fused_is_bit_identical_across_backends(self):
        nets = []
        for backend in ("array", "dict"):
            net = TSDG(50, 4, seed=7, backend=backend)
            net.run_rounds(1)  # establish the first full sweep per-event
            net.advance_to_time_batched(net.now + 200)
            net.check_threshold_invariant()
            net.state.check_invariants()
            nets.append(net)
        assert snap_key(nets[0]) == snap_key(nets[1])


class TestWindowPartitionInvariance:
    """Streaming fused trajectories are pure functions of the round
    sequence: any window partition produces the identical topology."""

    @pytest.mark.parametrize("factory", [SDG, SDGR], ids=["SDG", "SDGR"])
    @pytest.mark.parametrize("n,d,rounds", SHAPES)
    def test_single_round_windows_match_one_window(
        self, factory, n, d, rounds
    ):
        reference = snap_key(fused(factory, n, d, 42, rounds))
        assert snap_key(fused(factory, n, d, 42, rounds, window=1.0)) == (
            reference
        )
        assert snap_key(fused(factory, n, d, 42, rounds, window=7.0)) == (
            reference
        )

    @pytest.mark.parametrize("factory", [SDG, SDGR], ids=["SDG", "SDGR"])
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        splits=st.lists(st.integers(1, 30), min_size=1, max_size=6),
    )
    def test_arbitrary_splits_match_one_window(self, factory, seed, splits):
        n, d = 20, 3
        rounds = sum(splits)
        reference = snap_key(fused(factory, n, d, seed, rounds))
        net = factory(n, d, seed=seed, backend="array")
        for span in splits:
            net.advance_to_time_batched(net.now + span)
        assert snap_key(net) == reference

    def test_fused_matches_across_backends_per_window_size(self):
        # The partition must not matter on either backend — guards the
        # draw-ordering contract of both apply_round_batch variants.
        for window in (1.0, 3.0, None):
            a = fused(SDGR, 12, 2, 9, 31, backend="array", window=window)
            b = fused(SDGR, 12, 2, 9, 31, backend="dict", window=window)
            assert snap_key(a) == snap_key(b)


class TestFallbacks:
    def test_n2_regen_falls_back_to_per_event(self):
        # SDGR's regeneration draw needs n >= 3 targets; n=2 must still
        # advance correctly through the per-event path.
        net = SDGR(2, 2, seed=1, backend="array")
        net.advance_to_time_batched(net.now + 10)
        net.state.check_invariants()
        assert net.num_alive() == 2

    def test_custom_policy_falls_back_to_per_event(self):
        from repro.models.streaming import StreamingNetwork

        class LoggingRegen(RegenerationPolicy):
            """Overriding a churn hook disables the fused path."""

            def handle_death(self, state, node_id, time, rng):
                return super().handle_death(state, node_id, time, rng)

        assert LoggingRegen(2).round_batch_regenerate is None
        net = StreamingNetwork(10, LoggingRegen(2), seed=3, backend="array")
        net.advance_to_time_batched(net.now + 20)
        net.state.check_invariants()
        assert net.num_alive() == 10

    def test_policy_gates(self):
        assert RegenerationPolicy(2).round_batch_regenerate is True
        assert NoRegenerationPolicy(2).round_batch_regenerate is False


class TestDistributionParity:
    """Fused and per-event runs follow the same law on different seeded
    trajectories; summary statistics agree across seed ensembles."""

    def test_sdgr_mean_degree(self):
        n, d, rounds = 200, 4, 400
        deg_fused, deg_event = [], []
        for seed in range(12):
            f = fused(SDGR, n, d, seed, rounds)
            e = per_event(SDGR, n, d, seed + 1000, rounds)
            deg_fused.append(
                np.mean([f.state.degree(i) for i in f.state.alive_ids()])
            )
            deg_event.append(
                np.mean([e.state.degree(i) for i in e.state.alive_ids()])
            )
        assert abs(np.mean(deg_fused) - np.mean(deg_event)) < 0.15

    def test_sdg_isolated_fraction(self):
        n, d, rounds = 200, 4, 400
        iso_fused, iso_event = [], []
        for seed in range(12):
            f = fused(SDG, n, d, seed, rounds)
            e = per_event(SDG, n, d, seed + 1000, rounds)
            iso_fused.append(
                np.mean(
                    [f.state.degree(i) == 0 for i in f.state.alive_ids()]
                )
            )
            iso_event.append(
                np.mean(
                    [e.state.degree(i) == 0 for i in e.state.alive_ids()]
                )
            )
        assert abs(np.mean(iso_fused) - np.mean(iso_event)) < 0.03

    def test_threshold_population_trajectory(self):
        pops_fused, pops_event = [], []
        for seed in range(8):
            f = TSDG(50, 4, threshold=4, seed=seed)
            f.run_rounds(1)
            f.advance_to_time_batched(f.now + 300)
            e = TSDG(50, 4, threshold=4, seed=seed + 500)
            e.run_rounds(301)
            pops_fused.append(f.num_alive())
            pops_event.append(e.num_alive())
        # Same pure-growth law: populations track each other closely
        # relative to their scale.
        assert abs(np.mean(pops_fused) - np.mean(pops_event)) < (
            0.1 * np.mean(pops_event)
        )


class TestCoalescedEvents:
    def test_fused_window_emits_batched_records(self):
        n, rounds = 20, 15
        net = SDGR(n, 3, seed=5, backend="array")
        report = net.advance_to_time_batched(net.now + rounds)
        kinds = [type(ev.kind) for ev in report.events]
        assert kinds == [NodesDied, NodesBorn]
        # Streaming churn ids are deterministic: round r kills r-n-1 and
        # births r-1, so a window starting at round n covers exactly:
        assert report.deaths == list(range(rounds))
        assert report.births == list(range(n, n + rounds))
        assert report.start_time == pytest.approx(float(n))
        assert report.end_time == pytest.approx(float(n + rounds))

    def test_chunked_window_coalesces_per_chunk(self):
        net = SDGR(20, 3, seed=5, backend="array")
        report = net.advance_to_time_batched(net.now + 15, window=4.0)
        assert all(
            isinstance(ev.kind, (NodesDied, NodesBorn))
            for ev in report.events
        )
        assert report.deaths == list(range(15))
        assert report.births == list(range(20, 35))


class TestWindowDrawPlan:
    def test_validates_construction(self):
        rng = make_rng(0)
        with pytest.raises(ConfigurationError):
            WindowDrawPlan(1, 2, 5, rng)
        with pytest.raises(ConfigurationError):
            WindowDrawPlan(10, 2, 0, rng)

    def test_birth_overdraw_rejected(self):
        plan = WindowDrawPlan(10, 2, 3, make_rng(0))
        plan.take_birth(2)
        plan.take_birth(1)
        with pytest.raises(ConfigurationError):
            plan.take_birth(1)

    def test_regen_needs_three_nodes(self):
        plan = WindowDrawPlan(2, 1, 2, make_rng(0))
        with pytest.raises(ConfigurationError):
            plan.take_regen(1)

    def test_draw_ranges(self):
        plan = WindowDrawPlan(10, 3, 4, make_rng(7))
        births = plan.take_birth(4)
        assert births.shape == (4, 3)
        assert births.min() >= 0 and births.max() < 9
        regen = plan.take_regen(100)
        assert regen.min() >= 0 and regen.max() < 8


class TestFastRoundsSimulation:
    """The ``fast_rounds`` spec field routes Simulation.run through the
    fused window path where the driver has one, per-event otherwise."""

    def _spec(self, **overrides):
        from repro.scenario import ScenarioSpec

        defaults = dict(
            churn="streaming",
            policy="regen",
            n=40,
            d=3,
            horizon=16,
            seed=13,
            fast_rounds=True,
        )
        defaults.update(overrides)
        return ScenarioSpec(**defaults)

    def test_spec_round_trips(self):
        from repro.scenario import ScenarioSpec

        spec = self._spec()
        assert spec.fast_rounds is True
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec and again.fast_rounds is True
        assert ScenarioSpec().fast_rounds is False

    def test_fast_rounds_runs_fused(self, backend_name):
        from repro.scenario import Simulation

        sim = Simulation(self._spec(backend=backend_name))
        assert sim._fast_rounds_active()
        sim.run()
        assert sim.rounds_completed == 16
        assert sim.network.num_alive() == 40
        sim.state.check_invariants()

    def test_env_var_turns_it_on(self, monkeypatch):
        from repro.scenario import Simulation

        spec = self._spec(fast_rounds=False)
        assert not Simulation(spec)._fast_rounds_active()
        monkeypatch.setenv("REPRO_FAST_ROUNDS", "1")
        assert Simulation(spec)._fast_rounds_active()

    def test_advisory_on_unbatched_driver(self):
        # The adversarial driver has no fused path: fast_rounds falls
        # back to per-event instead of erroring (unlike batch=True).
        from repro.scenario import Simulation

        spec = self._spec(
            churn="adversarial", churn_params={"strategy": "max_degree"}
        )
        sim = Simulation(spec)
        assert not sim._fast_rounds_active()
        sim.run()
        assert sim.rounds_completed == 16

    def test_checkpoint_mid_window_restore_parity(
        self, backend_name, tmp_path
    ):
        # Partition invariance makes a checkpoint taken at any round
        # boundary exact: restore + finish is bit-identical to the
        # uninterrupted fused run.
        from repro.scenario import Simulation

        observers = ("size", {"name": "degrees", "params": {"every": 4}})
        spec = self._spec(backend=backend_name)
        baseline = Simulation(spec, observers=observers).run()
        partial = Simulation(spec, observers=observers)
        partial._run_batched(7.0)  # not a multiple of any cadence
        path = partial.save_checkpoint(tmp_path / "ck.json")
        restored = Simulation.restore(path).run()
        assert restored.rounds_completed == baseline.rounds_completed
        assert restored.network.now == baseline.network.now
        assert restored.results() == baseline.results()
        assert restored.snapshot() == baseline.snapshot()
        assert (
            restored.network.rng.bit_generator.state
            == baseline.network.rng.bit_generator.state
        )
