"""Tests for discrete flooding (Definition 3.3)."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.flooding import flood_discrete
from repro.models import SDG, SDGR


class TestMechanics:
    def test_default_source_is_youngest(self):
        net = SDGR(n=30, d=3, seed=0)
        result = flood_discrete(net, max_rounds=1)
        assert result.source == 29

    def test_explicit_source(self):
        net = SDGR(n=30, d=3, seed=1)
        result = flood_discrete(net, source=5, max_rounds=1)
        assert result.source == 5

    def test_dead_source_rejected(self):
        net = SDGR(n=30, d=3, seed=2)
        with pytest.raises(ConfigurationError):
            flood_discrete(net, source=999)

    def test_trajectory_recorded(self):
        net = SDGR(n=50, d=4, seed=3)
        result = flood_discrete(net, max_rounds=30)
        assert result.informed_sizes[0] == 1
        assert len(result.informed_sizes) == len(result.network_sizes)

    def test_network_size_constant_in_streaming(self):
        net = SDGR(n=50, d=4, seed=4)
        result = flood_discrete(net, max_rounds=30)
        assert all(s == 50 for s in result.network_sizes)

    def test_informed_growth_monotone_until_completion(self):
        """|I_t| can drop by at most one per round (one death per round)."""
        net = SDGR(n=80, d=4, seed=5)
        result = flood_discrete(net)
        for a, b in zip(result.informed_sizes, result.informed_sizes[1:]):
            assert b >= a - 1


class TestCompletionSDGR:
    def test_completes(self):
        net = SDGR(n=200, d=6, seed=6)
        net.run_rounds(200)
        result = flood_discrete(net)
        assert result.completed
        assert result.completion_round is not None

    def test_completion_time_logarithmic(self):
        """Theorem 3.16 shape: completion within c·log n rounds."""
        for n in [100, 400]:
            net = SDGR(n=n, d=8, seed=n)
            net.run_rounds(n)
            result = flood_discrete(net)
            assert result.completed
            assert result.completion_round <= 6 * math.log2(n)

    def test_max_informed_tracks_peak(self):
        net = SDGR(n=100, d=5, seed=7)
        result = flood_discrete(net)
        assert result.max_informed == max(result.informed_sizes)


class TestSDGPartialFlooding:
    def test_reaches_most_nodes_at_large_d(self):
        """Theorem 3.8 shape: most nodes informed within O(log n)."""
        net = SDG(n=400, d=10, seed=8)
        net.run_rounds(400)
        result = flood_discrete(net, max_rounds=40)
        assert result.fraction_at(40) > 0.9

    def test_single_node_network(self):
        net = SDGR(n=2, d=1, seed=9, warm=False)
        net.run_rounds(1)
        result = flood_discrete(net, max_rounds=1)
        assert result.completed

    def test_isolated_source_stalls(self):
        """A source with no neighbours informs nobody (until churn helps)."""
        net = SDG(n=100, d=2, seed=10)
        net.run_rounds(100)
        snap = net.snapshot()
        isolated = sorted(snap.isolated_nodes())
        if isolated:  # depends on seed; skip quietly when no isolated node
            result = flood_discrete(net, source=isolated[0], max_rounds=5)
            assert result.max_informed <= 5


class TestRoundsRun:
    def test_rounds_run_matches(self):
        net = SDGR(n=40, d=3, seed=11)
        result = flood_discrete(net, max_rounds=7, stop_when_extinct=False)
        if not result.completed:
            assert result.rounds_run == 7
