"""Hypothesis property tests for flooding invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flooding import flood_discrete, flood_discretized
from repro.models import PDGR, SDG, SDGR


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(20, 80),
    d=st.integers(1, 6),
    regen=st.booleans(),
)
def test_property_streaming_flooding_invariants(seed, n, d, regen):
    """Invariants that must hold for every streaming flooding run:

    * informed count never exceeds the network size;
    * the network size is constant (streaming);
    * the informed count drops by at most 1 per round (one death);
    * if completed, the completion round indexes a recorded round.
    """
    factory = SDGR if regen else SDG
    net = factory(n=n, d=d, seed=seed)
    net.run_rounds(n)
    result = flood_discrete(net, max_rounds=40, stop_when_extinct=False)

    assert all(
        informed <= alive
        for informed, alive in zip(result.informed_sizes, result.network_sizes)
    )
    assert all(size == n for size in result.network_sizes)
    for a, b in zip(result.informed_sizes, result.informed_sizes[1:]):
        assert b >= a - 1
    if result.completed:
        assert result.completion_round is not None
        assert result.completion_round <= result.rounds_run
    assert result.max_informed == max(result.informed_sizes)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), d=st.integers(2, 8))
def test_property_discretized_flooding_bounded_by_topology(seed, d):
    """Every newly informed node in the discretized process was a
    neighbour of the informed set at the start of some interval, so the
    per-round growth is bounded by the maximum possible boundary
    (max_degree × |I|)."""
    net = PDGR(n=60, d=d, seed=seed)
    result = flood_discretized(net, max_rounds=20, stop_when_extinct=False)
    for before, after in zip(result.informed_sizes, result.informed_sizes[1:]):
        # Growth cannot exceed |I| × (max conceivable degree << n).
        assert after <= before * 200 + 200
        assert after <= max(result.network_sizes)
    assert result.informed_sizes[0] == 1


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_flooding_deterministic_per_seed(seed):
    """Identical seeds give identical trajectories (reproducibility)."""
    runs = []
    for _ in range(2):
        net = SDGR(n=50, d=4, seed=seed)
        net.run_rounds(50)
        runs.append(flood_discrete(net, max_rounds=30).informed_sizes)
    assert runs[0] == runs[1]
