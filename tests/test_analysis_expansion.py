"""Tests for expansion measurement (exact + adversarial probes)."""

from __future__ import annotations

import pytest

from repro.analysis.expansion import (
    adversarial_expansion_upper_bound,
    large_set_expansion_probe,
    vertex_expansion_exact,
)
from repro.errors import AnalysisError
from repro.models import SDGR, static_d_out_snapshot
from tests.conftest import (
    complete_snapshot,
    cycle_snapshot,
    path_snapshot,
    snapshot_from_edges,
)


class TestExact:
    def test_complete_graph(self):
        """h_out(K_n) = ceil(n/2)/floor(n/2) ≥ 1; the minimiser is any
        half-sized set whose boundary is everything else."""
        probe = vertex_expansion_exact(complete_snapshot(6))
        assert probe.min_ratio == pytest.approx(1.0)
        assert probe.witness_size == 3

    def test_path_minimiser_is_half(self):
        """On a path, taking one end half gives boundary 1."""
        probe = vertex_expansion_exact(path_snapshot(8))
        assert probe.min_ratio == pytest.approx(0.25)
        assert probe.witness_size == 4

    def test_cycle(self):
        """On a cycle, a contiguous arc of length n/2 has boundary 2."""
        probe = vertex_expansion_exact(cycle_snapshot(10))
        assert probe.min_ratio == pytest.approx(2 / 5)

    def test_isolated_node_gives_zero(self):
        snap = snapshot_from_edges(5, [(0, 1), (1, 2)])
        probe = vertex_expansion_exact(snap)
        assert probe.min_ratio == 0.0
        assert probe.witness_size == 1

    def test_disconnected_component_gives_zero(self):
        snap = snapshot_from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        probe = vertex_expansion_exact(snap)
        assert probe.min_ratio == 0.0

    def test_too_large_rejected(self):
        with pytest.raises(AnalysisError):
            vertex_expansion_exact(cycle_snapshot(30))

    def test_too_small_rejected(self):
        with pytest.raises(AnalysisError):
            vertex_expansion_exact(snapshot_from_edges(1, []))


class TestAdversarial:
    def test_upper_bounds_exact(self):
        """The adversarial probe is a valid upper bound on h_out."""
        for snap in [path_snapshot(12), cycle_snapshot(14)]:
            exact = vertex_expansion_exact(snap)
            probe = adversarial_expansion_upper_bound(snap, seed=0)
            assert probe.min_ratio >= exact.min_ratio - 1e-12

    def test_finds_path_cut(self):
        """On a path the BFS-ball candidates find the optimal end cut."""
        probe = adversarial_expansion_upper_bound(path_snapshot(20), seed=1)
        assert probe.min_ratio == pytest.approx(0.1)

    def test_finds_isolated_node(self):
        snap = snapshot_from_edges(8, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)])
        probe = adversarial_expansion_upper_bound(snap, seed=2)
        assert probe.min_ratio == 0.0
        assert probe.witness_size == 1

    def test_witness_is_real_set(self):
        snap = cycle_snapshot(16)
        probe = adversarial_expansion_upper_bound(snap, seed=3)
        assert snap.expansion_of(probe.witness) == pytest.approx(probe.min_ratio)

    def test_size_window_respected(self):
        snap = cycle_snapshot(20)
        probe = adversarial_expansion_upper_bound(snap, seed=4, min_size=3, max_size=5)
        assert 3 <= probe.witness_size <= 5

    def test_empty_window_rejected(self):
        with pytest.raises(AnalysisError):
            adversarial_expansion_upper_bound(cycle_snapshot(10), min_size=9, max_size=2)

    def test_static_d3_graph_expands(self):
        """Lemma B.1: static 3-out graphs expand; probe stays above 0.1."""
        snap = static_d_out_snapshot(300, 3, seed=5)
        probe = adversarial_expansion_upper_bound(snap, seed=6)
        assert probe.min_ratio > 0.1

    def test_sdgr_snapshot_expands(self):
        """Theorem 3.15 shape at moderate n."""
        net = SDGR(n=200, d=14, seed=7)
        net.run_rounds(200)
        probe = adversarial_expansion_upper_bound(net.snapshot(), seed=8)
        assert probe.min_ratio > 0.1


class TestLargeSetProbe:
    def test_window_and_witness(self):
        snap = cycle_snapshot(30)
        probe = large_set_expansion_probe(snap, min_size=5, max_size=15, seed=0)
        assert 5 <= probe.witness_size <= 15
        assert snap.expansion_of(probe.witness) == pytest.approx(probe.min_ratio)

    def test_age_extreme_candidates_used(self):
        """On an SDG snapshot the oldest-k sets have poor expansion; the
        probe must find a set at least as bad as the oldest-k candidate."""
        net = SDGR(n=100, d=4, seed=1)
        net.run_rounds(100)
        snap = net.snapshot()
        by_age = sorted(snap.nodes, key=snap.age)
        oldest_ratio = snap.expansion_of(by_age[-20:])
        probe = large_set_expansion_probe(snap, min_size=20, max_size=50, seed=2)
        assert probe.min_ratio <= oldest_ratio + 1e-12

    def test_empty_window_rejected(self):
        with pytest.raises(AnalysisError):
            large_set_expansion_probe(cycle_snapshot(10), min_size=20)
