"""Tests for flooding with message loss."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.flooding import flood_discrete, flood_lossy
from repro.models import SDGR
from repro.util.stats import mean_confidence_interval


class TestLossyFlooding:
    def test_zero_loss_completes_like_discrete(self):
        net_a = SDGR(n=120, d=6, seed=0)
        net_a.run_rounds(120)
        lossless = flood_lossy(net_a, loss=0.0, seed=1)
        net_b = SDGR(n=120, d=6, seed=0)
        net_b.run_rounds(120)
        reference = flood_discrete(net_b)
        assert lossless.completed and reference.completed
        assert lossless.completion_round == reference.completion_round

    def test_moderate_loss_still_completes(self):
        net = SDGR(n=150, d=6, seed=2)
        net.run_rounds(150)
        result = flood_lossy(net, loss=0.3, seed=3, max_rounds=200)
        assert result.completed

    def test_heavy_loss_slows_flooding(self):
        slow_rounds, fast_rounds = [], []
        for seed in range(4):
            net = SDGR(n=150, d=5, seed=seed)
            net.run_rounds(150)
            fast = flood_lossy(net, loss=0.0, seed=seed + 50, max_rounds=300)
            fast_rounds.append(fast.completion_round)
            net2 = SDGR(n=150, d=5, seed=seed)
            net2.run_rounds(150)
            slow = flood_lossy(net2, loss=0.7, seed=seed + 50, max_rounds=300)
            slow_rounds.append(slow.completion_round)
        assert all(r is not None for r in slow_rounds)
        assert (
            mean_confidence_interval(slow_rounds).mean
            > mean_confidence_interval(fast_rounds).mean
        )

    def test_invalid_loss(self):
        net = SDGR(n=50, d=3, seed=4)
        with pytest.raises(ConfigurationError):
            flood_lossy(net, loss=1.0)
        with pytest.raises(ConfigurationError):
            flood_lossy(net, loss=-0.1)

    def test_dead_source_rejected(self):
        net = SDGR(n=50, d=3, seed=5)
        with pytest.raises(ConfigurationError):
            flood_lossy(net, loss=0.1, source=10**9)

    def test_deterministic_given_seeds(self):
        runs = []
        for _ in range(2):
            net = SDGR(n=80, d=4, seed=6)
            net.run_rounds(80)
            runs.append(flood_lossy(net, loss=0.4, seed=7).informed_sizes)
        assert runs[0] == runs[1]

    def test_trajectory_invariants(self):
        net = SDGR(n=100, d=4, seed=8)
        net.run_rounds(100)
        result = flood_lossy(net, loss=0.5, seed=9, max_rounds=100)
        for informed, alive in zip(result.informed_sizes, result.network_sizes):
            assert informed <= alive
