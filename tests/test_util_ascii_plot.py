"""Tests for the ASCII plotting helpers."""

from __future__ import annotations

import pytest

from repro.util.ascii_plot import histogram, line_chart, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_matches(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline(list(range(8)))
        assert line == "".join(sorted(line))
        assert line[0] == "▁" and line[-1] == "█"

    def test_peak_position(self):
        line = sparkline([0, 10, 0])
        assert line[1] == "█"


class TestLineChart:
    def test_contains_extremes_as_labels(self):
        chart = line_chart([0, 5, 10], height=4)
        assert "10" in chart
        assert "0" in chart

    def test_title(self):
        chart = line_chart([1, 2], title="growth")
        assert chart.splitlines()[0] == "growth"

    def test_height_rows(self):
        chart = line_chart([1, 2, 3], height=6)
        # height rows + axis line (+ no title)
        assert len(chart.splitlines()) == 7

    def test_resampling_width(self):
        chart = line_chart(list(range(500)), height=4, width=20)
        plot_rows = [l for l in chart.splitlines() if "|" in l]
        assert all(len(row.split("|")[1]) <= 20 for row in plot_rows)

    def test_empty(self):
        assert "empty" in line_chart([])

    def test_invalid_height(self):
        with pytest.raises(ValueError):
            line_chart([1, 2], height=1)


class TestHistogram:
    def test_bars_scale(self):
        out = histogram({1: 10, 2: 5}, max_bar=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_zero_count_no_bar(self):
        out = histogram({1: 4, 2: 0})
        assert out.splitlines()[1].count("#") == 0

    def test_counts_displayed(self):
        out = histogram({"a": 3})
        assert "3" in out

    def test_empty(self):
        assert "empty" in histogram({})

    def test_title(self):
        assert histogram({1: 1}, title="dist").splitlines()[0] == "dist"
