"""Breadth tests covering cross-cutting behaviours not exercised elsewhere."""

from __future__ import annotations

import pytest

from repro.core.edge_policy import CappedRegenerationPolicy
from repro.experiments.common import ExperimentResult
from repro.flooding import flood_lossy, gossip_push_pull
from repro.models import PDGR, SDGR
from repro.models.adversarial import AdversarialStreamingNetwork
from repro.models.general import GDGR
from repro.churn.lifetime import WeibullLifetime


class TestGossipOnPoisson:
    def test_push_pull_completes_on_pdgr(self):
        net = PDGR(n=120, d=6, seed=0)
        result = gossip_push_pull(net, seed=1, max_rounds=200)
        assert result.completed

    def test_gossip_on_general_model(self):
        net = GDGR(WeibullLifetime(120, shape=0.7), d=6, seed=2, warm_time=500)
        result = gossip_push_pull(net, seed=3, max_rounds=300)
        assert result.completed


class TestPolicyDriverCombinations:
    def test_capped_policy_under_adversarial_churn(self):
        net = AdversarialStreamingNetwork(
            80,
            CappedRegenerationPolicy(d=4, max_in_degree=8),
            strategy="max_degree",
            seed=4,
        )
        net.run_rounds(100)
        net.state.check_invariants()
        assert all(
            net.state.in_slot_count(u) <= 8 for u in net.state.alive_ids()
        )

    def test_capped_policy_in_general_model(self):
        net = GDGR(WeibullLifetime(100, shape=0.6), d=4, seed=5, warm_time=400)
        net.state.check_invariants()

    def test_lossy_flood_on_poisson(self):
        net = PDGR(n=150, d=6, seed=6)
        result = flood_lossy(net, loss=0.2, seed=7, max_rounds=120)
        assert result.completed


class TestCsvExport:
    def test_write_csv_round_trip(self, tmp_path):
        result = ExperimentResult(
            experiment_id="EXP-00",
            title="demo",
            paper_reference="none",
            columns=["a", "b"],
            rows=[{"a": 1, "b": 2.5}, {"a": 3, "b": None}],
            verdict={"ok": True},
        )
        path = result.write_csv(tmp_path)
        content = path.read_text().splitlines()
        assert content[0] == "a,b"
        assert content[1] == "1,2.5"
        assert "# ok=True" in content

    def test_write_csv_ignores_extra_row_keys(self, tmp_path):
        result = ExperimentResult(
            experiment_id="EXP-00",
            title="demo",
            paper_reference="none",
            columns=["a"],
            rows=[{"a": 1, "hidden": "x"}],
        )
        content = result.write_csv(tmp_path).read_text()
        assert "hidden" not in content

    def test_creates_directory(self, tmp_path):
        result = ExperimentResult(
            experiment_id="EXP-00",
            title="demo",
            paper_reference="none",
            columns=["a"],
            rows=[],
        )
        path = result.write_csv(tmp_path / "nested" / "dir")
        assert path.exists()


class TestCliCsvFlag:
    def test_cli_writes_csv(self, tmp_path, capsys):
        from repro.experiments.__main__ import main as cli_main

        code = cli_main(["EXP-07", "--csv", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "EXP-07.csv").exists()
        assert "csv:" in capsys.readouterr().out


class TestSDGRGossipLongRun:
    def test_repeated_flooding_runs_compose(self):
        """Several processes can run back-to-back on one network (state
        stays clean between them)."""
        net = SDGR(n=100, d=6, seed=8)
        net.run_rounds(100)
        from repro.flooding import flood_discrete

        first = flood_discrete(net)
        second = flood_discrete(net)
        assert first.completed and second.completed
        net.state.check_invariants()

    def test_snapshot_before_after_flooding_differs(self):
        net = SDGR(n=100, d=4, seed=9)
        net.run_rounds(100)
        before = net.snapshot()
        from repro.flooding import flood_discrete

        flood_discrete(net)
        after = net.snapshot()
        assert before.nodes != after.nodes  # churn continued during flooding


class TestExperimentResultEdgeCases:
    def test_to_text_without_rows_or_verdict(self):
        result = ExperimentResult(
            experiment_id="EXP-00",
            title="bare",
            paper_reference="ref",
            columns=[],
        )
        text = result.to_text()
        assert "EXP-00" in text
        assert "elapsed" in text

    def test_passed_with_no_bools_is_true(self):
        result = ExperimentResult(
            experiment_id="E", title="t", paper_reference="p", columns=[],
            verdict={"value": 1.5},
        )
        assert result.passed()
