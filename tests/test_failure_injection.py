"""Failure-injection tests: corrupted state must be *detected*, not ignored.

`DynamicGraphState.check_invariants` is the safety net behind every
experiment; these tests corrupt each index it guards and assert the
corruption is caught.
"""

from __future__ import annotations

import pytest

from repro.core.edge_policy import RegenerationPolicy
from repro.core.graph import DynamicGraphState
from repro.errors import SimulationError
from repro.util.rng import make_rng


def healthy_state(num_nodes: int = 6, d: int = 2, seed: int = 0) -> DynamicGraphState:
    policy = RegenerationPolicy(d)
    state = DynamicGraphState()
    rng = make_rng(seed)
    for _ in range(num_nodes):
        policy.handle_birth(state, state.allocate_id(), 0.0, rng)
    return state


class TestInvariantDetection:
    def test_healthy_state_passes(self):
        healthy_state().check_invariants()

    def test_detects_stale_in_ref(self):
        state = healthy_state()
        # Register a reference for a slot that does not point there.
        state.in_refs[0].add((5, 1))
        victim_slot = state.records[5].out_slots[1]
        if victim_slot == 0:  # ensure it is genuinely stale
            state.records[5].out_slots[1] = None
        with pytest.raises(SimulationError):
            state.check_invariants()

    def test_detects_missing_in_ref(self):
        state = healthy_state()
        source, slot_index, target = _an_assigned_slot(state)
        state.in_refs[target].discard((source, slot_index))
        with pytest.raises(SimulationError):
            state.check_invariants()

    def test_detects_asymmetric_adjacency(self):
        state = healthy_state()
        source, _, target = _an_assigned_slot(state)
        del state.adj[target][source]
        with pytest.raises(SimulationError):
            state.check_invariants()

    def test_detects_wrong_multiplicity(self):
        state = healthy_state()
        source, _, target = _an_assigned_slot(state)
        state.adj[source][target] += 1
        state.adj[target][source] += 1
        with pytest.raises(SimulationError):
            state.check_invariants()

    def test_detects_slot_to_dead_node(self):
        state = healthy_state()
        source, slot_index, target = _an_assigned_slot(state)
        # Kill the target behind the state's back.
        state.alive.discard(target)
        with pytest.raises(SimulationError):
            state.check_invariants()

    def test_decrement_of_missing_edge_raises(self):
        state = healthy_state()
        with pytest.raises(SimulationError):
            state._adj_decrement(0, 0)


class TestApiMisuse:
    def test_remove_never_added_node(self):
        state = DynamicGraphState()
        with pytest.raises(SimulationError):
            state.remove_node(3, death_time=0.0)

    def test_snapshot_survives_corrupt_free_mutation(self):
        """Snapshots are decoupled: mutating the state afterwards cannot
        invalidate an already-taken snapshot."""
        state = healthy_state()
        snap = state.snapshot(time=1.0)
        before = {u: set(snap.adjacency[u]) for u in snap.nodes}
        state.remove_node(0, death_time=2.0)
        after = {u: set(snap.adjacency[u]) for u in snap.nodes}
        assert before == after


def _an_assigned_slot(state: DynamicGraphState) -> tuple[int, int, int]:
    for node_id in state.alive_ids():
        for slot_index, target in enumerate(state.records[node_id].out_slots):
            if target is not None:
                return node_id, slot_index, target
    raise AssertionError("no assigned slot in healthy state")
