"""Tests for the shared driver interface (RoundReport, DynamicNetwork)."""

from __future__ import annotations

import pytest

from repro.models import PDGR, SDGR
from repro.models.base import RoundReport
from repro.sim.events import EventRecord, NodeBorn, NodeDied


class TestRoundReport:
    def test_births_and_deaths_extracted(self):
        report = RoundReport(start_time=0.0, end_time=1.0)
        report.events.append(EventRecord(time=0.3, kind=NodeBorn(node_id=7)))
        report.events.append(EventRecord(time=0.6, kind=NodeDied(node_id=2)))
        report.events.append(EventRecord(time=0.9, kind=NodeBorn(node_id=8)))
        assert report.births == [7, 8]
        assert report.deaths == [2]

    def test_empty_report(self):
        report = RoundReport(start_time=0.0, end_time=1.0)
        assert report.births == []
        assert report.deaths == []


class TestDriverInterface:
    def test_d_property(self):
        assert SDGR(n=20, d=5, seed=0).d == 5
        assert PDGR(n=20, d=3, seed=0, warm_time=0).d == 3

    def test_now_tracks_clock(self):
        net = SDGR(n=20, d=2, seed=1)
        before = net.now
        net.advance_round()
        assert net.now == before + 1.0

    def test_run_rounds_returns_reports(self):
        net = SDGR(n=20, d=2, seed=2)
        reports = net.run_rounds(5)
        assert len(reports) == 5
        assert all(isinstance(r, RoundReport) for r in reports)
        assert [r.end_time for r in reports] == sorted(r.end_time for r in reports)

    def test_streaming_round_report_contents(self):
        net = SDGR(n=20, d=2, seed=3)
        report = net.advance_round()
        assert len(report.births) == 1
        assert len(report.deaths) == 1
        # Regeneration edges are attached to the death event record.
        death_event = next(e for e in report.events if e.is_death)
        for edge in death_event.edges_created:
            assert net.state.is_alive(edge.source)

    def test_poisson_round_report_contents(self):
        net = PDGR(n=50, d=2, seed=4)
        report = net.advance_round()
        assert report.end_time - report.start_time == pytest.approx(1.0)
        for event in report.events:
            assert report.start_time < event.time <= report.end_time

    def test_event_record_properties(self):
        event = EventRecord(time=1.0, kind=NodeBorn(node_id=4))
        assert event.is_birth and not event.is_death
        assert event.node_id == 4
        died = EventRecord(time=2.0, kind=NodeDied(node_id=9))
        assert died.is_death and not died.is_birth

    def test_edge_endpoint_helpers(self):
        from repro.sim.events import EdgeCreated, EdgeDestroyed

        assert EdgeCreated(1, 2).endpoints() == (1, 2)
        assert EdgeDestroyed(3, 4).endpoints() == (3, 4)
