#!/usr/bin/env python
"""Flooding race: all four models + baselines across network sizes.

Reproduces the paper's headline comparison as one table: for n in a sweep,
how long does flooding take (and how far does it get) on

* SDG / PDG (no regeneration — partial coverage, Theorems 3.8/4.13),
* SDGR / PDGR (regeneration — complete in O(log n), Theorems 3.16/4.20),
* a static d-out graph (no churn — the Lemma B.1 reference point),
* push/pull gossip on SDGR (the bounded-communication extension).

The `rounds/log2 n` column staying flat is the O(log n) signature.

Run:  python examples/flooding_race.py
"""

from __future__ import annotations

import math

from repro import (
    PDG,
    PDGR,
    SDG,
    SDGR,
    flood_discrete,
    flood_discretized,
    gossip_push_pull,
)
from repro.util.tables import render_table


def main() -> None:
    d, seed = 8, 3
    rows = []
    for n in [200, 400, 800, 1600]:
        horizon = 40 * int(math.log2(n))

        net = SDG(n=n, d=d, seed=seed)
        net.run_rounds(n)
        res = flood_discrete(net, max_rounds=horizon)
        rows.append(_row("SDG (no regen)", n, res))

        net = SDGR(n=n, d=d, seed=seed)
        net.run_rounds(n)
        res = flood_discrete(net, max_rounds=horizon)
        rows.append(_row("SDGR (regen)", n, res))

        res = flood_discretized(PDG(n=n, d=d, seed=seed), max_rounds=horizon)
        rows.append(_row("PDG (no regen)", n, res))

        res = flood_discretized(PDGR(n=n, d=d, seed=seed), max_rounds=horizon)
        rows.append(_row("PDGR (regen)", n, res))

        net = SDGR(n=n, d=d, seed=seed)
        net.run_rounds(n)
        res = gossip_push_pull(net, seed=seed, max_rounds=horizon)
        rows.append(_row("SDGR push/pull gossip", n, res))

    print(
        render_table(
            [
                "model",
                "n",
                "completed",
                "rounds",
                "rounds / log2 n",
                "informed %",
            ],
            rows,
            title=f"Flooding race at d={d}",
        )
    )
    print(
        "\nRegeneration models complete in a flat multiple of log n;"
        "\nno-regeneration models stall short of 100% (isolated nodes);"
        "\ngossip pays a constant-factor premium for O(1) messages/node."
    )


def _row(model: str, n: int, res) -> dict:
    return {
        "model": model,
        "n": n,
        "completed": res.completed,
        "rounds": res.completion_round,
        "rounds / log2 n": (
            round(res.completion_round / math.log2(n), 2)
            if res.completion_round is not None
            else None
        ),
        "informed %": round(100 * res.final_fraction, 2),
    }


if __name__ == "__main__":
    main()
