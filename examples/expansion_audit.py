#!/usr/bin/env python
"""Expansion audit: certify a dynamic network snapshot as an expander.

Shows the expansion toolkit on one SDGR snapshot:

1. exact vertex expansion on a small instance (ground truth);
2. the adversarial portfolio (singletons, BFS balls, greedy cuts, random
   sets) on a large instance — a certified upper bound on h_out;
3. the spectral gap + Cheeger bounds as independent evidence;
4. the age demographics the PDGR proof (§4.3.1) relies on.

Run:  python examples/expansion_audit.py
"""

from __future__ import annotations

from repro import SDGR, PDGR, adversarial_expansion_upper_bound, vertex_expansion_exact
from repro.analysis.ages import age_profile, geometric_decay_rate
from repro.analysis.kl import nonexpansion_exponent
from repro.analysis.spectral import cheeger_bounds
from repro.util.tables import render_kv


def main() -> None:
    # 1. Ground truth at toy scale.
    small = SDGR(n=14, d=4, seed=0)
    small.run_rounds(28)
    exact = vertex_expansion_exact(small.snapshot())
    print(
        render_kv(
            {
                "h_out (exact)": exact.min_ratio,
                "worst set size": exact.witness_size,
                "subsets enumerated": exact.candidates_checked,
            },
            title="1. exact expansion, SDGR(n=14, d=4):",
        )
    )

    # 2. Adversarial audit at realistic scale.
    net = SDGR(n=800, d=14, seed=1)
    net.run_rounds(800)
    snap = net.snapshot()
    probe = adversarial_expansion_upper_bound(snap, seed=2, num_random_sets=400)
    print(
        render_kv(
            {
                "certified upper bound on h_out": probe.min_ratio,
                "worst candidate size": probe.witness_size,
                "candidates scored": probe.candidates_checked,
                "paper threshold (Thm 3.15)": 0.1,
                "passes": probe.min_ratio > 0.1,
            },
            title="\n2. adversarial audit, SDGR(n=800, d=14):",
        )
    )

    # 3. Spectral evidence.
    spectral = cheeger_bounds(snap)
    print(
        render_kv(
            {
                "lambda2 (normalized Laplacian)": spectral.lambda2,
                "conductance >= (Cheeger)": spectral.conductance_lower,
                "conductance <=": spectral.conductance_upper,
                "vertex expansion >= (rigorous)": spectral.vertex_expansion_lower,
            },
            title="\n3. spectral gap:",
        )
    )

    # 4. Age demographics (the §4.3.1 machinery on a PDGR snapshot).
    pnet = PDGR(n=500, d=8, seed=3, warm_time=5000.0)
    psnap = pnet.snapshot()
    profile = age_profile(psnap, slice_width=500.0)
    # The KL machinery of Lemma 4.18 applies to candidate sets of size
    # k ≤ n/14; evaluate it for a size-25 (= n/20) set whose demographics
    # mirror the snapshot (scale the profile down to k nodes).
    k = 25
    scaled = [round(c * k / profile.total) for c in profile.counts]
    scaled[0] += k - sum(scaled)  # rounding drift goes to the young slice
    print(
        render_kv(
            {
                "age profile (slices of n)": str(list(profile.counts[:8])) + "…",
                "per-slice survival ratio": geometric_decay_rate(profile),
                "KL non-expansion exponent (k=n/20)": nonexpansion_exponent(
                    scaled, n=500.0, d=35
                ),
            },
            title="\n4. PDGR age demographics (§4.3.1):",
        )
    )
    print(
        "\nGeometric slice decay + positive KL exponent are exactly the"
        "\ningredients Lemma 4.18 turns into the PDGR expansion proof."
    )


if __name__ == "__main__":
    main()
