#!/usr/bin/env python
"""Heavy-tailed session lengths: stress-testing the paper's robustness claim.

The paper models node lifetimes as exponential and argues its findings are
robust to modelling choices; measured P2P session lengths are heavy-tailed.
This example runs the regeneration dichotomy under exponential, Weibull
(k = 0.5) and Pareto (α = 1.5) lifetimes at equal mean churn, prints the
survival curves and flooding trajectories as ASCII charts, and shows the
dichotomy survives every law.

Run:  python examples/heavy_tailed_churn.py
"""

from __future__ import annotations

from repro.analysis.temporal import node_survival_curve
from repro.churn.lifetime import (
    ExponentialLifetime,
    ParetoLifetime,
    WeibullLifetime,
)
from repro.flooding import flood_discretized
from repro.models.general import GDG, GDGR
from repro.util.ascii_plot import sparkline
from repro.util.tables import render_table


def main() -> None:
    n, d, seed = 300.0, 6, 0
    laws = [
        ("exponential (paper)", ExponentialLifetime(n)),
        ("Weibull k=0.5", WeibullLifetime(n, shape=0.5)),
        ("Pareto a=1.5", ParetoLifetime(n, alpha=1.5)),
    ]

    rows = []
    print("cohort survival over [n/4, n/2, n] rounds (fraction alive):\n")
    for label, law in laws:
        survival_net = GDG(law, d=d, seed=seed, warm_time=8 * n)
        curve = node_survival_curve(
            survival_net, [int(n / 4), int(n / 2), int(n)]
        )
        print(f"  {label:22s} {sparkline(curve)}   {[round(c, 2) for c in curve]}")

        flood_net = GDGR(law, d=d, seed=seed, warm_time=8 * n)
        result = flood_discretized(flood_net, max_rounds=120)
        rows.append(
            {
                "lifetime law": label,
                "alive at start": result.network_sizes[0],
                "flood completed": result.completed,
                "rounds": result.completion_round,
                "trajectory": sparkline(result.informed_sizes),
            }
        )

    print()
    print(
        render_table(
            ["lifetime law", "alive at start", "flood completed", "rounds", "trajectory"],
            rows,
            title=f"Complete flooding with regeneration (d={d}, mean lifetime {n:g})",
        )
    )
    print(
        "\nHeavy tails change the demographics (Pareto keeps a few ancient"
        "\nnodes and many infants) but not the paper's dichotomy: with"
        "\nregeneration, flooding still completes in a handful of rounds."
    )


if __name__ == "__main__":
    main()
