#!/usr/bin/env python
"""Bitcoin-like overlay: transaction broadcast under realistic churn.

The paper's §1.1 motivates the PDGR model with the Bitcoin P2P network:
each full node keeps ~8 outbound connections chosen from an address table
and re-dials when peers disappear.  This example builds that overlay with
:class:`repro.p2p.BitcoinLikeNetwork`, broadcasts a "transaction" with the
paper's discretized flooding, and compares against the idealised PDGR
model on the same churn parameters.

Run:  python examples/bitcoin_overlay.py
"""

from __future__ import annotations

import math

from repro import PDGR, flood_discretized
from repro.analysis.components import component_summary
from repro.analysis.degrees import degree_summary
from repro.p2p import BitcoinLikeNetwork
from repro.util.tables import render_table


def describe(name: str, net, n: int) -> dict:
    snap = net.snapshot()
    components = component_summary(snap)
    degrees = degree_summary(snap)
    flood = flood_discretized(net, max_rounds=40 * int(math.log2(n)))
    return {
        "network": name,
        "alive nodes": snap.num_nodes(),
        "connected": components.is_connected,
        "mean degree": round(degrees.mean_degree, 2),
        "max degree": degrees.max_degree,
        "tx broadcast rounds": flood.completion_round,
        "rounds / log2 n": round(
            (flood.completion_round or float("nan")) / math.log2(n), 2
        ),
    }


def main() -> None:
    n, seed = 600, 7
    rows = []

    overlay = BitcoinLikeNetwork(n=n, seed=seed)
    rows.append(describe("bitcoin-like overlay", overlay, n))
    print(
        f"overlay address churn: {overlay.successful_dials} successful dials, "
        f"{overlay.failed_dials} failed (stale addresses evicted)"
    )

    ideal = PDGR(n=n, d=8, seed=seed)
    rows.append(describe("idealised PDGR (d=8)", ideal, n))

    print(
        render_table(
            [
                "network",
                "alive nodes",
                "connected",
                "mean degree",
                "max degree",
                "tx broadcast rounds",
                "rounds / log2 n",
            ],
            rows,
            title=f"Transaction broadcast at n≈{n} (λ=1, µ=1/n churn)",
        )
    )
    print(
        "\nBoth stay connected and broadcast in O(log n) rounds: the paper's"
        "\nPDGR abstraction captures the engineered overlay's behaviour."
    )


if __name__ == "__main__":
    main()
