#!/usr/bin/env python
"""Quickstart: build each of the paper's four models and flood them.

Demonstrates the core public API:

* constructing SDG / SDGR / PDG / PDGR networks,
* advancing them through churn,
* running the paper's flooding processes,
* reading off snapshot statistics (degrees, isolated nodes, expansion).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    PDG,
    PDGR,
    SDG,
    SDGR,
    adversarial_expansion_upper_bound,
    flood_discrete,
    flood_discretized,
    isolated_fraction,
)
from repro.analysis.degrees import degree_summary
from repro.util.tables import render_table


def main() -> None:
    n, d, seed = 500, 8, 0
    rows = []

    # --- streaming models -------------------------------------------------
    for name, factory, regen in [("SDG", SDG, False), ("SDGR", SDGR, True)]:
        net = factory(n=n, d=d, seed=seed)
        net.run_rounds(n)  # a full lifetime past warm-up: stationary ages
        snap = net.snapshot()
        flood = flood_discrete(net, max_rounds=200)
        rows.append(
            {
                "model": name,
                "nodes": snap.num_nodes(),
                "mean degree": round(degree_summary(snap).mean_degree, 2),
                "isolated %": round(100 * isolated_fraction(snap), 2),
                "flood completed": flood.completed,
                "flood rounds": flood.completion_round,
                "final informed %": round(100 * flood.final_fraction, 1),
            }
        )

    # --- Poisson models ----------------------------------------------------
    for name, factory in [("PDG", PDG), ("PDGR", PDGR)]:
        net = factory(n=n, d=d, seed=seed)  # warms to t = 3n automatically
        snap = net.snapshot()
        flood = flood_discretized(net, max_rounds=200)
        rows.append(
            {
                "model": name,
                "nodes": snap.num_nodes(),
                "mean degree": round(degree_summary(snap).mean_degree, 2),
                "isolated %": round(100 * isolated_fraction(snap), 2),
                "flood completed": flood.completed,
                "flood rounds": flood.completion_round,
                "final informed %": round(100 * flood.final_fraction, 1),
            }
        )

    print(
        render_table(
            [
                "model",
                "nodes",
                "mean degree",
                "isolated %",
                "flood completed",
                "flood rounds",
                "final informed %",
            ],
            rows,
            title=f"The paper's four models at n={n}, d={d}",
        )
    )

    # --- expansion of the regenerating model --------------------------------
    net = SDGR(n=n, d=14, seed=seed)
    net.run_rounds(n)
    probe = adversarial_expansion_upper_bound(net.snapshot(), seed=seed)
    print(
        f"\nSDGR(d=14) adversarial expansion bound: {probe.min_ratio:.3f} "
        f"(witness size {probe.witness_size}; paper threshold 0.1, "
        f"Theorem 3.15)"
    )


if __name__ == "__main__":
    main()
