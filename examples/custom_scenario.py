"""Composing a custom scenario: adversarial churn × gossip × observers.

The scenario layer turns "pick a churn model, an edge policy, a spreading
protocol, and measure" into one declarative object.  This example builds
a configuration the paper never ran — an adversary always deleting the
biggest hub, regeneration repairing the damage, a push-only gossip rumour
racing the churn — and watches expansion and isolated-node counts along
the way with stock observers.

Run:  PYTHONPATH=src python examples/custom_scenario.py

The same scenario, as pure JSON, lives in
``examples/adversarial_gossip.json`` and runs via::

    PYTHONPATH=src python -m repro.experiments --scenario examples/adversarial_gossip.json
"""

from __future__ import annotations

from repro.scenario import (
    CoverageObserver,
    ExpansionObserver,
    ScenarioSpec,
    Simulation,
)

SPEC = ScenarioSpec(
    churn="adversarial",                 # streaming cadence, chosen victims
    churn_params={"strategy": "max_degree"},  # always kill the biggest hub
    policy="regen",                      # the paper's repair rule
    n=300,
    d=8,
    horizon=300,                         # churn rounds before the broadcast
    protocol="gossip",
    protocol_params={"push": True, "pull": False, "seed": 11},
)


def main() -> None:
    print("spec:")
    print(SPEC.to_json())

    # Round-trip through JSON — what --scenario does with a file.
    spec = ScenarioSpec.from_json(SPEC.to_json())
    assert spec == SPEC

    simulation = Simulation(
        spec,
        observers=[
            ExpansionObserver(every=100, seed=1),  # probe every 100 rounds
            CoverageObserver(),
        ],
        seed=0,
    )
    simulation.run()

    result = simulation.flood()
    print(
        f"\npush-only gossip under hub-killing churn: "
        f"completed={result.completed} in {result.completion_round} rounds "
        f"(network size {result.final_network_size})"
    )

    expansion = simulation.results()["expansion"]
    print(f"worst expansion probed during churn: {expansion['worst_ratio']:.3f}")
    print(
        "regeneration keeps the network an expander even while the "
        "adversary deletes hubs — the paper's oblivious-churn guarantee "
        "degrades gracefully."
    )

    # Sweeps are spec surgery: the same scenario at double scale, pull
    # enabled, on the vectorized array backend.
    big = spec.with_(
        n=600,
        horizon=600,
        backend="array",
        protocol_params={**spec.protocol_params, "pull": True, "vectorized": True},
    )
    big_result = Simulation(big, seed=1).run().flood()
    print(
        f"n=600 push+pull (vectorized, array backend): "
        f"completed={big_result.completed} in {big_result.completion_round} rounds"
    )


if __name__ == "__main__":
    main()
