#!/usr/bin/env python
"""Churn-resilience study: how much churn can each topology rule absorb?

The paper's parameter n = λ/µ couples network size and lifetime: faster
churn (smaller expected lifetime at fixed size) is modelled by raising the
*relative* churn while flooding speed stays one message per time unit.
This study sweeps the node lifetime (as a multiple of the message delay)
and measures, for the no-regeneration and regeneration rules:

* the informed fraction flooding reaches within a fixed horizon, and
* the isolated-node fraction (the no-regen failure mode).

It reproduces the qualitative message of Table 1: regeneration buys
complete dissemination at any churn rate shown, while without it a
churn-dependent fraction of the network is unreachable.

Run:  python examples/churn_resilience.py
"""

from __future__ import annotations

from repro import PDG, PDGR, flood_discretized, isolated_fraction
from repro.util.rng import child_seeds
from repro.util.stats import mean_confidence_interval
from repro.util.tables import render_table


def measure(factory, n: int, d: int, seeds, horizon: int) -> tuple[float, float]:
    fractions, isolated = [], []
    for seed in seeds:
        net = factory(n=n, d=d, seed=seed)
        isolated.append(isolated_fraction(net.snapshot()))
        result = flood_discretized(net, max_rounds=horizon)
        fractions.append(result.final_fraction)
    return (
        mean_confidence_interval(fractions).mean,
        mean_confidence_interval(isolated).mean,
    )


def main() -> None:
    d, trials, horizon = 4, 3, 40
    rows = []
    # In the paper's normalisation a node lives n message-delays, so the
    # lifetime *is* the churn knob: sweeping n sweeps how hard each hop
    # races against churn (the informed/isolated fractions are the
    # size-free quantities to compare).
    for lifetime in [100, 200, 400, 800]:
        seeds = child_seeds(lifetime, trials)
        frac, iso = measure(PDG, lifetime, d, seeds, horizon)
        rows.append(
            {
                "edge rule": "no regeneration (PDG)",
                "lifetime (delays)": lifetime,
                "informed fraction": round(frac, 4),
                "isolated fraction": round(iso, 4),
            }
        )
        frac, iso = measure(PDGR, lifetime, d, seeds, horizon)
        rows.append(
            {
                "edge rule": "regeneration (PDGR)",
                "lifetime (delays)": lifetime,
                "informed fraction": round(frac, 4),
                "isolated fraction": round(iso, 4),
            }
        )

    print(
        render_table(
            [
                "edge rule",
                "lifetime (delays)",
                "informed fraction",
                "isolated fraction",
            ],
            rows,
            title=f"Flooding coverage after {horizon} rounds, d={d} "
            f"(lifetime n = expected size; λ=1)",
        )
    )
    print(
        "\nRegeneration keeps coverage at 100% across all churn rates;"
        "\nwithout it a stable isolated fraction (≈ the paper's"
        "\n∫ a^d e^{-da} da prediction) never hears the message."
    )


if __name__ == "__main__":
    main()
