"""Setup shim.

The canonical metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-use-pep517`` works on machines without the ``wheel``
package (offline environments).
"""

from setuptools import setup

setup()
