"""Statistics helpers used by the experiment harness.

The paper's claims have three recurring statistical shapes, each served by a
dedicated fit helper:

* **O(log n) flooding time** — :func:`log_scaling_fit` regresses a measured
  quantity against ``log n`` and reports the slope, intercept and R²; a good
  linear fit in ``log n`` (and a flat ``time / log n`` ratio) is the
  reproduction criterion for Theorems 3.8/3.16/4.13/4.20.
* **1 − exp(−Ω(d)) fractions** — :func:`exponential_decay_fit` regresses
  ``log(residual)`` against ``d`` and reports the decay rate; a negative
  slope reproduces the exp(−Ω(d)) claims of Lemmas 3.5/4.10 and
  Theorems 3.8/4.13.
* **constant-factor growth** — :func:`geometric_growth_rate` estimates the
  per-round multiplicative growth of the informed set (onion-skin claims).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean with a symmetric normal-approximation confidence interval."""

    mean: float
    half_width: float
    n_samples: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g}"


@dataclass(frozen=True)
class LinearFit:
    """Least-squares fit ``y ≈ slope * x + intercept``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def mean_confidence_interval(
    samples: Sequence[float], z: float = 1.96
) -> ConfidenceInterval:
    """Normal-approximation CI for the mean of *samples* (default 95%)."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("need at least one sample")
    mean = float(data.mean())
    if data.size == 1:
        return ConfidenceInterval(mean=mean, half_width=float("nan"), n_samples=1)
    stderr = float(data.std(ddof=1)) / math.sqrt(data.size)
    return ConfidenceInterval(mean=mean, half_width=z * stderr, n_samples=int(data.size))


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Ordinary least squares fit of ``ys`` against ``xs``.

    Uses the closed-form centered OLS solution rather than a generic
    least-squares solver: it is exact for a 1-D fit and, unlike
    ``np.polyfit``'s SVD, cannot fail to converge on ill-scaled
    (e.g. subnormal) inputs.  Degenerate xs (zero spread at float
    resolution, where no slope is identifiable) raise ``ValueError``.
    """
    x = np.asarray(list(xs), dtype=float)
    y = np.asarray(list(ys), dtype=float)
    if x.size != y.size:
        raise ValueError("xs and ys must have the same length")
    if x.size < 2:
        raise ValueError("need at least two points for a linear fit")
    x_centered = x - x.mean()
    ss_x = float(np.sum(x_centered**2))
    if ss_x == 0.0 or not math.isfinite(ss_x):
        raise ValueError("xs have no usable spread; slope is unidentifiable")
    slope = float(np.sum(x_centered * (y - y.mean()))) / ss_x
    intercept = float(y.mean() - slope * x.mean())
    predicted = slope * x + intercept
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(slope=float(slope), intercept=float(intercept), r_squared=r_squared)


def log_scaling_fit(ns: Sequence[float], values: Sequence[float]) -> LinearFit:
    """Fit ``values ≈ a * log(n) + b``.

    Used to check O(log n) claims: a stable positive slope with high R²
    (and no super-logarithmic curvature) reproduces the claimed scaling.
    """
    logs = [math.log(n) for n in ns]
    return linear_fit(logs, values)


def exponential_decay_fit(
    ds: Sequence[float], residuals: Sequence[float], floor: float = 1e-12
) -> LinearFit:
    """Fit ``log(residual) ≈ -rate * d + c`` and return the linear fit.

    *residuals* are quantities the paper claims decay like exp(−Ω(d)),
    e.g. the uninformed fraction or the isolated-node fraction.  Zero
    residuals are clamped to *floor* so that a fully-informed trial does
    not destroy the fit.  A negative ``slope`` with magnitude bounded away
    from zero reproduces the exp(−Ω(d)) shape.
    """
    logged = [math.log(max(r, floor)) for r in residuals]
    return linear_fit(ds, logged)


def geometric_growth_rate(sizes: Sequence[float]) -> float:
    """Median per-step multiplicative growth factor of a size sequence.

    Only strictly positive consecutive pairs contribute.  Returns ``nan``
    when no pair is usable (e.g. the process died immediately).
    """
    ratios = [
        b / a
        for a, b in zip(sizes, list(sizes)[1:])
        if a > 0 and b > 0
    ]
    if not ratios:
        return float("nan")
    return float(np.median(ratios))


def summarize(samples: Sequence[float]) -> dict[str, float]:
    """Return a dict of basic summary statistics (min/median/mean/max/std)."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("need at least one sample")
    return {
        "min": float(data.min()),
        "median": float(np.median(data)),
        "mean": float(data.mean()),
        "max": float(data.max()),
        "std": float(data.std(ddof=1)) if data.size > 1 else 0.0,
        "count": float(data.size),
    }


def fraction_true(flags: Sequence[bool]) -> float:
    """Fraction of ``True`` entries (empirical probability of an event)."""
    flags = list(flags)
    if not flags:
        raise ValueError("need at least one observation")
    return sum(bool(f) for f in flags) / len(flags)
