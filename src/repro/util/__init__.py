"""Shared low-level utilities: RNG management, sampling, statistics, tables."""

from repro.util.rng import child_seeds, make_rng, spawn_rngs
from repro.util.sampling import IndexedSet
from repro.util.stats import (
    ConfidenceInterval,
    exponential_decay_fit,
    geometric_growth_rate,
    linear_fit,
    log_scaling_fit,
    mean_confidence_interval,
    summarize,
)

__all__ = [
    "ConfidenceInterval",
    "IndexedSet",
    "child_seeds",
    "exponential_decay_fit",
    "geometric_growth_rate",
    "linear_fit",
    "log_scaling_fit",
    "make_rng",
    "mean_confidence_interval",
    "spawn_rngs",
    "summarize",
]
