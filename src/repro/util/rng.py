"""Deterministic random-number-generator management.

All stochastic objects in the library accept either an integer seed or a
ready-made :class:`numpy.random.Generator`.  Experiments that run many
independent trials derive one child generator per trial from a single master
seed via :class:`numpy.random.SeedSequence`, which guarantees statistically
independent, fully reproducible streams.

Two derivation schemes coexist:

* :func:`child_seeds` — positional children of one master seed (the
  original scheme).  Deriving *several* independent families this way
  forced callers into ad-hoc arithmetic (``child_seeds(seed + 1, ...)``,
  ``seed + 2``, ...), which is fragile: nothing stops two call sites from
  colliding on the same offset, and the offsets silently alias across
  master seeds (family *k* of seed *s* equals family *k − 1* of seed
  *s + 1*).
* :func:`derive_seeds` — **named streams**.  Every family of trials
  names its stream (``derive_seeds(seed, "exp01-sdg", trials)``); the
  name is hashed into the :class:`~numpy.random.SeedSequence` entropy, so
  distinct names give statistically independent streams for the *same*
  master seed, with no cross-seed aliasing and no offsets to coordinate.
  This is the scheme the sweep plane keys its per-cell seeds on.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np

#: Type accepted everywhere a source of randomness is needed.
SeedLike = int | np.random.Generator | np.random.SeedSequence | None


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` yields a non-deterministic generator (fresh OS entropy); an
    existing generator is passed through unchanged so callers can thread one
    generator through a pipeline without re-seeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def child_seeds(seed: SeedLike, count: int) -> list[np.random.SeedSequence]:
    """Derive *count* independent child seed sequences from *seed*.

    The children are suitable for parallel or sequential trials: streams
    seeded from distinct children are independent by construction.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a root sequence from the generator's own stream so that
        # repeated calls advance deterministically.
        root = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        root = np.random.SeedSequence(seed)
    return list(root.spawn(count))


_SEED_MASK = (1 << 64) - 1


def _stream_entropy(stream: str) -> tuple[int, ...]:
    """Stable 128-bit entropy words for a stream name (sha256 prefix)."""
    digest = hashlib.sha256(stream.encode("utf-8")).digest()
    return tuple(
        int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)
    )


def stream_root(seed: int, stream: str) -> np.random.SeedSequence:
    """The root :class:`~numpy.random.SeedSequence` of a named stream.

    The root's entropy combines the integer master *seed* with a hash of
    the *stream* name, so streams with distinct names are independent for
    the same master seed, and — unlike ``child_seeds(seed + k, ...)``
    offsetting — a stream of seed ``s`` never aliases a stream of seed
    ``s + 1``.
    """
    if not isinstance(seed, (int, np.integer)) or isinstance(seed, bool):
        raise TypeError(
            f"named seed streams need an integer master seed, got {seed!r}"
        )
    if not stream:
        raise ValueError("stream name must be a non-empty string")
    return np.random.SeedSequence(
        entropy=[int(seed) & _SEED_MASK, *_stream_entropy(stream)]
    )


def derive_seed(seed: int, stream: str, index: int) -> np.random.SeedSequence:
    """Child *index* of the named stream — O(1), independent of *index*.

    Equals ``derive_seeds(seed, stream, n)[index]`` for any ``n > index``
    (children are addressed by spawn key, exactly as
    :meth:`numpy.random.SeedSequence.spawn` numbers them), which is what
    lets parallel sweep workers re-derive a single cell's seed without
    materializing the whole grid's seed list.
    """
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    root = stream_root(seed, stream)
    return np.random.SeedSequence(
        entropy=root.entropy, spawn_key=(index,)
    )


def derive_seeds(
    seed: int, stream: str, count: int
) -> list[np.random.SeedSequence]:
    """*count* independent child seeds of the named stream.

    The replacement for ``trial_seeds(seed + k, count)`` call sites: name
    the family instead of hand-numbering it::

        for child in derive_seeds(seed, "exp01-pdg", trials):
            ...

    Children are the stream root's spawn children, so
    ``derive_seeds(s, name, n)[i]`` equals ``derive_seed(s, name, i)``
    for any ``n > i`` (asserted in tests/test_util_rng.py).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return list(stream_root(seed, stream).spawn(count))


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Return *count* independent generators derived from *seed*."""
    return [np.random.default_rng(child) for child in child_seeds(seed, count)]


def sample_indices_with_replacement(
    rng: np.random.Generator, population_size: int, k: int
) -> Sequence[int]:
    """Sample *k* indices uniformly with replacement from ``range(population_size)``."""
    if population_size <= 0:
        raise ValueError("population_size must be positive")
    return rng.integers(0, population_size, size=k).tolist()
