"""Deterministic random-number-generator management.

All stochastic objects in the library accept either an integer seed or a
ready-made :class:`numpy.random.Generator`.  Experiments that run many
independent trials derive one child generator per trial from a single master
seed via :class:`numpy.random.SeedSequence`, which guarantees statistically
independent, fully reproducible streams.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Type accepted everywhere a source of randomness is needed.
SeedLike = int | np.random.Generator | np.random.SeedSequence | None


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` yields a non-deterministic generator (fresh OS entropy); an
    existing generator is passed through unchanged so callers can thread one
    generator through a pipeline without re-seeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def child_seeds(seed: SeedLike, count: int) -> list[np.random.SeedSequence]:
    """Derive *count* independent child seed sequences from *seed*.

    The children are suitable for parallel or sequential trials: streams
    seeded from distinct children are independent by construction.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a root sequence from the generator's own stream so that
        # repeated calls advance deterministically.
        root = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        root = np.random.SeedSequence(seed)
    return list(root.spawn(count))


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Return *count* independent generators derived from *seed*."""
    return [np.random.default_rng(child) for child in child_seeds(seed, count)]


def sample_indices_with_replacement(
    rng: np.random.Generator, population_size: int, k: int
) -> Sequence[int]:
    """Sample *k* indices uniformly with replacement from ``range(population_size)``."""
    if population_size <= 0:
        raise ValueError("population_size must be positive")
    return rng.integers(0, population_size, size=k).tolist()
