"""Dependency-free ASCII charts for terminal output.

Examples and the experiment CLI render flooding trajectories and sweep
series without any plotting library:

* :func:`sparkline` — a one-line unicode summary of a series;
* :func:`line_chart` — a fixed-height character canvas with axis labels;
* :func:`histogram` — horizontal bars for discrete distributions.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line unicode sparkline of *values* (empty input → empty str)."""
    data = [float(v) for v in values]
    if not data:
        return ""
    low = min(data)
    high = max(data)
    if math.isclose(low, high):
        return _SPARK_LEVELS[0] * len(data)
    span = high - low
    out = []
    for v in data:
        index = int((v - low) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[index])
    return "".join(out)


def line_chart(
    values: Sequence[float],
    height: int = 8,
    width: int | None = None,
    title: str | None = None,
) -> str:
    """Render *values* as a character line chart.

    The series is resampled to *width* columns (default: its length,
    capped at 72) and drawn on a *height*-row canvas with min/max labels.
    """
    data = [float(v) for v in values]
    if not data:
        return "(empty series)"
    if height < 2:
        raise ValueError("height must be >= 2")
    if width is None:
        width = min(len(data), 72)
    width = max(1, width)
    resampled = _resample(data, width)
    low, high = min(resampled), max(resampled)
    span = high - low if high > low else 1.0

    canvas = [[" "] * width for _ in range(height)]
    for x, v in enumerate(resampled):
        y = int((v - low) / span * (height - 1))
        canvas[height - 1 - y][x] = "•"

    label_width = max(len(_fmt(high)), len(_fmt(low)))
    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            label = _fmt(high).rjust(label_width)
        elif row_index == height - 1:
            label = _fmt(low).rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    return "\n".join(lines)


def histogram(
    counts: Mapping[int, int] | Mapping[str, int],
    max_bar: int = 40,
    title: str | None = None,
) -> str:
    """Horizontal bar chart for a discrete distribution."""
    if not counts:
        return "(empty histogram)"
    peak = max(counts.values())
    label_width = max(len(str(k)) for k in counts)
    lines = []
    if title:
        lines.append(title)
    for key in counts:
        value = counts[key]
        bar = "#" * max(1 if value > 0 else 0, int(value / peak * max_bar))
        lines.append(f"{str(key).rjust(label_width)} | {bar} {value}")
    return "\n".join(lines)


def _resample(data: list[float], width: int) -> list[float]:
    """Average-pool *data* down (or index-map up) to *width* points."""
    n = len(data)
    if n == width:
        return data
    out = []
    for i in range(width):
        start = int(i * n / width)
        end = max(start + 1, int((i + 1) * n / width))
        chunk = data[start:end]
        out.append(sum(chunk) / len(chunk))
    return out


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.3g}"
