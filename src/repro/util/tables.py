"""Minimal ASCII table rendering for experiment output.

The experiment harness prints the same rows the paper's Table 1 summarises.
We keep formatting dependency-free: a table is a list of column names plus a
list of row dicts; values are formatted with sensible defaults (floats get 4
significant digits).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def format_value(value: Any) -> str:
    """Render a single cell."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-4:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    columns: Sequence[str],
    rows: Sequence[Mapping[str, Any]],
    title: str | None = None,
) -> str:
    """Render *rows* as a fixed-width ASCII table with the given *columns*."""
    header = list(columns)
    body = [[format_value(row.get(col)) for col in header] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    rule = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out: list[str] = []
    if title:
        out.append(title)
    out.append(rule)
    out.append(line(header))
    out.append(rule)
    for r in body:
        out.append(line(r))
    out.append(rule)
    return "\n".join(out)


def render_kv(pairs: Mapping[str, Any], title: str | None = None) -> str:
    """Render a key/value block (used for experiment headline verdicts)."""
    out: list[str] = []
    if title:
        out.append(title)
    width = max((len(k) for k in pairs), default=0)
    for key, value in pairs.items():
        out.append(f"  {key.ljust(width)} : {format_value(value)}")
    return "\n".join(out)
