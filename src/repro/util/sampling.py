"""O(1) uniform sampling from a mutable set of node ids.

The dynamic-graph models need to pick a node uniformly at random from the
set of currently-alive nodes thousands of times per simulated second, while
nodes are continuously inserted and removed.  :class:`IndexedSet` supports
``add``, ``discard``, membership, and uniform ``sample`` all in O(1) using
the classic list + position-map ("swap-pop") representation.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np


class IndexedSet:
    """A set of ints supporting O(1) add/discard/contains/uniform-sample."""

    __slots__ = ("_items", "_pos")

    def __init__(self, items: Iterable[int] = ()) -> None:
        self._items: list[int] = []
        self._pos: dict[int, int] = {}
        for item in items:
            self.add(item)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: int) -> bool:
        return item in self._pos

    def __iter__(self) -> Iterator[int]:
        return iter(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IndexedSet({self._items!r})"

    def add(self, item: int) -> None:
        """Insert *item* if not already present."""
        if item in self._pos:
            return
        self._pos[item] = len(self._items)
        self._items.append(item)

    @classmethod
    def from_unique_list(cls, items: list[int]) -> "IndexedSet":
        """Build from a list of *distinct* items at C speed.

        The fused-window write-back path: constructing via per-item
        :meth:`add` costs a Python call per member, which at n = 1e5+
        dominates an otherwise vectorized kernel.  The caller guarantees
        distinctness (a duplicate would corrupt the position map).
        """
        obj = cls()
        obj._items = list(items)
        obj._pos = dict(zip(obj._items, range(len(obj._items))))
        return obj

    def extend_unique(self, items: Iterable[int]) -> None:
        """Bulk-append *items*, all of which must be absent from the set.

        The batched-birth fast path: one C-level list extend plus one dict
        update instead of a per-item :meth:`add` loop.  The caller is
        responsible for uniqueness (the topology backends check their own
        id maps first); a duplicate would corrupt the position map.
        """
        base = len(self._items)
        self._items.extend(items)
        self._pos.update(
            (item, base + offset)
            for offset, item in enumerate(self._items[base:])
        )

    def discard(self, item: int) -> None:
        """Remove *item* if present (no-op otherwise)."""
        pos = self._pos.pop(item, None)
        if pos is None:
            return
        last = self._items.pop()
        if last != item:
            self._items[pos] = last
            self._pos[last] = pos

    def remove(self, item: int) -> None:
        """Remove *item*, raising :class:`KeyError` if absent."""
        if item not in self._pos:
            raise KeyError(item)
        self.discard(item)

    def sample(self, rng: np.random.Generator) -> int:
        """Return a uniformly random member (the set must be non-empty)."""
        if not self._items:
            raise IndexError("cannot sample from an empty IndexedSet")
        return self._items[int(rng.integers(0, len(self._items)))]

    def sample_excluding(self, rng: np.random.Generator, excluded: int) -> int:
        """Uniformly sample a member different from *excluded*.

        Requires at least one eligible member.  Uses rejection sampling,
        which terminates quickly because at most one element is excluded.
        """
        size = len(self._items)
        if size == 0 or (size == 1 and self._items[0] == excluded):
            raise IndexError("no eligible element to sample")
        while True:
            candidate = self._items[int(rng.integers(0, size))]
            if candidate != excluded:
                return candidate

    def sample_many(
        self, rng: np.random.Generator, k: int, exclude: int | None = None
    ) -> list[int]:
        """Sample *k* members independently (with replacement).

        If *exclude* is given, that member is never returned.  Returns an
        empty list when no eligible member exists: this mirrors the paper's
        convention that the very first node of the network creates no edges
        because "the network" is empty at that point.
        """
        size = len(self._items)
        if size == 0:
            return []
        if exclude is not None and exclude in self._pos:
            if size == 1:
                return []
            return [self.sample_excluding(rng, exclude) for _ in range(k)]
        return [self._items[int(i)] for i in rng.integers(0, size, size=k)]

    def as_list(self) -> list[int]:
        """Return a snapshot copy of the members (ordering is internal)."""
        return list(self._items)
