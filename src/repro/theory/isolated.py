"""Isolated-node theory (Lemmas 3.5 and 4.10).

**Bounds** (the lemmas' literal statements):

* streaming: at least ``(1/6)·n·e^{−2d}`` isolated nodes w.h.p.;
* Poisson: at least ``(1/18)·n·e^{−2d}``.

**Predictions** (first-order, should match simulation closely):

A node of age ``a`` (in units of ``n`` rounds) is isolated iff all ``d``
out-requests point to dead nodes and no in-request ever arrived.

* Streaming: an out-target chosen uniformly at birth is dead ``a·n`` rounds
  later with probability ``a`` (ages are uniform), and in-requests arrive
  as ``d`` Bernoulli(1/n) per round, so

  ``P(isolated | age a) ≈ a^d · e^{−d·a}`` and the expected fraction is
  ``∫₀¹ a^d e^{−d·a} da``.

* Poisson (time in units of ``n``): a uniformly chosen alive target has
  Exp(1) *residual* lifetime (memorylessness), so it is dead ``a`` later
  w.p. ``1 − e^{−a}``; ages are Exp(1).  In-edges differ from streaming:
  an in-edge dies when its *source* dies, and in the Poisson model the
  source can die before the target (in streaming a younger node always
  outlives the older target, so "no live in-edge" = "no in-request ever").
  Live in-edges at age ``a`` are a thinned Poisson process with mean
  ``d(1 − e^{−a})``, giving expected isolated fraction
  ``∫₀^∞ e^{−a} (1−e^{−a})^d e^{−d(1−e^{−a})} da``, which under the
  substitution ``u = 1 − e^{−a}`` equals the *streaming* integral
  ``∫₀¹ u^d e^{−d·u} du`` — the two models share the same first-order
  isolated fraction.

* "Isolated forever": multiply by the probability of no in-request in the
  remaining lifetime — ``e^{−d(1−a)}`` (streaming, giving the closed form
  ``e^{−d}/(d+1)``) or ``E[e^{−d·Exp(1)}] = 1/(1+d)`` (Poisson).
"""

from __future__ import annotations

import math

from scipy import integrate


def isolated_fraction_lower_bound_streaming(d: int) -> float:
    """Lemma 3.5's guaranteed isolated fraction: ``e^{−2d}/6``."""
    return math.exp(-2.0 * d) / 6.0


def isolated_fraction_lower_bound_poisson(d: int) -> float:
    """Lemma 4.10's guaranteed isolated fraction: ``e^{−2d}/18``."""
    return math.exp(-2.0 * d) / 18.0


def isolated_fraction_prediction_streaming(d: int) -> float:
    """First-order expected isolated fraction in SDG: ``∫₀¹ a^d e^{−da} da``."""
    value, _ = integrate.quad(lambda a: a**d * math.exp(-d * a), 0.0, 1.0)
    return float(value)


def isolated_fraction_prediction_poisson(d: int) -> float:
    """First-order expected isolated fraction in PDG:
    ``∫₀^∞ e^{−a}(1−e^{−a})^d e^{−d(1−e^{−a})} da = ∫₀¹ u^d e^{−du} du``
    (see the module docstring for the live-in-edge derivation; the
    substitution ``u = 1−e^{−a}`` reduces it to the streaming integral)."""
    return isolated_fraction_prediction_streaming(d)


def isolated_forever_fraction_prediction_streaming(d: int) -> float:
    """Fraction isolated *for the rest of their life* in SDG:
    ``∫₀¹ a^d e^{−da} e^{−d(1−a)} da = e^{−d}/(d+1)``."""
    return math.exp(-d) / (d + 1.0)


def isolated_forever_fraction_prediction_poisson(d: int) -> float:
    """Fraction isolated forever in PDG: the isolated prediction with an
    extra no-future-in-edge factor ``E[e^{−d·Exp(1)}] = 1/(1+d)``."""
    return isolated_fraction_prediction_poisson(d) / (1.0 + d)
