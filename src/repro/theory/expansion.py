"""Expansion theory constants (Lemmas 3.6/4.11, Theorems 3.15/4.16).

The positive expansion statements all certify the same threshold
``ε = 0.1``; what varies is the minimum ``d`` and the size window:

=====================  =======  ==========================================
result                 min d    size window for S
=====================  =======  ==========================================
Lemma 3.6  (SDG)       20       ``n·e^{−d/10} ≤ |S| ≤ n/2``
Lemma 4.11 (PDG)       20       ``n·e^{−d/20} ≤ |S| ≤ |N_t|/2``
Theorem 3.15 (SDGR)    14       all ``1 ≤ |S| ≤ n/2``
Theorem 4.16 (PDGR)    35       all ``1 ≤ |S| ≤ |N_t|/2``
=====================  =======  ==========================================
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

#: The expansion constant certified by every positive result in the paper.
EXPANSION_THRESHOLD = 0.1


def large_set_window_streaming(n: int, d: int) -> tuple[int, int]:
    """Lemma 3.6's size window ``[n·e^{−d/10}, n/2]`` (integer-rounded)."""
    low = max(1, math.ceil(n * math.exp(-d / 10.0)))
    return low, n // 2


def large_set_window_poisson(n: int, d: int) -> tuple[int, int]:
    """Lemma 4.11's size window ``[n·e^{−d/20}, n/2]`` (integer-rounded)."""
    low = max(1, math.ceil(n * math.exp(-d / 20.0)))
    return low, n // 2


def min_degree_for_expansion(model: str) -> int:
    """Minimum ``d`` for which the paper proves its expansion result."""
    thresholds = {
        "sdg_large_sets": 20,
        "pdg_large_sets": 20,
        "sdgr": 14,
        "pdgr": 35,
        "sdgr_flooding": 21,
        "pdgr_flooding": 35,
        "static": 3,
    }
    try:
        return thresholds[model]
    except KeyError:
        raise ConfigurationError(
            f"unknown model {model!r}; choose one of {sorted(thresholds)}"
        ) from None
