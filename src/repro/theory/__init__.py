"""Closed-form bounds and predictions extracted from the paper's theorems.

Each function returns the quantity a theorem/lemma promises, so experiment
output can print a "paper" column next to the measured one.  Two kinds of
values coexist:

* **bounds** — the literal constants of the statements (often loose: the
  union bounds burn large factors);
* **predictions** — sharper first-order estimates derived from the same
  probabilistic structure (documented per function), which the simulations
  should track closely.  These are clearly named ``*_prediction``.
"""

from repro.theory.churn import (
    jump_probability_bounds,
    lifetime_horizon_rounds,
    size_concentration_bounds,
)
from repro.theory.expansion import (
    EXPANSION_THRESHOLD,
    large_set_window_poisson,
    large_set_window_streaming,
    min_degree_for_expansion,
)
from repro.theory.flooding import (
    informed_fraction_bound_poisson,
    informed_fraction_bound_streaming,
    stall_probability_bound,
    success_probability_poisson,
    success_probability_streaming,
)
from repro.theory.isolated import (
    isolated_forever_fraction_prediction_poisson,
    isolated_forever_fraction_prediction_streaming,
    isolated_fraction_lower_bound_poisson,
    isolated_fraction_lower_bound_streaming,
    isolated_fraction_prediction_poisson,
    isolated_fraction_prediction_streaming,
)
from repro.theory.onion import (
    infinite_product_success_probability,
    onion_growth_factor_poisson,
    onion_growth_factor_streaming,
)
from repro.theory.static import static_d_out_expander_min_d

__all__ = [
    "EXPANSION_THRESHOLD",
    "infinite_product_success_probability",
    "informed_fraction_bound_poisson",
    "informed_fraction_bound_streaming",
    "isolated_forever_fraction_prediction_poisson",
    "isolated_forever_fraction_prediction_streaming",
    "isolated_fraction_lower_bound_poisson",
    "isolated_fraction_lower_bound_streaming",
    "isolated_fraction_prediction_poisson",
    "isolated_fraction_prediction_streaming",
    "jump_probability_bounds",
    "large_set_window_poisson",
    "large_set_window_streaming",
    "lifetime_horizon_rounds",
    "min_degree_for_expansion",
    "onion_growth_factor_poisson",
    "onion_growth_factor_streaming",
    "size_concentration_bounds",
    "stall_probability_bound",
    "static_d_out_expander_min_d",
    "success_probability_poisson",
    "success_probability_streaming",
]
