"""Onion-skin process theory (Claims 3.10/3.11, Lemmas 3.9 and 7.8).

The constructive proof of the partial-flooding theorems builds alternating
young/old layers whose sizes grow geometrically:

* streaming (Claim 3.10): each phase multiplies the freshly informed layer
  by at least ``d/20``, each step succeeding w.p. ``1 − e^{−(layer)d/100}``;
* Poisson (Claims 7.5–7.7): growth factor ``d/48``, step failure
  ``e^{−(layer)d/576}`` (plus O(log n/n) removal noise).

Claim 3.11 bounds the whole process' success probability by the infinite
product ``∏_i (1 − e^{−a_i d/100})`` with ``a_i = (d/20)^i``, which is at
least ``1 − 4e^{−d/100}`` for ``d ≥ 200``.
"""

from __future__ import annotations

import math


def onion_growth_factor_streaming(d: int) -> float:
    """Claim 3.10's per-phase layer growth factor ``d/20``."""
    return d / 20.0


def onion_growth_factor_poisson(d: int) -> float:
    """Claim 7.6/7.7's per-phase layer growth factor ``d/48``."""
    return d / 48.0


def infinite_product_success_probability(
    d: int, growth_divisor: float = 20.0, failure_divisor: float = 100.0, terms: int = 64
) -> float:
    """Numerically evaluate ``∏_{i≥0} (1 − e^{−a_i · d/failure_divisor})``
    with ``a_i = (d/growth_divisor)^i`` (Claim 3.11's product ``c``).

    Requires ``d > growth_divisor`` for the product to converge to a
    positive constant; returns 0.0 when any factor is ≤ 0 numerically.
    """
    log_sum = 0.0
    for i in range(terms):
        a_i = (d / growth_divisor) ** i
        factor = 1.0 - math.exp(-a_i * d / failure_divisor)
        if factor <= 0.0:
            return 0.0
        log_sum += math.log(factor)
        if a_i * d / failure_divisor > 700:  # further factors are 1 − 0
            break
    return math.exp(log_sum)


def claim_311_lower_bound(d: int) -> float:
    """Claim 3.11's closed-form lower bound ``1 − 4 e^{−d/100}`` (d ≥ 200)."""
    return 1.0 - 4.0 * math.exp(-d / 100.0)


def phases_to_reach(n: int, d: int, target_fraction: float = 0.1,
                    growth_divisor: float = 20.0) -> int:
    """Number of phases for layers of growth ``d/growth_divisor`` to reach
    ``target_fraction · n`` nodes (the τ₁ = O(log n / log d) of Lemma 3.9)."""
    growth = d / growth_divisor
    if growth <= 1.0:
        raise ValueError(f"growth factor must exceed 1, got {growth}")
    return max(1, math.ceil(math.log(max(target_fraction * n, 1.0)) / math.log(growth)))
