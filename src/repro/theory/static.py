"""Static d-out graph theory (Lemma B.1).

The static graph in which each of ``n`` nodes picks ``d`` random neighbours
is a Θ(1)-expander w.h.p. for every ``d ≥ 3``.  The union bound in the
proof evaluates ``Σ_s C(n,s) · C(n−s, 0.1s) · (1.1 s / (n−1))^{ds}``; we
expose that sum so tests can check it is ≤ 1/n^{d−2}-sized for d ≥ 3.
"""

from __future__ import annotations

import math


def static_d_out_expander_min_d() -> int:
    """The minimum d for Lemma B.1's expander guarantee."""
    return 3


def nonexpansion_union_bound(n: int, d: int, ratio: float = 0.1) -> float:
    """Evaluate Lemma B.1's union bound numerically (in log space).

    Returns ``Σ_{s=1}^{n/2} exp(log C(n,s) + log C(n−s, ratio·s)
    + d·s·log(1.1 s/(n−1)))``, the probability bound that some set of size
    ≤ n/2 has expansion < *ratio*.
    """
    total = 0.0
    for s in range(1, n // 2 + 1):
        t = max(1, int(ratio * s))
        log_term = (
            _log_comb(n, s)
            + _log_comb(n - s, t)
            + d * s * math.log((s + t) / (n - 1))
        )
        if log_term < 700:  # avoid overflow; exp(700) is astronomically big anyway
            total += math.exp(log_term)
        else:
            return float("inf")
    return total


def _log_comb(n: int, k: int) -> float:
    if k < 0 or k > n:
        return float("-inf")
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
