"""Poisson-churn theory (Lemmas 4.4, 4.6, 4.7, 4.8).

* Lemma 4.4 — size concentration: for ``t ≥ 3n``,
  ``P(0.9 n ≤ |N_t| ≤ 1.1 n) ≥ 1 − 2 e^{−√n}``.
* Lemma 4.6 — jump chain: next event is a death w.p. ``Nµ/(Nµ+λ)``.
* Lemma 4.7 — for ``r ≥ n log n`` both jump probabilities lie in
  ``[0.47, 0.53]`` and a fixed node dies in the next round with
  probability in ``[1/(2.2n), 1/(1.8n)]``.
* Lemma 4.8 — for ``r ≥ 7 n log n``, w.p. ≥ 1 − 2/n^{2.1} every alive
  node was born within the last ``7 n log n`` rounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SizeConcentration:
    """Lemma 4.4's window and failure probability."""

    low: float
    high: float
    failure_probability: float
    min_time: float


def size_concentration_bounds(n: float) -> SizeConcentration:
    """Lemma 4.4 for expected size *n*."""
    return SizeConcentration(
        low=0.9 * n,
        high=1.1 * n,
        failure_probability=2.0 * math.exp(-math.sqrt(n)),
        min_time=3.0 * n,
    )


@dataclass(frozen=True)
class JumpProbabilityBounds:
    """Lemma 4.7's stationary jump-probability windows."""

    event_low: float = 0.47
    event_high: float = 0.53
    fixed_death_low_factor: float = 1.0 / 2.2  # probability ≥ factor / n
    fixed_death_high_factor: float = 1.0 / 1.8  # probability ≤ factor / n


def jump_probability_bounds() -> JumpProbabilityBounds:
    """Lemma 4.7's constants."""
    return JumpProbabilityBounds()


def lifetime_horizon_rounds(n: float) -> float:
    """Lemma 4.8's age horizon ``7 n log n`` (jump-chain rounds)."""
    return 7.0 * n * math.log(n)


def expected_size_at(t: float, n: float, lam: float = 1.0) -> float:
    """``E[|N_t|] = n (1 − e^{−λ t / n})`` from the birth/death dynamics.

    Exact for the M/M/∞-like churn started empty: arrivals rate λ, each
    alive independently for Exp(λ/n), so ``|N_t|`` is Poisson with this
    mean.  Converges to ``n`` (Lemma 4.4's centre) for ``t ≫ n``.
    """
    mu = lam / n
    return n * (1.0 - math.exp(-mu * t))
