"""Flooding theory (Theorems 3.7, 3.8, 3.16, 4.12, 4.13, 4.20).

Positive results:

* **partial flooding without regeneration** — within
  ``τ = O(log n / log d + d)`` rounds flooding informs a fraction at least
  ``1 − e^{−d/10}`` (streaming, Thm 3.8) or ``1 − e^{−d/20}`` (Poisson,
  Thm 4.13), with probability ≥ ``1 − 4e^{−d/100} − o(1)`` respectively
  ``1 − 2e^{−d/576} − o(1)``;
* **complete flooding with regeneration** — ``O(log n)`` w.h.p.
  (Thms 3.16/4.20).

Negative results (Thms 3.7/4.12): with probability ``Ω(e^{−d²})`` the
informed set never exceeds ``d+1`` nodes, and full completion takes
``Ω_d(n)`` because some isolated nodes must die out first.

The stall-probability *prediction* uses the event structure of the proof:
the source's ``d`` targets are all isolated-forever nodes and the source
receives no in-edges, giving ``≈ p_iso^d · e^{−d}`` with ``p_iso`` the
isolated-forever fraction.
"""

from __future__ import annotations

import math

from repro.theory.isolated import (
    isolated_forever_fraction_prediction_poisson,
    isolated_forever_fraction_prediction_streaming,
)


def informed_fraction_bound_streaming(d: int) -> float:
    """Theorem 3.8's informed-fraction guarantee ``1 − e^{−d/10}``."""
    return 1.0 - math.exp(-d / 10.0)


def informed_fraction_bound_poisson(d: int) -> float:
    """Theorem 4.13's informed-fraction guarantee ``1 − e^{−d/20}``."""
    return 1.0 - math.exp(-d / 20.0)


def success_probability_streaming(d: int) -> float:
    """Theorem 3.8's success probability ``1 − 4e^{−d/100}`` (sans o(1))."""
    return 1.0 - 4.0 * math.exp(-d / 100.0)


def success_probability_poisson(d: int) -> float:
    """Theorem 4.13's success probability ``1 − 2e^{−d/576}`` (sans o(1))."""
    return 1.0 - 2.0 * math.exp(-d / 576.0)


def stall_probability_bound(d: int, streaming: bool = True) -> float:
    """The Θ(e^{−d²})-type lower bound of Theorems 3.7/4.12.

    Literal constants from the proofs: ``(1/2)·(e^{−2d}/6)^d`` (streaming)
    and ``((1−e^{−1}) e^{−2d}/8)·(e^{−2d}/20)^d`` (Poisson).
    """
    if streaming:
        return 0.5 * (math.exp(-2.0 * d) / 6.0) ** d
    return (
        (1.0 - math.exp(-1.0)) * math.exp(-2.0 * d) / 8.0
    ) * (math.exp(-2.0 * d) / 20.0) ** d


def stall_probability_prediction(d: int, streaming: bool = True) -> float:
    """First-order stall-probability prediction ``p_iso^d · e^{−d}``.

    ``p_iso`` is the isolated-forever fraction prediction; the extra
    ``e^{−d}`` approximates the source itself receiving no in-edges over
    its lifetime.  The event measured by EXP-04 (``|I_t| ≤ d+1`` forever)
    is implied by the source's targets being isolated-forever nodes.
    """
    if streaming:
        p_iso = isolated_forever_fraction_prediction_streaming(d)
    else:
        p_iso = isolated_forever_fraction_prediction_poisson(d)
    return (p_iso**d) * math.exp(-d)


def partial_flooding_rounds(n: int, d: int, constant: float = 4.0) -> int:
    """A concrete ``τ = O(log n / log d + d)`` horizon for EXP-05.

    The paper's τ has unspecified constants; experiments use
    ``ceil(constant · (log n / log max(d,2) + d^{1/2}))`` — logarithmic in
    ``n`` for fixed ``d`` — and then *verify* the informed fraction, so
    the choice only has to be generous, not tight.  (The additive Θ(d)
    phase-2 term is only ``Θ(log d)`` growth rounds plus slack in the
    proof; √d keeps the horizon practical for the d-sweeps.)
    """
    tau = constant * (math.log(n) / math.log(max(d, 2)) + math.sqrt(d))
    return int(math.ceil(tau))


def complete_flooding_rounds(n: int, constant: float = 8.0) -> int:
    """A concrete ``O(log n)`` horizon for the regeneration models."""
    return int(math.ceil(constant * math.log(max(n, 2))))
