"""The per-cell measurement registry of the sweep plane.

A *measurement* is the work one sweep cell performs: build the cell's
scenario, run it, measure, and return a **JSON-serializable** value
(caching and cross-process transport both rely on that).  Measurements
are registered by name so a sweep stays declarative — a
:class:`~repro.sweep.spec.SweepSpec` names its measurement the same way
a scenario names its churn model — and so a pool worker can resolve the
function by importing the module recorded at registration time (the
registry travels by name, not by pickled closure).

Uniform signature::

    @measurement("my-metric")
    def my_metric(spec: ScenarioSpec, seed: SeedLike, **params) -> Any:
        sim = simulate(spec, seed=seed)
        return ...

``seed`` is the cell's named-stream child seed; measurements that also
seed an analysis probe pass the same child, exactly as the hand-written
experiment loops did.  This module hosts the generic measurements shared
by several experiments; experiment modules register their own bespoke
ones next to the runner that declares the sweep.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.analysis.expansion import (
    adversarial_expansion_upper_bound,
    large_set_expansion_probe,
)
from repro.analysis.isolated import isolated_fraction
from repro.errors import SweepError
from repro.scenario import ScenarioSpec, simulate
from repro.theory.expansion import (
    large_set_window_poisson,
    large_set_window_streaming,
)
from repro.util.rng import SeedLike

MeasurementFn = Callable[..., Any]


@dataclass(frozen=True)
class Measurement:
    """A registered measurement: the function plus its home module."""

    name: str
    fn: MeasurementFn
    module: str


_REGISTRY: dict[str, Measurement] = {}


def measurement(name: str) -> Callable[[MeasurementFn], MeasurementFn]:
    """Decorator registering a measurement function under *name*."""

    def decorator(fn: MeasurementFn) -> MeasurementFn:
        if name in _REGISTRY:
            raise SweepError(f"duplicate measurement name {name!r}")
        _REGISTRY[name] = Measurement(name=name, fn=fn, module=fn.__module__)
        return fn

    return decorator


def get_measurement(name: str, module: str | None = None) -> Measurement:
    """Look a measurement up, importing its home *module* if needed.

    Pool workers receive ``(name, module)`` in the cell payload: the
    module import replays the registration in the worker process, so
    experiment-local measurements work across process boundaries.
    """
    if name not in _REGISTRY and module:
        importlib.import_module(module)
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise SweepError(
            f"unknown measurement {name!r}; known: {known or '(none)'}"
        ) from None


def measurement_names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


# ----------------------------------------------------------------------
# generic measurements
# ----------------------------------------------------------------------


@measurement("network_summary")
def network_summary(spec: ScenarioSpec, seed: SeedLike) -> dict[str, Any]:
    """Run the scenario and report coarse topology facts (smoke metric)."""
    sim = simulate(spec, seed=seed)
    view = sim.csr_view()
    return {
        "alive": view.n,
        "edges": view.num_edges(),
        "time": sim.network.now,
    }


@measurement("isolated_fraction")
def isolated_fraction_measure(spec: ScenarioSpec, seed: SeedLike) -> float:
    """Fraction of isolated nodes at the horizon (EXP-01/12/17 cells)."""
    sim = simulate(spec, seed=seed)
    return float(isolated_fraction(sim.csr_view()))


def fraction_at_round(flood: Mapping[str, Any], round_index: int) -> float:
    """Informed fraction after *round_index* rounds of a ``flood_stats``
    value, clamped to the last recorded round — the serialized
    counterpart of :meth:`~repro.flooding.result.FloodingResult.fraction_at`."""
    fractions = flood["fractions"]
    return fractions[min(round_index, len(fractions) - 1)]


@measurement("flood_stats")
def flood_stats(spec: ScenarioSpec, seed: SeedLike) -> dict[str, Any]:
    """Run the spec's protocol after the horizon; report the trajectory.

    ``fractions[k]`` is the informed fraction after ``k`` rounds, so
    callers can read coverage at any horizon without re-running.
    """
    sim = simulate(spec, seed=seed)
    result = sim.flood()
    return {
        "completed": bool(result.completed),
        "completion_round": result.completion_round,
        "extinct": bool(result.extinct),
        "max_informed": int(result.max_informed),
        "final_informed": int(result.final_informed),
        "final_network_size": int(result.final_network_size),
        "fractions": [
            result.fraction_at(k) for k in range(len(result.informed_sizes))
        ],
    }


@measurement("window_expansion_probe")
def window_expansion_probe(
    spec: ScenarioSpec,
    seed: SeedLike,
    min_size: int | None = None,
    max_size: int | None = None,
) -> dict[str, Any]:
    """Adversarial probe of the paper's large-set window (EXP-02/12).

    The window defaults to the model's theory bound —
    ``[n·e^{−d/10}, n/2]`` streaming, ``e^{−d/20}`` Poisson — clipped to
    half the realized network size, exactly as the hand-written loops
    computed it.  Probes run on the zero-copy CSR view.
    """
    sim = simulate(spec, seed=seed)
    view = sim.csr_view()
    if min_size is None or max_size is None:
        window = (
            large_set_window_streaming
            if spec.churn == "streaming"
            else large_set_window_poisson
        )
        low, high = window(int(spec.n), spec.d)
        min_size = low if min_size is None else min_size
        max_size = high if max_size is None else max_size
    max_size = min(int(max_size), view.n // 2)
    probe = large_set_expansion_probe(
        view, min_size=int(min_size), max_size=max_size, seed=seed
    )
    return {
        "min_ratio": float(probe.min_ratio),
        "witness_size": int(probe.witness_size),
        "window_low": int(min_size),
        "window_high": int(max_size),
    }


@measurement("adversarial_expansion")
def adversarial_expansion(
    spec: ScenarioSpec, seed: SeedLike, **probe_params: Any
) -> dict[str, Any]:
    """Full-range adversarial expansion portfolio (EXP-12 regen cells)."""
    sim = simulate(spec, seed=seed)
    probe = adversarial_expansion_upper_bound(
        sim.csr_view(), seed=seed, **probe_params
    )
    return {
        "min_ratio": float(probe.min_ratio),
        "witness_size": int(probe.witness_size),
    }
