"""The sweep plane: declarative grids, parallel execution, cached results.

The paper's claims are statements over *ensembles* — many seeds × many
``(n, d, churn, policy)`` points — and this package is the layer every
such ensemble runs on:

* :class:`~repro.sweep.spec.SweepSpec` — a frozen, JSON-round-trippable
  grid over :class:`~repro.scenario.spec.ScenarioSpec` axes with named
  deterministic seed streams (one child per cell, no ``seed + k``
  arithmetic);
* :mod:`~repro.sweep.measurements` — the registry of per-cell
  measurement functions a sweep names declaratively;
* :class:`~repro.sweep.runner.SweepRunner` / :func:`run_sweep` —
  sequential or :class:`~concurrent.futures.ProcessPoolExecutor`
  execution with per-cell timing and failure isolation, returning
  results in canonical grid order so ``--jobs 4`` output is
  bit-identical to ``--jobs 1``;
* :class:`~repro.sweep.store.ResultStore` — a content-addressed on-disk
  cache (sha256 of scenario + measurement + seed identity + version)
  making sweeps resumable and warm re-runs free.

Quick start::

    from repro.scenario import ScenarioSpec
    from repro.sweep import SweepSpec, run_sweep

    sweep = SweepSpec(
        base=ScenarioSpec(churn="streaming", policy="none", n=400,
                          horizon=400),
        axes=[("d", (1, 2, 3, 4))],
        replicas=8,
        seed=0,
        stream="isolated-vs-d",
        measure="isolated_fraction",
    )
    groups = run_sweep(sweep, jobs=4).value_groups()  # one list per d
"""

from repro.sweep.artifact import (
    ARTIFACT_FORMAT,
    SweepResult,
    artifact_path,
    sweep_key,
)
from repro.sweep.measurements import (
    Measurement,
    fraction_at_round,
    get_measurement,
    measurement,
    measurement_names,
)
from repro.sweep.runner import (
    CellResult,
    CellTask,
    SweepOptions,
    SweepRunner,
    SweepRunResult,
    cell_tasks,
    current_sweep_options,
    execute_cell,
    run_sweep,
    use_sweep_options,
)
from repro.sweep.spec import SweepAxis, SweepCell, SweepSpec
from repro.sweep.store import (
    DEFAULT_CLAIM_TTL,
    ResultStore,
    cell_key,
    decode_nonfinite,
    default_host,
    encode_nonfinite,
)

__all__ = [
    "ARTIFACT_FORMAT",
    "CellResult",
    "CellTask",
    "DEFAULT_CLAIM_TTL",
    "Measurement",
    "ResultStore",
    "SweepAxis",
    "SweepCell",
    "SweepOptions",
    "SweepResult",
    "SweepRunResult",
    "SweepRunner",
    "SweepSpec",
    "artifact_path",
    "cell_key",
    "cell_tasks",
    "current_sweep_options",
    "decode_nonfinite",
    "default_host",
    "encode_nonfinite",
    "execute_cell",
    "fraction_at_round",
    "get_measurement",
    "measurement",
    "measurement_names",
    "run_sweep",
    "sweep_key",
    "use_sweep_options",
]
