"""Content-addressed result store: sweep cells cached by what they *are*.

A cell's identity is everything that determines its result: the realized
scenario (with the topology backend resolved), the measurement name and
parameters, the sweep's master seed / stream name / cell index (which
together pin the cell's RNG stream), and the library version.
:func:`cell_key` hashes that identity into a sha256 hex digest; the
store maps digests to small JSON files under a two-level fan-out
(``<root>/<k[:2]>/<k>.json``).

Because the key is content-addressed, the store needs no index, no
locking protocol beyond atomic file placement (write to a temp name,
fsync, then ``os.replace``), and no invalidation logic: change anything
that could change the result and you simply look up a different key.  A
corrupted entry — truncated JSON, wrong payload shape, a digest that
does not match its filename — is indistinguishable from a miss: the
cell re-executes and the entry is rewritten.

**Work claims.**  The store doubles as the coordination point for
multi-host sweeps (see :mod:`repro.api`): a worker *claims* a pending
cell by ``O_EXCL``-creating ``<k>.claim`` next to the result path —
creation succeeds for exactly one contender — and releases the claim by
writing the result.  A claim records its owner, a monotonic heartbeat
counter, and a TTL; a claim whose file has not been touched within its
TTL is *expired* and may be taken over by another worker.  Claims are a
work-distribution optimization, never a correctness mechanism: cells
are deterministic, so two workers racing the same cell write identical
payloads and :meth:`ResultStore.put` (atomic, last-writer-wins) remains
the only commit point — a worker crashing at any instant leaves the
store consistent.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import socket
import tempfile
import time
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro import __version__ as _REPRO_VERSION

#: Bump when the payload schema changes (old entries become misses).
STORE_FORMAT = 1

#: Default lifetime of a work claim.  Must exceed the worst-case runtime
#: of a single cell, or live claims get taken over and cells execute
#: twice (harmless for correctness — results are deterministic and the
#: commit is last-writer-wins — but wasteful).
DEFAULT_CLAIM_TTL = 300.0

#: Portable stand-ins for IEEE non-finite floats.  ``json.dumps`` would
#: otherwise emit the non-standard ``NaN``/``Infinity`` literals, which
#: most non-Python JSON implementations reject — keys and payloads
#: carrying them would not be portable across hosts, and ``NaN`` breaks
#: fresh == cached equality (``NaN != NaN``).
_NONFINITE_SENTINELS = {"NaN", "Infinity", "-Infinity"}


def default_host() -> str:
    """This process's identity in claims and result provenance."""
    return f"{socket.gethostname()}:{os.getpid()}"


def encode_nonfinite(value: Any) -> Any:
    """Recursively replace non-finite floats with string sentinels.

    ``nan`` → ``"NaN"``, ``inf`` → ``"Infinity"``, ``-inf`` →
    ``"-Infinity"``; containers are rebuilt, everything else passes
    through.  The encoding is not injective (a measurement returning the
    literal string ``"NaN"`` is indistinguishable from one returning the
    float), which is the price of staying inside standard JSON; use
    :func:`decode_nonfinite` to map sentinels back to floats.
    """
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "Infinity" if value > 0 else "-Infinity"
        return value
    if isinstance(value, Mapping):
        return {key: encode_nonfinite(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_nonfinite(item) for item in value]
    return value


def decode_nonfinite(value: Any) -> Any:
    """The inverse of :func:`encode_nonfinite` (sentinel strings → floats)."""
    if isinstance(value, str) and value in _NONFINITE_SENTINELS:
        return float(value)
    if isinstance(value, Mapping):
        return {key: decode_nonfinite(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [decode_nonfinite(item) for item in value]
    return value


def canonical_json(data: Any) -> str:
    """Deterministic, standard-conforming JSON text for hashing.

    Sorted keys, no whitespace, and non-finite floats sentinel-encoded
    (``allow_nan=False`` guarantees no ``NaN``/``Infinity`` literal can
    reach the output), so the same identity hashes to the same key on
    every host and under every JSON implementation.
    """
    return json.dumps(
        encode_nonfinite(data),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


def atomic_write_text(path: Path, text: str) -> Path:
    """Durably write *text* to *path*: temp file, fsync, rename.

    The rename is the commit point; the fsync (plus a best-effort
    directory fsync) makes the committed bytes survive a host crash,
    which matters now that store files double as cross-host commit
    records.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w", dir=path.parent, prefix=f".{path.stem[:8]}-", suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    try:  # directory entry durability — best-effort (not all FS allow it)
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        pass
    return path


def cell_key(
    scenario: Mapping[str, Any],
    measure: str,
    measure_params: Mapping[str, Any],
    seed: int,
    stream: str,
    index: int,
    backend: str,
) -> str:
    """The content address of one sweep cell result.

    *scenario* is the cell's realized ``ScenarioSpec.to_dict()`` and
    *backend* the resolved (never ``None``) topology backend name —
    batched-churn trajectories are backend-specific, so the resolved
    name is part of the identity even when the spec leaves it implicit.
    """
    identity = {
        "format": STORE_FORMAT,
        "version": _REPRO_VERSION,
        "scenario": dict(scenario),
        "measure": measure,
        "measure_params": dict(measure_params),
        "seed": int(seed),
        "stream": stream,
        "cell": int(index),
        "backend": backend,
    }
    return hashlib.sha256(canonical_json(identity).encode("utf-8")).hexdigest()


class ResultStore:
    """Filesystem-backed content-addressed store of cell results."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored payload for *key*, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None  # missing or corrupted — the caller re-executes
        if (
            not isinstance(payload, dict)
            or payload.get("key") != key
            or payload.get("format") != STORE_FORMAT
            or "value" not in payload
        ):
            return None
        return payload

    def put(self, key: str, value: Any, elapsed: float, **meta: Any) -> Path:
        """Atomically persist one cell result (last writer wins).

        The write is durable (fsync before rename): in a multi-host
        sweep the result file *is* the record that the cell's work —
        and its claim — is settled, so it must survive a crash of the
        writing host.
        """
        path = self.path_for(key)
        payload = {
            "format": STORE_FORMAT,
            "key": key,
            "value": value,
            "elapsed": float(elapsed),
            **meta,
        }
        return atomic_write_text(path, json.dumps(payload, sort_keys=True))

    def keys(self) -> Iterator[str]:
        for path in sorted(self.root.glob("??/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    # ------------------------------------------------------------------
    # work claims (the multi-host coordination protocol)
    # ------------------------------------------------------------------

    def claim_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.claim"

    def claim(
        self, key: str, owner: str, ttl: float = DEFAULT_CLAIM_TTL
    ) -> bool:
        """Try to claim cell *key* for *owner*; True when acquired.

        Acquisition is ``O_EXCL`` file creation — atomic on POSIX and
        NFS alike, so exactly one of N racing workers wins.  An existing
        claim blocks acquisition unless it has expired (no heartbeat
        within its recorded TTL), in which case it is removed and
        re-contended: the unlink+create pair is not atomic, so in the
        worst case two workers briefly both believe they own an expired
        cell — they then compute the same deterministic result and the
        later :meth:`put` harmlessly overwrites the earlier one.
        """
        path = self.claim_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "owner": owner,
            "pid": os.getpid(),
            "heartbeat": 0,
            "ttl": float(ttl),
        }
        for _ in range(2):  # second try only after clearing an expired claim
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            except FileExistsError:
                info = self.claim_info(key)
                if info is None:
                    continue  # claim vanished under us — re-contend
                if not info["expired"]:
                    return False
                try:
                    os.unlink(path)
                except OSError:
                    pass
                continue
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.flush()
                try:
                    os.fsync(handle.fileno())
                except OSError:
                    pass
            return True
        return False

    def claim_info(self, key: str) -> dict[str, Any] | None:
        """The current claim on *key* (with ``expired`` computed), or None.

        Expiry is judged from the claim file's mtime — refreshed by
        :meth:`heartbeat` — against the TTL the claimer recorded, so a
        reader needs no clock agreement with the claimer beyond the
        shared filesystem's.  An unreadable claim file (a claimer that
        crashed mid-create) still counts as a claim; it expires on the
        default TTL.
        """
        path = self.claim_path(key)
        try:
            stat = path.stat()
        except OSError:
            return None
        try:
            payload = json.loads(path.read_text())
            if not isinstance(payload, dict):
                payload = {}
        except (OSError, ValueError):
            payload = {}
        ttl = payload.get("ttl", DEFAULT_CLAIM_TTL)
        if not isinstance(ttl, (int, float)) or ttl <= 0:
            ttl = DEFAULT_CLAIM_TTL
        age = max(0.0, time.time() - stat.st_mtime)
        return {
            "owner": payload.get("owner"),
            "pid": payload.get("pid"),
            "heartbeat": payload.get("heartbeat", 0),
            "ttl": float(ttl),
            "age": age,
            "expired": age > ttl,
        }

    def heartbeat(self, key: str, owner: str) -> bool:
        """Refresh *owner*'s claim on *key* (bumps the heartbeat counter).

        Returns False — without touching anything — when the claim is
        gone or now owned by someone else (a takeover happened; the
        caller should treat the cell as lost and move on).
        """
        path = self.claim_path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return False
        if not isinstance(payload, dict) or payload.get("owner") != owner:
            return False
        payload["heartbeat"] = int(payload.get("heartbeat", 0)) + 1
        try:
            atomic_write_text(path, json.dumps(payload, sort_keys=True))
        except OSError:
            return False
        return True

    def release(self, key: str) -> None:
        """Drop the claim on *key* (idempotent; missing claims are fine)."""
        try:
            os.unlink(self.claim_path(key))
        except OSError:
            pass

    def claims(self) -> Iterator[str]:
        """Keys of every claim file currently present (live or expired)."""
        for path in sorted(self.root.glob("??/*.claim")):
            yield path.stem

    # ------------------------------------------------------------------
    # hygiene
    # ------------------------------------------------------------------

    def sweep_orphans(self, max_age: float = 3600.0) -> int:
        """Remove temp files abandoned by killed writers; returns count.

        Atomic writes stage through ``.{prefix}-*.tmp`` names in the
        fan-out directories; a writer killed between create and rename
        leaks one.  Orphans are invisible to :meth:`get`/:meth:`keys`
        (wrong suffix), so this is purely disk hygiene — only files
        older than *max_age* seconds go, never a write in flight.
        """
        removed = 0
        now = time.time()
        for path in self.root.glob("??/.*.tmp"):
            try:
                if now - path.stat().st_mtime > max_age:
                    path.unlink()
                    removed += 1
            except OSError:
                continue  # vanished or unreadable — someone else's problem
        return removed
