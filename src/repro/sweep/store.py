"""Content-addressed result store: sweep cells cached by what they *are*.

A cell's identity is everything that determines its result: the realized
scenario (with the topology backend resolved), the measurement name and
parameters, the sweep's master seed / stream name / cell index (which
together pin the cell's RNG stream), and the library version.
:func:`cell_key` hashes that identity into a sha256 hex digest; the
store maps digests to small JSON files under a two-level fan-out
(``<root>/<k[:2]>/<k>.json``).

Because the key is content-addressed, the store needs no index, no
locking protocol beyond atomic file placement (write to a temp name,
then ``os.replace``), and no invalidation logic: change anything that
could change the result and you simply look up a different key.  A
corrupted entry — truncated JSON, wrong payload shape, a digest that
does not match its filename — is indistinguishable from a miss: the
cell re-executes and the entry is rewritten.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro import __version__ as _REPRO_VERSION

#: Bump when the payload schema changes (old entries become misses).
STORE_FORMAT = 1


def canonical_json(data: Any) -> str:
    """Deterministic JSON text (sorted keys, no whitespace) for hashing."""
    return json.dumps(
        data, sort_keys=True, separators=(",", ":"), allow_nan=True
    )


def cell_key(
    scenario: Mapping[str, Any],
    measure: str,
    measure_params: Mapping[str, Any],
    seed: int,
    stream: str,
    index: int,
    backend: str,
) -> str:
    """The content address of one sweep cell result.

    *scenario* is the cell's realized ``ScenarioSpec.to_dict()`` and
    *backend* the resolved (never ``None``) topology backend name —
    batched-churn trajectories are backend-specific, so the resolved
    name is part of the identity even when the spec leaves it implicit.
    """
    identity = {
        "format": STORE_FORMAT,
        "version": _REPRO_VERSION,
        "scenario": dict(scenario),
        "measure": measure,
        "measure_params": dict(measure_params),
        "seed": int(seed),
        "stream": stream,
        "cell": int(index),
        "backend": backend,
    }
    return hashlib.sha256(canonical_json(identity).encode("utf-8")).hexdigest()


class ResultStore:
    """Filesystem-backed content-addressed store of cell results."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored payload for *key*, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None  # missing or corrupted — the caller re-executes
        if (
            not isinstance(payload, dict)
            or payload.get("key") != key
            or payload.get("format") != STORE_FORMAT
            or "value" not in payload
        ):
            return None
        return payload

    def put(self, key: str, value: Any, elapsed: float, **meta: Any) -> Path:
        """Atomically persist one cell result (last writer wins)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": STORE_FORMAT,
            "key": key,
            "value": value,
            "elapsed": float(elapsed),
            **meta,
        }
        handle = tempfile.NamedTemporaryFile(
            "w", dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return path

    def keys(self) -> Iterator[str]:
        for path in sorted(self.root.glob("??/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None
