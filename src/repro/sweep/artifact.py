"""Sweep-level artifacts: one durable record per completed grid.

Cell results live in the content-addressed :class:`~repro.sweep.store.
ResultStore`; this module adds the *sweep-level* unit above them:

* :func:`sweep_key` — the sha256 content address of a whole sweep
  (spec + library version + resolved topology backend), mirroring
  :func:`~repro.sweep.store.cell_key` one level up;
* :class:`SweepResult` — the aggregated artifact a reducer writes to
  ``<store>/sweeps/<key>.json`` once every cell has a result: the
  canonical-order values, the per-cell store keys, and (as provenance)
  per-cell elapsed times and claiming hosts.

**Determinism contract.**  The artifact splits into a *canonical core*
(format, version, key, backend, spec, cell keys, values — everything a
downstream consumer computes on) and *provenance* (wall-clock timings,
host names, the reducing host).  :meth:`SweepResult.core_bytes` is the
canonical serialization of the core, and :attr:`SweepResult.digest` its
sha256: a ``--jobs 1`` run, a 4-worker pool, two worker processes on a
shared store, and a warm resume all reduce to **byte-identical core
bytes** (and therefore equal digests).  Provenance can never be
bit-stable — wall clocks and host names differ by construction — so it
is carried alongside the core and excluded from the digest.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro import __version__ as _REPRO_VERSION
from repro.core.backend import default_backend_name
from repro.errors import SweepError
from repro.sweep.store import atomic_write_text, canonical_json

#: Bump when the artifact schema changes (old artifacts read as stale).
ARTIFACT_FORMAT = 1


def sweeps_dir(root: str | Path) -> Path:
    """The sweep-artifact directory of a store rooted at *root*."""
    return Path(root) / "sweeps"


def artifact_path(root: str | Path, key: str) -> Path:
    """Where the reduced artifact of sweep *key* lives under *root*."""
    return sweeps_dir(root) / f"{key}.json"


def submitted_spec_path(root: str | Path, key: str) -> Path:
    """Where a submitted sweep's spec document lives under *root*."""
    return sweeps_dir(root) / f"{key}.spec.json"


def resolve_backend(sweep: Any, backend: str | None = None) -> str:
    """The topology backend a sweep's cells will realize.

    Explicit *backend* wins, then the spec's own ``base.backend``, then
    the process default — the same resolution order the runner applies,
    so submitters and workers agree on every cell key.
    """
    return backend or sweep.base.backend or default_backend_name()


def sweep_key(sweep: Any, backend: str | None = None) -> str:
    """The content address of one sweep: sha256 over spec + version.

    Like :func:`~repro.sweep.store.cell_key`, the resolved backend is
    part of the identity (trajectories are backend-specific), and the
    library version fences artifacts across releases.
    """
    identity = {
        "format": ARTIFACT_FORMAT,
        "version": _REPRO_VERSION,
        "sweep": sweep.to_dict(),
        "backend": resolve_backend(sweep, backend),
    }
    return hashlib.sha256(canonical_json(identity).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SweepResult:
    """The reduced artifact of one completed sweep.

    Attributes:
        key: the sweep's content address (:func:`sweep_key`).
        sweep: the sweep spec as a plain dict (``SweepSpec.to_dict()``).
        backend: the resolved topology backend every cell ran on.
        cell_keys: per-cell store keys, in canonical grid order.
        values: per-cell measurement values, in canonical grid order.
        elapsed: per-cell execution seconds (provenance).
        hosts: per-cell claiming/executing host ids (provenance).
        reduced_by: host id of the reducer that wrote the artifact
            (provenance).
    """

    key: str
    sweep: dict[str, Any]
    backend: str
    cell_keys: tuple[str, ...]
    values: tuple[Any, ...]
    elapsed: tuple[float, ...] = ()
    hosts: tuple[str | None, ...] = ()
    reduced_by: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "cell_keys", tuple(self.cell_keys))
        object.__setattr__(self, "values", tuple(self.values))
        object.__setattr__(self, "elapsed", tuple(self.elapsed))
        object.__setattr__(self, "hosts", tuple(self.hosts))
        if len(self.cell_keys) != len(self.values):
            raise SweepError(
                f"artifact has {len(self.cell_keys)} cell keys but "
                f"{len(self.values)} values"
            )

    # ------------------------------------------------------------------
    # the deterministic core
    # ------------------------------------------------------------------

    def core_dict(self) -> dict[str, Any]:
        """The deterministic portion (everything but provenance)."""
        return {
            "format": ARTIFACT_FORMAT,
            "version": _REPRO_VERSION,
            "key": self.key,
            "backend": self.backend,
            "sweep": dict(self.sweep),
            "cell_keys": list(self.cell_keys),
            "values": list(self.values),
        }

    def core_bytes(self) -> bytes:
        """Canonical serialization of the core — the byte-identity unit."""
        return (canonical_json(self.core_dict()) + "\n").encode("utf-8")

    @property
    def digest(self) -> str:
        """sha256 of :meth:`core_bytes` (embedded in the artifact file)."""
        return hashlib.sha256(self.core_bytes()).hexdigest()

    def value_groups(self) -> list[list[Any]]:
        """Values grouped per grid point: ``groups[point][replica]``."""
        replicas = int(self.sweep.get("replicas", 1))
        values = list(self.values)
        return [
            values[start : start + replicas]
            for start in range(0, len(values), replicas)
        ]

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            **self.core_dict(),
            "digest": self.digest,
            "provenance": {
                "elapsed": list(self.elapsed),
                "hosts": list(self.hosts),
                "reduced_by": self.reduced_by,
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepResult":
        if data.get("format") != ARTIFACT_FORMAT:
            raise SweepError(
                f"unsupported sweep artifact format {data.get('format')!r} "
                f"(this version reads format {ARTIFACT_FORMAT})"
            )
        provenance = data.get("provenance") or {}
        result = cls(
            key=str(data["key"]),
            sweep=dict(data["sweep"]),
            backend=str(data["backend"]),
            cell_keys=tuple(data["cell_keys"]),
            values=tuple(data["values"]),
            elapsed=tuple(provenance.get("elapsed", ())),
            hosts=tuple(provenance.get("hosts", ())),
            reduced_by=provenance.get("reduced_by"),
        )
        recorded = data.get("digest")
        if recorded is not None and recorded != result.digest:
            raise SweepError(
                "sweep artifact digest mismatch: recorded "
                f"{recorded!r}, recomputed {result.digest!r} — the file "
                "was tampered with or truncated"
            )
        return result

    def write(self, root: str | Path) -> Path:
        """Atomically (and durably) write the artifact under *root*."""
        path = artifact_path(root, self.key)
        return atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, root: str | Path, key: str) -> "SweepResult | None":
        """Read the artifact of sweep *key*, or None when absent/stale.

        A version or backend drift (the recorded key no longer matches
        *key*'s identity) surfaces as None — like a store miss, the
        caller simply re-reduces.
        """
        path = artifact_path(root, key)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        try:
            result = cls.from_dict(data)
        except (SweepError, KeyError, TypeError):
            return None
        if result.key != key or data.get("version") != _REPRO_VERSION:
            return None
        return result
