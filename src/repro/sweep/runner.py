"""Sweep execution: sequential or process-pool, cached, order-canonical.

The runner turns a :class:`~repro.sweep.spec.SweepSpec` into a
:class:`SweepRunResult` whose cells appear in the spec's canonical grid
order regardless of how they were computed:

* **seeding** — every cell's RNG stream is a pure function of
  ``(sweep.seed, sweep.stream, cell index)``, so execution order cannot
  leak into results;
* **normalization** — every fresh value makes one JSON round trip before
  it is reported, so a value served from the content-addressed store is
  byte-for-byte the value a fresh run would have produced;
* **ordering** — results are assembled by cell index, not completion
  order.

Together these make ``jobs=4`` output bit-identical to ``jobs=1``, and a
resumed run bit-identical to a cold one.

**Workers.**  Parallel cells run on a
:class:`~concurrent.futures.ProcessPoolExecutor`.  The parent resolves
the topology backend once (spec override, else the process default) and
ships the name in every cell payload; the pool initializer also exports
it as ``REPRO_BACKEND`` so network builders in the worker resolve the
identical backend even under a ``spawn`` start method.  A cell that
raises is *isolated*: its traceback is captured on the cell result, the
remaining cells complete, and the failure surfaces — naming the cell —
when the caller reads :meth:`SweepRunResult.values`.

**Ambient options.**  ``--jobs/--store/--resume`` travel from the CLI to
the experiment runners through :func:`use_sweep_options`, mirroring how
``use_backend`` threads the topology backend, so experiment signatures
stay ``run(quick, seed)``.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Iterator

from repro.core.backend import default_backend_name, use_backend
from repro.errors import SweepError
from repro.scenario.spec import ScenarioSpec
from repro.sweep.measurements import get_measurement
from repro.sweep.spec import SweepCell, SweepSpec
from repro.sweep.store import (
    ResultStore,
    cell_key,
    default_host,
    encode_nonfinite,
)
from repro.util.rng import derive_seed


@dataclass(frozen=True)
class SweepOptions:
    """Ambient execution options (the CLI's ``--jobs/--store/--resume``)."""

    jobs: int = 1
    store: Path | None = None
    resume: bool = False

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise SweepError(f"jobs must be >= 1, got {self.jobs}")
        if self.resume and self.store is None:
            raise SweepError("resume needs a result store (pass store=...)")


_OPTIONS_STACK: list[SweepOptions] = [SweepOptions()]


def current_sweep_options() -> SweepOptions:
    """The innermost active :class:`SweepOptions`."""
    return _OPTIONS_STACK[-1]


@contextmanager
def use_sweep_options(
    jobs: int | None = None,
    store: str | Path | None = None,
    resume: bool | None = None,
) -> Iterator[SweepOptions]:
    """Override the ambient sweep options within a ``with`` block.

    ``None`` arguments inherit the surrounding scope, so nested scopes
    compose (e.g. an experiment pinning ``jobs=1`` for a tiny sweep
    inside a CLI-level ``--jobs 8`` session).
    """
    base = current_sweep_options()
    merged = SweepOptions(
        jobs=base.jobs if jobs is None else int(jobs),
        store=base.store if store is None else Path(store),
        resume=base.resume if resume is None else bool(resume),
    )
    _OPTIONS_STACK.append(merged)
    try:
        yield merged
    finally:
        _OPTIONS_STACK.pop()


# ----------------------------------------------------------------------
# cell execution (worker side)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CellTask:
    """Everything a worker needs to run one cell (plain picklable data)."""

    index: int
    spec_dict: dict[str, Any]
    backend: str
    seed: int
    stream: str
    measure: str
    measure_module: str
    measure_params: dict[str, Any]
    key: str | None = None


def cell_tasks(
    sweep: SweepSpec,
    backend: str,
    keyed: bool = True,
    measure_module: str | None = None,
) -> list[CellTask]:
    """The sweep's cells as self-contained tasks, in canonical order.

    This is the single source of cell identity shared by every executor
    — the in-process runner, pool workers, and multi-host fleet workers
    (:mod:`repro.api`) all build the same tasks, so they compute the
    same store keys and the same results.  *keyed* controls whether
    store keys are computed (uncached runs skip the hashing);
    *measure_module* overrides the registry lookup for workers that
    received the module name out-of-band (e.g. from a submitted sweep
    document) without the measurement registered locally.
    """
    if measure_module is None:
        measure_module = get_measurement(sweep.measure).module
    tasks: list[CellTask] = []
    for cell in sweep.cells():
        spec_dict = cell.spec.to_dict()
        key = None
        if keyed:
            key = cell_key(
                scenario=spec_dict,
                measure=sweep.measure,
                measure_params=sweep.measure_params,
                seed=int(sweep.seed),
                stream=sweep.stream,
                index=cell.index,
                backend=backend,
            )
        tasks.append(
            CellTask(
                index=cell.index,
                spec_dict=spec_dict,
                backend=backend,
                seed=int(sweep.seed),
                stream=sweep.stream,
                measure=sweep.measure,
                measure_module=measure_module,
                measure_params=dict(sweep.measure_params),
                key=key,
            )
        )
    return tasks


def _normalize_value(value: Any) -> Any:
    """Force the value through JSON so fresh == cached, byte for byte.

    Non-finite floats are sentinel-encoded first (``nan`` → ``"NaN"``,
    see :func:`repro.sweep.store.encode_nonfinite`): the serialized
    form stays standard JSON on every implementation, and equality
    between a fresh and a cached value holds even for results that
    would otherwise carry ``NaN`` (which never compares equal).
    """
    try:
        return json.loads(
            json.dumps(encode_nonfinite(value), allow_nan=False)
        )
    except (TypeError, ValueError) as error:
        raise SweepError(
            f"measurement returned a non-JSON-serializable value: {error}"
        ) from error


def execute_cell(task: CellTask) -> tuple[int, Any, str | None, float]:
    """Run one cell; never raises (failures return a traceback string)."""
    start = time.perf_counter()
    try:
        spec = ScenarioSpec.from_dict(task.spec_dict)
        measure = get_measurement(task.measure, task.measure_module)
        seed = derive_seed(task.seed, task.stream, task.index)
        with use_backend(task.backend):
            value = measure.fn(spec, seed, **task.measure_params)
        value = _normalize_value(value)
    except Exception:
        return task.index, None, traceback.format_exc(), (
            time.perf_counter() - start
        )
    return task.index, value, None, time.perf_counter() - start


def _worker_init(backend: str) -> None:
    """Pool initializer: pin the topology backend in the worker process."""
    os.environ["REPRO_BACKEND"] = backend


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CellResult:
    """Outcome of one cell, in canonical grid position."""

    cell: SweepCell
    value: Any
    error: str | None
    elapsed: float
    cached: bool

    @property
    def index(self) -> int:
        return self.cell.index

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class SweepRunResult:
    """All cell results of one sweep run, in canonical grid order."""

    spec: SweepSpec
    cells: tuple[CellResult, ...]
    backend: str
    jobs: int
    elapsed: float

    @property
    def executed(self) -> int:
        return sum(1 for c in self.cells if not c.cached)

    @property
    def from_cache(self) -> int:
        return sum(1 for c in self.cells if c.cached)

    @property
    def failures(self) -> tuple[CellResult, ...]:
        return tuple(c for c in self.cells if not c.ok)

    def raise_if_failed(self) -> None:
        """Surface the first failing cell (its scenario and traceback)."""
        for result in self.cells:
            if not result.ok:
                raise SweepError(
                    f"sweep cell {result.index} "
                    f"(point {result.cell.point}, replica "
                    f"{result.cell.replica}, overrides "
                    f"{dict(result.cell.overrides)!r}) failed:\n{result.error}"
                )

    def values(self) -> list[Any]:
        """Cell values in canonical order (raises on any failed cell)."""
        self.raise_if_failed()
        return [result.value for result in self.cells]

    def value_groups(self) -> list[list[Any]]:
        """Values grouped per grid point: ``groups[point][replica]``."""
        values = self.values()
        replicas = self.spec.replicas
        return [
            values[start : start + replicas]
            for start in range(0, len(values), replicas)
        ]

    def point_overrides(self) -> list[dict[str, Any]]:
        """The raw axis assignments of every grid point, in order."""
        return [dict(overrides) for overrides, _ in self.spec.points()]


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------


class SweepRunner:
    """Executes sweeps under fixed options (jobs, store, resume).

    Args:
        jobs: worker processes (1 = in-process sequential execution).
        store: directory of the content-addressed result store, or None
            to run uncached.
        resume: serve cells from the store when their key hits (writes
            happen whenever a store is configured; *reads* only under
            resume, so a store can be refreshed by re-running without
            ``--resume``).
    """

    def __init__(
        self,
        jobs: int = 1,
        store: str | Path | None = None,
        resume: bool = False,
    ) -> None:
        self.options = SweepOptions(
            jobs=int(jobs),
            store=None if store is None else Path(store),
            resume=bool(resume),
        )

    def run(self, sweep: SweepSpec) -> SweepRunResult:
        start = time.perf_counter()
        backend = sweep.base.backend or default_backend_name()
        store = (
            None
            if self.options.store is None
            else ResultStore(self.options.store)
        )
        cells = list(sweep.cells())
        tasks = cell_tasks(sweep, backend, keyed=store is not None)

        outcomes: dict[int, tuple[Any, str | None, float, bool]] = {}
        pending: list[CellTask] = []
        for task in tasks:
            payload = (
                store.get(task.key)
                if (store is not None and self.options.resume)
                else None
            )
            if payload is not None:
                outcomes[task.index] = (
                    payload["value"],
                    None,
                    float(payload.get("elapsed", 0.0)),
                    True,
                )
            else:
                pending.append(task)

        by_index = {task.index: task for task in pending}

        def record(index: int, value: Any, error: str | None, elapsed: float) -> None:
            # Store writes happen per cell, as results arrive — an
            # interrupted sweep keeps everything it finished, which is
            # what makes --resume worth having on long runs.
            outcomes[index] = (value, error, elapsed, False)
            task = by_index[index]
            if store is not None and error is None:
                store.put(
                    task.key,
                    value,
                    elapsed,
                    scenario=task.spec_dict,
                    measure=task.measure,
                    measure_params=task.measure_params,
                    seed=task.seed,
                    stream=task.stream,
                    cell=task.index,
                    backend=task.backend,
                    host=default_host(),
                )

        if pending:
            if self.options.jobs > 1:
                with ProcessPoolExecutor(
                    max_workers=self.options.jobs,
                    initializer=_worker_init,
                    initargs=(backend,),
                ) as pool:
                    futures = {
                        pool.submit(execute_cell, task): task
                        for task in pending
                    }
                    for future in as_completed(futures):
                        task = futures[future]
                        try:
                            record(*future.result())
                        except Exception as exc:
                            # _execute_cell never raises, so this is a
                            # worker that died outright (OOM kill,
                            # segfault → BrokenProcessPool on every
                            # outstanding future).  Isolate it like any
                            # other cell failure: completed cells are
                            # already recorded and stored.
                            record(
                                task.index,
                                None,
                                "worker process died before returning a "
                                f"result: {exc!r}",
                                0.0,
                            )
            else:
                for task in pending:
                    record(*execute_cell(task))

        results = tuple(
            CellResult(
                cell=cell,
                value=outcomes[cell.index][0],
                error=outcomes[cell.index][1],
                elapsed=outcomes[cell.index][2],
                cached=outcomes[cell.index][3],
            )
            for cell in cells
        )
        return SweepRunResult(
            spec=sweep,
            cells=results,
            backend=backend,
            jobs=self.options.jobs,
            elapsed=time.perf_counter() - start,
        )


def run_sweep(
    sweep: SweepSpec,
    jobs: int | None = None,
    store: str | Path | None = None,
    resume: bool | None = None,
) -> SweepRunResult:
    """Run *sweep* under the ambient options, with optional overrides.

    The workhorse of the ported experiments: a bare ``run_sweep(spec)``
    inside an experiment picks up whatever ``--jobs/--store/--resume``
    the CLI (or an enclosing :func:`use_sweep_options`) configured.
    """
    ambient = current_sweep_options()
    options = replace(
        ambient,
        **{
            key: value
            for key, value in {
                "jobs": None if jobs is None else int(jobs),
                "store": None if store is None else Path(store),
                "resume": None if resume is None else bool(resume),
            }.items()
            if value is not None
        },
    )
    runner = SweepRunner(
        jobs=options.jobs, store=options.store, resume=options.resume
    )
    return runner.run(sweep)


# Re-exported for forward compatibility with callers that only need the
# dataclasses.
__all__ = [
    "CellResult",
    "CellTask",
    "SweepOptions",
    "SweepRunResult",
    "SweepRunner",
    "cell_tasks",
    "current_sweep_options",
    "execute_cell",
    "run_sweep",
    "use_sweep_options",
]
