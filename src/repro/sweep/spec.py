"""Declarative sweep grids: one frozen value object per parameter study.

A :class:`SweepSpec` is the ensemble counterpart of
:class:`~repro.scenario.spec.ScenarioSpec`: where a scenario names *one*
churn × policy × protocol × scale instance, a sweep names a whole grid of
them — a base scenario, an ordered list of :class:`SweepAxis` entries
(each a scenario field, a dotted parameter path like
``"policy_params.c"``, or the special ``"scenario"`` axis whose values
are multi-field override mappings), and a number of seed *replicas* per
grid point.  Like scenarios, sweeps are frozen, validated at
construction, and JSON-round-trippable, so a parameter study can be
declared in Python or shipped as a document.

**Canonical cell order.**  Grid points enumerate the Cartesian product
of the axes in declaration order with the *last axis varying fastest*;
each point expands into ``replicas`` consecutive cells.  Cell ``i`` of a
sweep is therefore a pure function of the spec — every runner, whatever
its parallelism, reports results in this order, which is what makes a
``--jobs 4`` run bit-identical to ``--jobs 1``.

**Seeding.**  Cells are seeded from the sweep's *named stream*
(:func:`repro.util.rng.derive_seed`): cell ``i`` gets child ``i`` of
``stream_root(seed, stream)``.  The base scenario's own ``seed`` field
is ignored (cells would otherwise all collide on it), and a parallel
worker can re-derive any single cell's seed in O(1) without
materializing the grid.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.scenario.spec import ScenarioSpec, _SPEC_FIELDS
from repro.util.rng import derive_seed

#: ScenarioSpec fields holding nested parameter mappings (dotted axes).
_PARAM_FIELDS = ("policy_params", "churn_params", "protocol_params")

#: The special axis name whose values are multi-field override mappings.
SCENARIO_AXIS = "scenario"

#: Spec fields an axis may not target (cells are seeded by the stream).
_RESERVED_FIELDS = ("seed",)


def _check_axis_field(field_name: str) -> None:
    if field_name == SCENARIO_AXIS:
        return
    head, _, leaf = field_name.partition(".")
    if leaf:
        if head not in _PARAM_FIELDS:
            raise ConfigurationError(
                f"dotted sweep axis {field_name!r} must start with one of "
                f"{list(_PARAM_FIELDS)}"
            )
        return
    if field_name in _RESERVED_FIELDS:
        raise ConfigurationError(
            f"sweep axis may not target {field_name!r}: cells are seeded "
            "from the sweep's named stream"
        )
    if field_name not in _SPEC_FIELDS:
        raise ConfigurationError(
            f"unknown sweep axis field {field_name!r}; known scenario "
            f"fields: {list(_SPEC_FIELDS)}, dotted parameter paths "
            f"({'/'.join(_PARAM_FIELDS)}), or {SCENARIO_AXIS!r}"
        )


@dataclass(frozen=True)
class SweepAxis:
    """One swept dimension: a field name and its ordered values.

    Attributes:
        field: a :class:`ScenarioSpec` field name (``"d"``, ``"n"``,
            ``"policy"``, ...), a dotted path into one of the parameter
            mappings (``"churn_params.lam"``), or ``"scenario"`` —
            whose values are mappings of several field overrides applied
            together (the *zipped* axis, for configurations like
            policy + policy_params that must move in lockstep).
        values: the ordered, non-empty tuple of values the axis takes.
    """

    field: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        _check_axis_field(self.field)
        values = tuple(self.values)
        if not values:
            raise ConfigurationError(
                f"sweep axis {self.field!r} needs at least one value"
            )
        if self.field == SCENARIO_AXIS:
            for value in values:
                if not isinstance(value, Mapping):
                    raise ConfigurationError(
                        f"values of the {SCENARIO_AXIS!r} axis must be "
                        f"mappings of scenario overrides, got {value!r}"
                    )
                for key in value:
                    if key == SCENARIO_AXIS:
                        raise ConfigurationError(
                            "scenario-axis overrides cannot nest "
                            f"{SCENARIO_AXIS!r}"
                        )
                    _check_axis_field(str(key))
            values = tuple(dict(value) for value in values)
        object.__setattr__(self, "values", values)

    def to_dict(self) -> dict[str, Any]:
        return {"field": self.field, "values": list(self.values)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepAxis":
        unknown = sorted(set(data) - {"field", "values"})
        if unknown:
            raise ConfigurationError(
                f"unknown sweep axis field(s) {unknown}; known: "
                "['field', 'values']"
            )
        return cls(field=data["field"], values=tuple(data["values"]))


@dataclass(frozen=True)
class SweepCell:
    """One realized grid cell: a scenario plus its position and seed key.

    ``overrides`` records the raw axis values that produced the cell
    (axis field → value), so runners can label rows without re-deriving
    the grid arithmetic.
    """

    index: int
    point: int
    replica: int
    spec: ScenarioSpec
    overrides: tuple[tuple[str, Any], ...]

    def seed(self, sweep: "SweepSpec") -> np.random.SeedSequence:
        return sweep.cell_seed(self.index)


def _merge_override(
    base: ScenarioSpec, changes: dict[str, Any], field_name: str, value: Any
) -> None:
    """Fold one axis assignment into the accumulating ``with_`` changes."""
    head, _, leaf = field_name.partition(".")
    if leaf:
        params = dict(changes.get(head, getattr(base, head)))
        params[leaf] = value
        changes[head] = params
        return
    if field_name in _PARAM_FIELDS:
        # Whole-mapping override: replace, do not merge — axes that want
        # merging target dotted leaves instead.
        changes[field_name] = dict(value)
        return
    changes[field_name] = value


@dataclass(frozen=True)
class SweepSpec:
    """A frozen grid of scenarios: base × axes × seed replicas.

    Attributes:
        base: the scenario every cell starts from (its ``seed`` field is
            ignored; cells draw seeds from the named stream).
        axes: the swept dimensions, outermost first.
        replicas: independent seed replicas per grid point.
        seed: master seed of the sweep's seed stream.
        stream: the stream name (see :func:`repro.util.rng.derive_seeds`)
            — distinct sweeps within one experiment name distinct
            streams, replacing the old ``seed + k`` offsetting.
        measure: registered measurement name executed per cell (see
            :mod:`repro.sweep.measurements`).
        measure_params: extra keyword parameters for the measurement.
    """

    base: ScenarioSpec
    axes: tuple[SweepAxis, ...] = ()
    replicas: int = 1
    seed: int = 0
    stream: str = "sweep"
    measure: str = "network_summary"
    measure_params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.base, ScenarioSpec):
            raise ConfigurationError(
                f"sweep base must be a ScenarioSpec, got {self.base!r}"
            )
        axes = tuple(
            axis if isinstance(axis, SweepAxis) else SweepAxis(*axis)
            for axis in self.axes
        )
        object.__setattr__(self, "axes", axes)
        if self.replicas < 1:
            raise ConfigurationError(
                f"sweep needs replicas >= 1, got {self.replicas}"
            )
        if not isinstance(self.seed, (int, np.integer)) or isinstance(
            self.seed, bool
        ):
            raise ConfigurationError(
                f"sweep seed must be an integer, got {self.seed!r}"
            )
        if not self.stream or not isinstance(self.stream, str):
            raise ConfigurationError(
                f"sweep stream must be a non-empty string, got {self.stream!r}"
            )
        if not self.measure or not isinstance(self.measure, str):
            raise ConfigurationError(
                f"sweep measure must be a non-empty string, got {self.measure!r}"
            )
        params = self.measure_params
        if params is None:
            params = {}
        elif not isinstance(params, Mapping):
            raise ConfigurationError(
                f"measure_params must be an object/mapping, got {params!r}"
            )
        object.__setattr__(self, "measure_params", dict(params))
        # Materialize every point's spec once: a typo'd override fails at
        # declaration time, not mid-sweep inside a worker.
        for _ in self.points():
            pass

    # ------------------------------------------------------------------
    # grid enumeration
    # ------------------------------------------------------------------

    @property
    def num_points(self) -> int:
        count = 1
        for axis in self.axes:
            count *= len(axis.values)
        return count

    @property
    def num_cells(self) -> int:
        return self.num_points * self.replicas

    def points(self) -> Iterator[tuple[tuple[tuple[str, Any], ...], ScenarioSpec]]:
        """Yield ``(overrides, spec)`` per grid point, in canonical order."""
        for combo in itertools.product(*(axis.values for axis in self.axes)):
            overrides = tuple(
                (axis.field, value) for axis, value in zip(self.axes, combo)
            )
            yield overrides, self.point_spec(overrides)

    def point_spec(
        self, overrides: tuple[tuple[str, Any], ...]
    ) -> ScenarioSpec:
        """The scenario of one grid point (overrides applied in order)."""
        changes: dict[str, Any] = {"seed": None}
        for field_name, value in overrides:
            if field_name == SCENARIO_AXIS:
                for key, sub_value in value.items():
                    _merge_override(self.base, changes, str(key), sub_value)
            else:
                _merge_override(self.base, changes, field_name, value)
        return self.base.with_(**changes)

    def cells(self) -> Iterator[SweepCell]:
        """Every cell of the grid, in canonical order."""
        index = 0
        for point, (overrides, spec) in enumerate(self.points()):
            for replica in range(self.replicas):
                yield SweepCell(
                    index=index,
                    point=point,
                    replica=replica,
                    spec=spec,
                    overrides=overrides,
                )
                index += 1

    def cell(self, index: int) -> SweepCell:
        """Cell *index* (canonical order)."""
        if not 0 <= index < self.num_cells:
            raise ConfigurationError(
                f"cell index {index} out of range [0, {self.num_cells})"
            )
        for cell in self.cells():
            if cell.index == index:
                return cell
        raise AssertionError("unreachable")

    def cell_seed(self, index: int) -> np.random.SeedSequence:
        """The named-stream seed of cell *index* (O(1), worker-safe)."""
        return derive_seed(int(self.seed), self.stream, index)

    def sweep_key(self, backend: str | None = None) -> str:
        """The sweep's content address (sha256 over spec + version).

        *backend* resolves exactly as at run time (argument, else the
        base scenario's backend, else the process default) and is part
        of the identity — see :func:`repro.sweep.artifact.sweep_key`.
        """
        from repro.sweep.artifact import sweep_key

        return sweep_key(self, backend)

    # ------------------------------------------------------------------
    # JSON / dict round trip
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "base": self.base.to_dict(),
            "axes": [axis.to_dict() for axis in self.axes],
            "replicas": self.replicas,
            "seed": int(self.seed),
            "stream": self.stream,
            "measure": self.measure,
            "measure_params": dict(self.measure_params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        known = (
            "base",
            "axes",
            "replicas",
            "seed",
            "stream",
            "measure",
            "measure_params",
        )
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise ConfigurationError(
                f"unknown sweep field(s) {unknown}; known: {list(known)}"
            )
        if "base" not in data:
            raise ConfigurationError("a sweep document needs a 'base' scenario")
        axes = tuple(
            SweepAxis.from_dict(axis) for axis in data.get("axes", [])
        )
        return cls(
            base=ScenarioSpec.from_dict(data["base"]),
            axes=axes,
            replicas=int(data.get("replicas", 1)),
            seed=int(data.get("seed", 0)),
            stream=str(data.get("stream", "sweep")),
            measure=str(data.get("measure", "network_summary")),
            measure_params=dict(data.get("measure_params", {}) or {}),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ConfigurationError("a sweep JSON document must be an object")
        return cls.from_dict(data)
