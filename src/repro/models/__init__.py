"""The four dynamic-graph models of the paper plus static baselines.

===========  ===================  ==================  =====================
name         churn                edge dynamics       paper definition
===========  ===================  ==================  =====================
``SDG``      streaming            no regeneration     Definition 3.4
``SDGR``     streaming            regeneration        Definition 3.13
``PDG``      Poisson              no regeneration     Definition 4.9
``PDGR``     Poisson              regeneration        Definition 4.14
===========  ===================  ==================  =====================

Beyond the paper, :class:`~repro.models.threshold.ThresholdStreamingNetwork`
(``TSDG``) couples the streaming cadence to *degree-threshold* departures
(Angileri et al. 2025, arXiv:2507.23533): a node leaves when its
connectivity — not its age — falls below the threshold.
"""

from repro.models.adversarial import AdversarialStreamingNetwork
from repro.models.base import DynamicNetwork, RoundReport
from repro.models.general import GDG, GDGR, GeneralChurnNetwork
from repro.models.poisson import PDG, PDGR, PoissonNetwork
from repro.models.static import (
    erdos_renyi_snapshot,
    random_regular_snapshot,
    static_d_out_snapshot,
)
from repro.models.streaming import SDG, SDGR, StreamingNetwork
from repro.models.threshold import TSDG, ThresholdStreamingNetwork
from repro.models.trace import TraceNetwork

__all__ = [
    "GDG",
    "GDGR",
    "PDG",
    "PDGR",
    "SDG",
    "SDGR",
    "TSDG",
    "AdversarialStreamingNetwork",
    "DynamicNetwork",
    "GeneralChurnNetwork",
    "PoissonNetwork",
    "RoundReport",
    "StreamingNetwork",
    "ThresholdStreamingNetwork",
    "TraceNetwork",
    "erdos_renyi_snapshot",
    "random_regular_snapshot",
    "static_d_out_snapshot",
]
