"""The four dynamic-graph models of the paper plus static baselines.

===========  ===================  ==================  =====================
name         churn                edge dynamics       paper definition
===========  ===================  ==================  =====================
``SDG``      streaming            no regeneration     Definition 3.4
``SDGR``     streaming            regeneration        Definition 3.13
``PDG``      Poisson              no regeneration     Definition 4.9
``PDGR``     Poisson              regeneration        Definition 4.14
===========  ===================  ==================  =====================
"""

from repro.models.adversarial import AdversarialStreamingNetwork
from repro.models.base import DynamicNetwork, RoundReport
from repro.models.general import GDG, GDGR, GeneralChurnNetwork
from repro.models.poisson import PDG, PDGR, PoissonNetwork
from repro.models.static import (
    erdos_renyi_snapshot,
    random_regular_snapshot,
    static_d_out_snapshot,
)
from repro.models.streaming import SDG, SDGR, StreamingNetwork

__all__ = [
    "GDG",
    "GDGR",
    "PDG",
    "PDGR",
    "SDG",
    "SDGR",
    "AdversarialStreamingNetwork",
    "DynamicNetwork",
    "GeneralChurnNetwork",
    "PoissonNetwork",
    "RoundReport",
    "StreamingNetwork",
    "erdos_renyi_snapshot",
    "random_regular_snapshot",
    "static_d_out_snapshot",
]
