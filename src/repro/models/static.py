"""Static random-graph baselines.

The paper's Appendix B (Lemma B.1) uses the *static d-out graph* — every
node independently picks ``d`` uniform neighbours, edges are undirected —
as the reference point: it is a Θ(1)-expander w.h.p. for every ``d ≥ 3``,
whereas the SDG dynamic model at the same ``d`` has a linear fraction of
isolated nodes.  Erdős–Rényi and random-regular graphs are provided for
additional comparisons.
"""

from __future__ import annotations

import networkx as nx

from repro.core.backend import create_backend
from repro.core.snapshot import Snapshot
from repro.errors import ConfigurationError
from repro.util.rng import SeedLike, make_rng


def static_d_out_snapshot(n: int, d: int, seed: SeedLike = None) -> Snapshot:
    """The static d-out random graph of Lemma B.1 as a :class:`Snapshot`.

    All ``n`` nodes exist up front (birth time 0); each issues ``d``
    independent uniform requests among the other ``n − 1`` nodes.
    """
    if n < 2:
        raise ConfigurationError(f"need n >= 2, got {n}")
    if d < 1:
        raise ConfigurationError(f"need d >= 1, got {d}")
    rng = make_rng(seed)
    state = create_backend()
    for _ in range(n):
        state.add_node(state.allocate_id(), birth_time=0.0, num_slots=d)
    for u in range(n):
        for slot_index, target in enumerate(state.sample_targets(rng, d, exclude=u)):
            state.assign_slot(u, slot_index, target)
    return state.snapshot(time=0.0)


def erdos_renyi_snapshot(n: int, p: float, seed: SeedLike = None) -> Snapshot:
    """G(n, p) as a :class:`Snapshot` (comparison baseline)."""
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0, 1], got {p}")
    rng = make_rng(seed)
    graph = nx.fast_gnp_random_graph(n, p, seed=int(rng.integers(0, 2**31 - 1)))
    return _snapshot_from_networkx(graph)


def random_regular_snapshot(n: int, degree: int, seed: SeedLike = None) -> Snapshot:
    """A uniform random *degree*-regular graph (comparison baseline)."""
    if n * degree % 2 != 0:
        raise ConfigurationError("n * degree must be even for a regular graph")
    rng = make_rng(seed)
    graph = nx.random_regular_graph(degree, n, seed=int(rng.integers(0, 2**31 - 1)))
    return _snapshot_from_networkx(graph)


def _snapshot_from_networkx(graph: nx.Graph) -> Snapshot:
    """Wrap an undirected networkx graph as a birth-time-0 snapshot."""
    nodes = frozenset(int(u) for u in graph.nodes)
    adjacency = {
        int(u): frozenset(int(v) for v in graph.neighbors(u)) for u in graph.nodes
    }
    return Snapshot(
        time=0.0,
        nodes=nodes,
        adjacency=adjacency,
        birth_times={u: 0.0 for u in nodes},
        out_slots={u: () for u in nodes},
    )
