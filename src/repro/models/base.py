"""Common driver interface for dynamic networks.

A *driver* owns a :class:`~repro.core.graph.DynamicGraphState`, an
:class:`~repro.core.edge_policy.EdgePolicy` and a source of randomness, and
advances the network through time.  Flooding and the experiment harness only
rely on the small interface defined here:

* ``now`` — current simulation time;
* ``snapshot()`` — freeze the current topology;
* ``advance_round()`` — advance time by exactly one unit (one streaming
  round, or one unit of continuous time), returning the churn events that
  occurred, so observers can tell who was born/died and which edges changed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.core.backend import GraphBackend, create_backend
from repro.core.edge_policy import EdgePolicy
from repro.core.snapshot import Snapshot
from repro.sim.clock import SimClock
from repro.sim.events import EventRecord
from repro.util.rng import SeedLike, make_rng


@dataclass
class RoundReport:
    """Everything that happened during one unit-time round."""

    start_time: float
    end_time: float
    events: list[EventRecord] = field(default_factory=list)

    @property
    def births(self) -> list[int]:
        # Flattened so batched NodesBorn records report every newborn.
        return [nid for e in self.events if e.is_birth for nid in e.node_ids]

    @property
    def deaths(self) -> list[int]:
        # Flattened so batched NodesDied records report every victim.
        return [nid for e in self.events if e.is_death for nid in e.node_ids]


class DynamicNetwork(ABC):
    """Base class for the streaming and Poisson network drivers.

    Args:
        policy: edge policy deciding birth/death edge consequences.
        seed: RNG seed.
        backend: topology backend — a name from
            :data:`repro.core.backend.BACKEND_NAMES`, a ready-made
            :class:`~repro.core.backend.GraphBackend` instance, or
            ``None`` for the process default (``REPRO_BACKEND``).
    """

    def __init__(
        self,
        policy: EdgePolicy,
        seed: SeedLike = None,
        backend: str | GraphBackend | None = None,
    ) -> None:
        self.state: GraphBackend = create_backend(backend)
        self.policy = policy
        self.rng: np.random.Generator = make_rng(seed)
        self.clock = SimClock()

    @property
    def d(self) -> int:
        """The out-degree parameter of the model."""
        return self.policy.d

    @property
    def now(self) -> float:
        return self.clock.now

    def num_alive(self) -> int:
        return self.state.num_alive()

    def snapshot(self) -> Snapshot:
        """Freeze the current topology (the paper's ``G_t``)."""
        return self.state.snapshot(self.now)

    @abstractmethod
    def advance_round(self) -> RoundReport:
        """Advance simulation time by exactly one unit."""

    def run_rounds(self, count: int) -> list[RoundReport]:
        """Advance *count* unit-time rounds, returning their reports."""
        return [self.advance_round() for _ in range(count)]

    # ------------------------------------------------------------------
    # batched churn windows
    # ------------------------------------------------------------------

    #: Whether this driver implements :meth:`_advance_window_batched`.
    supports_batched_advance: bool = False

    def advance_to_time_batched(
        self, target: float, window: float | None = None
    ) -> RoundReport:
        """Advance to *target* applying churn in grouped batches.

        Splits ``[now, target]`` into windows of at most *window* time
        units (default: one window for the whole span) and hands each to
        the driver's ``_advance_window_batched``, which applies the
        window's churn through the backend's batched
        ``apply_births``/``apply_deaths`` paths.  Same churn law as the
        per-event path, different seeded trajectory — see the driver
        docstrings for each model's exact approximation.

        Only drivers with ``supports_batched_advance`` implement this.
        The Poisson/general drivers group a window's churn into one
        births batch and one deaths batch; the streaming-cadence models
        — whose schedule interleaves a death and a birth every round —
        instead run the window through the fused per-round kernel
        (``apply_round_batch``), which keeps the exact death →
        regeneration → birth law round by round.
        """
        if not self.supports_batched_advance:
            raise NotImplementedError(
                f"{type(self).__name__} has no batched advance path"
            )
        start = self.now
        report = RoundReport(start_time=start, end_time=start)
        if target <= start:
            self.clock.advance_to(target)
            report.end_time = self.now
            return report
        if window is None or window <= 0:
            window = target - start
        while self.now < target:
            window_end = min(self.now + window, target)
            self._advance_window_batched(window_end, report)
        report.end_time = self.now
        return report

    def _advance_window_batched(self, target: float, report: RoundReport) -> None:
        """Apply one grouped-churn window ending at *target* (driver hook)."""
        raise NotImplementedError
