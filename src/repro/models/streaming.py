"""Streaming dynamic graphs: SDG (Def. 3.4) and SDGR (Def. 3.13).

One round of the streaming churn, for round number ``r > n``:

1. the node born at round ``r − n`` **dies** (all incident edges vanish);
2. under regeneration, every orphaned request immediately re-samples a
   uniform destination among the ``n − 1`` survivors;
3. a new node is **born** and issues ``d`` uniform requests among the
   ``n − 1`` nodes present (it cannot pick the node that died this round).

The paper leaves the intra-round order unspecified; this death →
regeneration → birth order matches the 1/(n−1) destination probabilities
used by Lemma 3.14 (see DESIGN.md §2.2).  During the first ``n`` rounds
(warm-up) only births occur, exactly as in Definition 3.2 (``N_0 = ∅``).
"""

from __future__ import annotations

import numpy as np

from repro.churn.streaming import StreamingSchedule
from repro.core.backend import GraphBackend
from repro.core.edge_policy import (
    EdgePolicy,
    NoRegenerationPolicy,
    RegenerationPolicy,
)
from repro.errors import ConfigurationError, SimulationError
from repro.models.base import DynamicNetwork, RoundReport
from repro.util.rng import SeedLike


class StreamingNetwork(DynamicNetwork):
    """Driver for the streaming models (shared by SDG and SDGR).

    Args:
        n: network size (= deterministic node lifetime in rounds).
        policy: edge policy (no-regen for SDG, regen for SDGR).
        seed: RNG seed.
        warm: when true (default), immediately run the first ``n`` birth
            rounds so the network starts full, at round ``n``.
        backend: topology backend name/instance (None = process default).
        fast_warm: apply the ``n`` warm-up births through the backend's
            batched path (one vectorized draw on the array backend).  Same
            distribution as the per-round warm-up, but a *different seeded
            trajectory* — leave False when bit-identical trajectories
            against a per-round run matter (e.g. cross-backend parity).
    """

    def __init__(
        self,
        n: int,
        policy: EdgePolicy,
        seed: SeedLike = None,
        warm: bool = True,
        backend: str | GraphBackend | None = None,
        fast_warm: bool = False,
    ) -> None:
        if n < 2:
            raise ConfigurationError(f"streaming model needs n >= 2, got {n}")
        super().__init__(policy, seed, backend=backend)
        self.n = n
        self.schedule = StreamingSchedule(n)
        self.round_number = 0
        if warm:
            if fast_warm:
                self._warm_batch()
            else:
                self.run_rounds(n)

    def _warm_batch(self) -> None:
        """Warm-up as one batched pure-birth pass (Definition 3.2 rounds
        1..n have no deaths, so the whole prefix is a single batch)."""
        node_ids = self.state.allocate_ids(self.n)
        if node_ids[0] != self.schedule.birth_id(1):
            raise SimulationError("batched warm-up must start from round 0")
        times = np.arange(1, self.n + 1, dtype=np.float64)
        self.policy.handle_births(self.state, node_ids, times, self.rng)
        self.round_number = self.n
        self.clock.advance_to(float(self.n))

    def advance_round(self) -> RoundReport:
        """Apply one streaming round: death (if any), regeneration, birth."""
        self.round_number += 1
        start = self.now
        self.clock.advance_to(float(self.round_number))
        report = RoundReport(start_time=start, end_time=self.now)

        death_id = self.schedule.death_id(self.round_number)
        if death_id is not None:
            report.events.append(
                self.policy.handle_death(self.state, death_id, self.now, self.rng)
            )

        birth_id = self.state.allocate_id()
        expected = self.schedule.birth_id(self.round_number)
        if birth_id != expected:
            raise SimulationError(
                f"id drift: allocated {birth_id}, schedule expects {expected}"
            )
        report.events.append(
            self.policy.handle_birth(self.state, birth_id, self.now, self.rng)
        )
        return report

    def newest_id(self) -> int:
        """Id of the node born in the most recent round."""
        if self.round_number == 0:
            raise SimulationError("no rounds have run yet")
        return self.schedule.birth_id(self.round_number)

    def oldest_id(self) -> int:
        """Id of the oldest alive node."""
        return max(0, self.round_number - self.n)


def SDG(
    n: int,
    d: int,
    seed: SeedLike = None,
    warm: bool = True,
    backend: str | GraphBackend | None = None,
    fast_warm: bool = False,
) -> StreamingNetwork:
    """Streaming Dynamic Graph without edge regeneration (Definition 3.4)."""
    return StreamingNetwork(
        n, NoRegenerationPolicy(d), seed=seed, warm=warm, backend=backend,
        fast_warm=fast_warm,
    )


def SDGR(
    n: int,
    d: int,
    seed: SeedLike = None,
    warm: bool = True,
    backend: str | GraphBackend | None = None,
    fast_warm: bool = False,
) -> StreamingNetwork:
    """Streaming Dynamic Graph with edge regeneration (Definition 3.13)."""
    return StreamingNetwork(
        n, RegenerationPolicy(d), seed=seed, warm=warm, backend=backend,
        fast_warm=fast_warm,
    )
