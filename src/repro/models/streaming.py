"""Streaming dynamic graphs: SDG (Def. 3.4) and SDGR (Def. 3.13).

One round of the streaming churn, for round number ``r > n``:

1. the node born at round ``r − n`` **dies** (all incident edges vanish);
2. under regeneration, every orphaned request immediately re-samples a
   uniform destination among the ``n − 1`` survivors;
3. a new node is **born** and issues ``d`` uniform requests among the
   ``n − 1`` nodes present (it cannot pick the node that died this round).

The paper leaves the intra-round order unspecified; this death →
regeneration → birth order matches the 1/(n−1) destination probabilities
used by Lemma 3.14 (see DESIGN.md §2.2).  During the first ``n`` rounds
(warm-up) only births occur, exactly as in Definition 3.2 (``N_0 = ∅``).
"""

from __future__ import annotations

import numpy as np

from repro.churn.streaming import StreamingSchedule
from repro.core.backend import GraphBackend
from repro.core.edge_policy import (
    EdgePolicy,
    NoRegenerationPolicy,
    RegenerationPolicy,
)
from repro.core.round_batch import WindowDrawPlan
from repro.errors import ConfigurationError, SimulationError
from repro.models.base import DynamicNetwork, RoundReport
from repro.sim.events import EventRecord, NodesBorn, NodesDied
from repro.util.rng import SeedLike


class StreamingNetwork(DynamicNetwork):
    """Driver for the streaming models (shared by SDG and SDGR).

    Args:
        n: network size (= deterministic node lifetime in rounds).
        policy: edge policy (no-regen for SDG, regen for SDGR).
        seed: RNG seed.
        warm: when true (default), immediately run the first ``n`` birth
            rounds so the network starts full, at round ``n``.
        backend: topology backend name/instance (None = process default).
        fast_warm: apply the ``n`` warm-up births through the backend's
            batched path (one vectorized draw on the array backend).  Same
            distribution as the per-round warm-up, but a *different seeded
            trajectory* — leave False when bit-identical trajectories
            against a per-round run matter (e.g. cross-backend parity).
    """

    def __init__(
        self,
        n: int,
        policy: EdgePolicy,
        seed: SeedLike = None,
        warm: bool = True,
        backend: str | GraphBackend | None = None,
        fast_warm: bool = False,
    ) -> None:
        if n < 2:
            raise ConfigurationError(f"streaming model needs n >= 2, got {n}")
        super().__init__(policy, seed, backend=backend)
        self.n = n
        self.schedule = StreamingSchedule(n)
        self.round_number = 0
        if warm:
            if fast_warm:
                self._warm_batch()
            else:
                self.run_rounds(n)

    def _warm_batch(self) -> None:
        """Warm-up as one batched pure-birth pass (Definition 3.2 rounds
        1..n have no deaths, so the whole prefix is a single batch)."""
        node_ids = self.state.allocate_ids(self.n)
        if node_ids[0] != self.schedule.birth_id(1):
            raise SimulationError("batched warm-up must start from round 0")
        times = np.arange(1, self.n + 1, dtype=np.float64)
        self.policy.handle_births(self.state, node_ids, times, self.rng)
        self.round_number = self.n
        self.clock.advance_to(float(self.n))

    def advance_round(self) -> RoundReport:
        """Apply one streaming round: death (if any), regeneration, birth."""
        self.round_number += 1
        start = self.now
        self.clock.advance_to(float(self.round_number))
        report = RoundReport(start_time=start, end_time=self.now)

        death_id = self.schedule.death_id(self.round_number)
        if death_id is not None:
            report.events.append(
                self.policy.handle_death(self.state, death_id, self.now, self.rng)
            )

        birth_id = self.state.allocate_id()
        expected = self.schedule.birth_id(self.round_number)
        if birth_id != expected:
            raise SimulationError(
                f"id drift: allocated {birth_id}, schedule expects {expected}"
            )
        report.events.append(
            self.policy.handle_birth(self.state, birth_id, self.now, self.rng)
        )
        return report

    # ------------------------------------------------------------------
    # fused windows (the ``fast_rounds`` kernel)
    # ------------------------------------------------------------------

    supports_batched_advance = True

    #: Per-window cap on the fused kernel's chunk size, bounding the
    #: transient in-edge log to O(n + chunk) rows (~int32 · max in-degree
    #: columns).  Windows larger than a chunk loop over chunks.
    _FUSED_CHUNK_CAP = 262144

    def _window_rounds(self, target: float) -> int:
        span = target - self.now
        rounds = int(round(span))
        if abs(span - rounds) > 1e-9:
            raise SimulationError(
                "streaming windows must cover whole rounds; got a span "
                f"of {span} rounds"
            )
        return rounds

    def _advance_window_batched(self, target: float, report: RoundReport) -> None:
        """One fused window: the exact per-round death → regeneration →
        birth law executed through the backend's ``apply_round_batch``
        kernel (same 1/(n−1) destination probabilities, bit-identical
        across backends within the fused path, a different seeded
        trajectory than the per-event path — like ``fast_warm``).

        Falls back to per-event rounds whenever the law is not the plain
        uniform one (bounded-degree policies) or the backend lacks the
        kernel.  Churn is reported as one coalesced ``NodesDied`` plus
        one ``NodesBorn`` record per window, not per round.
        """
        rounds = self._window_rounds(target)
        if rounds <= 0:
            self.clock.advance_to(target)
            return
        # Warm-up prefix (rounds <= n have no deaths): one canonical-plan
        # birth batch, bit-identical across backends.
        if self.round_number < self.n:
            take = min(rounds, self.n - self.round_number)
            if self.policy.supports_batch_birth:
                self._fused_warm_prefix(take, report)
            else:
                self._per_event_rounds(take, report)
            rounds -= take
            if rounds <= 0:
                return
        regenerate = self.policy.round_batch_regenerate
        fused_ok = (
            regenerate is not None
            and getattr(self.state, "supports_round_batch", False)
            and (self.n >= 3 or not regenerate)
        )
        if not fused_ok:
            self._per_event_rounds(rounds, report)
            return
        first_dead = self.round_number - self.n
        first_born = self.round_number
        remaining = rounds
        while remaining > 0:
            chunk = min(remaining, max(4096, min(self.n, self._FUSED_CHUNK_CAP)))
            base = self.round_number - self.n
            node_ids = self.state.allocate_ids(chunk)
            expected = self.schedule.birth_id(self.round_number + 1)
            if node_ids[0] != expected:
                raise SimulationError(
                    f"id drift: allocated {node_ids[0]}, schedule expects "
                    f"{expected}"
                )
            plan = WindowDrawPlan(self.n, self.d, chunk, self.rng)
            self.state.apply_round_batch(
                base=base,
                rounds=chunk,
                num_slots=self.d,
                start_time=float(self.round_number),
                plan=plan,
                regenerate=bool(regenerate),
            )
            self.round_number += chunk
            self.clock.advance_to(float(self.round_number))
            remaining -= chunk
        report.events.append(
            EventRecord(
                time=self.now,
                kind=NodesDied(node_ids=tuple(range(first_dead, first_dead + rounds))),
            )
        )
        report.events.append(
            EventRecord(
                time=self.now,
                kind=NodesBorn(node_ids=tuple(range(first_born, first_born + rounds))),
            )
        )

    def _fused_warm_prefix(self, take: int, report: RoundReport) -> None:
        """Warm rounds as one pre-drawn birth batch (canonical pool =
        ascending ids, so both backends consume the same draws)."""
        r0 = self.round_number
        node_ids = self.state.allocate_ids(take)
        if node_ids[0] != self.schedule.birth_id(r0 + 1):
            raise SimulationError(
                f"id drift: allocated {node_ids[0]}, schedule expects "
                f"{self.schedule.birth_id(r0 + 1)}"
            )
        # Newborn of round r has the r-1 earlier nodes (ids 0..r-2) as its
        # pool; offset draws double as target ids.
        highs = np.repeat(
            np.arange(r0, r0 + take, dtype=np.int64), self.d
        )
        valid = highs > 0
        draws = self.rng.integers(0, np.where(valid, highs, 1))
        targets = np.where(valid, draws, -1).reshape(take, self.d)
        times = np.arange(r0 + 1, r0 + take + 1, dtype=np.float64)
        self.state.apply_birth_slots(node_ids, times, targets)
        self.round_number += take
        self.clock.advance_to(float(self.round_number))
        report.events.append(
            EventRecord(time=self.now, kind=NodesBorn(node_ids=tuple(node_ids)))
        )

    def _per_event_rounds(self, count: int, report: RoundReport) -> None:
        """Window fallback: ordinary per-event rounds, per-round records."""
        for _ in range(count):
            round_report = self.advance_round()
            report.events.extend(round_report.events)

    def newest_id(self) -> int:
        """Id of the node born in the most recent round."""
        if self.round_number == 0:
            raise SimulationError("no rounds have run yet")
        return self.schedule.birth_id(self.round_number)

    def oldest_id(self) -> int:
        """Id of the oldest alive node."""
        return max(0, self.round_number - self.n)


def SDG(
    n: int,
    d: int,
    seed: SeedLike = None,
    warm: bool = True,
    backend: str | GraphBackend | None = None,
    fast_warm: bool = False,
) -> StreamingNetwork:
    """Streaming Dynamic Graph without edge regeneration (Definition 3.4)."""
    return StreamingNetwork(
        n, NoRegenerationPolicy(d), seed=seed, warm=warm, backend=backend,
        fast_warm=fast_warm,
    )


def SDGR(
    n: int,
    d: int,
    seed: SeedLike = None,
    warm: bool = True,
    backend: str | GraphBackend | None = None,
    fast_warm: bool = False,
) -> StreamingNetwork:
    """Streaming Dynamic Graph with edge regeneration (Definition 3.13)."""
    return StreamingNetwork(
        n, RegenerationPolicy(d), seed=seed, warm=warm, backend=backend,
        fast_warm=fast_warm,
    )
