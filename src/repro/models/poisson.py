"""Poisson dynamic graphs: PDG (Def. 4.9) and PDGR (Def. 4.14).

The driver simulates the churn jump chain of Lemma 4.6 (see
:class:`~repro.churn.poisson.PoissonJumpChain`): events are node births
(rate λ) and node deaths (each alive node at rate µ).  Edge consequences
are delegated to the edge policy, exactly as in the streaming driver.

Because inter-event times are exponential and rates only change at events,
``advance_to_time`` can discard an overshooting waiting time and resume
fresh at the target time (memorylessness), which keeps rounds exact.
"""

from __future__ import annotations

import math

from repro.churn.poisson import PoissonJumpChain
from repro.core.backend import GraphBackend
from repro.core.edge_policy import (
    EdgePolicy,
    NoRegenerationPolicy,
    RegenerationPolicy,
)
from repro.errors import ConfigurationError
from repro.models.base import DynamicNetwork, RoundReport
from repro.sim.events import EventRecord, NodesBorn
from repro.util.rng import SeedLike


class PoissonNetwork(DynamicNetwork):
    """Driver for the Poisson models (shared by PDG and PDGR).

    Args:
        n: the paper's ``n = λ/µ`` (expected stationary size).
        policy: edge policy (no-regen for PDG, regen for PDGR).
        lam: birth rate λ (the paper fixes λ = 1 w.l.o.g.).
        seed: RNG seed.
        warm_time: simulate this much time before handing the network to
            the caller; the default ``3n`` is the horizon after which
            Lemma 4.4 guarantees |N_t| = Θ(n) w.h.p.  Pass 0 to start
            from the empty network.
        fast_warm: warm through :meth:`advance_to_time_batched` (grouped
            births/deaths) instead of per-event application.  Same churn
            law, *different seeded trajectory* — leave False when
            bit-identical trajectories against a per-event run matter.
    """

    def __init__(
        self,
        n: float,
        policy: EdgePolicy,
        lam: float = 1.0,
        seed: SeedLike = None,
        warm_time: float | None = None,
        backend: str | GraphBackend | None = None,
        fast_warm: bool = False,
    ) -> None:
        if n < 2:
            raise ConfigurationError(f"Poisson model needs n >= 2, got {n}")
        super().__init__(policy, seed, backend=backend)
        self.n = float(n)
        self.chain = PoissonJumpChain(lam=lam, n=n)
        self.event_count = 0  # the jump-chain round index r of Definition 4.5
        if warm_time is None:
            warm_time = 3.0 * float(n)
        if warm_time > 0:
            if fast_warm:
                self.advance_to_time_batched(warm_time, window=max(1.0, self.n / 8.0))
            else:
                self.advance_to_time(warm_time)

    def advance_one_event(self) -> EventRecord:
        """Apply exactly one churn event (one jump-chain round)."""
        jump = self.chain.next_event(self.num_alive(), self.rng)
        self.clock.advance_by(jump.dt)
        return self.apply_churn(jump.is_birth)

    def advance_to_time(self, target: float) -> list[EventRecord]:
        """Apply every event up to absolute time *target*; clock ends there."""
        records: list[EventRecord] = []
        while True:
            jump = self.chain.next_event(self.num_alive(), self.rng)
            event_time = self.now + jump.dt
            if event_time > target:
                # Memorylessness: conditional on no event before `target`,
                # the process restarts fresh at `target`.
                self.clock.advance_to(target)
                return records
            self.clock.advance_to(event_time)
            records.append(self.apply_churn(jump.is_birth))

    def advance_rounds_jump(self, count: int) -> list[EventRecord]:
        """Apply exactly *count* jump-chain events (Definition 4.5 rounds)."""
        return [self.advance_one_event() for _ in range(count)]

    #: Batched windows (:meth:`DynamicNetwork.advance_to_time_batched`):
    #: per window, the jump chain of Lemma 4.6 is simulated exactly (it
    #: only needs the alive *count*), then all of the window's births are
    #: applied through the backend's batched
    #: :meth:`~repro.core.backend.GraphBackend.apply_births` path and all
    #: of its deaths through one
    #: :meth:`~repro.core.edge_policy.EdgePolicy.handle_deaths` call on a
    #: uniform without-replacement victim set.  The size process follows
    #: the exact churn law and each birth still samples its targets among
    #: the nodes present at its join (earlier newborns of the window
    #: included).  What is approximated is the within-window
    #: interleaving: births are applied before deaths, so a birth may
    #: target a node that "already" died inside the same window and
    #: regenerated requests never land on same-window victims.  The
    #: approximation vanishes as ``window → 0`` and is the same trade as
    #: ``StreamingNetwork(fast_warm=True)``.
    supports_batched_advance = True

    def _advance_window_batched(self, target: float, report: RoundReport) -> None:
        """Apply one grouped-churn window ending at *target*."""
        # 1. Simulate the jump chain exactly (sizes only, no topology).
        alive = self.num_alive()
        birth_times: list[float] = []
        death_count = 0
        now = self.now
        while True:
            jump = self.chain.next_event(alive, self.rng)
            event_time = now + jump.dt
            if event_time > target:
                break
            now = event_time
            self.event_count += 1
            if jump.is_birth or alive == 0:
                birth_times.append(event_time)
                alive += 1
            else:
                death_count += 1
                alive -= 1
        # 2. Births as one batch: newborn k samples its targets among the
        #    window-start population plus the earlier newborns, the same
        #    candidate pool as the sequential path.
        if birth_times:
            node_ids = self.state.allocate_ids(len(birth_times))
            self.policy.handle_births(self.state, node_ids, birth_times, self.rng)
            report.events.append(
                EventRecord(time=target, kind=NodesBorn(node_ids=tuple(node_ids)))
            )
        # 3. Deaths as one batch of uniform without-replacement victims
        #    (newborns of the same window are eligible, as in the chain).
        if death_count:
            candidates = self.state.alive_ids()
            picks = self.rng.choice(
                len(candidates), size=min(death_count, len(candidates)), replace=False
            )
            victims = [candidates[int(i)] for i in picks]
            report.events.append(
                self.policy.handle_deaths(self.state, victims, target, self.rng)
            )
        self.clock.advance_to(target)

    def advance_round(self) -> RoundReport:
        """Advance one unit of continuous time (one flooding round)."""
        start = self.now
        events = self.advance_to_time(start + 1.0)
        return RoundReport(start_time=start, end_time=self.now, events=events)

    def expected_events_per_unit_time(self) -> float:
        """Event rate at the stationary size (≈ λ + n·µ = 2λ)."""
        return self.chain.total_rate(int(round(self.n)))

    def apply_churn(self, is_birth: bool) -> EventRecord:
        """Apply one churn event of the given kind at the current clock time.

        Low-level hook used by the asynchronous flooding process, which
        samples jump times itself so it can interleave message deliveries
        with churn; normal callers should use :meth:`advance_one_event`.
        """
        self.event_count += 1
        if is_birth or self.num_alive() == 0:
            # A death event drawn on an empty network is impossible
            # (death rate 0); the guard keeps the driver robust anyway.
            node_id = self.state.allocate_id()
            return self.policy.handle_birth(self.state, node_id, self.now, self.rng)
        victim = self.state.sample_alive(self.rng)
        return self.policy.handle_death(self.state, victim, self.now, self.rng)


def PDG(
    n: float,
    d: int,
    seed: SeedLike = None,
    lam: float = 1.0,
    warm_time: float | None = None,
    backend: str | GraphBackend | None = None,
    fast_warm: bool = False,
) -> PoissonNetwork:
    """Poisson Dynamic Graph without edge regeneration (Definition 4.9)."""
    return PoissonNetwork(
        n, NoRegenerationPolicy(d), lam=lam, seed=seed, warm_time=warm_time,
        backend=backend, fast_warm=fast_warm,
    )


def PDGR(
    n: float,
    d: int,
    seed: SeedLike = None,
    lam: float = 1.0,
    warm_time: float | None = None,
    backend: str | GraphBackend | None = None,
    fast_warm: bool = False,
) -> PoissonNetwork:
    """Poisson Dynamic Graph with edge regeneration (Definition 4.14)."""
    return PoissonNetwork(
        n, RegenerationPolicy(d), lam=lam, seed=seed, warm_time=warm_time,
        backend=backend, fast_warm=fast_warm,
    )


def lifetime_age_bound(n: float) -> float:
    """The ``7 n log n`` age horizon of Lemma 4.8 (in jump-chain rounds)."""
    return 7.0 * n * math.log(n)
