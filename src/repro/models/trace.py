"""Trace-driven network: replay a recorded join/leave log (service plane).

Instead of sampling churn from a stochastic model, :class:`TraceNetwork`
applies the exact join/leave events of a :class:`~repro.churn.trace.ChurnTrace`
at their recorded timestamps — the population trajectory is fully
determined by the trace, while edge wiring still flows through the
composed :class:`~repro.core.edge_policy.EdgePolicy` (and therefore the
seeded RNG).  A trace recorded from any scenario by the ``record_trace``
observer replays its population trajectory exactly; traces of real user
populations slot into the same driver.
"""

from __future__ import annotations

from repro.churn.trace import ChurnTrace
from repro.core.backend import GraphBackend
from repro.core.edge_policy import EdgePolicy
from repro.errors import SimulationError
from repro.models.base import DynamicNetwork, RoundReport
from repro.util.rng import SeedLike


class TraceNetwork(DynamicNetwork):
    """Replays a recorded churn trace through an edge policy.

    Args:
        trace: the validated join/leave log to replay.
        policy: edge policy applied at each join/leave.
        seed: RNG seed (consumed only by the policy's target sampling).
    """

    def __init__(
        self,
        trace: ChurnTrace,
        policy: EdgePolicy,
        seed: SeedLike = None,
        backend: str | GraphBackend | None = None,
    ) -> None:
        super().__init__(policy, seed, backend=backend)
        self.trace = trace
        self.round_number = 0
        self._pos = 0
        # Trace ids are external: keep the allocator above them so any
        # id allocated later (by a protocol or composed driver) is fresh.
        self.state.ensure_id_floor(trace.max_id + 1)

    @property
    def exhausted(self) -> bool:
        """True once every trace event has been applied."""
        return self._pos >= len(self.trace.events)

    def advance_round(self) -> RoundReport:
        """Advance one time unit, applying trace events at their times."""
        self.round_number += 1
        start = self.now
        target = start + 1.0
        report = RoundReport(start_time=start, end_time=start)
        events = self.trace.events
        while self._pos < len(events) and events[self._pos].time <= target:
            event = events[self._pos]
            self._pos += 1
            if event.time > self.now:
                self.clock.advance_to(event.time)
            if event.op == "join":
                if self.state.is_alive(event.node_id):
                    raise SimulationError(
                        f"trace join of already-present node {event.node_id} "
                        f"at t={event.time}"
                    )
                report.events.append(
                    self.policy.handle_birth(
                        self.state, event.node_id, self.now, self.rng
                    )
                )
            else:
                if not self.state.is_alive(event.node_id):
                    raise SimulationError(
                        f"trace leave of absent node {event.node_id} "
                        f"at t={event.time}"
                    )
                report.events.append(
                    self.policy.handle_death(
                        self.state, event.node_id, self.now, self.rng
                    )
                )
        self.clock.advance_to(target)
        report.end_time = self.now
        return report
