"""Generalized continuous-time model: arbitrary lifetime distributions.

The paper's Poisson model is the special case of exponential lifetimes;
its intro argues the results "should be robust to different modelling
choices".  This driver keeps everything else fixed — Poisson(λ) births,
the same edge policies — but draws each node's lifetime from any
:class:`~repro.churn.lifetime.LifetimeDistribution`, scheduling deaths on
an event queue (non-memoryless lifetimes genuinely need per-node timers,
unlike the jump-chain shortcut of :class:`~repro.models.poisson.PoissonNetwork`).

EXP-17 uses this to stress-test the paper's dichotomy under heavy-tailed
(Weibull k<1, Pareto) session lengths.
"""

from __future__ import annotations

from repro.churn.lifetime import ExponentialLifetime, LifetimeDistribution
from repro.core.backend import GraphBackend
from repro.core.edge_policy import (
    EdgePolicy,
    NoRegenerationPolicy,
    RegenerationPolicy,
)
from repro.errors import ConfigurationError
from repro.models.base import DynamicNetwork, RoundReport
from repro.sim.engine import EventEngine
from repro.sim.events import EventRecord
from repro.util.rng import SeedLike


class GeneralChurnNetwork(DynamicNetwork):
    """Poisson(λ) births + per-node lifetimes from *lifetime* distribution.

    Args:
        lifetime: the node-lifetime distribution; its mean plays the role
            of the paper's ``n`` (expected stationary size = λ · mean).
        policy: edge policy (regen / no-regen / capped).
        lam: birth rate λ (default 1, as in the paper).
        seed: RNG seed.
        warm_time: churn time to simulate before handing over (default
            3 × expected size, mirroring Lemma 4.4's horizon).
    """

    def __init__(
        self,
        lifetime: LifetimeDistribution,
        policy: EdgePolicy,
        lam: float = 1.0,
        seed: SeedLike = None,
        warm_time: float | None = None,
        backend: str | GraphBackend | None = None,
    ) -> None:
        if lam <= 0:
            raise ConfigurationError(f"lam must be positive, got {lam}")
        super().__init__(policy, seed, backend=backend)
        self.lifetime = lifetime
        self.lam = float(lam)
        self.deaths = EventEngine()
        self.event_count = 0
        self._next_birth_time = float(self.rng.exponential(1.0 / self.lam))
        if warm_time is None:
            warm_time = 3.0 * self.expected_size()
        if warm_time > 0:
            self.advance_to_time(warm_time)

    def expected_size(self) -> float:
        """Stationary expected network size λ · E[lifetime] (Little's law)."""
        return self.lam * self.lifetime.mean

    # ------------------------------------------------------------------
    # evolution
    # ------------------------------------------------------------------

    def advance_to_time(self, target: float) -> list[EventRecord]:
        """Apply all births and scheduled deaths up to *target*."""
        records: list[EventRecord] = []
        while True:
            next_death = self.deaths.peek_time()
            next_time = self._next_birth_time
            is_birth = True
            if next_death is not None and next_death < next_time:
                next_time = next_death
                is_birth = False
            if next_time > target:
                self.clock.advance_to(target)
                return records
            self.clock.advance_to(next_time)
            if is_birth:
                records.append(self._apply_birth())
            else:
                records.append(self._apply_death())

    def advance_round(self) -> RoundReport:
        """Advance one unit of continuous time."""
        start = self.now
        events = self.advance_to_time(start + 1.0)
        return RoundReport(start_time=start, end_time=self.now, events=events)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _apply_birth(self) -> EventRecord:
        self.event_count += 1
        node_id = self.state.allocate_id()
        record = self.policy.handle_birth(self.state, node_id, self.now, self.rng)
        life = self.lifetime.sample(self.rng)
        self.deaths.schedule(self.now + life, node_id)
        self._next_birth_time = self.now + float(
            self.rng.exponential(1.0 / self.lam)
        )
        return record

    def _apply_death(self) -> EventRecord:
        self.event_count += 1
        event = self.deaths.pop()
        node_id: int = event.payload
        return self.policy.handle_death(self.state, node_id, self.now, self.rng)


def GDG(
    lifetime: LifetimeDistribution,
    d: int,
    lam: float = 1.0,
    seed: SeedLike = None,
    warm_time: float | None = None,
    backend: str | GraphBackend | None = None,
) -> GeneralChurnNetwork:
    """Generalized dynamic graph without edge regeneration."""
    return GeneralChurnNetwork(
        lifetime, NoRegenerationPolicy(d), lam=lam, seed=seed,
        warm_time=warm_time, backend=backend,
    )


def GDGR(
    lifetime: LifetimeDistribution,
    d: int,
    lam: float = 1.0,
    seed: SeedLike = None,
    warm_time: float | None = None,
    backend: str | GraphBackend | None = None,
) -> GeneralChurnNetwork:
    """Generalized dynamic graph with edge regeneration."""
    return GeneralChurnNetwork(
        lifetime, RegenerationPolicy(d), lam=lam, seed=seed,
        warm_time=warm_time, backend=backend,
    )


def exponential_reference(
    n: float,
    d: int,
    seed: SeedLike = None,
    backend: str | GraphBackend | None = None,
) -> GeneralChurnNetwork:
    """The paper's PDGR expressed in the generalized driver (for testing
    that the two drivers agree statistically)."""
    return GDGR(ExponentialLifetime(n), d=d, seed=seed, backend=backend)
