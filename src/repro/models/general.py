"""Generalized continuous-time model: arbitrary lifetime distributions.

The paper's Poisson model is the special case of exponential lifetimes;
its intro argues the results "should be robust to different modelling
choices".  This driver keeps everything else fixed — Poisson(λ) births,
the same edge policies — but draws each node's lifetime from any
:class:`~repro.churn.lifetime.LifetimeDistribution`, scheduling deaths on
an event queue (non-memoryless lifetimes genuinely need per-node timers,
unlike the jump-chain shortcut of :class:`~repro.models.poisson.PoissonNetwork`).

EXP-17 uses this to stress-test the paper's dichotomy under heavy-tailed
(Weibull k<1, Pareto) session lengths.
"""

from __future__ import annotations

from repro.churn.lifetime import ExponentialLifetime, LifetimeDistribution
from repro.core.backend import GraphBackend
from repro.core.edge_policy import (
    EdgePolicy,
    NoRegenerationPolicy,
    RegenerationPolicy,
)
from repro.errors import ConfigurationError
from repro.models.base import DynamicNetwork, RoundReport
from repro.sim.engine import EventEngine
from repro.sim.events import EventRecord, NodesBorn
from repro.util.rng import SeedLike


class GeneralChurnNetwork(DynamicNetwork):
    """Poisson(λ) births + per-node lifetimes from *lifetime* distribution.

    Args:
        lifetime: the node-lifetime distribution; its mean plays the role
            of the paper's ``n`` (expected stationary size = λ · mean).
        policy: edge policy (regen / no-regen / capped).
        lam: birth rate λ (default 1, as in the paper).
        seed: RNG seed.
        warm_time: churn time to simulate before handing over (default
            3 × expected size, mirroring Lemma 4.4's horizon).
        fast_warm: warm through :meth:`advance_to_time_batched` (grouped
            births/deaths) instead of per-event application.  Same churn
            law, different seeded trajectory.
    """

    def __init__(
        self,
        lifetime: LifetimeDistribution,
        policy: EdgePolicy,
        lam: float = 1.0,
        seed: SeedLike = None,
        warm_time: float | None = None,
        backend: str | GraphBackend | None = None,
        fast_warm: bool = False,
    ) -> None:
        if lam <= 0:
            raise ConfigurationError(f"lam must be positive, got {lam}")
        super().__init__(policy, seed, backend=backend)
        self.lifetime = lifetime
        self.lam = float(lam)
        self.deaths = EventEngine()
        self.event_count = 0
        self._next_birth_time = float(self.rng.exponential(1.0 / self.lam))
        if warm_time is None:
            warm_time = 3.0 * self.expected_size()
        if warm_time > 0:
            if fast_warm:
                self.advance_to_time_batched(
                    warm_time, window=max(1.0, self.expected_size() / 8.0)
                )
            else:
                self.advance_to_time(warm_time)

    def expected_size(self) -> float:
        """Stationary expected network size λ · E[lifetime] (Little's law)."""
        return self.lam * self.lifetime.mean

    # ------------------------------------------------------------------
    # evolution
    # ------------------------------------------------------------------

    def advance_to_time(self, target: float) -> list[EventRecord]:
        """Apply all births and scheduled deaths up to *target*."""
        records: list[EventRecord] = []
        while True:
            next_death = self.deaths.peek_time()
            next_time = self._next_birth_time
            is_birth = True
            if next_death is not None and next_death < next_time:
                next_time = next_death
                is_birth = False
            if next_time > target:
                self.clock.advance_to(target)
                return records
            self.clock.advance_to(next_time)
            if is_birth:
                records.append(self._apply_birth())
            else:
                records.append(self._apply_death())

    def advance_round(self) -> RoundReport:
        """Advance one unit of continuous time."""
        start = self.now
        events = self.advance_to_time(start + 1.0)
        return RoundReport(start_time=start, end_time=self.now, events=events)

    #: Batched windows (:meth:`DynamicNetwork.advance_to_time_batched`):
    #: per window, the Poisson(λ) birth times are drawn exactly, all
    #: births are applied through the backend's batched
    #: :meth:`~repro.core.backend.GraphBackend.apply_births` path (each
    #: newborn gets a lifetime and a scheduled death, as on the per-event
    #: path), then every death scheduled inside the window — including
    #: short-lived same-window newborns — is applied through one
    #: :meth:`~repro.core.edge_policy.EdgePolicy.handle_deaths` call.
    #: Like the Poisson driver's batched path, the within-window
    #: birth/death interleaving is approximated (births before deaths),
    #: vanishing as ``window → 0``; the birth process and every lifetime
    #: follow the exact law.
    supports_batched_advance = True

    def _advance_window_batched(self, target: float, report: RoundReport) -> None:
        """Apply one grouped-churn window ending at *target*."""
        birth_times: list[float] = []
        while self._next_birth_time <= target:
            birth_times.append(self._next_birth_time)
            self._next_birth_time += float(self.rng.exponential(1.0 / self.lam))
        if birth_times:
            node_ids = self.state.allocate_ids(len(birth_times))
            self.policy.handle_births(self.state, node_ids, birth_times, self.rng)
            for node_id, born_at in zip(node_ids, birth_times):
                self.deaths.schedule(
                    born_at + self.lifetime.sample(self.rng), node_id
                )
            self.event_count += len(node_ids)
            report.events.append(
                EventRecord(time=target, kind=NodesBorn(node_ids=tuple(node_ids)))
            )
        victims: list[int] = []
        while True:
            next_death = self.deaths.peek_time()
            if next_death is None or next_death > target:
                break
            victims.append(self.deaths.pop().payload)
        if victims:
            self.event_count += len(victims)
            report.events.append(
                self.policy.handle_deaths(self.state, victims, target, self.rng)
            )
        self.clock.advance_to(target)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _apply_birth(self) -> EventRecord:
        self.event_count += 1
        node_id = self.state.allocate_id()
        record = self.policy.handle_birth(self.state, node_id, self.now, self.rng)
        life = self.lifetime.sample(self.rng)
        self.deaths.schedule(self.now + life, node_id)
        self._next_birth_time = self.now + float(
            self.rng.exponential(1.0 / self.lam)
        )
        return record

    def _apply_death(self) -> EventRecord:
        self.event_count += 1
        event = self.deaths.pop()
        node_id: int = event.payload
        return self.policy.handle_death(self.state, node_id, self.now, self.rng)


def GDG(
    lifetime: LifetimeDistribution,
    d: int,
    lam: float = 1.0,
    seed: SeedLike = None,
    warm_time: float | None = None,
    backend: str | GraphBackend | None = None,
    fast_warm: bool = False,
) -> GeneralChurnNetwork:
    """Generalized dynamic graph without edge regeneration."""
    return GeneralChurnNetwork(
        lifetime, NoRegenerationPolicy(d), lam=lam, seed=seed,
        warm_time=warm_time, backend=backend, fast_warm=fast_warm,
    )


def GDGR(
    lifetime: LifetimeDistribution,
    d: int,
    lam: float = 1.0,
    seed: SeedLike = None,
    warm_time: float | None = None,
    backend: str | GraphBackend | None = None,
    fast_warm: bool = False,
) -> GeneralChurnNetwork:
    """Generalized dynamic graph with edge regeneration."""
    return GeneralChurnNetwork(
        lifetime, RegenerationPolicy(d), lam=lam, seed=seed,
        warm_time=warm_time, backend=backend, fast_warm=fast_warm,
    )


def exponential_reference(
    n: float,
    d: int,
    seed: SeedLike = None,
    backend: str | GraphBackend | None = None,
) -> GeneralChurnNetwork:
    """The paper's PDGR expressed in the generalized driver (for testing
    that the two drivers agree statistically)."""
    return GDGR(ExponentialLifetime(n), d=d, seed=seed, backend=backend)
