"""Streaming-cadence networks with adversarial victim selection (extension).

Same churn *rate* as the streaming model (one birth and one death per
round, constant size n) but the victim is chosen by a topology-aware
strategy from :mod:`repro.churn.adversarial` instead of deterministic
age.  Used by EXP-16 to measure how the paper's oblivious-churn guarantees
degrade under targeted deletions.

Note that with non-oldest victims, node lifetimes are no longer exactly
``n`` — the *rate* is preserved, the schedule is not.  That is exactly the
comparison of interest.
"""

from __future__ import annotations

from repro.churn.adversarial import VictimStrategy, get_strategy
from repro.core.backend import GraphBackend
from repro.core.edge_policy import EdgePolicy
from repro.errors import ConfigurationError
from repro.models.base import DynamicNetwork, RoundReport
from repro.util.rng import SeedLike


class AdversarialStreamingNetwork(DynamicNetwork):
    """Constant-size network whose deaths are strategy-chosen.

    Args:
        n: constant network size.
        policy: edge policy (regen or no-regen).
        strategy: victim strategy name (see churn.adversarial.STRATEGIES)
            or a callable ``(state, rng) -> node_id``.
        seed: RNG seed.
        warm: run the n warm-up birth rounds immediately.
    """

    def __init__(
        self,
        n: int,
        policy: EdgePolicy,
        strategy: str | VictimStrategy = "max_degree",
        seed: SeedLike = None,
        warm: bool = True,
        backend: str | GraphBackend | None = None,
    ) -> None:
        if n < 2:
            raise ConfigurationError(f"need n >= 2, got {n}")
        super().__init__(policy, seed, backend=backend)
        self.n = n
        self.round_number = 0
        self.victim_strategy: VictimStrategy = (
            get_strategy(strategy) if isinstance(strategy, str) else strategy
        )
        if warm:
            self.run_rounds(n)

    def advance_round(self) -> RoundReport:
        """One round: strategy-chosen death (once full), then a birth."""
        self.round_number += 1
        start = self.now
        self.clock.advance_to(float(self.round_number))
        report = RoundReport(start_time=start, end_time=self.now)

        if self.num_alive() >= self.n:
            victim = self.victim_strategy(self.state, self.rng)
            report.events.append(
                self.policy.handle_death(self.state, victim, self.now, self.rng)
            )

        birth_id = self.state.allocate_id()
        report.events.append(
            self.policy.handle_birth(self.state, birth_id, self.now, self.rng)
        )
        return report
