"""Threshold-driven streaming dynamic graphs.

A streaming-cadence churn whose *departures are driven by the topology*
instead of an age clock, after the threshold-driven streaming graphs of
Angileri, Clementi, Natale, Salvi, Ziccardi (2025, arXiv:2507.23533):
where the paper's SDG retires the node born exactly ``n`` rounds ago,
here a node leaves the network as soon as its connectivity falls below a
*degree threshold* — churn and edge dynamics are coupled, which is the
regime the threshold-driven analysis studies.

.. note::
    The exact round mechanics below are this library's adaptation of
    that model family onto the shared driver interface (the reference
    paper could not be consulted while writing this module): it keeps
    the one-birth-per-round streaming cadence and expresses the
    threshold rule through the pluggable edge policies, so every
    existing policy (``none``/``regen``/``capped``/``raes``) composes
    with threshold-driven departures.

One round, for round number ``r > n`` (the first ``n`` rounds are the
usual pure-birth warm-up of Definition 3.2):

1. a new node is **born** and issues its ``d`` requests through the edge
   policy (uniform among the nodes present);
2. the **threshold sweep** runs: every alive node — except the newborn,
   which gets one round of grace to attract in-links — whose distinct-
   neighbour degree is below ``threshold`` departs, in ascending-id
   order; each departure destroys its incident edges (and triggers the
   policy's orphan repair), which can push further nodes below the
   threshold — the sweep cascades until no examined node is
   sub-threshold.

The sweep re-examines only nodes whose degree can have dropped (last
round's newborn, plus the former neighbours of this round's victims),
so a quiet round costs O(1) beyond the birth.  The round-end invariant
— every alive node except the current newborn has degree ≥ threshold —
is what the tests pin down.

Regimes worth knowing (measured, not just asserted): with a threshold
``< d`` departures are rare — regeneration (or the steady in-flow of
newborn requests) keeps degrees at or above d, so the network grows one
node per round and churn is limited to the occasional decayed
straggler.  At ``threshold = d`` the no-regeneration dynamic grows
while continuously shedding the nodes whose request placements
collapsed (duplicate targets, dead destinations) — growth with genuine
threshold departures.  At ``threshold = d + 1`` with regeneration every
node must hold an in-link on top of its own d requests: the first sweep
prunes the warm-up graph to its ``(d+1)``-core, whose size then
self-regulates — newborns keep arriving and are bounced at the end of
their grace round unless the core adopts them, a stationary size with a
revolving door of arrivals.  Far larger thresholds are subcritical and
cascade to collapse.  The per-event path is bit-identical across
topology backends, like every other driver.
"""

from __future__ import annotations

from repro.core.backend import GraphBackend
from repro.core.edge_policy import EdgePolicy
from repro.errors import ConfigurationError, SimulationError
from repro.models.base import DynamicNetwork, RoundReport
from repro.sim.events import EventRecord, NodesBorn
from repro.util.rng import SeedLike

import numpy as np


def default_threshold(d: int) -> int:
    """The default degree threshold for out-degree *d*.

    ``max(1, d // 2)`` — nodes tolerate losing about half their d
    requests before departing, which keeps the no-regeneration dynamic
    supercritical at moderate d.  Shared by :func:`TSDG` and the
    scenario registry's ``churn="threshold"`` builder so the two entry
    points can never diverge.
    """
    return max(1, d // 2)


class ThresholdStreamingNetwork(DynamicNetwork):
    """Streaming births with degree-threshold departures.

    Args:
        n: warm-up size (the number of pure-birth rounds run before the
            threshold dynamics start; unlike SDG it is *not* a lifetime
            — the stationary size is set by the threshold dynamics).
        policy: edge policy (requests per birth, repair at death).
        threshold: minimum distinct-neighbour degree an alive node must
            keep; anything below departs in the round's sweep.
        seed: RNG seed.
        warm: run the ``n`` warm-up birth rounds immediately (default).
        backend: topology backend name/instance (None = process default).
        fast_warm: apply the warm-up births through the backend's
            batched path (same distribution, different seeded
            trajectory — exactly like the other drivers' fast_warm).
    """

    def __init__(
        self,
        n: int,
        policy: EdgePolicy,
        threshold: int,
        seed: SeedLike = None,
        warm: bool = True,
        backend: str | GraphBackend | None = None,
        fast_warm: bool = False,
    ) -> None:
        if n < 2:
            raise ConfigurationError(
                f"threshold streaming model needs n >= 2, got {n}"
            )
        if threshold < 1:
            raise ConfigurationError(
                f"degree threshold must be >= 1, got {threshold}"
            )
        super().__init__(policy, seed, backend=backend)
        self.n = n
        self.threshold = int(threshold)
        self.round_number = 0
        #: The first post-warm sweep must examine everybody (warm-up
        #: leaves low-degree nodes behind); later sweeps are incremental.
        self._swept_all = False
        #: Last round's newborn: exempt from its birth-round sweep (one
        #: round of grace to attract in-links), examined the round after.
        self._grace_id: int | None = None
        if warm:
            if fast_warm:
                self._warm_batch()
            else:
                self._warm_rounds()

    # ------------------------------------------------------------------
    # warm-up (pure births, Definition 3.2)
    # ------------------------------------------------------------------

    def _warm_rounds(self) -> None:
        for _ in range(self.n):
            self.round_number += 1
            self.clock.advance_to(float(self.round_number))
            birth_id = self.state.allocate_id()
            self.policy.handle_birth(self.state, birth_id, self.now, self.rng)

    def _warm_batch(self) -> None:
        node_ids = self.state.allocate_ids(self.n)
        if node_ids[0] != 0:
            raise SimulationError("batched warm-up must start from round 0")
        times = np.arange(1, self.n + 1, dtype=np.float64)
        self.policy.handle_births(self.state, node_ids, times, self.rng)
        self.round_number = self.n
        self.clock.advance_to(float(self.n))

    # ------------------------------------------------------------------
    # the threshold round
    # ------------------------------------------------------------------

    def advance_round(self) -> RoundReport:
        """One round: birth, then the cascading threshold sweep."""
        self.round_number += 1
        start = self.now
        self.clock.advance_to(float(self.round_number))
        report = RoundReport(start_time=start, end_time=self.now)

        birth_id = self.state.allocate_id()
        report.events.append(
            self.policy.handle_birth(self.state, birth_id, self.now, self.rng)
        )

        if self._swept_all:
            # Degrees only drop when an incident edge dies, so between
            # sweeps only the node leaving its grace round needs a
            # fresh look.
            candidates = (
                set() if self._grace_id is None else {self._grace_id}
            )
        else:
            candidates = set(self.state.alive_ids())
            self._swept_all = True
        candidates.discard(birth_id)
        self._grace_id = birth_id
        self._sweep(candidates, report, exempt=birth_id)
        return report

    def _sweep(
        self, candidates: set[int], report: RoundReport, exempt: int
    ) -> None:
        """Retire every sub-threshold node, cascading deterministically.

        Candidates are processed in ascending-id order; a departure
        enqueues its former neighbours (their degree just dropped),
        except the *exempt* newborn still in its grace round.  The loop
        terminates because every death strictly shrinks the alive set.
        """
        state = self.state
        while candidates:
            node_id = min(candidates)
            candidates.discard(node_id)
            if not state.is_alive(node_id):
                continue
            if state.degree(node_id) >= self.threshold:
                continue
            neighbors = set(state.neighbors(node_id))
            record = self.policy.handle_death(
                state, node_id, self.now, self.rng
            )
            report.events.append(record)
            for neighbor in neighbors:
                if neighbor != exempt and state.is_alive(neighbor):
                    candidates.add(neighbor)

    # ------------------------------------------------------------------
    # fused windows (verified pure-birth prefixes)
    # ------------------------------------------------------------------

    supports_batched_advance = True

    #: Per-chunk cap on the speculative draw batch of a fused window.
    _FUSED_CHUNK_CAP = 8192

    def _advance_window_batched(self, target: float, report: RoundReport) -> None:
        """One fused window where the per-round law permits.

        The threshold round is a uniform birth followed by one incremental
        exam (last round's newborn leaves its grace); as long as every
        exam *passes*, a run of rounds is pure births — fully committable
        upfront.  The fuser draws a chunk of prospective birth targets
        from a canonical pool (ascending alive ids, then newborns in
        birth order), computes each exam's degree from the drawn targets
        alone (valid precisely because no deaths occur in a passing
        prefix), commits the verified prefix through
        ``apply_birth_slots``, and re-runs the first failing round — and
        any round whose law the fuser cannot verify (first post-warm
        sweep, bounded-degree policies) — through the per-event path with
        fresh draws.  Like the streaming kernel: same law, bit-identical
        across backends within the fused path, a different seeded
        trajectory than the per-event path.
        """
        span = target - self.now
        rounds = int(round(span))
        if abs(span - rounds) > 1e-9:
            raise SimulationError(
                "threshold windows must cover whole rounds; got a span "
                f"of {span} rounds"
            )
        while rounds > 0:
            fusable = (
                self._swept_all
                and self._grace_id is not None
                and self.policy.supports_batch_birth
                and self.num_alive() >= 1
            )
            committed = 0
            if fusable:
                committed = self._fused_birth_run(
                    min(rounds, self._FUSED_CHUNK_CAP), report
                )
            if committed == 0:
                round_report = self.advance_round()
                report.events.extend(round_report.events)
                rounds -= 1
            else:
                rounds -= committed
        if target > self.now:
            self.clock.advance_to(target)

    def _fused_birth_run(self, limit: int, report: RoundReport) -> int:
        """Commit the longest verified pure-birth prefix (≤ *limit* rounds).

        Round ``k`` of the chunk births ``B_k`` (uniform ``d`` targets
        among the ``m0 + k - 1`` nodes present) and examines the previous
        grace node: its exam degree is its distinct drawn targets plus
        one if ``B_k`` targeted it (for the pre-chunk grace node, its
        live degree plus the same correction) — nothing else can have
        changed it while no deaths occur.  Returns the number of rounds
        committed (0 = the very first exam fails; the caller re-runs it
        per-event).
        """
        W = int(limit)
        m0 = self.num_alive()
        d = self.d
        pool = np.array(sorted(self.state.alive_ids()), dtype=np.int64)
        next_id = self.state.peek_next_id()
        highs = np.repeat(m0 + np.arange(W, dtype=np.int64), d)
        offsets = self.rng.integers(0, highs).reshape(W, d)

        # Exam degrees, entirely from the draws: distinct targets per
        # newborn, plus the single possible in-link from the next round's
        # newborn (pool index of B_{k-1} is m0 + k - 2).
        sorted_offsets = np.sort(offsets, axis=1)
        distinct = 1 + np.count_nonzero(
            np.diff(sorted_offsets, axis=1) != 0, axis=1
        )
        passes = np.empty(W, dtype=bool)
        grace = self._grace_id
        grace_pos = int(np.searchsorted(pool, grace))
        grace_degree = self.state.degree(grace) + int(
            bool(np.any(offsets[0] == grace_pos))
        )
        passes[0] = grace_degree >= self.threshold
        if W > 1:
            hits = np.any(
                offsets[1:] == (m0 + np.arange(W - 1, dtype=np.int64))[:, None],
                axis=1,
            )
            passes[1:] = (distinct[:-1] + hits) >= self.threshold
        failing = np.nonzero(~passes)[0]
        committed = W if failing.size == 0 else int(failing[0])
        if committed == 0:
            return 0

        node_ids = self.state.allocate_ids(committed)
        if node_ids[0] != next_id:
            raise SimulationError(
                f"id drift: allocated {node_ids[0]}, expected {next_id}"
            )
        table = np.concatenate(
            [pool, np.asarray(node_ids, dtype=np.int64)]
        )
        targets = table[offsets[:committed]]
        times = np.arange(
            self.round_number + 1,
            self.round_number + committed + 1,
            dtype=np.float64,
        )
        self.state.apply_birth_slots(node_ids, times, targets)
        self.round_number += committed
        self.clock.advance_to(float(self.round_number))
        self._grace_id = node_ids[-1]
        report.events.append(
            EventRecord(time=self.now, kind=NodesBorn(node_ids=tuple(node_ids)))
        )
        return committed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def check_threshold_invariant(self) -> None:
        """Raise unless every alive node meets the degree threshold.

        The current newborn (still in its grace round) is exempt.  Only
        meaningful once a sweep has run — the warm-up deliberately
        leaves the invariant unestablished, as the model prescribes.
        """
        if not self._swept_all:
            raise SimulationError(
                "threshold invariant holds only after the first post-warm "
                "round"
            )
        for node_id in self.state.alive_ids():
            if node_id == self._grace_id:
                continue
            degree = self.state.degree(node_id)
            if degree < self.threshold:
                raise SimulationError(
                    f"node {node_id} has degree {degree} < threshold "
                    f"{self.threshold} after a sweep"
                )


def TSDG(
    n: int,
    d: int,
    threshold: int | None = None,
    seed: SeedLike = None,
    warm: bool = True,
    backend: str | GraphBackend | None = None,
    fast_warm: bool = False,
) -> ThresholdStreamingNetwork:
    """Threshold-driven streaming graph without edge regeneration.

    The default threshold ``max(1, d // 2)`` keeps the no-regeneration
    dynamic supercritical at moderate d (nodes tolerate losing about
    half their requests before departing).
    """
    from repro.core.edge_policy import NoRegenerationPolicy

    return ThresholdStreamingNetwork(
        n,
        NoRegenerationPolicy(d),
        threshold=default_threshold(d) if threshold is None else threshold,
        seed=seed,
        warm=warm,
        backend=backend,
        fast_warm=fast_warm,
    )
