"""The Bitcoin-like overlay simulator.

A :class:`BitcoinLikeNetwork` is a :class:`~repro.models.base.DynamicNetwork`
(so every flooding process and analysis in the library runs on it
unchanged) with the engineering realities the PDGR model abstracts away:

* node churn is the same Poisson jump chain as PDGR;
* a joining node learns addresses from a *DNS seed* (a uniform sample of
  alive nodes) instead of magically knowing the whole network;
* it dials peers from its address manager up to ``target_outbound`` (8),
  and accepts at most ``max_inbound`` (125) connections;
* a failed dial (dead address) evicts the address and retries;
* when a neighbour dies, the lost out-slot is *not* regenerated instantly:
  the node re-dials during the next maintenance tick (once per time unit);
* once per tick every node gossips a few known addresses to a random
  neighbour (``addr`` messages), keeping tables "sufficiently random".

EXP-14 checks this engineered overlay matches PDGR's qualitative claims.
"""

from __future__ import annotations

from repro.churn.poisson import PoissonJumpChain
from repro.core.backend import GraphBackend
from repro.core.edge_policy import EdgePolicy
from repro.errors import ConfigurationError
from repro.models.base import DynamicNetwork, RoundReport
from repro.p2p.addrman import AddressManager
from repro.sim.events import EdgeCreated, EventRecord, NodeBorn, NodeDied
from repro.util.rng import SeedLike


class _ManualPolicy(EdgePolicy):
    """Placeholder policy: the network drives all edge decisions itself."""

    def repair_orphans(self, state, orphaned, time, rng, record) -> None:
        del state, orphaned, time, rng, record  # re-dialling happens at ticks


class BitcoinLikeNetwork(DynamicNetwork):
    """Poisson churn + addrman-driven topology maintenance.

    Args:
        n: expected network size (λ=1, µ=1/n as in the paper).
        target_outbound: out-degree target (Bitcoin Core default 8).
        max_inbound: in-degree cap (Bitcoin Core default 125).
        dns_seed_size: addresses handed to a joining node.
        addr_capacity: address-manager table size.
        gossip_fanout: addresses pushed per tick per node.
        dial_attempts: dial retries per missing slot per tick.
        seed: RNG seed.
        warm_time: churn time simulated before hand-over (default 3n).
    """

    def __init__(
        self,
        n: float,
        target_outbound: int = 8,
        max_inbound: int = 125,
        dns_seed_size: int = 16,
        addr_capacity: int = 256,
        gossip_fanout: int = 8,
        dial_attempts: int = 4,
        seed: SeedLike = None,
        warm_time: float | None = None,
        backend: str | GraphBackend | None = None,
    ) -> None:
        if n < 2:
            raise ConfigurationError(f"need n >= 2, got {n}")
        if target_outbound < 1:
            raise ConfigurationError("target_outbound must be >= 1")
        super().__init__(_ManualPolicy(target_outbound), seed, backend=backend)
        self.n = float(n)
        self.chain = PoissonJumpChain(lam=1.0, n=n)
        self.max_inbound = max_inbound
        self.dns_seed_size = dns_seed_size
        self.addr_capacity = addr_capacity
        self.gossip_fanout = gossip_fanout
        self.dial_attempts = dial_attempts
        self.addrmans: dict[int, AddressManager] = {}
        self.event_count = 0
        self.failed_dials = 0
        self.successful_dials = 0
        if warm_time is None:
            warm_time = 3.0 * float(n)
        ticks = int(warm_time)
        for _ in range(ticks):
            self.advance_round()

    # ------------------------------------------------------------------
    # DynamicNetwork interface
    # ------------------------------------------------------------------

    def advance_round(self) -> RoundReport:
        """One unit of time: churn events, then a maintenance tick."""
        start = self.now
        target = start + 1.0
        report = RoundReport(start_time=start, end_time=target)
        while True:
            jump = self.chain.next_event(self.num_alive(), self.rng)
            event_time = self.now + jump.dt
            if event_time > target:
                self.clock.advance_to(target)
                break
            self.clock.advance_to(event_time)
            report.events.append(self._apply_churn(jump.is_birth))
        self._maintenance_tick()
        return report

    # ------------------------------------------------------------------
    # churn handling
    # ------------------------------------------------------------------

    def _apply_churn(self, is_birth: bool) -> EventRecord:
        self.event_count += 1
        if is_birth or self.num_alive() == 0:
            return self._handle_join()
        victim = self.state.sample_alive(self.rng)
        return self._handle_leave(victim)

    def _handle_join(self) -> EventRecord:
        node_id = self.state.allocate_id()
        self.state.add_node(node_id, birth_time=self.now, num_slots=self.policy.d)
        record = EventRecord(time=self.now, kind=NodeBorn(node_id=node_id))
        addrman = AddressManager(node_id, capacity=self.addr_capacity)
        self.addrmans[node_id] = addrman
        # DNS bootstrap: a uniform sample of currently-alive nodes.
        seeds = self.state.sample_targets(self.rng, self.dns_seed_size, exclude=node_id)
        addrman.add_many(seeds, self.rng)
        self._dial_missing_slots(node_id, record)
        return record

    def _handle_leave(self, node_id: int) -> EventRecord:
        record = EventRecord(time=self.now, kind=NodeDied(node_id=node_id))
        from repro.sim.events import EdgeDestroyed

        for neighbor in list(self.state.neighbors(node_id)):
            record.edges_destroyed.append(EdgeDestroyed(node_id, neighbor))
        self.state.remove_node(node_id, death_time=self.now)
        self.addrmans.pop(node_id, None)
        # Peers that lost an outbound slot re-dial at the next tick.
        return record

    # ------------------------------------------------------------------
    # maintenance: re-dialling and addr gossip
    # ------------------------------------------------------------------

    def _maintenance_tick(self) -> None:
        for node_id in self.state.alive_ids():
            record = EventRecord(time=self.now, kind=NodeBorn(node_id=node_id))
            self._dial_missing_slots(node_id, record)
        self._gossip_addresses()

    def _dial_missing_slots(self, node_id: int, record: EventRecord) -> None:
        addrman = self.addrmans[node_id]
        slots = self.state.out_slots_of(node_id)
        for slot_index, current in enumerate(slots):
            if current is not None:
                continue
            for _ in range(self.dial_attempts):
                address = addrman.sample(self.rng)
                if address is None:
                    break
                if not self.state.is_alive(address):
                    addrman.remove(address)  # stale address: evict, retry
                    self.failed_dials += 1
                    continue
                if address == node_id:
                    continue
                if self.state.in_slot_count(address) >= self.max_inbound:
                    self.failed_dials += 1
                    continue  # peer is full
                self.state.assign_slot(node_id, slot_index, address)
                record.edges_created.append(
                    EdgeCreated(source=node_id, target=address)
                )
                self.successful_dials += 1
                break

    def _gossip_addresses(self) -> None:
        """Each node pushes a few known addresses to one random neighbour."""
        for node_id in self.state.alive_ids():
            peer = self.state.random_neighbor(node_id, self.rng)
            if peer is None:
                continue
            payload = self.addrmans[node_id].advertise(self.rng, self.gossip_fanout)
            payload.append(node_id)  # self-advertisement, as in Bitcoin
            peer_addrman = self.addrmans.get(peer)
            if peer_addrman is not None:
                peer_addrman.add_many(payload, self.rng)
