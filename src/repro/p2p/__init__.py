"""A Bitcoin-Core-like unstructured P2P overlay (the paper's motivation).

Sections 1.1 and 5 argue that the PDGR model abstracts how Bitcoin Core
full nodes maintain their overlay: a target out-degree (8), a maximum
in-degree (125), an address manager seeded by DNS and refreshed by ``addr``
gossip, and re-dialling whenever the out-degree drops below target.  This
package implements that mechanism concretely so EXP-14 can check that the
engineered overlay behaves like the idealised PDGR model (no isolated
nodes, O(log n) flooding).
"""

from repro.p2p.addrman import AddressManager
from repro.p2p.network import BitcoinLikeNetwork

__all__ = ["AddressManager", "BitcoinLikeNetwork"]
