"""Address manager — the known-peers table of a full node.

Models Bitcoin Core's ``addrman``: a bounded table of node addresses,
seeded from DNS at start-up and refreshed by ``addr`` gossip.  Addresses of
dead peers linger until a failed dial evicts them, exactly the staleness
the paper's §1.1 describes ("a sufficiently random subset of all nodes").
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.util.sampling import IndexedSet


class AddressManager:
    """Bounded random-eviction table of peer addresses."""

    def __init__(self, owner: int, capacity: int = 256) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self.owner = owner
        self.capacity = capacity
        self._table = IndexedSet()

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, address: int) -> bool:
        return address in self._table

    def add(self, address: int, rng: np.random.Generator) -> None:
        """Insert *address*, evicting a random entry when full."""
        if address == self.owner or address in self._table:
            return
        if len(self._table) >= self.capacity:
            self._table.discard(self._table.sample(rng))
        self._table.add(address)

    def add_many(self, addresses: list[int], rng: np.random.Generator) -> None:
        for address in addresses:
            self.add(address, rng)

    def remove(self, address: int) -> None:
        """Evict *address* (after a failed dial)."""
        self._table.discard(address)

    def sample(self, rng: np.random.Generator) -> int | None:
        """A uniformly random known address, or None if the table is empty."""
        if not len(self._table):
            return None
        return self._table.sample(rng)

    def advertise(self, rng: np.random.Generator, count: int) -> list[int]:
        """A random subset of known addresses for an ``addr`` message."""
        size = len(self._table)
        if size == 0:
            return []
        count = min(count, size)
        picks = rng.choice(size, size=count, replace=False)
        items = self._table.as_list()
        return [items[int(i)] for i in picks]

    def known(self) -> list[int]:
        return self._table.as_list()
