"""Age demographics of snapshots (§4.3.1's "age profile" machinery).

The expansion proof for PDGR classifies node sets by their *age profile*:
with slices of width ``n`` (in jump-chain rounds or time units), the vector
``K^R = (|R ∩ slice_1|, …, |R ∩ slice_L|)`` with ``L = 7 log n`` captures
how many old nodes a set contains; sets heavy in old slices are
exponentially unlikely to have survived.  We implement the profile for
empirical study: measuring real snapshots' demographics and checking the
geometric decay the proof relies on (Lemma 4.7's per-round survival rate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.snapshot import Snapshot


@dataclass(frozen=True)
class AgeProfile:
    """Counts of nodes per age slice.

    Attributes:
        slice_width: width of each slice (the paper uses ``n``).
        counts: ``counts[m]`` is the number of nodes with age in
            ``[m * slice_width, (m+1) * slice_width)``.
    """

    slice_width: float
    counts: tuple[int, ...]

    @property
    def total(self) -> int:
        return sum(self.counts)

    def normalized(self) -> tuple[float, ...]:
        """The profile as a probability vector (empty → empty tuple)."""
        total = self.total
        if total == 0:
            return ()
        return tuple(c / total for c in self.counts)

    def oldest_nonempty_slice(self) -> int | None:
        """Index of the oldest slice containing a node, or None."""
        for m in range(len(self.counts) - 1, -1, -1):
            if self.counts[m] > 0:
                return m
        return None


def age_slices(n: float, num_slices: int | None = None) -> int:
    """The paper's slice count ``L = ceil(7 log n)`` unless overridden."""
    if num_slices is not None:
        return num_slices
    return max(1, math.ceil(7.0 * math.log(max(float(n), 2.0))))


def age_profile(
    snapshot: Snapshot,
    subset: Iterable[int] | None = None,
    slice_width: float | None = None,
    num_slices: int | None = None,
) -> AgeProfile:
    """Age profile ``K^R`` of *subset* (default: all alive nodes).

    Ages beyond the last slice are clamped into it, mirroring the proof's
    conditioning on Lemma 4.8 (no node is older than ``7 n log n``).
    """
    nodes = list(subset) if subset is not None else list(snapshot.nodes)
    if slice_width is None:
        slice_width = max(1.0, float(len(snapshot.nodes)))
    slices = age_slices(len(snapshot.nodes), num_slices)
    counts = [0] * slices
    for u in nodes:
        index = int(snapshot.age(u) // slice_width)
        counts[min(index, slices - 1)] += 1
    return AgeProfile(slice_width=float(slice_width), counts=tuple(counts))


def geometric_decay_rate(profile: AgeProfile) -> float:
    """Estimated per-slice survival ratio from consecutive occupied slices.

    Lemma 4.7 implies each extra ``n`` rounds of age costs roughly a
    factor ``e^{-µ·n·…}`` of survivors, so consecutive slice counts should
    decay geometrically; the median consecutive ratio estimates the rate.
    Returns ``nan`` when fewer than two consecutive slices are occupied.
    """
    ratios = [
        b / a
        for a, b in zip(profile.counts, profile.counts[1:])
        if a > 0 and b > 0
    ]
    if not ratios:
        return float("nan")
    ratios.sort()
    mid = len(ratios) // 2
    if len(ratios) % 2 == 1:
        return ratios[mid]
    return 0.5 * (ratios[mid - 1] + ratios[mid])


def mean_age(snapshot: Snapshot, subset: Sequence[int] | None = None) -> float:
    """Mean node age of *subset* (default all nodes)."""
    nodes = list(subset) if subset is not None else list(snapshot.nodes)
    if not nodes:
        raise ValueError("mean age of an empty set is undefined")
    return sum(snapshot.age(u) for u in nodes) / len(nodes)
