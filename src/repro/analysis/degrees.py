"""Degree statistics (Lemma 6.1 and the §5 max-degree remark).

Lemma 6.1: in a streaming snapshot every node has expected degree ``d``
(hence ``nd/2`` expected edges).  With regeneration the out-degree is
*exactly* ``d`` whenever the network has ≥ 2 nodes, so the edge count is
exactly ``nd`` request-edges (≤ nd distinct undirected edges).  Section 5
remarks that the maximum degree still grows like Θ(log n) — the in-degree
of a long-lived node behaves like a balls-in-bins maximum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.core.backend import GraphBackend
from repro.core.csr import CSRView
from repro.core.snapshot import Snapshot


@dataclass(frozen=True)
class DegreeSummary:
    """Summary of a snapshot's degree distribution."""

    num_nodes: int
    num_edges: int
    mean_degree: float
    max_degree: int
    min_degree: int
    std_degree: float

    @property
    def mean_out_requests(self) -> float:
        """Average number of assigned out-slots per node (filled separately)."""
        return self.mean_degree / 2.0


def degree_summary(graph: Union[Snapshot, CSRView]) -> DegreeSummary:
    """Compute the degree summary of a snapshot or CSR view.

    The view path reads the degree vector straight off the CSR arrays —
    no per-node dict materialisation — and returns the same summary
    (float statistics can differ in the last bit because the two paths
    sum the degrees in different node orders).
    """
    if isinstance(graph, CSRView):
        degrees = graph.degrees.astype(float)
        num_nodes, num_edges = graph.n, graph.num_edges()
    else:
        degrees = np.array(
            [len(nbrs) for nbrs in graph.adjacency.values()], dtype=float
        )
        num_nodes, num_edges = graph.num_nodes(), graph.num_edges()
    if degrees.size == 0:
        return DegreeSummary(0, 0, 0.0, 0, 0, 0.0)
    return DegreeSummary(
        num_nodes=num_nodes,
        num_edges=num_edges,
        mean_degree=float(degrees.mean()),
        max_degree=int(degrees.max()),
        min_degree=int(degrees.min()),
        std_degree=float(degrees.std(ddof=1)) if degrees.size > 1 else 0.0,
    )


def live_degree_summary(state: GraphBackend) -> DegreeSummary:
    """Degree summary straight off a live backend — no snapshot needed.

    Reads the backend's degree vector (one vectorized CSR pass on the
    array backend) instead of materialising per-node adjacency dicts, so
    it stays cheap inside hot monitoring loops.
    """
    degrees = state.degree_vector().astype(float)
    if degrees.size == 0:
        return DegreeSummary(0, 0, 0.0, 0, 0, 0.0)
    return DegreeSummary(
        num_nodes=state.num_alive(),
        num_edges=state.num_edges(),
        mean_degree=float(degrees.mean()),
        max_degree=int(degrees.max()),
        min_degree=int(degrees.min()),
        std_degree=float(degrees.std(ddof=1)) if degrees.size > 1 else 0.0,
    )


def max_degree(graph: Union[Snapshot, CSRView]) -> int:
    """Maximum undirected degree."""
    if isinstance(graph, CSRView):
        return int(graph.degrees.max()) if graph.n else 0
    if graph.num_nodes() == 0:
        return 0
    return max(len(nbrs) for nbrs in graph.adjacency.values())


def in_out_degree_split(snapshot: Snapshot) -> dict[int, tuple[int, int]]:
    """Per-node (out_requests, in_requests) from the snapshot's slots.

    ``out_requests`` counts the node's assigned slots; ``in_requests``
    counts slots of other nodes pointing at it.  Their sum can exceed the
    undirected degree because parallel requests collapse to one edge.
    """
    in_counts: dict[int, int] = {u: 0 for u in snapshot.nodes}
    out_counts: dict[int, int] = {}
    for u, slots in snapshot.out_slots.items():
        assigned = [t for t in slots if t is not None]
        out_counts[u] = len(assigned)
        for t in assigned:
            if t in in_counts:
                in_counts[t] += 1
    return {u: (out_counts.get(u, 0), in_counts[u]) for u in snapshot.nodes}


def degree_histogram(graph: Union[Snapshot, CSRView]) -> dict[int, int]:
    """Map degree value -> number of nodes with that degree."""
    if isinstance(graph, CSRView):
        values, counts = np.unique(graph.degrees, return_counts=True)
        return dict(zip(values.tolist(), counts.tolist()))
    hist: dict[int, int] = {}
    for nbrs in graph.adjacency.values():
        deg = len(nbrs)
        hist[deg] = hist.get(deg, 0) + 1
    return dict(sorted(hist.items()))
