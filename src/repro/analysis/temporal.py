"""Temporal structure of the dynamic graph: edge lifetimes and drift.

The paper's analysis is all about snapshots; these helpers quantify the
*between*-snapshot behaviour that makes the models hard: how long edges
live, how fast the topology decorrelates, and whether a run has reached
stationarity.  Used by the robustness experiment (EXP-17) and available
as a user-facing diagnostic toolkit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.core.csr import CSRView
from repro.core.snapshot import Snapshot
from repro.errors import AnalysisError
from repro.models.base import DynamicNetwork

GraphLike = Union[Snapshot, CSRView]


@dataclass(frozen=True)
class EdgeLifetimeStats:
    """Observed lifetimes of edges that were both created and destroyed
    inside the observation window."""

    observed: int
    mean: float
    median: float
    p90: float


def edge_lifetime_stats(
    network: DynamicNetwork, rounds: int
) -> EdgeLifetimeStats:
    """Advance *network* and record the lifetime of every edge that is
    created and later destroyed within the window.

    An undirected edge is identified by its endpoints; parallel
    re-creations restart the clock (matching the topology's semantics:
    the old edge is gone, the new one is new).
    """
    born_at: dict[tuple[int, int], float] = {}
    lifetimes: list[float] = []
    for _ in range(rounds):
        report = network.advance_round()
        for event in report.events:
            for edge in event.edges_created:
                key = _key(*edge.endpoints())
                born_at[key] = event.time
            for edge in event.edges_destroyed:
                key = _key(*edge.endpoints())
                start = born_at.pop(key, None)
                if start is not None:
                    lifetimes.append(event.time - start)
    if not lifetimes:
        raise AnalysisError("no complete edge lifetimes observed; run longer")
    data = np.asarray(lifetimes)
    return EdgeLifetimeStats(
        observed=int(data.size),
        mean=float(data.mean()),
        median=float(np.median(data)),
        p90=float(np.percentile(data, 90)),
    )


def snapshot_jaccard(a: GraphLike, b: GraphLike) -> float:
    """Jaccard similarity of the two graphs' edge sets.

    1.0 = identical topology, 0.0 = disjoint.  The decay of this value
    with time lag measures how fast the dynamic graph decorrelates.
    Accepts snapshots and CSR views in any combination — views are read
    straight off their arrays (one ``u < v`` mask plus a sort), so the
    array backend never freezes a dict to compare two windows.
    """
    keys_a = _edge_keys(a)
    keys_b = _edge_keys(b)
    intersection = np.intersect1d(keys_a, keys_b, assume_unique=True).size
    union = keys_a.size + keys_b.size - intersection
    if union == 0:
        return 1.0
    return intersection / union


def node_survival_curve(
    network: DynamicNetwork, horizons: list[int]
) -> list[float]:
    """Fraction of the current node set still alive after each horizon.

    Advances the network to the largest horizon (mutating it).  For the
    paper's models the curve should match e^{−h/n} (Poisson) or the
    linear ramp (streaming); heavy-tailed models decay faster early.
    """
    if horizons != sorted(horizons):
        raise AnalysisError("horizons must be sorted ascending")
    cohort = set(network.state.alive_ids())
    if not cohort:
        raise AnalysisError("no alive nodes to track")
    results: list[float] = []
    elapsed = 0
    for horizon in horizons:
        network.run_rounds(horizon - elapsed)
        elapsed = horizon
        alive = sum(1 for u in cohort if network.state.is_alive(u))
        results.append(alive / len(cohort))
    return results


def topology_change_rate(network: DynamicNetwork, rounds: int) -> float:
    """Average number of edge changes (created + destroyed) per round."""
    changes = 0
    for _ in range(rounds):
        report = network.advance_round()
        for event in report.events:
            changes += len(event.edges_created) + len(event.edges_destroyed)
    return changes / max(rounds, 1)


def stationarity_diagnostic(
    network: DynamicNetwork, probes: int = 10, spacing: int = 20
) -> dict[str, float]:
    """Probe the network repeatedly and report drift statistics.

    Returns the relative drift of node count and edge count between the
    first and second half of the probe sequence; values near 0 indicate
    stationarity.  Mutates the network (advances probes × spacing rounds).
    """
    sizes: list[int] = []
    edges: list[int] = []
    for _ in range(probes):
        network.run_rounds(spacing)
        sizes.append(network.state.num_alive())
        edges.append(network.state.num_edges())
    half = probes // 2
    if half == 0:
        raise AnalysisError("need at least 2 probes")

    def drift(series: list[int]) -> float:
        first = np.mean(series[:half])
        second = np.mean(series[half:])
        if first == 0:
            return float("inf") if second else 0.0
        return float(abs(second - first) / first)

    return {
        "size_drift": drift(sizes),
        "edge_drift": drift(edges),
        "mean_size": float(np.mean(sizes)),
        "mean_edges": float(np.mean(edges)),
    }


def _key(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u < v else (v, u)


def _edge_keys(graph: GraphLike) -> np.ndarray:
    """Sorted uint64 keys (``u << 32 | v`` with ``u < v``) of the distinct
    undirected edges — one comparable array per graph, either path."""
    if isinstance(graph, CSRView):
        owner = np.repeat(
            np.arange(graph.space, dtype=np.int64), np.diff(graph.indptr)
        )
        u = graph.vert_ids[owner].astype(np.int64)
        v = graph.vert_ids[graph.indices].astype(np.int64)
        keep = u < v
        u, v = u[keep], v[keep]
        if u.size and int(v.max()) >= 1 << 32:
            raise AnalysisError("node ids beyond 2^32 not supported here")
        keys = (u.astype(np.uint64) << np.uint64(32)) | v.astype(np.uint64)
        keys.sort()
        return keys
    edges = [
        (u << 32) | v
        for u, nbrs in graph.adjacency.items()
        for v in nbrs
        if u < v
    ]
    keys = np.asarray(edges, dtype=np.uint64)
    keys.sort()
    return keys
