"""KL-divergence machinery from the PDGR expansion proof (§4.3.1).

The middle-size-set union bound of Lemma 4.18 controls the probability
that a set with age profile ``k = (k_1, …, k_L)`` fails to expand by
rewriting the bound's logarithm as a KL divergence between

* ``p_m = k_m / k`` — the set's own (normalised) age profile, and
* ``q_m ∝ e^{-0.4 m} · min(1, (1.1 k (0.6 m + 1) / 0.8 n))^d`` — the
  paper's reference distribution combining slice survival probabilities
  with the age-dependent edge-probability bound of Lemma 4.15,

and invoking ``KL(p ‖ q) ≥ 0`` (Theorem A.3).  We implement the exact
quantities so tests can verify the proof's premise (``Σ q_m ≤ 1`` for the
paper's parameter regime, d ≥ 30 and k ≤ n/14) and experiments can report
measured profiles against ``q``.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import AnalysisError


def kl_divergence(p: Sequence[float], q: Sequence[float], base: float = 2.0) -> float:
    """``KL(p ‖ q) = Σ p_m log(p_m / q_m)`` (Theorem A.3's quantity).

    Requires ``q_m > 0`` wherever ``p_m > 0``.  Always ≥ 0 when both are
    probability vectors (Gibbs' inequality); may be negative if ``q`` is a
    sub-probability vector — which is exactly how the proof uses it.
    """
    if len(p) != len(q):
        raise AnalysisError("p and q must have the same length")
    total = 0.0
    for pm, qm in zip(p, q):
        if pm < 0 or qm < 0:
            raise AnalysisError("probabilities must be non-negative")
        if pm == 0:
            continue
        if qm == 0:
            return float("inf")
        total += pm * math.log(pm / qm, base)
    return total


def paper_profile_distribution(
    k: int, n: float, d: int, num_slices: int
) -> list[float]:
    """The reference (sub-)distribution ``q_m`` of Lemma 4.18.

    ``q_m = (10/9) · (0.6 n² / k²) · e^{-0.4 m} ·
    min(1, (1.1 k (0.6 m + 1) / (0.8 n)))^d`` for ``m = 1 … L``.
    """
    if k <= 0:
        raise AnalysisError(f"set size k must be positive, got {k}")
    out = []
    for m in range(1, num_slices + 1):
        edge_term = min(1.0, (1.1 * k * (0.6 * m + 1.0)) / (0.8 * n)) ** d
        out.append((10.0 / 9.0) * (0.6 * n * n / (k * k)) * math.exp(-0.4 * m) * edge_term)
    return out


def profile_distribution_mass(k: int, n: float, d: int, num_slices: int) -> float:
    """``Σ_m q_m`` — the proof needs this ≤ 1 for d ≥ 30, k ≤ n/14."""
    return sum(paper_profile_distribution(k, n, d, num_slices))


def nonexpansion_exponent(
    profile_counts: Sequence[int], n: float, d: int
) -> float:
    """The proof's per-set exponent ``-log₂ s(k, h) / k`` lower bound.

    Evaluates ``Σ_m (k_m/k) log₂((k_m/k) / q_m) + log₂(10/9)`` — formula
    (22)/(23) of the paper — for a concrete measured age profile.  The
    proof shows this is ≥ 0.15 in its regime; experiments report the
    measured value for real snapshots' demographics.
    """
    k = sum(profile_counts)
    if k == 0:
        raise AnalysisError("empty profile")
    num_slices = len(profile_counts)
    q = paper_profile_distribution(k, n, d, num_slices)
    p = [c / k for c in profile_counts]
    return kl_divergence(p, q, base=2.0) + math.log2(10.0 / 9.0)
