"""Graph analyses: expansion, isolation, degrees, ages, spectra, edge probabilities.

The hot analyses (expansion probes, degree summaries, isolated and
component censuses) accept either a frozen dict
:class:`~repro.core.snapshot.Snapshot` or a
:class:`~repro.core.csr.CSRView` from the vectorized analysis plane and
return identical results on both (see ``docs/architecture.md``).
"""

from repro.analysis.ages import AgeProfile, age_profile, age_slices
from repro.analysis.components import (
    component_sizes,
    component_summary,
    giant_component_fraction,
)
from repro.analysis.degrees import (
    degree_histogram,
    degree_summary,
    in_out_degree_split,
    live_degree_summary,
    max_degree,
)
from repro.analysis.edge_prob import (
    poisson_slot_destination_frequency,
    streaming_slot_destination_frequency,
)
from repro.analysis.expansion import (
    ExpansionProbe,
    adversarial_expansion_upper_bound,
    expansion_of_set,
    large_set_expansion_probe,
    probe_network_expansion,
    vertex_expansion_exact,
)
from repro.analysis.isolated import (
    IsolatedCensus,
    count_isolated,
    isolated_fraction,
    lifetime_isolated_census,
)
from repro.analysis.kl import (
    kl_divergence,
    paper_profile_distribution,
    profile_distribution_mass,
)
from repro.analysis.spectral import cheeger_bounds, normalized_laplacian_lambda2

__all__ = [
    "AgeProfile",
    "ExpansionProbe",
    "IsolatedCensus",
    "adversarial_expansion_upper_bound",
    "age_profile",
    "age_slices",
    "cheeger_bounds",
    "component_sizes",
    "component_summary",
    "count_isolated",
    "degree_histogram",
    "degree_summary",
    "expansion_of_set",
    "giant_component_fraction",
    "in_out_degree_split",
    "isolated_fraction",
    "kl_divergence",
    "large_set_expansion_probe",
    "lifetime_isolated_census",
    "live_degree_summary",
    "max_degree",
    "probe_network_expansion",
    "normalized_laplacian_lambda2",
    "paper_profile_distribution",
    "poisson_slot_destination_frequency",
    "profile_distribution_mass",
    "streaming_slot_destination_frequency",
    "vertex_expansion_exact",
]
