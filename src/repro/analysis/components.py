"""Connected-component structure of snapshots.

The models without regeneration are never connected for constant ``d``
(Lemmas 3.5/4.10 give Ω_d(n) isolated nodes) but keep a *giant component*
covering a 1 − exp(−Ω(d)) fraction; with regeneration the snapshot is an
expander, hence connected w.h.p.  These helpers quantify that split.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.snapshot import Snapshot


@dataclass(frozen=True)
class ComponentSummary:
    """Component census of one snapshot."""

    num_nodes: int
    num_components: int
    giant_size: int
    second_size: int
    num_isolated: int

    @property
    def giant_fraction(self) -> float:
        if self.num_nodes == 0:
            return 0.0
        return self.giant_size / self.num_nodes

    @property
    def is_connected(self) -> bool:
        return self.num_components == 1 and self.num_nodes > 0


def component_summary(snapshot: Snapshot) -> ComponentSummary:
    """Compute the component census of *snapshot*."""
    components = snapshot.connected_components()
    sizes = [len(c) for c in components]
    return ComponentSummary(
        num_nodes=snapshot.num_nodes(),
        num_components=len(components),
        giant_size=sizes[0] if sizes else 0,
        second_size=sizes[1] if len(sizes) > 1 else 0,
        num_isolated=sum(1 for s in sizes if s == 1),
    )


def giant_component_fraction(snapshot: Snapshot) -> float:
    """Fraction of nodes in the largest connected component."""
    return component_summary(snapshot).giant_fraction
