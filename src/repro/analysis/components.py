"""Connected-component structure of snapshots.

The models without regeneration are never connected for constant ``d``
(Lemmas 3.5/4.10 give Ω_d(n) isolated nodes) but keep a *giant component*
covering a 1 − exp(−Ω(d)) fraction; with regeneration the snapshot is an
expander, hence connected w.h.p.  These helpers quantify that split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.core.csr import CSRView
from repro.core.snapshot import Snapshot


@dataclass(frozen=True)
class ComponentSummary:
    """Component census of one snapshot."""

    num_nodes: int
    num_components: int
    giant_size: int
    second_size: int
    num_isolated: int

    @property
    def giant_fraction(self) -> float:
        if self.num_nodes == 0:
            return 0.0
        return self.giant_size / self.num_nodes

    @property
    def is_connected(self) -> bool:
        return self.num_components == 1 and self.num_nodes > 0


def component_labels(view: CSRView) -> np.ndarray:
    """Connected-component label of every vert (label propagation on CSR).

    Iterates min-label relaxation over the symmetric CSR adjacency with
    pointer jumping (``labels = labels[labels]``) until the fixpoint, so
    convergence is O(log n) passes even on long paths.  At the fixpoint
    the label of a vert is the smallest vert index in its component.
    """
    space = view.space
    labels = np.arange(space, dtype=np.int64)
    indptr, indices = view.indptr, view.indices
    if indices.size == 0:
        return labels
    degrees = np.diff(indptr)
    nonempty = np.nonzero(degrees > 0)[0]
    starts = indptr[nonempty]
    while True:
        relaxed = labels.copy()
        neighbor_min = np.minimum.reduceat(labels[indices], starts)
        relaxed[nonempty] = np.minimum(relaxed[nonempty], neighbor_min)
        relaxed = relaxed[relaxed]  # pointer jump
        if np.array_equal(relaxed, labels):
            return labels
        labels = relaxed


def component_sizes(view: CSRView) -> np.ndarray:
    """Connected-component sizes, largest first (vectorized)."""
    if view.n == 0:
        return np.zeros(0, dtype=np.int64)
    labels = component_labels(view)[view.alive_verts]
    _, counts = np.unique(labels, return_counts=True)
    return np.sort(counts)[::-1]


def component_summary(graph: Union[Snapshot, CSRView]) -> ComponentSummary:
    """Compute the component census of a snapshot or CSR view."""
    if isinstance(graph, CSRView):
        sizes_arr = component_sizes(graph)
        sizes = sizes_arr.tolist()
        num_nodes = graph.n
    else:
        sizes = [len(c) for c in graph.connected_components()]
        num_nodes = graph.num_nodes()
    return ComponentSummary(
        num_nodes=num_nodes,
        num_components=len(sizes),
        giant_size=sizes[0] if sizes else 0,
        second_size=sizes[1] if len(sizes) > 1 else 0,
        num_isolated=sum(1 for s in sizes if s == 1),
    )


def giant_component_fraction(graph: Union[Snapshot, CSRView]) -> float:
    """Fraction of nodes in the largest connected component."""
    return component_summary(graph).giant_fraction
