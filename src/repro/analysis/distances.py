"""Distance structure: diameters and typical path lengths.

Flooding time on a (temporarily) static topology is exactly the source's
eccentricity, so diameters connect the expansion results to the flooding
results; the central-cache baseline [23] explicitly claims an O(log n)
diameter, which EXP-13/EXP-16 verify with these helpers.

Every helper accepts a :class:`~repro.core.snapshot.Snapshot` (readable
dict reference) or a :class:`~repro.core.csr.CSRView` (vectorized
mask-frontier BFS, zero-copy on the array backend) and returns identical
results on either: sources, giant-component selection, random draws, and
the double-sweep far-node choice all follow the same canonical ascending
node-id order, so even tie-bound quantities agree bit-for-bit.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Union

import numpy as np

from repro.analysis.components import component_labels
from repro.core.csr import CSRView
from repro.core.snapshot import Snapshot
from repro.errors import AnalysisError
from repro.util.rng import SeedLike, make_rng

GraphLike = Union[Snapshot, CSRView]


# ----------------------------------------------------------------------
# vectorized single-source BFS (CSR path)
# ----------------------------------------------------------------------


def _bfs_levels_csr(view: CSRView, source_vert: int) -> np.ndarray:
    """Hop distance from *source_vert* over the vert space (−1 unreached)."""
    dist = np.full(view.space, -1, dtype=np.int64)
    dist[source_vert] = 0
    frontier = np.asarray([source_vert], dtype=np.int64)
    level = 0
    while frontier.size:
        flat, _ = view.gather_neighbors(frontier)
        if flat.size == 0:
            break
        flat = np.unique(flat)
        flat = flat[dist[flat] < 0]
        dist[flat] = level + 1
        frontier = flat
        level += 1
    return dist


def bfs_distances(graph: GraphLike, source: int) -> dict[int, int]:
    """Hop distances from *source* to every reachable node."""
    if isinstance(graph, CSRView):
        try:
            source_vert = graph.vert_of(source)
        except KeyError:
            raise AnalysisError(f"source {source} not in snapshot") from None
        dist = _bfs_levels_csr(graph, source_vert)
        reached = np.nonzero(dist >= 0)[0]
        return dict(
            zip(
                graph.vert_ids[reached].tolist(),
                dist[reached].tolist(),
            )
        )
    snapshot = graph
    if source not in snapshot.nodes:
        raise AnalysisError(f"source {source} not in snapshot")
    distances = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in snapshot.adjacency[u]:
            if v not in distances:
                distances[v] = distances[u] + 1
                queue.append(v)
    return distances


def eccentricity(graph: GraphLike, source: int) -> int:
    """Largest hop distance from *source* within its component."""
    if isinstance(graph, CSRView):
        try:
            source_vert = graph.vert_of(source)
        except KeyError:
            raise AnalysisError(f"source {source} not in snapshot") from None
        dist = _bfs_levels_csr(graph, source_vert)
        return int(dist.max())
    return max(bfs_distances(graph, source).values())


# ----------------------------------------------------------------------
# giant-component selection (canonical across paths)
# ----------------------------------------------------------------------


def _giant_ids(graph: GraphLike) -> list[int]:
    """Node ids of the giant component, ascending.

    Among components of maximal size the one containing the smallest node
    id wins — the same deterministic rule on both paths, so tie-bound
    downstream quantities (diameter restarts, path samples) agree.
    """
    if isinstance(graph, CSRView):
        if graph.n == 0:
            return []
        labels = component_labels(graph)[graph.alive_verts]
        uniq, inverse, counts = np.unique(
            labels, return_inverse=True, return_counts=True
        )
        winners = np.nonzero(counts == counts.max())[0]
        # graph.ids is ascending, so the first alive vert of a label is
        # its smallest member id; the first winning label encountered
        # along ids order is the one containing the overall smallest id.
        first_member = np.full(uniq.size, graph.n, dtype=np.int64)
        np.minimum.at(first_member, inverse, np.arange(graph.n))
        giant_label = winners[np.argmin(first_member[winners])]
        return graph.ids[inverse == giant_label].tolist()
    components = graph.connected_components()
    if not components:
        return []
    top = max(len(c) for c in components)
    giant = min(
        (c for c in components if len(c) == top), key=min
    )
    return sorted(giant)


def giant_component_diameter(
    graph: GraphLike, exact_limit: int = 600, seed: SeedLike = None
) -> int:
    """Diameter of the largest component.

    Exact (all-pairs via per-node BFS) for components up to *exact_limit*
    nodes; beyond that, a standard double-sweep lower bound refined from
    32 random restarts (tight in practice on expanders).
    """
    giant = _giant_ids(graph)
    if not giant:
        raise AnalysisError("empty snapshot has no diameter")
    if len(giant) == 1:
        return 0
    is_view = isinstance(graph, CSRView)
    if len(giant) <= exact_limit:
        if is_view:
            return max(
                int(_bfs_levels_csr(graph, graph.vert_of(u)).max())
                for u in giant
            )
        return max(_component_eccentricity(graph, u, giant) for u in giant)
    rng = make_rng(seed)
    best = 0
    for _ in range(32):
        start = giant[int(rng.integers(0, len(giant)))]
        far_node, far_distance = _farthest(graph, start)
        best = max(best, far_distance)
        best = max(best, _farthest(graph, far_node)[1])
    return best


def _farthest(graph: GraphLike, source: int) -> tuple[int, int]:
    """The farthest node from *source* (smallest id on ties) and its
    distance — the double-sweep pivot, canonical on both paths."""
    if isinstance(graph, CSRView):
        dist = _bfs_levels_csr(graph, graph.vert_of(source))
        far = int(dist.max())
        at_max = np.nonzero(dist == far)[0]
        return int(graph.vert_ids[at_max].min()), far
    distances = bfs_distances(graph, source)
    far = max(distances.values())
    return min(u for u, d in distances.items() if d == far), far


def average_shortest_path_sample(
    graph: GraphLike, num_sources: int = 16, seed: SeedLike = None
) -> float:
    """Mean hop distance over sampled sources (giant component only)."""
    giant = _giant_ids(graph)
    if len(giant) < 2:
        raise AnalysisError("need a component with at least 2 nodes")
    rng = make_rng(seed)
    picks = rng.choice(len(giant), size=min(num_sources, len(giant)), replace=False)
    is_view = isinstance(graph, CSRView)
    total = 0.0
    count = 0
    for index in picks:
        source = giant[int(index)]
        if is_view:
            dist = _bfs_levels_csr(graph, graph.vert_of(source))
            total += int(dist[dist > 0].sum())
            count += int((dist >= 0).sum()) - 1
        else:
            distances = bfs_distances(graph, source)
            total += sum(d for d in distances.values() if d > 0)
            count += len(distances) - 1
    if count == 0:
        raise AnalysisError("no pairs sampled")
    return total / count


def _component_eccentricity(
    snapshot: Snapshot, source: int, component: Iterable[int]
) -> int:
    distances = bfs_distances(snapshot, source)
    return max(distances[v] for v in component)
