"""Distance structure: diameters and typical path lengths.

Flooding time on a (temporarily) static topology is exactly the source's
eccentricity, so diameters connect the expansion results to the flooding
results; the central-cache baseline [23] explicitly claims an O(log n)
diameter, which EXP-13/EXP-16 verify with these helpers.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.core.snapshot import Snapshot
from repro.errors import AnalysisError
from repro.util.rng import SeedLike, make_rng


def bfs_distances(snapshot: Snapshot, source: int) -> dict[int, int]:
    """Hop distances from *source* to every reachable node."""
    if source not in snapshot.nodes:
        raise AnalysisError(f"source {source} not in snapshot")
    distances = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in snapshot.adjacency[u]:
            if v not in distances:
                distances[v] = distances[u] + 1
                queue.append(v)
    return distances


def eccentricity(snapshot: Snapshot, source: int) -> int:
    """Largest hop distance from *source* within its component."""
    return max(bfs_distances(snapshot, source).values())


def giant_component_diameter(
    snapshot: Snapshot, exact_limit: int = 600, seed: SeedLike = None
) -> int:
    """Diameter of the largest component.

    Exact (all-pairs via per-node BFS) for components up to *exact_limit*
    nodes; beyond that, a standard double-sweep lower bound refined from
    32 random restarts (tight in practice on expanders).
    """
    components = snapshot.connected_components()
    if not components:
        raise AnalysisError("empty snapshot has no diameter")
    giant = components[0]
    if len(giant) == 1:
        return 0
    if len(giant) <= exact_limit:
        return max(_component_eccentricity(snapshot, u, giant) for u in giant)
    rng = make_rng(seed)
    nodes = sorted(giant)
    best = 0
    for _ in range(32):
        start = nodes[int(rng.integers(0, len(nodes)))]
        distances = bfs_distances(snapshot, start)
        far_node, far_distance = max(distances.items(), key=lambda kv: kv[1])
        best = max(best, far_distance)
        second = bfs_distances(snapshot, far_node)
        best = max(best, max(second.values()))
    return best


def average_shortest_path_sample(
    snapshot: Snapshot, num_sources: int = 16, seed: SeedLike = None
) -> float:
    """Mean hop distance over sampled sources (giant component only)."""
    components = snapshot.connected_components()
    if not components or len(components[0]) < 2:
        raise AnalysisError("need a component with at least 2 nodes")
    giant = sorted(components[0])
    rng = make_rng(seed)
    picks = rng.choice(len(giant), size=min(num_sources, len(giant)), replace=False)
    total = 0.0
    count = 0
    for index in picks:
        distances = bfs_distances(snapshot, giant[int(index)])
        total += sum(d for d in distances.values() if d > 0)
        count += len(distances) - 1
    if count == 0:
        raise AnalysisError("no pairs sampled")
    return total / count


def _component_eccentricity(
    snapshot: Snapshot, source: int, component: Iterable[int]
) -> int:
    distances = bfs_distances(snapshot, source)
    return max(distances[v] for v in component)
