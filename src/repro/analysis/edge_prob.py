"""Empirical edge-destination probabilities (Lemmas 3.14 and 4.15).

With edge regeneration, an old node accumulates extra chances of being
chosen: every time a request's destination dies the request re-samples, so
the probability that a *specific older* node ``v`` is the current
destination of a fixed request of ``u`` grows with ``u``'s age — the
lemmas bound it by ``(1/(n−1))·(1+1/(n−1))^k`` (streaming, ``u`` of age
``k+1``) and ``(1/0.8n)·(1+i/1.7n)`` (Poisson, ``u`` born ``i`` rounds
ago).

Streaming case: :func:`streaming_slot_destination_frequency` runs an
*exact* standalone simulation of one request under the streaming churn
(the deterministic age structure makes the full network irrelevant), so
the empirical frequency can be compared to the bound at high precision.

Poisson case: :func:`poisson_slot_destination_frequency` measures, on a
live PDGR snapshot, the per-pair frequency that a request of an age-``i``
node points to an older node, bucketed by the owner's age.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.snapshot import Snapshot
from repro.errors import ConfigurationError
from repro.util.rng import SeedLike, make_rng


def streaming_bound(n: int, k: int) -> float:
    """Lemma 3.14's bound for an older target: (1/(n−1))·(1+1/(n−1))^k."""
    return (1.0 / (n - 1)) * (1.0 + 1.0 / (n - 1)) ** k


def poisson_bound(n: float, i: float) -> float:
    """Lemma 4.15's bound for an older target: (1/0.8n)·(1+i/1.7n)."""
    return (1.0 / (0.8 * n)) * (1.0 + i / (1.7 * n))


@dataclass(frozen=True)
class SlotFrequency:
    """Empirical request-destination frequency vs the paper's bound."""

    empirical: float
    bound: float
    trials: int

    @property
    def within_bound(self) -> bool:
        # Three-sigma slack for the binomial noise of the estimate.
        sigma = (self.empirical * (1 - self.empirical) / max(self.trials, 1)) ** 0.5
        return self.empirical <= self.bound + 3 * sigma


def streaming_slot_destination_frequency(
    n: int,
    owner_rounds: int,
    target_age: int,
    trials: int = 50_000,
    seed: SeedLike = None,
) -> SlotFrequency:
    """Exact mini-simulation of one SDGR request over *owner_rounds* rounds.

    The owner ``u`` is born at round 0 into a full streaming network
    (other nodes have ages 1 … n−1); one request is tracked for
    *owner_rounds* rounds (so ``u`` has age ``owner_rounds`` at
    measurement).  The measured event is "the request currently points at
    the specific node of age *target_age*" where ``target_age >
    owner_rounds`` selects a node *older* than ``u`` (it must be
    ``< n`` so the target is still alive).

    Node identities are birth rounds: ``u = 0``; the node of age ``a`` at
    measurement round ``R`` is ``R − a``.  At round ``r`` the node ``r−n``
    dies; a dead destination re-samples uniformly among the ``n−2`` alive
    non-owner nodes (death → regeneration → birth order, see DESIGN.md).
    """
    if not 0 < owner_rounds < n:
        raise ConfigurationError("owner_rounds must be in (0, n)")
    if not owner_rounds < target_age < n:
        raise ConfigurationError(
            "target must be older than the owner and still alive: "
            f"need owner_rounds < target_age < n, got {target_age}"
        )
    rng = make_rng(seed)
    target_id = owner_rounds - target_age  # v's birth round (negative)
    hits = 0
    for _ in range(trials):
        # Initial choice: uniform among birth rounds −(n−1) … −1.
        slot = -int(rng.integers(1, n))
        for r in range(1, owner_rounds + 1):
            if slot == r - n:  # destination dies this round
                slot = _sample_streaming_replacement(rng, r, n)
        if slot == target_id:
            hits += 1
    return SlotFrequency(
        empirical=hits / trials,
        bound=streaming_bound(n, owner_rounds),
        trials=trials,
    )


def _sample_streaming_replacement(rng: np.random.Generator, r: int, n: int) -> int:
    """Uniform alive non-owner id right after the round-*r* death.

    Alive ids are ``r−n+1 … r−1`` (the newborn ``r`` arrives later);
    the owner is id 0 and is excluded.
    """
    low, high = r - n + 1, r - 1
    while True:
        candidate = int(rng.integers(low, high + 1))
        if candidate != 0:
            return candidate


@dataclass(frozen=True)
class AgeBucketFrequency:
    """Per-pair request frequency towards older nodes, for one age bucket."""

    age_low: float
    age_high: float
    num_owners: int
    per_pair_frequency: float
    bound_at_bucket: float


def poisson_slot_destination_frequency(
    snapshot: Snapshot, n: float, num_buckets: int = 6
) -> list[AgeBucketFrequency]:
    """Measure per-pair older-target request frequencies on a PDGR snapshot.

    For every node ``u`` (with ``o_u`` strictly older alive nodes), each of
    its assigned requests points at a *specific* older node with average
    probability ``(#requests of u towards older nodes) / (d · o_u)``.
    Owners are bucketed by age; Lemma 4.15's bound is evaluated at each
    bucket's upper edge with the round-age conversion ``i ≈ 2 · age``
    (at stationarity the jump chain makes ≈ 2 events per time unit).
    """
    ages = snapshot.ages()
    order = sorted(snapshot.nodes, key=lambda u: ages[u])
    total = len(order)
    if total < 4:
        raise ConfigurationError("snapshot too small to bucket")
    max_age = ages[order[-1]]
    edges = np.linspace(0.0, max_age + 1e-9, num_buckets + 1)
    rank = {u: idx for idx, u in enumerate(order)}  # idx = #younger-or-equal-1

    sums = [0.0] * num_buckets
    counts = [0] * num_buckets
    for u in snapshot.nodes:
        older = total - 1 - rank[u]
        if older == 0:
            continue
        slots = [t for t in snapshot.out_slots[u] if t is not None]
        if not slots:
            continue
        towards_older = sum(1 for t in slots if ages.get(t, -1.0) > ages[u])
        per_pair = towards_older / (len(slots) * older)
        bucket = min(int(np.searchsorted(edges, ages[u], side="right")) - 1, num_buckets - 1)
        sums[bucket] += per_pair
        counts[bucket] += 1

    out: list[AgeBucketFrequency] = []
    for b in range(num_buckets):
        if counts[b] == 0:
            continue
        age_high = float(edges[b + 1])
        out.append(
            AgeBucketFrequency(
                age_low=float(edges[b]),
                age_high=age_high,
                num_owners=counts[b],
                per_pair_frequency=sums[b] / counts[b],
                bound_at_bucket=poisson_bound(n, 2.0 * age_high),
            )
        )
    return out
