"""Incremental churn-aware expansion probing: BFS-ball reuse across windows.

Between dense observation windows only a small churn delta touches the
graph, yet the cold expansion portfolio
(:func:`~repro.analysis.expansion.adversarial_expansion_upper_bound`)
recomputes every BFS ball from scratch.  :class:`ProbeCache` removes that
redundancy without changing a single bit of the result:

* the backend's mutation tracker
  (:meth:`~repro.core.backend.GraphBackend.track_mutations` /
  :meth:`~repro.core.backend.GraphBackend.drain_touched`) supplies the
  *dirty set* — every node whose incident topology changed since the
  last probe;
* a cached root's ball trajectory is **valid** when the new graph holds
  no dirty node within its final kept-ball radius.  Validity is decided
  by one multi-source BFS from the dirty set: if some ball member were
  dirty, the old root→member path's prefix up to the *first* dirty node
  consists of edges between non-dirty nodes — all unchanged and alive —
  so the dirty set stays within reach in the new graph too (dead nodes
  cannot be a first dirty hop: every former neighbour of a dead node is
  itself dirty).  Valid balls are provably unchanged, shells included,
  because BFS layers depend only on members' incident edges;
* valid roots replay their cached ``(radius, size, xor, ratio)``
  entries into the candidate stream; invalidated, newborn, and
  never-seen roots re-run the recording ball kernel
  (:class:`~repro.analysis.expansion.BallRecorder`); the merged stream
  is scored by :meth:`~repro.analysis.expansion._CSRProbe.score_recorded`
  and the greedy/random phases run fresh with identical RNG consumption.

Entries are cached *pre-dedupe* (the dedupe context changes as other
balls churn), and every scoring primitive — the
:func:`~repro.core.csr.candidate_key` dedupe, the distinct-candidate
count, the ``(ratio, |S|, sorted ids)`` tie-break — is evaluation-order
independent, so probe minima, witnesses, and ``candidates_checked`` are
bit-identical to a cold recompute (the parity suite and a hypothesis
property test assert this on both backends).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.expansion import BallRecorder, ExpansionProbe, _CSRProbe
from repro.core.backend import GraphBackend
from repro.core.csr import CSRView
from repro.errors import AnalysisError
from repro.util.rng import SeedLike, make_rng


class ProbeCache:
    """Window-to-window BFS-ball cache for the expansion portfolio.

    Args:
        backend: the live topology backend to track (mutation tracking
            is enabled at construction; every probe drains the touched
            ids accumulated since the previous probe).
        num_random_sets: random candidates per probe (phase 4).
        greedy_restarts: greedy growth seeds per probe (phase 3).
        min_size: smallest candidate size scored.
        max_size: largest candidate size scored (``None`` = ``n // 2``,
            re-resolved per window; a changed effective window flushes
            the cache).

    Use one cache per (backend, portfolio-parameter) combination and
    call :meth:`probe` once per observation window.  ``last_stats``
    reports the replay/recompute split of the most recent probe.
    """

    def __init__(
        self,
        backend: GraphBackend,
        num_random_sets: int = 200,
        greedy_restarts: int = 8,
        min_size: int = 1,
        max_size: int | None = None,
    ) -> None:
        self.backend = backend
        self.num_random_sets = int(num_random_sets)
        self.greedy_restarts = int(greedy_restarts)
        self.min_size = int(min_size)
        self.max_size = None if max_size is None else int(max_size)
        self.last_stats: dict[str, int] = {}
        backend.track_mutations()
        # Drain anything recorded before this cache existed: the first
        # probe is cold regardless.
        backend.drain_touched()
        self._window: tuple[int, int] | None = None
        self.flush()

    # ------------------------------------------------------------------
    # cache arena (roots sorted ascending; entries grouped per root)
    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Drop every cached ball (the next probe recomputes cold)."""
        self._roots = np.empty(0, dtype=np.int64)
        self._radii = np.empty(0, dtype=np.int64)
        self._eoff = np.zeros(1, dtype=np.int64)
        self._e_root = np.empty(0, dtype=np.int64)
        self._e_radius = np.empty(0, dtype=np.int64)
        self._e_size = np.empty(0, dtype=np.int64)
        self._e_xor = np.empty(0, dtype=np.uint64)
        self._e_ratio = np.empty(0, dtype=np.float64)

    def _store(
        self,
        roots: np.ndarray,
        radii: np.ndarray,
        entries: tuple[np.ndarray, ...],
    ) -> None:
        order = np.argsort(roots)
        self._roots = roots[order]
        self._radii = radii[order]
        e_root, e_radius, e_size, e_xor, e_ratio = entries
        eorder = np.argsort(e_root, kind="stable")
        self._e_root = e_root[eorder]
        self._e_radius = e_radius[eorder]
        self._e_size = e_size[eorder]
        self._e_xor = e_xor[eorder]
        self._e_ratio = e_ratio[eorder]
        self._eoff = np.concatenate(
            [
                np.searchsorted(self._e_root, self._roots),
                np.asarray([self._e_root.size], dtype=np.int64),
            ]
        )

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------

    def _dirty_distances(
        self, view: CSRView, dirty: set[int], r_max: int
    ) -> np.ndarray:
        """Hop distance from the alive dirty set, −1 beyond ``r_max``."""
        dist = np.full(view.space, -1, dtype=np.int64)
        ids = view.ids
        if ids.size == 0 or not dirty:
            return dist
        dirty_ids = np.fromiter(dirty, dtype=np.int64, count=len(dirty))
        dirty_ids.sort()
        pos = np.searchsorted(ids, dirty_ids)
        in_range = pos < ids.size
        pos = pos[in_range]
        frontier = view.alive_verts[pos[ids[pos] == dirty_ids[in_range]]]
        if frontier.size == 0:
            return dist
        dist[frontier] = 0
        level = 0
        while frontier.size and level < r_max:
            flat, _ = view.gather_neighbors(frontier)
            if flat.size == 0:
                break
            flat = np.unique(flat)
            flat = flat[dist[flat] < 0]
            dist[flat] = level + 1
            frontier = flat
            level += 1
        return dist

    # ------------------------------------------------------------------
    # the probe
    # ------------------------------------------------------------------

    def probe(self, view: CSRView, seed: SeedLike = None) -> ExpansionProbe:
        """Probe *view*, reusing every ball churn did not reach.

        Bit-identical to
        ``adversarial_expansion_upper_bound(view, seed, ...)`` with this
        cache's portfolio parameters.
        """
        n = view.n
        if n < 2:
            raise AnalysisError("vertex expansion needs at least 2 nodes")
        max_size = n // 2 if self.max_size is None else min(self.max_size, n // 2)
        if self.min_size > max_size:
            raise AnalysisError(
                f"empty size window [{self.min_size}, {max_size}]"
            )
        window = (self.min_size, max_size)
        dirty = self.backend.drain_touched()
        if window != self._window:
            # A different effective size window changes every ball's
            # growth trajectory; start over.
            self._window = window
            self.flush()

        ids = view.ids  # alive node ids, ascending
        cached = self._roots
        if cached.size:
            # Cached roots still alive keep ascending positions in ids.
            pos = np.searchsorted(ids, cached)
            pos_clip = np.minimum(pos, max(ids.size - 1, 0))
            alive = ids[pos_clip] == cached
            r_alive = self._radii[alive]
            r_max = int(r_alive.max()) if r_alive.size else 0
            dist = self._dirty_distances(view, dirty, r_max)
            root_verts = view.alive_verts[pos_clip]
            reached = (dist[root_verts] >= 0) & (
                dist[root_verts] <= self._radii
            )
            valid = alive & ~reached
        else:
            valid = np.zeros(0, dtype=bool)

        valid_roots = cached[valid]
        fresh_ids = np.setdiff1d(ids, valid_roots, assume_unique=True)
        fresh_verts = view.alive_verts[np.searchsorted(ids, fresh_ids)]

        recorder = BallRecorder()
        probe = _CSRProbe(view, self.min_size, max_size, recorder=recorder)
        probe.ball_phase(fresh_verts)

        new_roots, new_radii = recorder.roots()
        new_entries = recorder.entries()
        keep_entry = np.repeat(valid, np.diff(self._eoff))
        merged = tuple(
            np.concatenate([old[keep_entry], new])
            for old, new in zip(
                (
                    self._e_root,
                    self._e_radius,
                    self._e_size,
                    self._e_xor,
                    self._e_ratio,
                ),
                new_entries,
            )
        )
        probe.score_recorded(*merged)
        probe.greedy_phase(self.greedy_restarts)
        probe.random_phase(make_rng(seed), self.num_random_sets)
        result = probe.result()

        self._store(
            np.concatenate([valid_roots, new_roots]),
            np.concatenate([self._radii[valid], new_radii]),
            merged,
        )
        self.last_stats = {
            "alive": int(n),
            "dirty": len(dirty),
            "replayed": int(valid_roots.size),
            "recomputed": int(fresh_ids.size),
        }
        return result
