"""Spectral expansion proxies.

Exact vertex expansion is intractable at scale, so EXP-03 supplements the
adversarial combinatorial probes with the spectral gap of the normalized
Laplacian on the giant component: Cheeger's inequality sandwiches the
*conductance* Φ as ``λ₂ / 2 ≤ Φ ≤ √(2 λ₂)``, and conductance lower-bounds
vertex expansion up to the maximum degree (``h_out ≥ Φ`` for the boundary
counted with edges, divided by d_max to convert edge- to vertex-boundary).
A spectral gap bounded away from zero across n is independent evidence for
the Θ(1)-expander claims (Theorems 3.15/4.16).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.core.snapshot import Snapshot
from repro.errors import AnalysisError


@dataclass(frozen=True)
class CheegerBounds:
    """Conductance bounds derived from the spectral gap."""

    lambda2: float
    conductance_lower: float
    conductance_upper: float
    vertex_expansion_lower: float


def normalized_laplacian_lambda2(snapshot: Snapshot, on_giant: bool = True) -> float:
    """Second-smallest eigenvalue of the normalized Laplacian.

    Args:
        snapshot: graph to analyse.
        on_giant: restrict to the largest connected component (otherwise a
            disconnected graph trivially has λ₂ = 0).
    """
    if on_giant:
        components = snapshot.connected_components()
        if not components:
            raise AnalysisError("empty graph has no spectral gap")
        nodes = sorted(components[0])
    else:
        nodes = sorted(snapshot.nodes)
    n = len(nodes)
    if n < 3:
        raise AnalysisError(f"need at least 3 nodes, got {n}")
    index = {u: i for i, u in enumerate(nodes)}
    rows: list[int] = []
    cols: list[int] = []
    node_set = set(nodes)
    for u in nodes:
        for v in snapshot.adjacency[u]:
            if v in node_set:
                rows.append(index[u])
                cols.append(index[v])
    data = np.ones(len(rows), dtype=float)
    adjacency = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    if np.any(degrees == 0):
        raise AnalysisError("giant component contains an isolated node (bug)")
    inv_sqrt = sp.diags(1.0 / np.sqrt(degrees))
    laplacian = sp.identity(n) - inv_sqrt @ adjacency @ inv_sqrt
    if n <= 400:
        eigenvalues = np.linalg.eigvalsh(laplacian.toarray())
        return float(np.sort(eigenvalues)[1])
    eigenvalues = spla.eigsh(
        laplacian, k=2, sigma=-0.01, which="LM", return_eigenvectors=False
    )
    return float(np.sort(eigenvalues)[1])


def cheeger_bounds(snapshot: Snapshot, on_giant: bool = True) -> CheegerBounds:
    """Cheeger sandwich for conductance plus a vertex-expansion lower bound.

    ``h_out ≥ Φ · d_min / d_max`` is loose but rigorous: every edge leaving
    a set lands on a boundary vertex that absorbs at most ``d_max`` edges,
    and each set vertex carries at least ``d_min`` volume.
    """
    lam2 = normalized_laplacian_lambda2(snapshot, on_giant=on_giant)
    degrees = [len(snapshot.adjacency[u]) for u in snapshot.nodes if snapshot.adjacency[u]]
    d_max = max(degrees) if degrees else 1
    d_min = min(degrees) if degrees else 1
    phi_lower = lam2 / 2.0
    phi_upper = math.sqrt(max(0.0, 2.0 * lam2))
    return CheegerBounds(
        lambda2=lam2,
        conductance_lower=phi_lower,
        conductance_upper=phi_upper,
        vertex_expansion_lower=phi_lower * d_min / d_max,
    )
