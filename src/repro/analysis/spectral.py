"""Spectral expansion proxies.

Exact vertex expansion is intractable at scale, so EXP-03 supplements the
adversarial combinatorial probes with the spectral gap of the normalized
Laplacian on the giant component: Cheeger's inequality sandwiches the
*conductance* Φ as ``λ₂ / 2 ≤ Φ ≤ √(2 λ₂)``, and conductance lower-bounds
vertex expansion up to the maximum degree (``h_out ≥ Φ`` for the boundary
counted with edges, divided by d_max to convert edge- to vertex-boundary).
A spectral gap bounded away from zero across n is independent evidence for
the Θ(1)-expander claims (Theorems 3.15/4.16).

Both entry points accept ``Snapshot | CSRView``.  On a
:class:`~repro.core.csr.CSRView` the scipy CSR matrix is assembled
directly from the view's ``indptr``/``indices`` arrays — no Python-dict
traversal, no COO staging — and the giant component comes from the
vectorized label-propagation census, so the spectral plane rides the
same zero-copy export as the rest of the CSR analyses.  The Snapshot
path is kept verbatim as the readable reference; the two agree to
floating-point roundoff on the same topology
(``tests/test_analysis_csr.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.analysis.components import component_labels
from repro.core.csr import CSRView
from repro.core.snapshot import Snapshot
from repro.errors import AnalysisError


@dataclass(frozen=True)
class CheegerBounds:
    """Conductance bounds derived from the spectral gap."""

    lambda2: float
    conductance_lower: float
    conductance_upper: float
    vertex_expansion_lower: float


def _lambda2_of_adjacency(adjacency: sp.csr_matrix) -> float:
    """λ₂ of the normalized Laplacian of one connected adjacency matrix."""
    n = adjacency.shape[0]
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    if np.any(degrees == 0):
        raise AnalysisError("giant component contains an isolated node (bug)")
    inv_sqrt = sp.diags(1.0 / np.sqrt(degrees))
    laplacian = sp.identity(n) - inv_sqrt @ adjacency @ inv_sqrt
    if n <= 400:
        eigenvalues = np.linalg.eigvalsh(laplacian.toarray())
        return float(np.sort(eigenvalues)[1])
    eigenvalues = spla.eigsh(
        laplacian, k=2, sigma=-0.01, which="LM", return_eigenvectors=False
    )
    return float(np.sort(eigenvalues)[1])


def _giant_verts(view: CSRView) -> np.ndarray:
    """Verts of the largest component, in ascending node-id order.

    ``alive_verts`` is already canonically ordered, so selecting from it
    keeps the row order of the extracted submatrix identical to the
    Snapshot path's ``sorted(component)`` ordering.
    """
    labels = component_labels(view)[view.alive_verts]
    unique, counts = np.unique(labels, return_counts=True)
    giant_label = unique[np.argmax(counts)]
    return view.alive_verts[labels == giant_label]


def _view_adjacency(view: CSRView, verts: np.ndarray) -> sp.csr_matrix:
    """The scipy CSR adjacency of *verts*, built from the view's arrays.

    The full-space matrix wraps ``indptr``/``indices`` as-is (the data
    vector of ones is the only allocation); restricting to *verts* is
    one scipy submatrix gather.
    """
    full = sp.csr_matrix(
        (
            np.ones(view.indices.size, dtype=float),
            view.indices,
            view.indptr,
        ),
        shape=(view.space, view.space),
    )
    if verts.size == view.space:
        return full
    return full[verts][:, verts].tocsr()


def normalized_laplacian_lambda2(
    graph: Union[Snapshot, CSRView], on_giant: bool = True
) -> float:
    """Second-smallest eigenvalue of the normalized Laplacian.

    Args:
        graph: topology to analyse — a frozen :class:`Snapshot` (the
            dict reference path) or a :class:`~repro.core.csr.CSRView`
            (the vectorized path; zero-copy on the array backend).
        on_giant: restrict to the largest connected component (otherwise
            a disconnected graph trivially has λ₂ = 0).
    """
    if isinstance(graph, CSRView):
        if graph.n == 0:
            raise AnalysisError("empty graph has no spectral gap")
        verts = _giant_verts(graph) if on_giant else graph.alive_verts
        if verts.size < 3:
            raise AnalysisError(f"need at least 3 nodes, got {verts.size}")
        return _lambda2_of_adjacency(_view_adjacency(graph, verts))

    snapshot = graph
    if on_giant:
        components = snapshot.connected_components()
        if not components:
            raise AnalysisError("empty graph has no spectral gap")
        nodes = sorted(components[0])
    else:
        nodes = sorted(snapshot.nodes)
    n = len(nodes)
    if n < 3:
        raise AnalysisError(f"need at least 3 nodes, got {n}")
    index = {u: i for i, u in enumerate(nodes)}
    rows: list[int] = []
    cols: list[int] = []
    node_set = set(nodes)
    for u in nodes:
        for v in snapshot.adjacency[u]:
            if v in node_set:
                rows.append(index[u])
                cols.append(index[v])
    data = np.ones(len(rows), dtype=float)
    adjacency = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    return _lambda2_of_adjacency(adjacency)


def cheeger_bounds(
    graph: Union[Snapshot, CSRView], on_giant: bool = True
) -> CheegerBounds:
    """Cheeger sandwich for conductance plus a vertex-expansion lower bound.

    ``h_out ≥ Φ · d_min / d_max`` is loose but rigorous: every edge leaving
    a set lands on a boundary vertex that absorbs at most ``d_max`` edges,
    and each set vertex carries at least ``d_min`` volume.
    """
    lam2 = normalized_laplacian_lambda2(graph, on_giant=on_giant)
    if isinstance(graph, CSRView):
        nonzero = graph.degrees[graph.degrees > 0]
        d_max = int(nonzero.max()) if nonzero.size else 1
        d_min = int(nonzero.min()) if nonzero.size else 1
    else:
        degrees = [
            len(graph.adjacency[u]) for u in graph.nodes if graph.adjacency[u]
        ]
        d_max = max(degrees) if degrees else 1
        d_min = min(degrees) if degrees else 1
    phi_lower = lam2 / 2.0
    phi_upper = math.sqrt(max(0.0, 2.0 * lam2))
    return CheegerBounds(
        lambda2=lam2,
        conductance_lower=phi_lower,
        conductance_upper=phi_upper,
        vertex_expansion_lower=phi_lower * d_min / d_max,
    )
