"""Isolated-node census (Lemmas 3.5 and 4.10).

The negative results for the models *without* edge regeneration rest on two
facts: (i) a snapshot contains Ω_d(n) isolated nodes, and (ii) those nodes
*stay* isolated for the rest of their lives.  :func:`count_isolated`
measures (i) on a snapshot; :func:`lifetime_isolated_census` measures both
by running the network forward and watching whether any currently-isolated
node ever regains an edge before dying.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.csr import CSRView
from repro.core.snapshot import Snapshot
from repro.models.base import DynamicNetwork


def count_isolated(graph: Union[Snapshot, CSRView]) -> int:
    """Number of degree-0 nodes in the snapshot or CSR view."""
    if isinstance(graph, CSRView):
        return int((graph.degrees == 0).sum())
    return len(graph.isolated_nodes())


def isolated_fraction(graph: Union[Snapshot, CSRView]) -> float:
    """Fraction of alive nodes that are isolated."""
    n = graph.n if isinstance(graph, CSRView) else graph.num_nodes()
    if n == 0:
        return 0.0
    return count_isolated(graph) / n


@dataclass(frozen=True)
class IsolatedCensus:
    """Result of tracking the isolated nodes of one snapshot to their deaths.

    Attributes:
        initial_isolated: nodes isolated at the census start.
        network_size: |N_t| at the census start.
        reconnected: how many of them gained an edge before dying.
        died_isolated: how many died without ever regaining an edge.
        still_alive: how many were still alive (and isolated) at the
            observation horizon.
    """

    initial_isolated: int
    network_size: int
    reconnected: int
    died_isolated: int
    still_alive: int

    @property
    def initial_fraction(self) -> float:
        if self.network_size == 0:
            return 0.0
        return self.initial_isolated / self.network_size

    @property
    def forever_isolated_fraction_of_tracked(self) -> float:
        """Fraction of tracked isolated nodes that never reconnected.

        Nodes still alive at the horizon count as not-yet-reconnected.
        """
        if self.initial_isolated == 0:
            return 1.0
        return (self.died_isolated + self.still_alive) / self.initial_isolated


def lifetime_isolated_census(
    network: DynamicNetwork, max_rounds: int | None = None
) -> IsolatedCensus:
    """Track every currently-isolated node of *network* until death.

    Advances the network round by round (mutating it), checking after each
    round whether any tracked node has regained an edge.  For streaming
    models ``max_rounds`` defaults to ``n`` (every current node is dead
    after n rounds); for Poisson models it defaults to ``6n`` (the chance
    of a lifetime exceeding 6n is e^{-6}).
    """
    state = network.state
    snapshot_isolated = {
        u for u in state.alive_ids() if state.degree(u) == 0
    }
    initial = len(snapshot_isolated)
    network_size = state.num_alive()
    if max_rounds is None:
        horizon = getattr(network, "n", 1000)
        max_rounds = int(6 * horizon)

    tracked = set(snapshot_isolated)
    reconnected = 0
    died_isolated = 0
    for _ in range(max_rounds):
        if not tracked:
            break
        network.advance_round()
        for u in list(tracked):
            if not state.is_alive(u):
                tracked.discard(u)
                died_isolated += 1
            elif state.degree(u) > 0:
                tracked.discard(u)
                reconnected += 1
    return IsolatedCensus(
        initial_isolated=initial,
        network_size=network_size,
        reconnected=reconnected,
        died_isolated=died_isolated,
        still_alive=len(tracked),
    )
