"""Vertex-expansion measurement (Definition 3.1).

Computing ``h_out(G) = min_{0<|S|≤n/2} |∂out(S)|/|S|`` exactly is NP-hard,
so the module offers three tools:

* :func:`vertex_expansion_exact` — exhaustive enumeration, for ``n ≤ 22``
  (used in tests and the small-n certification of EXP-03);
* :func:`adversarial_expansion_upper_bound` — a *certified upper bound* on
  ``h_out`` from a portfolio of adversarial candidate sets: singletons,
  BFS balls from every node, greedy boundary-minimising local search, and
  random sets.  If even this adversarial bound exceeds the paper's 0.1
  threshold, the graph passes the expander check far more stringently than
  random probing alone;
* :func:`large_set_expansion_probe` — the same portfolio restricted to the
  size window of the large-set lemmas (3.6 and 4.11), including the
  age-extreme sets (oldest-k, youngest-k) that are the natural worst cases
  in models without regeneration.

Both probes run on either graph representation: a frozen dict
:class:`~repro.core.snapshot.Snapshot` (the readable reference path) or a
:class:`~repro.core.csr.CSRView` (the vectorized analysis plane — mask
frontiers for the multi-source BFS balls, gather/`np.bincount` boundary
counts, a vectorized greedy sweep, and batched random-set ratios).  The
two paths evaluate the *identical* candidate portfolio — candidates are
ordered canonically (ascending node id), ties break on
``(ratio, |S|, sorted ids)``, duplicates are removed with the shared
:func:`~repro.core.csr.candidate_key` hashing, and both consume the RNG
identically — so probe minima, witnesses, and ``candidates_checked`` are
equal on both paths and both topology backends (the parity suite in
``tests/test_analysis_csr.py`` asserts this).

All candidates are genuine subsets, so every reported ratio is an exact
expansion of a real set: the minimum over candidates is always a valid
upper bound on ``h_out``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import TYPE_CHECKING, Callable, Iterable, Union

import numpy as np

from repro.core.csr import (
    CSRView,
    candidate_key,
    candidate_key_array,
    mix64,
)
from repro.core.snapshot import Snapshot
from repro.errors import AnalysisError
from repro.util.rng import SeedLike, make_rng

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.models.base import DynamicNetwork

#: Hard cap for exhaustive enumeration (sum of binomials stays ~ 3M).
EXACT_ENUMERATION_LIMIT = 22

#: Either graph representation accepted by the probes.
GraphLike = Union[Snapshot, CSRView]

#: Sources per vectorized multi-source BFS chunk (bounds the mask buffer).
_BALL_CHUNK = 512

#: Byte budget of the chunked BFS ``visited`` mask: at large vert spaces
#: the chunk shrinks so the mask never exceeds this (a (512, 2M) boolean
#: buffer would otherwise cost ~1 GB at n = 1e6).
_BALL_SCRATCH_BYTES = 128 << 20

# One reusable all-False visited buffer, shared by every ball sweep in
# the process (the kernels clear exactly the bits they set, so reuse is
# free).  Probes run on the simulation thread; this scratch is not
# thread-safe, like the backends themselves.
_ball_visited: np.ndarray | None = None


def _ball_scratch(chunk: int, space: int) -> np.ndarray:
    global _ball_visited
    buf = _ball_visited
    if buf is None or buf.shape[0] < chunk or buf.shape[1] != space:
        buf = np.zeros((chunk, space), dtype=bool)
        _ball_visited = buf
    return buf[:chunk]


def _drop_ball_scratch() -> None:
    """Discard the shared mask (it may hold stale bits after an error)."""
    global _ball_visited
    _ball_visited = None


@dataclass(frozen=True)
class ExpansionProbe:
    """Outcome of an expansion search.

    Attributes:
        min_ratio: smallest ``|∂out(S)|/|S|`` found (an upper bound on the
            graph's expansion over the probed size window).
        witness_size: ``|S|`` of the minimising set.
        witness: the minimising set itself.
        candidates_checked: number of *distinct* candidate sets evaluated
            (identical candidates — BFS balls from nearby roots often
            coincide — are deduplicated before scoring and count once).
    """

    min_ratio: float
    witness_size: int
    witness: frozenset[int]
    candidates_checked: int


def expansion_of_set(graph: GraphLike, subset: Iterable[int]) -> float:
    """Exact expansion ``|∂out(S)|/|S|`` of one concrete subset."""
    if isinstance(graph, CSRView):
        verts = graph.verts_for(set(subset))
        if verts.size == 0:
            raise ValueError("expansion of the empty set is undefined")
        return graph.boundary_count(verts) / verts.size
    return graph.expansion_of(subset)


def vertex_expansion_exact(snapshot: Snapshot) -> ExpansionProbe:
    """Exhaustive ``h_out`` for small graphs (``n ≤ 22``)."""
    n = snapshot.num_nodes()
    if n < 2:
        raise AnalysisError("vertex expansion needs at least 2 nodes")
    if n > EXACT_ENUMERATION_LIMIT:
        raise AnalysisError(
            f"exact enumeration limited to n <= {EXACT_ENUMERATION_LIMIT}, got {n}"
        )
    nodes = sorted(snapshot.nodes)
    best_ratio = float("inf")
    best_set: tuple[int, ...] = ()
    checked = 0
    for size in range(1, n // 2 + 1):
        for subset in combinations(nodes, size):
            checked += 1
            ratio = len(snapshot.outer_boundary(subset)) / size
            if ratio < best_ratio:
                best_ratio = ratio
                best_set = subset
                if best_ratio == 0.0 and size == 1:
                    # Cannot do worse than an isolated node.
                    return ExpansionProbe(0.0, 1, frozenset(best_set), checked)
    return ExpansionProbe(best_ratio, len(best_set), frozenset(best_set), checked)


# ----------------------------------------------------------------------
# shared minimum tracking (canonical tie-break, shared by both paths)
# ----------------------------------------------------------------------


class _BestCandidate:
    """Tracks the minimising candidate under the canonical tie-break.

    Candidates are compared on ``(ratio, size, sorted id tuple)``, which
    makes the winner independent of evaluation order — the property that
    lets the vectorized path batch candidates in a different schedule
    than the sequential reference while producing the identical witness.
    ``members_fn`` is only invoked when a candidate actually contends,
    so batch paths never materialise losing sets.
    """

    def __init__(self) -> None:
        self.ratio = float("inf")
        self.size = 0
        self.members: tuple[int, ...] = ()

    def offer(
        self,
        ratio: float,
        size: int,
        members_fn: Callable[[], tuple[int, ...]],
    ) -> None:
        if ratio > self.ratio:
            return
        if ratio < self.ratio:
            self.ratio, self.size, self.members = ratio, size, tuple(members_fn())
            return
        if size > self.size:
            return
        members = tuple(members_fn())
        if size < self.size or members < self.members:
            self.size, self.members = size, members


class _MinTracker:
    """Scores snapshot candidates within a size window (reference path).

    Deduplicates identical candidate sets with the canonical
    :func:`~repro.core.csr.candidate_key` before scoring, so coincident
    BFS balls (or a greedy set re-finding a ball) are evaluated — and
    counted — once.
    """

    def __init__(self, snapshot: Snapshot, min_size: int, max_size: int) -> None:
        self.snapshot = snapshot
        self.min_size = min_size
        self.max_size = max_size
        self.best = _BestCandidate()
        self.seen: set[int] = set()
        self.checked = 0

    def consider(self, subset: Iterable[int]) -> None:
        candidate = set(subset)
        size = len(candidate)
        if not (self.min_size <= size <= self.max_size):
            return
        xor = 0
        for u in candidate:
            xor ^= mix64(u)
        key = candidate_key(size, xor)
        if key in self.seen:
            return
        self.seen.add(key)
        self.checked += 1
        ratio = len(self.snapshot.outer_boundary(candidate)) / size
        self.best.offer(ratio, size, lambda: tuple(sorted(candidate)))

    def result(self) -> ExpansionProbe:
        if self.checked == 0:
            raise AnalysisError("no candidate set fell inside the size window")
        return ExpansionProbe(
            min_ratio=self.best.ratio,
            witness_size=self.best.size,
            witness=frozenset(self.best.members),
            candidates_checked=self.checked,
        )


# ----------------------------------------------------------------------
# adversarial portfolio — reference (snapshot) path
# ----------------------------------------------------------------------


def adversarial_expansion_upper_bound(
    graph: GraphLike,
    seed: SeedLike = None,
    num_random_sets: int = 200,
    greedy_restarts: int = 8,
    min_size: int = 1,
    max_size: int | None = None,
) -> ExpansionProbe:
    """Adversarial upper bound on ``h_out`` over sizes in [min_size, max_size].

    Candidate portfolio (every distinct candidate within the size window
    is scored once):

    1. all singletons (equivalently the minimum degree) and each node's
       closed neighbourhood;
    2. BFS balls around every node, all radii until the ball exceeds the
       window;
    3. greedy growth: starting from the lowest-``(degree, id)`` seeds,
       repeatedly absorb the boundary vertex that minimises the resulting
       boundary — the standard local-search heuristic for sparse cuts;
    4. uniformly random sets of random sizes in the window.

    Accepts a :class:`Snapshot` (reference implementation) or a
    :class:`~repro.core.csr.CSRView` (vectorized plane) and returns
    identical results on either.
    """
    if isinstance(graph, CSRView):
        return _adversarial_probe_csr(
            graph, seed, num_random_sets, greedy_restarts, min_size, max_size
        )
    snapshot = graph
    n = snapshot.num_nodes()
    if n < 2:
        raise AnalysisError("vertex expansion needs at least 2 nodes")
    if max_size is None:
        max_size = n // 2
    max_size = min(max_size, n // 2)
    if min_size > max_size:
        raise AnalysisError(f"empty size window [{min_size}, {max_size}]")
    rng = make_rng(seed)
    nodes = sorted(snapshot.nodes)  # canonical candidate order
    tracker = _MinTracker(snapshot, min_size, max_size)

    # 1. singletons and closed neighbourhoods.
    for u in nodes:
        tracker.consider({u})
        tracker.consider({u} | set(snapshot.adjacency[u]))

    # 2. BFS balls from every node.
    for u in nodes:
        ball = {u}
        frontier = {u}
        while frontier and len(ball) < max_size:
            next_frontier: set[int] = set()
            for v in frontier:
                for w in snapshot.adjacency[v]:
                    if w not in ball:
                        next_frontier.add(w)
            if not next_frontier:
                break
            ball |= next_frontier
            frontier = next_frontier
            if len(ball) <= max_size:
                tracker.consider(ball)

    # 3. greedy boundary-minimising growth from low-degree seeds (ties on
    # node id, matching the CSR path's vectorized sweep).
    degrees = snapshot.degrees()
    seeds = sorted(nodes, key=lambda u: (degrees[u], u))[:greedy_restarts]
    for seed_node in seeds:
        _greedy_grow(snapshot, seed_node, max_size, tracker)

    # 4. random sets (index draws over the canonical node order).
    for _ in range(num_random_sets):
        size = int(rng.integers(min_size, max_size + 1))
        chosen = rng.choice(len(nodes), size=size, replace=False)
        tracker.consider({nodes[i] for i in chosen})

    return tracker.result()


def probe_network_expansion(
    network: "DynamicNetwork",
    seed: SeedLike = None,
    num_random_sets: int = 200,
    greedy_restarts: int = 8,
    min_size: int = 1,
    max_size: int | None = None,
) -> ExpansionProbe:
    """Adversarial expansion probe of a live network (CSR fast path).

    Exports the topology backend's state as a zero-copy
    :class:`~repro.core.csr.CSRView` (no dict freeze) and runs the
    vectorized portfolio on it.  Returns exactly what the snapshot-path
    probe would: the two paths share candidate order, tie-breaks, RNG
    consumption, and dedupe keys.
    """
    view = network.state.csr_view(network.now)
    return adversarial_expansion_upper_bound(
        view,
        seed=seed,
        num_random_sets=num_random_sets,
        greedy_restarts=greedy_restarts,
        min_size=min_size,
        max_size=max_size,
    )


def large_set_expansion_probe(
    graph: GraphLike,
    min_size: int,
    max_size: int | None = None,
    seed: SeedLike = None,
    num_random_sets: int = 200,
) -> ExpansionProbe:
    """Adversarial probe restricted to the large-set window of Lemmas 3.6/4.11.

    Adds the age-extreme candidates that stress models without
    regeneration: the ``k`` oldest nodes tend to have lost their out-edges,
    the ``k`` youngest have received few in-edges.  Accepts a
    :class:`Snapshot` or a :class:`~repro.core.csr.CSRView`; the paths
    return identical probes.
    """
    if isinstance(graph, CSRView):
        return _large_set_probe_csr(
            graph, min_size, max_size, seed, num_random_sets
        )
    snapshot = graph
    n = snapshot.num_nodes()
    if max_size is None:
        max_size = n // 2
    max_size = min(max_size, n // 2)
    min_size = max(1, min_size)
    if min_size > max_size:
        raise AnalysisError(f"empty size window [{min_size}, {max_size}]")
    rng = make_rng(seed)
    tracker = _MinTracker(snapshot, min_size, max_size)

    nodes = sorted(snapshot.nodes)  # canonical candidate order
    by_age = sorted(nodes, key=lambda u: (snapshot.age(u), u))
    degrees = snapshot.degrees()
    by_degree = sorted(nodes, key=lambda u: (degrees[u], u))
    sizes = _large_set_sizes(min_size, max_size)
    for size in sizes:
        tracker.consider(by_age[:size])  # youngest
        tracker.consider(by_age[-size:])  # oldest
        tracker.consider(by_degree[:size])

    for _ in range(num_random_sets):
        size = int(rng.integers(min_size, max_size + 1))
        chosen = rng.choice(len(nodes), size=size, replace=False)
        tracker.consider({nodes[i] for i in chosen})

    # Greedy growth through the window as well.
    for seed_node in by_degree[:4]:
        _greedy_grow(snapshot, seed_node, max_size, tracker)

    return tracker.result()


def _large_set_sizes(min_size: int, max_size: int) -> list[int]:
    """The probed sizes of the large-set portfolio (shared by both paths)."""
    return sorted(
        {min_size, max_size, (min_size + max_size) // 2}
        | {int(s) for s in np.linspace(min_size, max_size, num=8)}
    )


def _greedy_grow(
    snapshot: Snapshot, seed_node: int, max_size: int, tracker: _MinTracker
) -> None:
    """Grow a set by absorbing the boundary node minimising the new boundary.

    Classic sparse-cut local search: at each step, move the boundary vertex
    whose absorption shrinks (or least grows) the boundary into the set
    (ties on node id).  Scores every intermediate set against the tracker.
    """
    current = {seed_node}
    boundary = set(snapshot.adjacency[seed_node])
    tracker.consider(current)
    while len(current) < max_size and boundary:
        best_key: tuple[int, int] | None = None
        for v in boundary:
            # Absorbing v removes it from the boundary and adds its
            # outside neighbours.
            new_out = sum(
                1
                for w in snapshot.adjacency[v]
                if w not in current and w not in boundary
            )
            key = (new_out, v)
            if best_key is None or key < best_key:
                best_key = key
        assert best_key is not None
        best_vertex = best_key[1]
        current.add(best_vertex)
        boundary.discard(best_vertex)
        for w in snapshot.adjacency[best_vertex]:
            if w not in current:
                boundary.add(w)
        tracker.consider(current)


# ----------------------------------------------------------------------
# adversarial portfolio — vectorized (CSRView) path
# ----------------------------------------------------------------------


class BallRecorder:
    """Raw ball-phase candidate stream, recorded instead of scored inline.

    Attached to a :class:`_CSRProbe`, the ball kernels append every
    ``(root id, radius, |B_r|, xor, ratio)`` entry the inline path would
    have offered — *before* dedupe, because deduplication context changes
    between observation windows — plus each root's final kept-ball
    radius.  The incremental plane
    (:mod:`repro.analysis.incremental`) caches these per root, replays
    the entries of balls churn did not reach, and scores the merged
    stream with :meth:`_CSRProbe.score_recorded`, reproducing the cold
    probe bit for bit.
    """

    def __init__(self) -> None:
        self._roots: list[np.ndarray] = []
        self._radii: list[np.ndarray] = []
        self._e_root: list[np.ndarray] = []
        self._e_radius: list[np.ndarray] = []
        self._e_size: list[np.ndarray] = []
        self._e_xor: list[np.ndarray] = []
        self._e_ratio: list[np.ndarray] = []

    def add_entries(
        self,
        roots: np.ndarray,
        radii: np.ndarray,
        sizes: np.ndarray,
        xors: np.ndarray,
        ratios: np.ndarray,
    ) -> None:
        """Record one radius step's pending candidates (pre-dedupe)."""
        self._e_root.append(np.asarray(roots, dtype=np.int64))
        self._e_radius.append(np.asarray(radii, dtype=np.int64))
        self._e_size.append(np.asarray(sizes, dtype=np.int64))
        self._e_xor.append(np.asarray(xors, dtype=np.uint64))
        self._e_ratio.append(np.asarray(ratios, dtype=np.float64))

    def add_roots(self, roots: np.ndarray, kept_radii: np.ndarray) -> None:
        """Record a chunk's roots with their final kept-ball radii."""
        self._roots.append(np.asarray(roots, dtype=np.int64))
        self._radii.append(np.asarray(kept_radii, dtype=np.int64))

    @staticmethod
    def _concat(parts: list[np.ndarray], dtype: type) -> np.ndarray:
        if not parts:
            return np.empty(0, dtype=dtype)
        return np.concatenate(parts)

    def roots(self) -> tuple[np.ndarray, np.ndarray]:
        """``(root ids, final kept radii)`` across all recorded chunks."""
        return (
            self._concat(self._roots, np.int64),
            self._concat(self._radii, np.int64),
        )

    def entries(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(root, radius, size, xor, ratio)`` entry arrays, concatenated."""
        return (
            self._concat(self._e_root, np.int64),
            self._concat(self._e_radius, np.int64),
            self._concat(self._e_size, np.int64),
            self._concat(self._e_xor, np.uint64),
            self._concat(self._e_ratio, np.float64),
        )


class _CSRProbe:
    """One probe run on a :class:`CSRView`: phases + shared dedupe/minimum.

    Mirrors :class:`_MinTracker` exactly — same candidate keys, same
    window, same tie-break — with candidates arriving from vectorized
    sweeps instead of per-set Python evaluation.
    """

    def __init__(
        self,
        view: CSRView,
        min_size: int,
        max_size: int,
        recorder: BallRecorder | None = None,
    ) -> None:
        self.view = view
        self.min_size = min_size
        self.max_size = max_size
        self.best = _BestCandidate()
        self.seen: set[int] = set()
        self.checked = 0
        # With a recorder attached, ball kernels record their candidate
        # stream instead of scoring it; score_recorded() later registers
        # the deduplicated keys here so the greedy/random phases skip
        # (and count) exactly what the inline path would have.
        self.recorder = recorder
        self._ball_keys: np.ndarray | None = None

    def _register(self, key: int) -> bool:
        """Dedupe one candidate key; True when it is fresh (and counted)."""
        if key in self.seen:
            return False
        keys = self._ball_keys
        if keys is not None:
            pos = int(np.searchsorted(keys, np.uint64(key)))
            if pos < keys.size and int(keys[pos]) == key:
                return False
        self.seen.add(key)
        self.checked += 1
        return True

    def result(self) -> ExpansionProbe:
        if self.checked == 0:
            raise AnalysisError("no candidate set fell inside the size window")
        return ExpansionProbe(
            min_ratio=self.best.ratio,
            witness_size=self.best.size,
            witness=frozenset(self.best.members),
            candidates_checked=self.checked,
        )

    # -- one-off candidates (random sets, age/degree prefixes) ---------

    def consider_verts(self, verts: np.ndarray) -> None:
        """Score one explicit candidate (distinct verts)."""
        size = int(verts.size)
        if not (self.min_size <= size <= self.max_size):
            return
        xor = int(np.bitwise_xor.reduce(self.view.mix[verts]))
        if not self._register(candidate_key(size, xor)):
            return
        ratio = self.view.boundary_count(verts) / size
        self.best.offer(ratio, size, lambda: self.view.ids_sorted(verts))

    # -- multi-source BFS balls (covers singletons + neighbourhoods) ---

    def ball_phase(self, sources: np.ndarray | None = None) -> None:
        """Balls of every radius around every node, via mask frontiers.

        Covers portfolio phases 1+2 of the reference path: the radius-0
        ball is the singleton, radius 1 the closed neighbourhood.  Each
        ball ``B_r`` is scored with ``|∂B_r| = |shell_{r+1}|`` — the next
        BFS shell *is* the outer boundary — so scoring costs nothing
        beyond the BFS itself.  Sources advance in lockstep chunks over
        one shared, selectively-cleared ``visited`` mask; the chunk
        shrinks at large vert spaces so the mask stays within
        :data:`_BALL_SCRATCH_BYTES`.  Chunking cannot change results:
        dedupe keys and the tie-break are evaluation-order independent.

        *sources* defaults to every alive vert; the incremental plane
        passes only the roots whose cached balls churn invalidated.
        """
        view = self.view
        if sources is None:
            sources = view.alive_verts
        if sources.size == 0:
            return
        space = max(view.space, 1)
        budget_rows = max(_BALL_SCRATCH_BYTES // space, 16)
        chunk = int(min(_BALL_CHUNK, sources.size, budget_rows))
        visited = _ball_scratch(chunk, view.space)
        try:
            for start in range(0, sources.size, chunk):
                self._ball_chunk(sources[start : start + chunk], visited)
        except BaseException:
            # The mask may hold uncleared bits mid-sweep; never reuse it.
            _drop_ball_scratch()
            raise

    def _ball_chunk(self, src_verts: np.ndarray, visited: np.ndarray) -> None:
        view = self.view
        space = view.space
        mixv = view.mix
        recorder = self.recorder
        count = src_verts.size
        rows = np.arange(count, dtype=np.int64)

        visited[rows, src_verts] = True
        marks: list[tuple[np.ndarray, np.ndarray]] = [(rows, src_verts)]
        frontier_src = rows
        frontier_vert = src_verts
        ball_size = np.ones(count, dtype=np.int64)
        ball_xor = mixv[src_verts].copy()
        # Pending candidate per source: the current ball, awaiting its
        # boundary count from the next shell.  Radius-0 balls (the
        # singletons) start pending whenever size 1 is inside the window.
        pend_active = np.full(count, self.min_size <= 1 <= self.max_size)
        pend_size = ball_size.copy()
        pend_xor = ball_xor.copy()
        pend_radius = np.zeros(count, dtype=np.int64)
        grow = np.full(count, 1 < self.max_size)
        kept_radius = np.zeros(count, dtype=np.int64)
        radius = 0

        while frontier_vert.size:
            # Next shell: unvisited distinct neighbours, per source.
            flat, owner_pos = view.gather_neighbors(frontier_vert)
            src_rep = frontier_src[owner_pos]
            fresh = ~visited[src_rep, flat]
            pair_keys = src_rep[fresh] * space + flat[fresh]
            pair_keys.sort()  # sort-based dedupe (np.unique's hash is slower)
            if pair_keys.size:
                distinct = np.empty(pair_keys.size, dtype=bool)
                distinct[0] = True
                np.not_equal(pair_keys[1:], pair_keys[:-1], out=distinct[1:])
                pair_keys = pair_keys[distinct]
            shell_src = pair_keys // space
            shell_vert = pair_keys % space
            shell_count = np.bincount(shell_src, minlength=count)

            # Score pending balls: ratio = |shell_{r+1}| / |B_r|.
            pending = np.nonzero(pend_active)[0]
            if pending.size:
                if recorder is not None:
                    # Incremental mode: hand the raw (pre-dedupe) stream
                    # to the recorder; score_recorded() evaluates the
                    # merged cached+fresh stream later.
                    recorder.add_entries(
                        view.vert_ids[src_verts[pending]],
                        pend_radius[pending],
                        pend_size[pending],
                        pend_xor[pending],
                        shell_count[pending] / pend_size[pending],
                    )
                else:
                    keys = candidate_key_array(
                        pend_size[pending].astype(np.uint64),
                        pend_xor[pending],
                    )
                    ratios = shell_count[pending] / pend_size[pending]
                    for local, key, ratio in zip(
                        pending.tolist(), keys.tolist(), ratios.tolist()
                    ):
                        if not self._register(key):
                            continue
                        self.best.offer(
                            ratio,
                            int(pend_size[local]),
                            lambda local=local: view.ids_sorted(
                                self._ball_members(
                                    int(src_verts[local]),
                                    int(pend_radius[local]),
                                )
                            ),
                        )

            # Continuation: a source keeps its frontier while it still
            # grows (|B| < max) or the grown ball needs one more shell
            # for scoring (|B_{r+1}| == max exactly).
            growing = grow & (shell_count > 0)
            new_size = ball_size + shell_count
            pend_active = growing & (new_size >= self.min_size) & (
                new_size <= self.max_size
            )
            grow = growing & (new_size < self.max_size)
            keep = pend_active | grow
            if not keep.any():
                break
            keep_entry = keep[shell_src]
            shell_src = shell_src[keep_entry]
            shell_vert = shell_vert[keep_entry]
            visited[shell_src, shell_vert] = True
            marks.append((shell_src, shell_vert))
            np.bitwise_xor.at(ball_xor, shell_src, mixv[shell_vert])
            ball_size = np.where(keep, new_size, ball_size)
            radius += 1
            kept_radius = np.where(keep, radius, kept_radius)
            pend_size = np.where(pend_active, ball_size, pend_size)
            pend_xor = np.where(pend_active, ball_xor, pend_xor)
            pend_radius = np.where(pend_active, radius, pend_radius)
            frontier_src, frontier_vert = shell_src, shell_vert

        if recorder is not None:
            recorder.add_roots(view.vert_ids[src_verts], kept_radius)

        for mark_src, mark_vert in marks:
            visited[mark_src, mark_vert] = False

    def _ball_members(self, source_vert: int, radius: int) -> np.ndarray:
        """Recompute one ball's member verts (only for contending balls)."""
        view = self.view
        ball = {int(source_vert)}
        frontier = [int(source_vert)]
        for _ in range(radius):
            shell: list[int] = []
            for v in frontier:
                for w in view.neighbors_of_vert(v).tolist():
                    if w not in ball:
                        ball.add(w)
                        shell.append(w)
            if not shell:
                break
            frontier = shell
        return np.fromiter(ball, dtype=np.int64, count=len(ball))

    def score_recorded(
        self,
        roots: np.ndarray,
        radii: np.ndarray,
        sizes: np.ndarray,
        xors: np.ndarray,
        ratios: np.ndarray,
    ) -> None:
        """Score a merged ball-candidate stream in one vectorized pass.

        The incremental counterpart of the inline scoring loop: the
        stream mixes freshly-recorded entries with entries replayed from
        a previous window's cache, in arbitrary order — dedupe keys, the
        distinct-candidate count, and the ``(ratio, size, members)``
        tie-break are all evaluation-order independent, so the outcome
        is bit-identical to the cold inline path.  Must run before the
        greedy/random phases (their dedupe consults the registered ball
        keys); only candidates achieving the stream's minimal
        ``(ratio, size)`` are offered, with members recomputed by a
        per-root BFS exactly as the inline path does for contenders.
        """
        if roots.size == 0:
            return
        keys = candidate_key_array(sizes.astype(np.uint64), xors)
        uniq, first = np.unique(keys, return_index=True)
        self._ball_keys = uniq
        self.checked += int(uniq.size)
        rep_ratio = ratios[first]
        sel = first[rep_ratio == rep_ratio.min()]
        sel_sizes = sizes[sel]
        sel = sel[sel_sizes == sel_sizes.min()]
        view = self.view
        for i in sel.tolist():
            root, radius = int(roots[i]), int(radii[i])
            self.best.offer(
                float(ratios[i]),
                int(sizes[i]),
                lambda root=root, radius=radius: view.ids_sorted(
                    self._ball_members(view.vert_of(root), radius)
                ),
            )

    # -- vectorized greedy boundary-minimising sweep -------------------

    def greedy_phase(self, restarts: int) -> None:
        """Greedy growth from the lowest-``(degree, id)`` seeds.

        Each step scores every boundary vert's absorption in one
        gather + ``np.bincount`` pass (how many of its neighbours lie
        outside the set and its boundary), absorbs the ``(delta, id)``
        minimiser, and offers the grown set — identical to the
        reference's per-vertex Python scan.
        """
        view = self.view
        order = np.lexsort((view.ids, view.degrees))
        seeds = view.alive_verts[order[:restarts]]
        for seed_vert in seeds.tolist():
            self._greedy_grow_csr(seed_vert)

    def _greedy_grow_csr(self, seed_vert: int) -> None:
        view = self.view
        mixv = view.mix
        vert_ids = view.vert_ids
        current = np.zeros(view.space, dtype=bool)
        boundary = np.zeros(view.space, dtype=bool)
        current[seed_vert] = True
        size = 1
        xor = int(mixv[seed_vert])
        bverts = view.neighbors_of_vert(seed_vert).copy()
        boundary[bverts] = True
        self._consider_tracked(size, xor, bverts.size, current)
        while size < self.max_size and bverts.size:
            flat, owner_pos = view.gather_neighbors(bverts)
            outside = ~(current[flat] | boundary[flat])
            new_out = np.bincount(owner_pos[outside], minlength=bverts.size)
            lowest = np.nonzero(new_out == new_out.min())[0]
            pick = lowest[np.argmin(vert_ids[bverts[lowest]])]
            vert = int(bverts[pick])
            current[vert] = True
            boundary[vert] = False
            size += 1
            xor ^= int(mixv[vert])
            nbrs = view.neighbors_of_vert(vert)
            entering = nbrs[~(current[nbrs] | boundary[nbrs])]
            boundary[entering] = True
            bverts = np.concatenate(
                [bverts[np.arange(bverts.size) != pick], entering]
            )
            self._consider_tracked(size, xor, bverts.size, current)

    def _consider_tracked(
        self, size: int, xor: int, boundary_size: int, current: np.ndarray
    ) -> None:
        """Score a set whose boundary size is maintained incrementally."""
        if not (self.min_size <= size <= self.max_size):
            return
        if not self._register(candidate_key(size, xor)):
            return
        ratio = boundary_size / size
        self.best.offer(
            ratio,
            size,
            lambda: self.view.ids_sorted(np.nonzero(current)[0]),
        )

    # -- batched random sets -------------------------------------------

    def random_phase(self, rng: np.random.Generator, count: int) -> None:
        """Uniformly random sets; identical RNG consumption to the
        reference (index draws over the ascending-id node order)."""
        view = self.view
        n = view.n
        for _ in range(count):
            size = int(rng.integers(self.min_size, self.max_size + 1))
            chosen = rng.choice(n, size=size, replace=False)
            self.consider_verts(view.alive_verts[chosen])

    # -- age/degree extreme prefixes (large-set portfolio) -------------

    def extreme_phase(self, sizes: list[int]) -> None:
        view = self.view
        ages = view.time - view.birth[view.alive_verts]
        by_age = view.alive_verts[np.lexsort((view.ids, ages))]
        by_degree = view.alive_verts[np.lexsort((view.ids, view.degrees))]
        for size in sizes:
            self.consider_verts(by_age[:size])  # youngest
            self.consider_verts(by_age[-size:])  # oldest
            self.consider_verts(by_degree[:size])


def _adversarial_probe_csr(
    view: CSRView,
    seed: SeedLike,
    num_random_sets: int,
    greedy_restarts: int,
    min_size: int,
    max_size: int | None,
) -> ExpansionProbe:
    n = view.n
    if n < 2:
        raise AnalysisError("vertex expansion needs at least 2 nodes")
    if max_size is None:
        max_size = n // 2
    max_size = min(max_size, n // 2)
    if min_size > max_size:
        raise AnalysisError(f"empty size window [{min_size}, {max_size}]")
    rng = make_rng(seed)
    probe = _CSRProbe(view, min_size, max_size)
    probe.ball_phase()
    probe.greedy_phase(greedy_restarts)
    probe.random_phase(rng, num_random_sets)
    return probe.result()


def _large_set_probe_csr(
    view: CSRView,
    min_size: int,
    max_size: int | None,
    seed: SeedLike,
    num_random_sets: int,
) -> ExpansionProbe:
    n = view.n
    if max_size is None:
        max_size = n // 2
    max_size = min(max_size, n // 2)
    min_size = max(1, min_size)
    if min_size > max_size:
        raise AnalysisError(f"empty size window [{min_size}, {max_size}]")
    rng = make_rng(seed)
    probe = _CSRProbe(view, min_size, max_size)
    probe.extreme_phase(_large_set_sizes(min_size, max_size))
    probe.random_phase(rng, num_random_sets)
    probe.greedy_phase(4)
    return probe.result()
