"""Vertex-expansion measurement (Definition 3.1).

Computing ``h_out(G) = min_{0<|S|≤n/2} |∂out(S)|/|S|`` exactly is NP-hard,
so the module offers three tools:

* :func:`vertex_expansion_exact` — exhaustive enumeration, for ``n ≤ 22``
  (used in tests and the small-n certification of EXP-03);
* :func:`adversarial_expansion_upper_bound` — a *certified upper bound* on
  ``h_out`` from a portfolio of adversarial candidate sets: singletons,
  BFS balls from every node, greedy boundary-minimising local search, and
  random sets.  If even this adversarial bound exceeds the paper's 0.1
  threshold, the graph passes the expander check far more stringently than
  random probing alone;
* :func:`large_set_expansion_probe` — the same portfolio restricted to the
  size window of the large-set lemmas (3.6 and 4.11), including the
  age-extreme sets (oldest-k, youngest-k) that are the natural worst cases
  in models without regeneration.

All candidates are genuine subsets, so every reported ratio is an exact
expansion of a real set: the minimum over candidates is always a valid
upper bound on ``h_out``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.core.snapshot import Snapshot
from repro.errors import AnalysisError
from repro.util.rng import SeedLike, make_rng

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.models.base import DynamicNetwork

#: Hard cap for exhaustive enumeration (sum of binomials stays ~ 3M).
EXACT_ENUMERATION_LIMIT = 22


@dataclass(frozen=True)
class ExpansionProbe:
    """Outcome of an expansion search.

    Attributes:
        min_ratio: smallest ``|∂out(S)|/|S|`` found (an upper bound on the
            graph's expansion over the probed size window).
        witness_size: ``|S|`` of the minimising set.
        witness: the minimising set itself.
        candidates_checked: number of candidate sets evaluated.
    """

    min_ratio: float
    witness_size: int
    witness: frozenset[int]
    candidates_checked: int


def expansion_of_set(snapshot: Snapshot, subset: Iterable[int]) -> float:
    """Exact expansion ``|∂out(S)|/|S|`` of one concrete subset."""
    return snapshot.expansion_of(subset)


def vertex_expansion_exact(snapshot: Snapshot) -> ExpansionProbe:
    """Exhaustive ``h_out`` for small graphs (``n ≤ 22``)."""
    n = snapshot.num_nodes()
    if n < 2:
        raise AnalysisError("vertex expansion needs at least 2 nodes")
    if n > EXACT_ENUMERATION_LIMIT:
        raise AnalysisError(
            f"exact enumeration limited to n <= {EXACT_ENUMERATION_LIMIT}, got {n}"
        )
    nodes = sorted(snapshot.nodes)
    best_ratio = float("inf")
    best_set: tuple[int, ...] = ()
    checked = 0
    for size in range(1, n // 2 + 1):
        for subset in combinations(nodes, size):
            checked += 1
            ratio = len(snapshot.outer_boundary(subset)) / size
            if ratio < best_ratio:
                best_ratio = ratio
                best_set = subset
                if best_ratio == 0.0 and size == 1:
                    # Cannot do worse than an isolated node.
                    return ExpansionProbe(0.0, 1, frozenset(best_set), checked)
    return ExpansionProbe(best_ratio, len(best_set), frozenset(best_set), checked)


def adversarial_expansion_upper_bound(
    snapshot: Snapshot,
    seed: SeedLike = None,
    num_random_sets: int = 200,
    greedy_restarts: int = 8,
    min_size: int = 1,
    max_size: int | None = None,
    degree_order: Sequence[int] | None = None,
) -> ExpansionProbe:
    """Adversarial upper bound on ``h_out`` over sizes in [min_size, max_size].

    Candidate portfolio (every candidate within the size window is scored):

    1. all singletons (equivalently the minimum degree) and each node's
       closed neighbourhood;
    2. BFS balls around every node, all radii until the ball exceeds the
       window;
    3. greedy growth: starting from the lowest-degree seeds, repeatedly
       absorb the boundary vertex that minimises the resulting boundary —
       the standard local-search heuristic for sparse cuts;
    4. uniformly random sets of random sizes in the window.

    *degree_order* optionally supplies the nodes in ascending
    ``(degree, node id)`` order (e.g. computed from a live backend's
    degree vector, see :func:`probe_network_expansion`), skipping the
    per-node degree sort.  The id tie-break must match the default
    path's, or the greedy seed set — and hence the probe — may differ.
    """
    n = snapshot.num_nodes()
    if n < 2:
        raise AnalysisError("vertex expansion needs at least 2 nodes")
    if max_size is None:
        max_size = n // 2
    max_size = min(max_size, n // 2)
    if min_size > max_size:
        raise AnalysisError(f"empty size window [{min_size}, {max_size}]")
    rng = make_rng(seed)
    nodes = list(snapshot.nodes)
    tracker = _MinTracker(snapshot, min_size, max_size)

    # 1. singletons and closed neighbourhoods.
    for u in nodes:
        tracker.consider({u})
        tracker.consider({u} | set(snapshot.adjacency[u]))

    # 2. BFS balls from every node.
    for u in nodes:
        ball = {u}
        frontier = {u}
        while frontier and len(ball) < max_size:
            next_frontier: set[int] = set()
            for v in frontier:
                for w in snapshot.adjacency[v]:
                    if w not in ball:
                        next_frontier.add(w)
            if not next_frontier:
                break
            ball |= next_frontier
            frontier = next_frontier
            if len(ball) <= max_size:
                tracker.consider(ball)

    # 3. greedy boundary-minimising growth from low-degree seeds.  Ties
    # break by node id so the seed set is deterministic and matches the
    # degree_order contract below.
    if degree_order is None:
        seeds = sorted(nodes, key=lambda u: (snapshot.degree(u), u))
        seeds = seeds[:greedy_restarts]
    else:
        seeds = list(degree_order)[:greedy_restarts]
    for seed_node in seeds:
        _greedy_grow(snapshot, seed_node, max_size, tracker)

    # 4. random sets.
    for _ in range(num_random_sets):
        size = int(rng.integers(min_size, max_size + 1))
        chosen = rng.choice(len(nodes), size=size, replace=False)
        tracker.consider({nodes[i] for i in chosen})

    return tracker.result()


def probe_network_expansion(
    network: "DynamicNetwork",
    seed: SeedLike = None,
    num_random_sets: int = 200,
    greedy_restarts: int = 8,
    min_size: int = 1,
    max_size: int | None = None,
) -> ExpansionProbe:
    """Adversarial expansion probe of a live network.

    Snapshots the network once, but reads the ascending-degree node order
    straight from the topology backend's degree vector (a single
    vectorized CSR pass on the array backend) instead of sorting through
    per-node snapshot lookups.  Ties break by node id, exactly like the
    snapshot path, so both paths probe the identical candidate portfolio.
    """
    state = network.state
    ids = np.asarray(state.alive_ids(), dtype=np.int64)
    degrees = state.degree_vector()
    order = ids[np.lexsort((ids, degrees))]
    return adversarial_expansion_upper_bound(
        network.snapshot(),
        seed=seed,
        num_random_sets=num_random_sets,
        greedy_restarts=greedy_restarts,
        min_size=min_size,
        max_size=max_size,
        degree_order=[int(u) for u in order],
    )


def large_set_expansion_probe(
    snapshot: Snapshot,
    min_size: int,
    max_size: int | None = None,
    seed: SeedLike = None,
    num_random_sets: int = 200,
) -> ExpansionProbe:
    """Adversarial probe restricted to the large-set window of Lemmas 3.6/4.11.

    Adds the age-extreme candidates that stress models without
    regeneration: the ``k`` oldest nodes tend to have lost their out-edges,
    the ``k`` youngest have received few in-edges.
    """
    n = snapshot.num_nodes()
    if max_size is None:
        max_size = n // 2
    max_size = min(max_size, n // 2)
    min_size = max(1, min_size)
    if min_size > max_size:
        raise AnalysisError(f"empty size window [{min_size}, {max_size}]")
    rng = make_rng(seed)
    tracker = _MinTracker(snapshot, min_size, max_size)

    by_age = sorted(snapshot.nodes, key=snapshot.age)
    sizes = sorted(
        {min_size, max_size, (min_size + max_size) // 2}
        | {int(s) for s in np.linspace(min_size, max_size, num=8)}
    )
    for size in sizes:
        tracker.consider(by_age[:size])  # youngest
        tracker.consider(by_age[-size:])  # oldest
        lowest_degree = sorted(snapshot.nodes, key=snapshot.degree)[:size]
        tracker.consider(lowest_degree)

    nodes = list(snapshot.nodes)
    for _ in range(num_random_sets):
        size = int(rng.integers(min_size, max_size + 1))
        chosen = rng.choice(len(nodes), size=size, replace=False)
        tracker.consider({nodes[i] for i in chosen})

    # Greedy growth through the window as well.
    seeds = sorted(nodes, key=snapshot.degree)[:4]
    for seed_node in seeds:
        _greedy_grow(snapshot, seed_node, max_size, tracker)

    return tracker.result()


def _greedy_grow(
    snapshot: Snapshot, seed_node: int, max_size: int, tracker: "_MinTracker"
) -> None:
    """Grow a set by absorbing the boundary node minimising the new boundary.

    Classic sparse-cut local search: at each step, move the boundary vertex
    whose absorption shrinks (or least grows) the boundary into the set.
    Scores every intermediate set against the tracker.
    """
    current = {seed_node}
    boundary = set(snapshot.adjacency[seed_node])
    tracker.consider(current)
    while len(current) < max_size and boundary:
        best_vertex = None
        best_delta = None
        for v in boundary:
            # Absorbing v removes it from the boundary and adds its
            # outside neighbours.
            new_out = sum(
                1
                for w in snapshot.adjacency[v]
                if w not in current and w not in boundary
            )
            delta = new_out - 1
            if best_delta is None or delta < best_delta:
                best_delta = delta
                best_vertex = v
        assert best_vertex is not None
        current.add(best_vertex)
        boundary.discard(best_vertex)
        for w in snapshot.adjacency[best_vertex]:
            if w not in current:
                boundary.add(w)
        tracker.consider(current)


class _MinTracker:
    """Tracks the minimum-expansion candidate within a size window."""

    def __init__(self, snapshot: Snapshot, min_size: int, max_size: int) -> None:
        self.snapshot = snapshot
        self.min_size = min_size
        self.max_size = max_size
        self.best_ratio = float("inf")
        self.best_set: frozenset[int] = frozenset()
        self.checked = 0

    def consider(self, subset: Iterable[int]) -> None:
        candidate = set(subset)
        if not (self.min_size <= len(candidate) <= self.max_size):
            return
        self.checked += 1
        ratio = len(self.snapshot.outer_boundary(candidate)) / len(candidate)
        if ratio < self.best_ratio:
            self.best_ratio = ratio
            self.best_set = frozenset(candidate)

    def result(self) -> ExpansionProbe:
        if self.checked == 0:
            raise AnalysisError("no candidate set fell inside the size window")
        return ExpansionProbe(
            min_ratio=self.best_ratio,
            witness_size=len(self.best_set),
            witness=self.best_set,
            candidates_checked=self.checked,
        )
