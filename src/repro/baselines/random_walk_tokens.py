"""Simplified random-walk-token protocol (Cooper, Dyer, Greenhill [8]).

Mechanism of the original protocol, kept intact in simplified form:

* every node, at birth, injects ``tokens_per_node`` tokens carrying its id;
* tokens random-walk over the current topology for ``mixing_steps`` steps,
  after which they are *mature* (well mixed);
* a newborn harvests ``d`` mature tokens and connects to their owners
  (dead owners' tokens are discarded).

Under the streaming churn this maintains a near-random d-out topology —
the point of [8] — at the cost of the token machinery the paper's models
avoid.  Tokens walk one step per round; tokens whose carrier dies are
re-injected at the owner (if alive).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.backend import GraphBackend
from repro.core.edge_policy import NoRegenerationPolicy
from repro.errors import ConfigurationError
from repro.models.base import RoundReport
from repro.models.streaming import StreamingNetwork
from repro.util.rng import SeedLike


@dataclass
class _Token:
    owner: int
    carrier: int
    age: int  # walk steps taken


class TokenNetwork(StreamingNetwork):
    """Streaming churn + random-walk-token edge creation.

    Args:
        n: network size (streaming lifetime).
        d: tokens harvested (connections made) per newcomer.
        tokens_per_node: tokens injected by each newborn.
        mixing_steps: walk length before a token is mature.
        seed: RNG seed.
    """

    def __init__(
        self,
        n: int,
        d: int,
        tokens_per_node: int | None = None,
        mixing_steps: int = 10,
        seed: SeedLike = None,
        backend: str | GraphBackend | None = None,
    ) -> None:
        if tokens_per_node is None:
            tokens_per_node = 2 * d
        if tokens_per_node < d:
            raise ConfigurationError("need at least d tokens per node")
        self.tokens_per_node = tokens_per_node
        self.mixing_steps = mixing_steps
        self.tokens: list[_Token] = []
        super().__init__(
            n, NoRegenerationPolicy(d), seed=seed, warm=False, backend=backend
        )
        self._warm(n)

    def _warm(self, rounds: int) -> None:
        for _ in range(rounds):
            self.advance_round()

    def advance_round(self) -> RoundReport:
        self.round_number += 1
        start = self.now
        self.clock.advance_to(float(self.round_number))
        report = RoundReport(start_time=start, end_time=self.now)

        death_id = self.schedule.death_id(self.round_number)
        if death_id is not None:
            report.events.append(
                self.policy.handle_death(self.state, death_id, self.now, self.rng)
            )
            self._handle_token_deaths(death_id)

        self._walk_tokens()

        birth_id = self.state.allocate_id()
        report.events.append(self._birth_via_tokens(birth_id))
        self._inject_tokens(birth_id)
        return report

    # ------------------------------------------------------------------
    # token machinery
    # ------------------------------------------------------------------

    def _inject_tokens(self, owner: int) -> None:
        for _ in range(self.tokens_per_node):
            self.tokens.append(_Token(owner=owner, carrier=owner, age=0))

    def _handle_token_deaths(self, dead: int) -> None:
        """Tokens owned by the dead vanish; stranded carriers re-home."""
        survivors: list[_Token] = []
        for token in self.tokens:
            if token.owner == dead:
                continue
            if token.carrier == dead:
                token.carrier = token.owner  # restart from the owner
                token.age = 0
            survivors.append(token)
        self.tokens = survivors

    def _walk_tokens(self) -> None:
        for token in self.tokens:
            step = self.state.random_neighbor(token.carrier, self.rng)
            if step is not None:
                token.carrier = step
                token.age += 1

    def _birth_via_tokens(self, node_id: int):
        from repro.sim.events import EdgeCreated, EventRecord, NodeBorn

        self.state.add_node(node_id, birth_time=self.now, num_slots=self.policy.d)
        record = EventRecord(time=self.now, kind=NodeBorn(node_id=node_id))
        mature = [
            i
            for i, t in enumerate(self.tokens)
            if t.age >= self.mixing_steps
            and self.state.is_alive(t.owner)
            and t.owner != node_id
        ]
        self.rng.shuffle(mature)
        used: list[int] = []
        targets: list[int] = []
        for index in mature:
            owner = self.tokens[index].owner
            if owner in targets:
                continue
            targets.append(owner)
            used.append(index)
            if len(targets) == self.policy.d:
                break
        # Fallback: too few mature tokens (early warm-up) → uniform picks,
        # exactly like the paper's bootstrap assumption.
        while len(targets) < self.policy.d and self.state.num_alive() > len(targets) + 1:
            candidate = self.state.sample_alive(self.rng)
            if candidate != node_id and candidate not in targets:
                targets.append(candidate)
        for slot_index, target in enumerate(targets):
            self.state.assign_slot(node_id, slot_index, target)
            record.edges_created.append(EdgeCreated(source=node_id, target=target))
        for index in sorted(used, reverse=True):
            self.tokens.pop(index)
        return record
