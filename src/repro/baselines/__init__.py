"""Simplified protocol baselines from the paper's related work (§2).

The paper positions its *fully random, protocol-free* models against
distributed algorithms that actively maintain good topologies.  Two
representative families are implemented (simplified, but with the same
structural mechanism) so experiments can compare them with SDG/SDGR under
identical churn:

* :class:`~repro.baselines.central_cache.CentralCacheNetwork` —
  Pandurangan–Raghavan–Upfal [23]: newcomers connect to nodes drawn from a
  small centrally maintained cache.
* :class:`~repro.baselines.random_walk_tokens.TokenNetwork` —
  Cooper–Dyer–Greenhill [8]: nodes inject ID tokens that random-walk until
  "mixed"; newcomers connect to the owners of harvested tokens.
"""

from repro.baselines.central_cache import CentralCacheNetwork
from repro.baselines.random_walk_tokens import TokenNetwork

__all__ = ["CentralCacheNetwork", "TokenNetwork"]
