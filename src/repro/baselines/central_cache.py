"""Simplified central-cache protocol (Pandurangan, Raghavan, Upfal [23]).

The original protocol maintains a logarithmic-size central cache of alive
nodes; a newcomer connects to ``d`` nodes sampled from the cache, and the
cache is refreshed so no node lingers (which would concentrate in-degree).
This simplification keeps the two load-bearing mechanisms — *connections
only to cache members* and *cache rotation* — under the same streaming
churn as SDG/SDGR:

* the cache holds ``cache_size`` alive nodes;
* every round, after the churn, dead cache entries are replaced and
  ``rotation`` random entries are swapped out for fresh uniform nodes;
* a newborn connects to ``d`` distinct samples from the cache.

The qualitative claims of [23] that EXP-13 compares against: the network
stays *connected* with bounded degree and O(log n) diameter — unlike SDG,
which has isolated nodes at the same ``d``.
"""

from __future__ import annotations

from repro.core.backend import GraphBackend
from repro.core.edge_policy import NoRegenerationPolicy
from repro.errors import ConfigurationError
from repro.models.base import RoundReport
from repro.models.streaming import StreamingNetwork
from repro.util.rng import SeedLike


class CentralCacheNetwork(StreamingNetwork):
    """Streaming churn + central-cache edge creation.

    Args:
        n: network size (streaming lifetime).
        d: connections per newcomer (sampled from the cache).
        cache_size: number of cache slots (defaults to ``4d``).
        rotation: cache entries refreshed per round.
        seed: RNG seed.
    """

    def __init__(
        self,
        n: int,
        d: int,
        cache_size: int | None = None,
        rotation: int = 2,
        seed: SeedLike = None,
        backend: str | GraphBackend | None = None,
    ) -> None:
        if cache_size is None:
            cache_size = max(4, 4 * d)
        if cache_size < d:
            raise ConfigurationError("cache must hold at least d nodes")
        self.cache_size = cache_size
        self.rotation = rotation
        self.cache: list[int] = []
        # The policy's handle_birth is overridden below; NoRegeneration
        # supplies death handling (edges die with their endpoints).
        super().__init__(
            n, NoRegenerationPolicy(d), seed=seed, warm=False, backend=backend
        )
        self._warm(n)

    def _warm(self, rounds: int) -> None:
        for _ in range(rounds):
            self.advance_round()

    def advance_round(self) -> RoundReport:
        self.round_number += 1
        start = self.now
        self.clock.advance_to(float(self.round_number))
        report = RoundReport(start_time=start, end_time=self.now)

        death_id = self.schedule.death_id(self.round_number)
        if death_id is not None:
            death_record = self.policy.handle_death(
                self.state, death_id, self.now, self.rng
            )
            report.events.append(death_record)
        self._refresh_cache()
        self._repair_degrees(report)

        birth_id = self.state.allocate_id()
        record = self._birth_via_cache(birth_id)
        report.events.append(record)
        self._maybe_insert_into_cache(birth_id)
        return report

    def _repair_degrees(self, report: RoundReport) -> None:
        """[23]'s degree maintenance: nodes that lost connections re-dial
        replacement peers through the cache."""
        from repro.sim.events import EdgeCreated

        for node_id in self.state.alive_ids():
            for slot_index, current in enumerate(self.state.out_slots_of(node_id)):
                if current is not None:
                    continue
                candidates = [
                    c
                    for c in self.cache
                    if c != node_id and self.state.is_alive(c)
                ]
                if not candidates:
                    break
                target = candidates[int(self.rng.integers(0, len(candidates)))]
                self.state.assign_slot(node_id, slot_index, target)
                if report.events:
                    report.events[-1].edges_created.append(
                        EdgeCreated(source=node_id, target=target)
                    )

    def _birth_via_cache(self, node_id: int):
        """Newborn connects to up to d distinct cache members."""
        from repro.sim.events import EdgeCreated, EventRecord, NodeBorn

        self.state.add_node(node_id, birth_time=self.now, num_slots=self.policy.d)
        record = EventRecord(time=self.now, kind=NodeBorn(node_id=node_id))
        candidates = [c for c in self.cache if self.state.is_alive(c) and c != node_id]
        self.rng.shuffle(candidates)
        chosen = list(dict.fromkeys(candidates))[: self.policy.d]
        for slot_index, target in enumerate(chosen):
            self.state.assign_slot(node_id, slot_index, target)
            record.edges_created.append(EdgeCreated(source=node_id, target=target))
        return record

    def _refresh_cache(self) -> None:
        """Drop dead entries, top up, and rotate a few entries."""
        self.cache = [c for c in self.cache if self.state.is_alive(c)]
        in_cache = set(self.cache)
        for _ in range(self.rotation):
            if self.cache:
                victim = int(self.rng.integers(0, len(self.cache)))
                in_cache.discard(self.cache[victim])
                self.cache.pop(victim)
        while len(self.cache) < self.cache_size and self.state.num_alive() > len(in_cache):
            candidate = self.state.sample_alive(self.rng)
            if candidate not in in_cache:
                self.cache.append(candidate)
                in_cache.add(candidate)

    def _maybe_insert_into_cache(self, node_id: int) -> None:
        """Newborns preferentially enter the cache (keeps entries young)."""
        if len(self.cache) >= self.cache_size and self.cache:
            self.cache.pop(int(self.rng.integers(0, len(self.cache))))
        self.cache.append(node_id)
