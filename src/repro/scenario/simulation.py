"""The scenario session object.

A :class:`Simulation` owns one driver built from a
:class:`~repro.scenario.spec.ScenarioSpec`, a composable observer
pipeline, and the spec's spreading protocol.  It is the single loop the
experiment runners, the CLI and sweeps share — churn stepping, observer
cadence and protocol dispatch live here instead of being re-wired per
experiment.

Two stepping modes:

* **per-event** (the default): one :meth:`~repro.models.base.DynamicNetwork.advance_round`
  call per unit-time round, exactly what the hand-written experiment
  loops did — a scenario run is bit-identical to the pre-scenario code on
  the same seed.
* **batched** (``churn_params={"batch": True}``): churn models exposing
  ``advance_to_time_batched`` advance in windows between observer reads,
  keeping the hot loop on the array backend's vectorized path — grouped
  ``apply_births``/``apply_deaths`` batches on the Poisson/general
  drivers, the fused per-round churn kernel (``apply_round_batch``) on
  the streaming-cadence ones.  Same churn law, different seeded
  trajectory (see the drivers' docstrings).  ``fast_rounds=True`` on the
  spec (or ``REPRO_FAST_ROUNDS=1`` in the environment) requests the same
  stepping *advisorily*: drivers without a batched path fall back to
  per-event instead of erroring.

Observation windows build topology access **at most once each**: one
:class:`~repro.core.csr.CSRView` shared by every due ``needs_view``
observer (zero-copy on the array backend — this is the cheap analysis
plane) and, only when a due observer still asks for it, one frozen dict
:class:`Snapshot`.  Neither is built when no due observer wants it.

Service plane (see :mod:`repro.service`): a session checkpoints itself
every ``checkpoint_every`` rounds into ``checkpoint_dir`` (resolved from
the constructor, the spec, or the ambient
:func:`~repro.service.options.use_service_options`), and
``Simulation.restore(path)`` resumes one bit-identically — the restored
session's remaining rounds, observer reports, and flood results match an
uninterrupted seeded run exactly.
"""

from __future__ import annotations

import math
import os
from pathlib import Path
from typing import Any, Iterable

from repro.core.csr import CSRView
from repro.core.snapshot import Snapshot
from repro.errors import ConfigurationError
from repro.flooding.protocols import Protocol, get_protocol
from repro.flooding.result import FloodingResult
from repro.models.base import DynamicNetwork, RoundReport
from repro.scenario.observers import Observer, make_observer
from repro.scenario.registry import build_network
from repro.scenario.spec import ScenarioSpec
from repro.util.rng import SeedLike


class _ObserverFeed:
    """Accumulates churn events between one observer's reads.

    An observer at cadence ``every=k`` receives a single
    :class:`RoundReport` covering *all* k rounds since its previous
    ``on_round`` — no events are dropped between reads, whichever
    stepping mode produced them.  Feeds persist for the session's
    lifetime (windows span ``run()`` calls and checkpoints), and
    ``last_flush_round`` records the round count of the latest flush so
    the finish notification can tell whether an observer already saw the
    horizon state.
    """

    def __init__(self, observer: Observer, start_time: float) -> None:
        self.observer = observer
        self.window = RoundReport(start_time=start_time, end_time=start_time)
        self.last_flush_round: int | None = None

    def feed(self, report: RoundReport) -> None:
        self.window.events.extend(report.events)
        self.window.end_time = report.end_time

    def flush(
        self,
        snapshot: Snapshot | None,
        view: CSRView | None,
        rounds_completed: int,
    ) -> None:
        self.observer.on_round(self.window, snapshot)
        if self.observer.needs_view:
            self.observer.on_view(self.window, view)
        self.window = RoundReport(
            start_time=self.window.end_time, end_time=self.window.end_time
        )
        self.last_flush_round = rounds_completed


def resolve_observer(declaration: Any) -> Observer:
    """Turn an observer declaration into an :class:`Observer` instance.

    Accepts a ready instance, a registry name (``"degrees"``), or a JSON
    mapping (``{"name": "degrees", "params": {"every": 50}}``).
    """
    if isinstance(declaration, Observer):
        return declaration
    if isinstance(declaration, str):
        return make_observer(declaration)
    if isinstance(declaration, dict):
        unknown = sorted(set(declaration) - {"name", "params"})
        if unknown:
            raise ConfigurationError(
                f"unknown observer declaration field(s) {unknown}; "
                "known: ['name', 'params']"
            )
        if "name" not in declaration:
            raise ConfigurationError("observer declaration needs a 'name'")
        params = declaration.get("params", {})
        if not isinstance(params, dict):
            raise ConfigurationError("observer 'params' must be an object")
        return make_observer(declaration["name"], **params)
    raise ConfigurationError(
        f"cannot interpret observer declaration {declaration!r}"
    )


class Simulation:
    """One scenario session: driver + observers + protocol.

    Args:
        spec: the scenario to realize (omit when restoring).
        observers: observer declarations (instances, names, or mappings).
            When restoring they are optional — the checkpoint's observers
            are rebuilt by registry name — but custom observer classes
            must be re-declared (names must match the checkpoint).
        seed: overrides ``spec.seed`` for this session (the sweep hook).
        checkpoint_every: dump a checkpoint every this many completed
            rounds (0 disables).  Falls back to the spec's
            ``checkpoint_every``, then the ambient
            :func:`~repro.service.options.use_service_options` value.
        checkpoint_dir: directory for cadence checkpoints (same
            resolution order).
        restore_from: a checkpoint file — or a directory, whose most
            advanced ``ckpt-*.json`` is used — to resume from instead of
            building a fresh network.
    """

    def __init__(
        self,
        spec: ScenarioSpec | None = None,
        observers: Iterable[Any] = (),
        seed: SeedLike = None,
        checkpoint_every: int | None = None,
        checkpoint_dir: str | Path | None = None,
        restore_from: str | Path | None = None,
    ) -> None:
        self.flood_results: list[FloodingResult] = []
        self.restored_from: Path | None = None
        self._checkpoint_tag: str | None = None
        if restore_from is not None:
            if spec is not None:
                raise ConfigurationError(
                    "pass either spec or restore_from, not both (the "
                    "checkpoint carries its own spec)"
                )
            if seed is not None:
                raise ConfigurationError(
                    "seed cannot be overridden when restoring (the "
                    "checkpoint carries the RNG state)"
                )
            self._restore(restore_from, tuple(observers))
        else:
            if spec is None:
                raise ConfigurationError(
                    "Simulation needs a spec (or restore_from=)"
                )
            self.spec = spec
            self.observers: list[Observer] = [
                resolve_observer(o) for o in observers
            ]
            self.network: DynamicNetwork = build_network(spec, seed=seed)
            self.rounds_completed = 0
            self._feeds = [
                _ObserverFeed(o, self.network.now)
                for o in self.observers
                if o.every > 0
            ]
            for observer in self.observers:
                observer.bind(self)
        self.checkpoint_every, self.checkpoint_dir = self._service_settings(
            checkpoint_every, checkpoint_dir
        )

    def _restore(self, source: str | Path, declarations: tuple) -> None:
        from repro.service import checkpoint as checkpoint_io

        checkpoint = checkpoint_io.load_checkpoint(source)
        self.restored_from = checkpoint.path
        self.spec = checkpoint.spec
        self.network = checkpoint_io.rebuild_network(checkpoint)
        self.rounds_completed = checkpoint.rounds_completed
        self.observers = checkpoint_io.restore_observers(
            checkpoint, declarations
        )
        self._feeds = []
        for entry in checkpoint.payload["feeds"]:
            observer = self.observers[int(entry["observer"])]
            feed = _ObserverFeed(observer, self.network.now)
            feed.window = checkpoint_io.decode_report(entry["window"])
            last = entry["last_flush_round"]
            feed.last_flush_round = None if last is None else int(last)
            self._feeds.append(feed)
        # Bind after load_state_dict: sinks re-emit their recorded lines
        # into fresh files here, so streamed output stays exactly-once.
        for observer in self.observers:
            observer.bind(self)

    def _service_settings(
        self,
        checkpoint_every: int | None,
        checkpoint_dir: str | Path | None,
    ) -> tuple[int, str | None]:
        from repro.service.options import current_service_options

        ambient = current_service_options()
        every = checkpoint_every
        if every is None and self.spec.checkpoint_every:
            every = self.spec.checkpoint_every
        if every is None:
            every = ambient.checkpoint_every
        every = int(every or 0)
        if every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got {every}"
            )
        directory = checkpoint_dir
        if directory is None:
            directory = self.spec.checkpoint_dir
        if directory is None:
            directory = ambient.checkpoint_dir
        if every and directory is None:
            raise ConfigurationError(
                "checkpoint_every needs a checkpoint directory (pass "
                "checkpoint_dir=, set spec.checkpoint_dir, or enter "
                "use_service_options)"
            )
        return every, None if directory is None else str(directory)

    @classmethod
    def restore(
        cls,
        source: str | Path,
        observers: Iterable[Any] = (),
        checkpoint_every: int | None = None,
        checkpoint_dir: str | Path | None = None,
    ) -> "Simulation":
        """Resume a session from a checkpoint file (or directory)."""
        return cls(
            observers=observers,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            restore_from=source,
        )

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------

    @property
    def state(self):
        """The session's topology backend."""
        return self.network.state

    def snapshot(self) -> Snapshot:
        """Freeze the current topology."""
        return self.network.snapshot()

    def csr_view(self) -> CSRView:
        """Export the current topology into the CSR analysis plane.

        Zero-copy on the array backend; valid until the next mutation
        (i.e. use it before advancing the session further).
        """
        return self.network.state.csr_view(self.network.now)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def save_checkpoint(self, path: str | Path | None = None) -> Path:
        """Write a checkpoint of the session's current state.

        With no *path*, writes a cadence-named file into the session's
        checkpoint directory.  Returns the written path.
        """
        from repro.service import checkpoint as checkpoint_io

        if path is None:
            if self.checkpoint_dir is None:
                raise ConfigurationError(
                    "save_checkpoint() needs a path or a configured "
                    "checkpoint directory"
                )
            if self._checkpoint_tag is None:
                self._checkpoint_tag = checkpoint_io.next_session_tag()
            path = Path(self.checkpoint_dir) / checkpoint_io.checkpoint_filename(
                self._checkpoint_tag, self.rounds_completed
            )
        return checkpoint_io.write_checkpoint(self, path)

    def _maybe_checkpoint(self) -> None:
        if (
            self.checkpoint_every
            and self.rounds_completed > 0
            and self.rounds_completed % self.checkpoint_every == 0
        ):
            self.save_checkpoint()

    # ------------------------------------------------------------------
    # churn stepping
    # ------------------------------------------------------------------

    def run(self, rounds: float | None = None) -> "Simulation":
        """Advance *rounds* unit-time rounds (default: the rounds left to
        the spec horizon — so a restored session completes its original
        run), feeding observers at their cadences, then fire ``on_finish``.

        Returns self, so ``Simulation(spec).run()`` chains.
        """
        if rounds is None:
            rounds = max(float(self.spec.horizon) - self.rounds_completed, 0.0)
        if rounds < 0:
            raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
        if self.spec.churn_params.get("batch", False) or self._fast_rounds_active():
            self._run_batched(float(rounds))
        else:
            if float(rounds) != int(rounds):
                # Batched mode honors fractional horizons exactly; the
                # per-event loop cannot, so reject instead of silently
                # observing a different amount of churn per mode.
                raise ConfigurationError(
                    f"per-event stepping needs a whole number of rounds, "
                    f"got {rounds}; use churn_params={{'batch': True}} for "
                    "fractional horizons"
                )
            self._run_per_event(int(rounds))
        self._notify_finish()
        return self

    def _fast_rounds_active(self) -> bool:
        """Whether fused-window stepping is requested *and* available.

        ``fast_rounds`` is advisory where ``churn_params['batch']`` is
        mandatory: a driver without a batched path silently runs
        per-event.  The ``REPRO_FAST_ROUNDS`` environment variable turns
        the request on process-wide.
        """
        requested = self.spec.fast_rounds or os.environ.get(
            "REPRO_FAST_ROUNDS", ""
        ).strip().lower() in ("1", "true", "yes", "on")
        return requested and self.network.supports_batched_advance

    def _dispatch(self, report: RoundReport) -> None:
        due: list[_ObserverFeed] = []
        for feed in self._feeds:
            feed.feed(report)
            if feed.observer.due(self.rounds_completed):
                due.append(feed)
        if due:
            # One window, one build of each representation, shared by
            # every due observer; skipped entirely when nobody asks.
            view = (
                self.csr_view()
                if any(f.observer.needs_view for f in due)
                else None
            )
            snapshot = (
                self.snapshot()
                if any(f.observer.needs_snapshot for f in due)
                else None
            )
            for feed in due:
                feed.flush(snapshot, view, self.rounds_completed)

    def _run_per_event(self, rounds: int) -> None:
        for _ in range(rounds):
            report = self.network.advance_round()
            self.rounds_completed += 1
            self._dispatch(report)
            self._maybe_checkpoint()

    def _run_batched(self, rounds: float) -> None:
        network = self.network
        if not network.supports_batched_advance:
            raise ConfigurationError(
                f"churn model {self.spec.churn!r} has no batched advance; "
                "drop churn_params['batch']"
            )
        advance = network.advance_to_time_batched
        # Observer reads (and checkpoints) happen at window boundaries:
        # the stride is the gcd of the attached cadences so every cadence
        # is hit exactly.
        cadences = [f.observer.every for f in self._feeds]
        if self.checkpoint_every:
            cadences.append(self.checkpoint_every)
        if cadences:
            stride = math.gcd(*cadences)
        else:
            stride = max(int(math.ceil(rounds)), 1)
        window = float(self.spec.churn_params.get("window", 0.0)) or None
        end = network.now + rounds
        while network.now < end:
            target = min(network.now + stride, end)
            report = advance(target, window=window)
            self.rounds_completed += int(round(target - report.start_time))
            self._dispatch(report)
            self._maybe_checkpoint()

    def _notify_finish(self) -> None:
        if not self.observers:
            return
        # Observers whose cadence landed exactly on the horizon already
        # saw the final state in their last flush: re-notifying them
        # would double-count the final window (the cadence edge case).
        flushed_now = {
            id(feed.observer)
            for feed in self._feeds
            if feed.last_flush_round == self.rounds_completed
            and self.rounds_completed > 0
        }
        finishing = [o for o in self.observers if id(o) not in flushed_now]
        if not finishing:
            return
        view = (
            self.csr_view()
            if any(o.needs_view for o in finishing)
            else None
        )
        snapshot = (
            self.snapshot()
            if any(o.needs_snapshot for o in finishing)
            else None
        )
        for observer in finishing:
            observer.on_finish(snapshot)
            if observer.needs_view:
                observer.on_view(None, view)

    # ------------------------------------------------------------------
    # protocol dispatch
    # ------------------------------------------------------------------

    def protocol(self) -> Protocol:
        """The spec's spreading protocol (raises when none is configured)."""
        if self.spec.protocol is None:
            raise ConfigurationError(
                "this scenario configures no spreading protocol; set "
                "spec.protocol or pass protocol=... to flood()"
            )
        return get_protocol(self.spec.protocol)

    def flood(self, **overrides: Any) -> FloodingResult:
        """Run the configured protocol on the session's network.

        ``protocol_params`` from the spec are the defaults; keyword
        *overrides* win.  Pass ``protocol="name"`` to run a different
        protocol than the spec's.
        """
        name = overrides.pop("protocol", None)
        protocol = get_protocol(name) if name is not None else self.protocol()
        params = {**self.spec.protocol_params, **overrides}
        result = protocol.run(self.network, **params)
        self.flood_results.append(result)
        for observer in self.observers:
            observer.on_flood(result)
        return result

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def results(self) -> dict[str, Any]:
        """All observer results, keyed by observer name."""
        collected: dict[str, Any] = {}
        for observer in self.observers:
            key = observer.name
            index = 2
            while key in collected:  # two observers of the same kind
                key = f"{observer.name}_{index}"
                index += 1
            collected[key] = observer.result()
        return collected


def simulate(
    spec: ScenarioSpec,
    seed: SeedLike = None,
    observers: Iterable[Any] = (),
) -> Simulation:
    """Build a session and run it to the spec's horizon in one call.

    The workhorse of the ported experiment runners::

        sim = simulate(spec.with_(n=n, d=d, horizon=n), seed=child)
        fraction = isolated_fraction(sim.snapshot())
    """
    return Simulation(spec, observers=observers, seed=seed).run()
