"""The scenario session object.

A :class:`Simulation` owns one driver built from a
:class:`~repro.scenario.spec.ScenarioSpec`, a composable observer
pipeline, and the spec's spreading protocol.  It is the single loop the
experiment runners, the CLI and sweeps share — churn stepping, observer
cadence and protocol dispatch live here instead of being re-wired per
experiment.

Two stepping modes:

* **per-event** (the default): one :meth:`~repro.models.base.DynamicNetwork.advance_round`
  call per unit-time round, exactly what the hand-written experiment
  loops did — a scenario run is bit-identical to the pre-scenario code on
  the same seed.
* **batched** (``churn_params={"batch": True}``): churn models exposing
  ``advance_to_time_batched`` (the Poisson and general drivers) advance in
  grouped ``apply_births``/``apply_deaths`` windows between observer
  reads, keeping the hot loop on the array backend's vectorized path.
  Same churn law, different seeded trajectory (see the drivers'
  docstrings).

Observation windows build topology access **at most once each**: one
:class:`~repro.core.csr.CSRView` shared by every due ``needs_view``
observer (zero-copy on the array backend — this is the cheap analysis
plane) and, only when a due observer still asks for it, one frozen dict
:class:`Snapshot`.  Neither is built when no due observer wants it.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from repro.core.csr import CSRView
from repro.core.snapshot import Snapshot
from repro.errors import ConfigurationError
from repro.flooding.protocols import Protocol, get_protocol
from repro.flooding.result import FloodingResult
from repro.models.base import DynamicNetwork, RoundReport
from repro.scenario.observers import Observer, make_observer
from repro.scenario.registry import build_network
from repro.scenario.spec import ScenarioSpec
from repro.util.rng import SeedLike


class _ObserverFeed:
    """Accumulates churn events between one observer's reads.

    An observer at cadence ``every=k`` receives a single
    :class:`RoundReport` covering *all* k rounds since its previous
    ``on_round`` — no events are dropped between reads, whichever
    stepping mode produced them.
    """

    def __init__(self, observer: Observer, start_time: float) -> None:
        self.observer = observer
        self.window = RoundReport(start_time=start_time, end_time=start_time)

    def feed(self, report: RoundReport) -> None:
        self.window.events.extend(report.events)
        self.window.end_time = report.end_time

    def flush(self, snapshot: Snapshot | None, view: CSRView | None) -> None:
        self.observer.on_round(self.window, snapshot)
        if self.observer.needs_view:
            self.observer.on_view(self.window, view)
        self.window = RoundReport(
            start_time=self.window.end_time, end_time=self.window.end_time
        )


def resolve_observer(declaration: Any) -> Observer:
    """Turn an observer declaration into an :class:`Observer` instance.

    Accepts a ready instance, a registry name (``"degrees"``), or a JSON
    mapping (``{"name": "degrees", "params": {"every": 50}}``).
    """
    if isinstance(declaration, Observer):
        return declaration
    if isinstance(declaration, str):
        return make_observer(declaration)
    if isinstance(declaration, dict):
        unknown = sorted(set(declaration) - {"name", "params"})
        if unknown:
            raise ConfigurationError(
                f"unknown observer declaration field(s) {unknown}; "
                "known: ['name', 'params']"
            )
        if "name" not in declaration:
            raise ConfigurationError("observer declaration needs a 'name'")
        params = declaration.get("params", {})
        if not isinstance(params, dict):
            raise ConfigurationError("observer 'params' must be an object")
        return make_observer(declaration["name"], **params)
    raise ConfigurationError(
        f"cannot interpret observer declaration {declaration!r}"
    )


class Simulation:
    """One scenario session: driver + observers + protocol.

    Args:
        spec: the scenario to realize.
        observers: observer declarations (instances, names, or mappings).
        seed: overrides ``spec.seed`` for this session (the sweep hook).
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        observers: Iterable[Any] = (),
        seed: SeedLike = None,
    ) -> None:
        self.spec = spec
        self.observers: list[Observer] = [resolve_observer(o) for o in observers]
        self.network: DynamicNetwork = build_network(spec, seed=seed)
        self.rounds_completed = 0
        self.flood_results: list[FloodingResult] = []
        for observer in self.observers:
            observer.bind(self)

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------

    @property
    def state(self):
        """The session's topology backend."""
        return self.network.state

    def snapshot(self) -> Snapshot:
        """Freeze the current topology."""
        return self.network.snapshot()

    def csr_view(self) -> CSRView:
        """Export the current topology into the CSR analysis plane.

        Zero-copy on the array backend; valid until the next mutation
        (i.e. use it before advancing the session further).
        """
        return self.network.state.csr_view(self.network.now)

    # ------------------------------------------------------------------
    # churn stepping
    # ------------------------------------------------------------------

    def run(self, rounds: float | None = None) -> "Simulation":
        """Advance *rounds* unit-time rounds (default: the spec horizon),
        feeding observers at their cadences, then fire ``on_finish``.

        Returns self, so ``Simulation(spec).run()`` chains.
        """
        if rounds is None:
            rounds = self.spec.horizon
        if rounds < 0:
            raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
        if self.spec.churn_params.get("batch", False):
            self._run_batched(float(rounds))
        else:
            if float(rounds) != int(rounds):
                # Batched mode honors fractional horizons exactly; the
                # per-event loop cannot, so reject instead of silently
                # observing a different amount of churn per mode.
                raise ConfigurationError(
                    f"per-event stepping needs a whole number of rounds, "
                    f"got {rounds}; use churn_params={{'batch': True}} for "
                    "fractional horizons"
                )
            self._run_per_event(int(rounds))
        self._notify_finish()
        return self

    def _observer_feeds(self) -> list[_ObserverFeed]:
        now = self.network.now
        return [
            _ObserverFeed(o, now) for o in self.observers if o.every > 0
        ]

    def _dispatch(self, feeds: list[_ObserverFeed], report: RoundReport) -> None:
        due: list[_ObserverFeed] = []
        for feed in feeds:
            feed.feed(report)
            if feed.observer.due(self.rounds_completed):
                due.append(feed)
        if due:
            # One window, one build of each representation, shared by
            # every due observer; skipped entirely when nobody asks.
            view = (
                self.csr_view()
                if any(f.observer.needs_view for f in due)
                else None
            )
            snapshot = (
                self.snapshot()
                if any(f.observer.needs_snapshot for f in due)
                else None
            )
            for feed in due:
                feed.flush(snapshot, view)

    def _run_per_event(self, rounds: int) -> None:
        feeds = self._observer_feeds()
        for _ in range(rounds):
            report = self.network.advance_round()
            self.rounds_completed += 1
            self._dispatch(feeds, report)

    def _run_batched(self, rounds: float) -> None:
        network = self.network
        if not network.supports_batched_advance:
            raise ConfigurationError(
                f"churn model {self.spec.churn!r} has no batched advance; "
                "drop churn_params['batch']"
            )
        advance = network.advance_to_time_batched
        feeds = self._observer_feeds()
        # Observer reads happen at window boundaries: the stride is the
        # gcd of the attached cadences so every cadence is hit exactly.
        if feeds:
            stride = math.gcd(*(f.observer.every for f in feeds))
        else:
            stride = max(int(math.ceil(rounds)), 1)
        window = float(self.spec.churn_params.get("window", 0.0)) or None
        end = network.now + rounds
        while network.now < end:
            target = min(network.now + stride, end)
            report = advance(target, window=window)
            self.rounds_completed += int(round(target - report.start_time))
            self._dispatch(feeds, report)

    def _notify_finish(self) -> None:
        if not self.observers:
            return
        view = (
            self.csr_view()
            if any(o.needs_view for o in self.observers)
            else None
        )
        snapshot = (
            self.snapshot()
            if any(o.needs_snapshot for o in self.observers)
            else None
        )
        for observer in self.observers:
            observer.on_finish(snapshot)
            if observer.needs_view:
                observer.on_view(None, view)

    # ------------------------------------------------------------------
    # protocol dispatch
    # ------------------------------------------------------------------

    def protocol(self) -> Protocol:
        """The spec's spreading protocol (raises when none is configured)."""
        if self.spec.protocol is None:
            raise ConfigurationError(
                "this scenario configures no spreading protocol; set "
                "spec.protocol or pass protocol=... to flood()"
            )
        return get_protocol(self.spec.protocol)

    def flood(self, **overrides: Any) -> FloodingResult:
        """Run the configured protocol on the session's network.

        ``protocol_params`` from the spec are the defaults; keyword
        *overrides* win.  Pass ``protocol="name"`` to run a different
        protocol than the spec's.
        """
        name = overrides.pop("protocol", None)
        protocol = get_protocol(name) if name is not None else self.protocol()
        params = {**self.spec.protocol_params, **overrides}
        result = protocol.run(self.network, **params)
        self.flood_results.append(result)
        for observer in self.observers:
            observer.on_flood(result)
        return result

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def results(self) -> dict[str, Any]:
        """All observer results, keyed by observer name."""
        collected: dict[str, Any] = {}
        for observer in self.observers:
            key = observer.name
            index = 2
            while key in collected:  # two observers of the same kind
                key = f"{observer.name}_{index}"
                index += 1
            collected[key] = observer.result()
        return collected


def simulate(
    spec: ScenarioSpec,
    seed: SeedLike = None,
    observers: Iterable[Any] = (),
) -> Simulation:
    """Build a session and run it to the spec's horizon in one call.

    The workhorse of the ported experiment runners::

        sim = simulate(spec.with_(n=n, d=d, horizon=n), seed=child)
        fraction = isolated_fraction(sim.snapshot())
    """
    return Simulation(spec, observers=observers, seed=seed).run()
