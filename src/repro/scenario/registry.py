"""Registries gluing :class:`~repro.scenario.spec.ScenarioSpec` names to code.

Three small registries make a scenario declarative:

* **edge policies** (``none`` / ``regen`` / ``capped`` / ``raes``) →
  :mod:`repro.core.edge_policy` instances;
* **lifetime laws** (``exponential`` / ``weibull`` / ``pareto`` /
  ``fixed``) → :mod:`repro.churn.lifetime` distributions for the
  generalized driver;
* **churn models** (``streaming``, ``threshold`` — the degree-threshold
  streaming dynamic of Angileri et al. 2025 —, ``poisson``, ``general``,
  ``adversarial``, plus the protocol-managed ``central_cache``,
  ``tokens`` and ``bitcoin`` baselines) → driver builders.

Every builder takes the spec plus a resolved seed and returns a ready
:class:`~repro.models.base.DynamicNetwork`, constructed with exactly the
same arguments the experiment runners used to hand-wire — a scenario-built
network is bit-identical to a directly-built one on the same seed.
Unknown parameter keys raise :class:`~repro.errors.ConfigurationError`
immediately, so a typo in a JSON sweep fails loudly instead of silently
running the default.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping

from repro.baselines import CentralCacheNetwork, TokenNetwork
from repro.churn.lifetime import (
    ExponentialLifetime,
    FixedLifetime,
    LifetimeDistribution,
    ParetoLifetime,
    WeibullLifetime,
)
from repro.core.edge_policy import (
    CappedRegenerationPolicy,
    EdgePolicy,
    NoRegenerationPolicy,
    RAESPolicy,
    RegenerationPolicy,
)
from repro.churn.trace import ChurnTrace
from repro.errors import ConfigurationError
from repro.models.adversarial import AdversarialStreamingNetwork
from repro.models.base import DynamicNetwork
from repro.models.general import GeneralChurnNetwork
from repro.models.poisson import PoissonNetwork
from repro.models.streaming import StreamingNetwork
from repro.models.threshold import ThresholdStreamingNetwork, default_threshold
from repro.models.trace import TraceNetwork
from repro.p2p import BitcoinLikeNetwork
from repro.util.rng import SeedLike

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scenario.spec import ScenarioSpec

POLICY_NAMES = ("none", "regen", "capped", "raes")

LIFETIME_NAMES = ("exponential", "weibull", "pareto", "fixed")

#: Churn models whose edge dynamics are baked into the driver (the spec's
#: edge policy must be ``"none"`` for these).
PROTOCOL_MANAGED_CHURN = ("central_cache", "tokens", "bitcoin")


def _check_keys(
    params: Mapping[str, object], allowed: tuple[str, ...], context: str
) -> None:
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"unknown {context} parameter(s) {unknown}; allowed: {sorted(allowed)}"
        )


def make_policy(spec: "ScenarioSpec") -> EdgePolicy:
    """Instantiate the spec's edge policy."""
    params = spec.policy_params
    if spec.policy == "none":
        _check_keys(params, (), "policy")
        return NoRegenerationPolicy(spec.d)
    if spec.policy == "regen":
        _check_keys(params, (), "policy")
        return RegenerationPolicy(spec.d)
    if spec.policy == "capped":
        _check_keys(params, ("max_in_degree", "max_attempts"), "policy")
        if "max_in_degree" not in params:
            raise ConfigurationError(
                "the capped policy needs policy_params['max_in_degree']"
            )
        return CappedRegenerationPolicy(
            spec.d,
            max_in_degree=int(params["max_in_degree"]),
            max_attempts=int(params.get("max_attempts", 16)),
        )
    if spec.policy == "raes":
        _check_keys(params, ("c", "max_attempts"), "policy")
        return RAESPolicy(
            spec.d,
            c=float(params.get("c", 2.0)),
            max_attempts=int(params.get("max_attempts", 64)),
        )
    raise ConfigurationError(
        f"unknown edge policy {spec.policy!r}; known: {list(POLICY_NAMES)}"
    )


def make_lifetime(
    name: str, mean: float, params: Mapping[str, object]
) -> LifetimeDistribution:
    """Instantiate a lifetime law by registry name."""
    if name == "exponential":
        _check_keys(params, (), "lifetime")
        return ExponentialLifetime(mean)
    if name == "weibull":
        _check_keys(params, ("shape",), "lifetime")
        return WeibullLifetime(mean, shape=float(params.get("shape", 0.5)))
    if name == "pareto":
        _check_keys(params, ("alpha",), "lifetime")
        return ParetoLifetime(mean, alpha=float(params.get("alpha", 1.5)))
    if name == "fixed":
        _check_keys(params, (), "lifetime")
        return FixedLifetime(mean)
    raise ConfigurationError(
        f"unknown lifetime law {name!r}; known: {list(LIFETIME_NAMES)}"
    )


# ----------------------------------------------------------------------
# churn model builders
# ----------------------------------------------------------------------

ChurnBuilder = Callable[["ScenarioSpec", SeedLike], DynamicNetwork]

#: ``churn_params`` keys consumed by :meth:`Simulation.run` rather than
#: the builders (available on every churn model).
_RUN_KEYS = ("batch", "window")

#: Allowed ``churn_params`` keys per churn model (checked both at spec
#: construction and by the builders).
CHURN_PARAM_KEYS: dict[str, tuple[str, ...]] = {
    "streaming": ("warm", "fast_warm"),
    "threshold": ("threshold", "warm", "fast_warm"),
    "poisson": ("lam", "warm_time", "fast_warm"),
    "general": ("lam", "warm_time", "fast_warm", "lifetime", "lifetime_mean",
                "lifetime_params"),
    "adversarial": ("strategy", "warm"),
    "trace": ("path", "events"),
    "central_cache": ("cache_size", "rotation"),
    "tokens": ("tokens_per_node", "mixing_steps"),
    "bitcoin": ("max_inbound", "dns_seed_size", "addr_capacity",
                "gossip_fanout", "dial_attempts", "warm_time"),
}


def validate_churn_params(spec: "ScenarioSpec") -> None:
    """Reject unknown churn-parameter keys and policy/model mismatches.

    Called from ``ScenarioSpec.__post_init__`` so a typo'd key in a JSON
    sweep fails at load time, not mid-sweep inside a builder.
    """
    allowed = CHURN_PARAM_KEYS.get(spec.churn)
    if allowed is not None:
        _check_keys(spec.churn_params, allowed + _RUN_KEYS, f"{spec.churn} churn")
    if spec.churn in PROTOCOL_MANAGED_CHURN:
        _require_protocol_managed(spec)
    if spec.churn == "threshold":
        threshold = spec.churn_params.get("threshold")
        if threshold is not None and int(threshold) < 1:
            raise ConfigurationError(
                f"degree threshold must be >= 1, got {threshold}"
            )
    if spec.churn == "general":
        make_lifetime(
            str(spec.churn_params.get("lifetime", "exponential")),
            float(spec.churn_params.get("lifetime_mean", spec.n)),
            spec.churn_params.get("lifetime_params", {}),
        )
    if spec.churn == "trace":
        has_path = spec.churn_params.get("path") is not None
        has_events = spec.churn_params.get("events") is not None
        if has_path == has_events:
            raise ConfigurationError(
                "trace churn needs exactly one of churn_params['path'] "
                "(a JSONL trace file) or churn_params['events'] (inline "
                "{'t','op','id'} records)"
            )
        if has_events:
            # Inline events validate eagerly (cheap); a path is only read
            # at build time so specs stay serializable and portable.
            ChurnTrace.from_dicts(spec.churn_params["events"])


def _build_streaming(spec: "ScenarioSpec", seed: SeedLike) -> DynamicNetwork:
    params = spec.churn_params
    _check_keys(params, CHURN_PARAM_KEYS["streaming"] + _RUN_KEYS, "streaming churn")
    return StreamingNetwork(
        int(spec.n),
        make_policy(spec),
        seed=seed,
        warm=bool(params.get("warm", True)),
        backend=spec.backend,
        fast_warm=bool(params.get("fast_warm", False)),
    )


def _build_threshold(spec: "ScenarioSpec", seed: SeedLike) -> DynamicNetwork:
    params = spec.churn_params
    _check_keys(params, CHURN_PARAM_KEYS["threshold"] + _RUN_KEYS, "threshold churn")
    threshold = params.get("threshold")
    return ThresholdStreamingNetwork(
        int(spec.n),
        make_policy(spec),
        threshold=(
            default_threshold(spec.d) if threshold is None else int(threshold)
        ),
        seed=seed,
        warm=bool(params.get("warm", True)),
        backend=spec.backend,
        fast_warm=bool(params.get("fast_warm", False)),
    )


def _build_poisson(spec: "ScenarioSpec", seed: SeedLike) -> DynamicNetwork:
    params = spec.churn_params
    _check_keys(params, CHURN_PARAM_KEYS["poisson"] + _RUN_KEYS, "poisson churn")
    warm_time = params.get("warm_time")
    return PoissonNetwork(
        spec.n,
        make_policy(spec),
        lam=float(params.get("lam", 1.0)),
        seed=seed,
        warm_time=None if warm_time is None else float(warm_time),
        backend=spec.backend,
        fast_warm=bool(params.get("fast_warm", False)),
    )


def _build_general(spec: "ScenarioSpec", seed: SeedLike) -> DynamicNetwork:
    params = spec.churn_params
    _check_keys(params, CHURN_PARAM_KEYS["general"] + _RUN_KEYS, "general churn")
    lifetime = make_lifetime(
        str(params.get("lifetime", "exponential")),
        float(params.get("lifetime_mean", spec.n)),
        params.get("lifetime_params", {}),
    )
    warm_time = params.get("warm_time")
    return GeneralChurnNetwork(
        lifetime,
        make_policy(spec),
        lam=float(params.get("lam", 1.0)),
        seed=seed,
        warm_time=None if warm_time is None else float(warm_time),
        backend=spec.backend,
        fast_warm=bool(params.get("fast_warm", False)),
    )


def _build_adversarial(spec: "ScenarioSpec", seed: SeedLike) -> DynamicNetwork:
    params = spec.churn_params
    _check_keys(params, CHURN_PARAM_KEYS["adversarial"] + _RUN_KEYS, "adversarial churn")
    return AdversarialStreamingNetwork(
        int(spec.n),
        make_policy(spec),
        strategy=str(params.get("strategy", "max_degree")),
        seed=seed,
        warm=bool(params.get("warm", True)),
        backend=spec.backend,
    )


def _build_trace(spec: "ScenarioSpec", seed: SeedLike) -> DynamicNetwork:
    params = spec.churn_params
    _check_keys(params, CHURN_PARAM_KEYS["trace"] + _RUN_KEYS, "trace churn")
    if params.get("path") is not None:
        trace = ChurnTrace.load(str(params["path"]))
    else:
        trace = ChurnTrace.from_dicts(params["events"])
    return TraceNetwork(
        trace,
        make_policy(spec),
        seed=seed,
        backend=spec.backend,
    )


def _require_protocol_managed(spec: "ScenarioSpec") -> None:
    if spec.policy != "none":
        raise ConfigurationError(
            f"churn model {spec.churn!r} manages its own edge dynamics; "
            "set policy='none'"
        )


def _build_central_cache(spec: "ScenarioSpec", seed: SeedLike) -> DynamicNetwork:
    _require_protocol_managed(spec)
    params = spec.churn_params
    _check_keys(params, CHURN_PARAM_KEYS["central_cache"] + _RUN_KEYS, "central_cache churn")
    cache_size = params.get("cache_size")
    return CentralCacheNetwork(
        int(spec.n),
        spec.d,
        cache_size=None if cache_size is None else int(cache_size),
        rotation=int(params.get("rotation", 2)),
        seed=seed,
        backend=spec.backend,
    )


def _build_tokens(spec: "ScenarioSpec", seed: SeedLike) -> DynamicNetwork:
    _require_protocol_managed(spec)
    params = spec.churn_params
    _check_keys(params, CHURN_PARAM_KEYS["tokens"] + _RUN_KEYS, "tokens churn")
    tokens_per_node = params.get("tokens_per_node")
    return TokenNetwork(
        int(spec.n),
        spec.d,
        tokens_per_node=None if tokens_per_node is None else int(tokens_per_node),
        mixing_steps=int(params.get("mixing_steps", 10)),
        seed=seed,
        backend=spec.backend,
    )


def _build_bitcoin(spec: "ScenarioSpec", seed: SeedLike) -> DynamicNetwork:
    _require_protocol_managed(spec)
    params = spec.churn_params
    _check_keys(params, CHURN_PARAM_KEYS["bitcoin"] + _RUN_KEYS, "bitcoin churn")
    warm_time = params.get("warm_time")
    return BitcoinLikeNetwork(
        spec.n,
        target_outbound=spec.d,
        max_inbound=int(params.get("max_inbound", 125)),
        dns_seed_size=int(params.get("dns_seed_size", 16)),
        addr_capacity=int(params.get("addr_capacity", 256)),
        gossip_fanout=int(params.get("gossip_fanout", 8)),
        dial_attempts=int(params.get("dial_attempts", 4)),
        seed=seed,
        warm_time=None if warm_time is None else float(warm_time),
        backend=spec.backend,
    )


CHURN_MODELS: dict[str, ChurnBuilder] = {
    "streaming": _build_streaming,
    "threshold": _build_threshold,
    "poisson": _build_poisson,
    "general": _build_general,
    "adversarial": _build_adversarial,
    "trace": _build_trace,
    "central_cache": _build_central_cache,
    "tokens": _build_tokens,
    "bitcoin": _build_bitcoin,
}

CHURN_NAMES = tuple(sorted(CHURN_MODELS))


def build_network(spec: "ScenarioSpec", seed: SeedLike = None) -> DynamicNetwork:
    """Build (and warm, per the spec's churn parameters) the spec's driver.

    Args:
        spec: the scenario to realize.
        seed: overrides ``spec.seed`` — this is how sweeps run one
            JSON-defined scenario across many trial seeds.
    """
    try:
        builder = CHURN_MODELS[spec.churn]
    except KeyError:
        raise ConfigurationError(
            f"unknown churn model {spec.churn!r}; known: {list(CHURN_NAMES)}"
        ) from None
    return builder(spec, spec.seed if seed is None else seed)
