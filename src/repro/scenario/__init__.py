"""Declarative scenario layer: one session object per experiment instance.

The paper's experiments are all instances of one template — pick a churn
model, an edge policy, a spreading protocol, measure — and this package
is that template as a first-class API:

* :class:`~repro.scenario.spec.ScenarioSpec` — a frozen, JSON-round-
  trippable value naming churn × policy × protocol × backend × scale ×
  seed × horizon;
* :class:`~repro.scenario.simulation.Simulation` — the session object
  owning the driver, the observer pipeline, and protocol dispatch;
* :mod:`~repro.scenario.observers` — stock composable observers (size,
  degrees, expansion, isolated nodes, coverage) plus the registry for
  custom ones;
* :func:`~repro.scenario.simulation.simulate` — build + run a session in
  one call (the sweep primitive).

Quick start::

    from repro.scenario import ScenarioSpec, simulate

    spec = ScenarioSpec(
        churn="adversarial", policy="regen", n=300, d=8, horizon=300,
        churn_params={"strategy": "max_degree"},
        protocol="gossip", protocol_params={"pull": False},
    )
    sim = simulate(spec, seed=0, observers=["expansion"])
    print(sim.flood().completion_round, sim.results()["expansion"])

JSON scenarios run from the CLI:
``python -m repro.experiments --scenario file.json``.
"""

from repro.scenario.observers import (
    CoverageObserver,
    DegreeStatsObserver,
    ExpansionObserver,
    IsolatedNodesObserver,
    Observer,
    SizeObserver,
    make_observer,
    observer_names,
    register_observer,
)
from repro.scenario.registry import CHURN_NAMES, POLICY_NAMES, build_network
from repro.scenario.simulation import Simulation, simulate
from repro.scenario.spec import (
    ScenarioDocument,
    ScenarioSpec,
    load_scenario_document,
)

__all__ = [
    "CHURN_NAMES",
    "POLICY_NAMES",
    "CoverageObserver",
    "DegreeStatsObserver",
    "ExpansionObserver",
    "IsolatedNodesObserver",
    "Observer",
    "ScenarioDocument",
    "ScenarioSpec",
    "Simulation",
    "SizeObserver",
    "build_network",
    "load_scenario_document",
    "make_observer",
    "observer_names",
    "register_observer",
    "simulate",
]
