"""Declarative scenario specifications.

A :class:`ScenarioSpec` is one frozen, JSON-round-trippable value object
naming everything that defines a paper experiment instance: the churn
model and its parameters, the edge policy, the spreading protocol, the
topology backend, the scale ``(n, d)``, the seed and the observation
horizon.  The experiment runners, the CLI (``python -m repro.experiments
--scenario file.json``) and parameter sweeps all build network sessions
from specs through :class:`~repro.scenario.simulation.Simulation`, so a
scenario behaves identically whether it was written in Python or loaded
from a JSON file.

Validation happens at construction: unknown churn models, policies,
protocols, churn/policy parameter keys and churn/policy mismatches raise
:class:`~repro.errors.ConfigurationError` immediately.  (``protocol_params``
are forwarded verbatim to the protocol's run function, which rejects
unknown keywords when the protocol is actually run.)
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.core.backend import BACKEND_NAMES
from repro.errors import ConfigurationError
from repro.flooding.protocols import get_protocol
from repro.scenario.registry import (
    CHURN_MODELS,
    CHURN_NAMES,
    make_policy,
    validate_churn_params,
)

_SPEC_FIELDS = (
    "churn",
    "n",
    "d",
    "policy",
    "policy_params",
    "churn_params",
    "protocol",
    "protocol_params",
    "horizon",
    "seed",
    "backend",
    "checkpoint_every",
    "checkpoint_dir",
    "fast_rounds",
)


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative churn × policy × protocol × scale configuration.

    Attributes:
        churn: churn model name (see
            :data:`repro.scenario.registry.CHURN_NAMES`).
        n: the scale parameter — network size for the streaming-cadence
            models, expected stationary size for the Poisson ones.
        d: out-degree (requests per node; ``target_outbound`` for the
            Bitcoin-like overlay).
        policy: edge policy name — ``"none"`` (no regeneration),
            ``"regen"``, ``"capped"`` (bounded in-degree, needs
            ``policy_params["max_in_degree"]``), or ``"raes"`` (RAES-style
            bounded-degree expander maintenance: out-degree exactly ``d``,
            in-degree capped at ``c·d``; optional ``policy_params["c"]``,
            default 2).
        policy_params: extra edge-policy parameters.
        churn_params: extra churn-model parameters (e.g. ``warm_time``,
            ``strategy``, ``lifetime``, ``fast_warm``, ``batch``).
        protocol: spreading protocol name (see
            :func:`repro.flooding.protocol_names`), or None when the
            scenario only observes topology.
        protocol_params: parameters forwarded to the protocol's run
            (e.g. ``max_rounds``, ``loss``, ``vectorized``).
        horizon: unit-time rounds the session advances between warm-up
            and measurement (:meth:`Simulation.run`'s default).
        seed: default RNG seed (overridable per run for sweeps).
        backend: topology backend name, or None for the process default.
        checkpoint_every: service-plane checkpoint cadence in completed
            rounds; ``0`` (the default) disables cadence checkpoints.
        checkpoint_dir: directory for cadence checkpoints (required when
            ``checkpoint_every`` > 0, unless supplied at session
            construction or through the ambient service options).
        fast_rounds: opt into the fused churn kernels — inter-observation
            gaps advance through the driver's batched window path when it
            has one (``supports_batched_advance``), falling back to
            per-event rounds otherwise.  Same churn law, different seeded
            trajectory (like ``fast_warm``).  The ``REPRO_FAST_ROUNDS``
            environment variable (``1``/``true``/``yes``/``on``) turns it
            on process-wide without editing specs.
    """

    churn: str = "streaming"
    n: float = 100.0
    d: int = 4
    policy: str = "regen"
    policy_params: dict[str, Any] = field(default_factory=dict)
    churn_params: dict[str, Any] = field(default_factory=dict)
    protocol: str | None = None
    protocol_params: dict[str, Any] = field(default_factory=dict)
    horizon: float = 0.0
    seed: int | None = None
    backend: str | None = None
    checkpoint_every: int = 0
    checkpoint_dir: str | None = None
    fast_rounds: bool = False

    def __post_init__(self) -> None:
        # JSON documents use null for "absent" (like backend), so None
        # params mean "no parameters"; anything else must be a mapping.
        for field_name in ("policy_params", "churn_params", "protocol_params"):
            value = getattr(self, field_name)
            if value is None:
                value = {}
            elif not isinstance(value, Mapping):
                raise ConfigurationError(
                    f"{field_name} must be an object/mapping, got {value!r}"
                )
            object.__setattr__(self, field_name, dict(value))
        if self.churn not in CHURN_MODELS:
            raise ConfigurationError(
                f"unknown churn model {self.churn!r}; known: {list(CHURN_NAMES)}"
            )
        if self.n < 2:
            raise ConfigurationError(f"scenario needs n >= 2, got {self.n}")
        if not isinstance(self.d, int):
            # JSON parses 4.0 as float; coerce when integral, reject else.
            if float(self.d).is_integer():
                object.__setattr__(self, "d", int(self.d))
            else:
                raise ConfigurationError(
                    f"out-degree d must be an integer, got {self.d}"
                )
        if self.d < 1:
            raise ConfigurationError(f"scenario needs d >= 1, got {self.d}")
        if self.horizon < 0:
            raise ConfigurationError(
                f"horizon must be non-negative, got {self.horizon}"
            )
        if self.backend is not None and self.backend not in BACKEND_NAMES:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; choose from {BACKEND_NAMES}"
            )
        if not isinstance(self.checkpoint_every, int):
            if float(self.checkpoint_every).is_integer():
                object.__setattr__(
                    self, "checkpoint_every", int(self.checkpoint_every)
                )
            else:
                raise ConfigurationError(
                    "checkpoint_every must be an integer round count, got "
                    f"{self.checkpoint_every}"
                )
        if self.checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.checkpoint_dir is not None:
            object.__setattr__(self, "checkpoint_dir", str(self.checkpoint_dir))
        object.__setattr__(self, "fast_rounds", bool(self.fast_rounds))
        make_policy(self)  # validates the policy name and its parameters
        validate_churn_params(self)  # churn param keys + policy/model fit
        if self.protocol is not None:
            get_protocol(self.protocol)  # validates the protocol name

    # ------------------------------------------------------------------
    # sweeps
    # ------------------------------------------------------------------

    def with_(self, **changes: Any) -> "ScenarioSpec":
        """A copy with *changes* applied (the sweep primitive)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # JSON / dict round trip
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-ready; nested params are copied)."""
        return {
            "churn": self.churn,
            "n": self.n,
            "d": self.d,
            "policy": self.policy,
            "policy_params": dict(self.policy_params),
            "churn_params": dict(self.churn_params),
            "protocol": self.protocol,
            "protocol_params": dict(self.protocol_params),
            "horizon": self.horizon,
            "seed": self.seed,
            "backend": self.backend,
            "checkpoint_every": self.checkpoint_every,
            "checkpoint_dir": self.checkpoint_dir,
            "fast_rounds": self.fast_rounds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (unknown keys fail)."""
        unknown = sorted(set(data) - set(_SPEC_FIELDS))
        if unknown:
            raise ConfigurationError(
                f"unknown scenario field(s) {unknown}; known: {list(_SPEC_FIELDS)}"
            )
        return cls(**dict(data))

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ConfigurationError("a scenario JSON document must be an object")
        return cls.from_dict(data)


@dataclass(frozen=True)
class ScenarioDocument:
    """A scenario file: one spec plus observer declarations.

    The JSON shape accepted by :func:`load_scenario_document` (and hence
    by ``python -m repro.experiments --scenario file.json``) is either a
    flat :class:`ScenarioSpec` object, or::

        {
          "scenario":  { ...ScenarioSpec fields... },
          "observers": ["size", {"name": "degrees", "params": {"every": 50}}],
          "flood":     true
        }

    ``flood`` defaults to "run the protocol iff the spec names one".
    """

    spec: ScenarioSpec
    observers: tuple[Any, ...] = ()
    flood: bool | None = None

    @property
    def should_flood(self) -> bool:
        if self.flood is None:
            return self.spec.protocol is not None
        return self.flood


def load_scenario_document(source: str | Path | Mapping[str, Any]) -> ScenarioDocument:
    """Parse a scenario document from a path, JSON text, or mapping.

    A string is inline JSON when it starts with ``{`` (after whitespace);
    anything else is treated as a path, so a typo'd ``--scenario`` file
    raises FileNotFoundError instead of a JSON parse error.
    """
    if isinstance(source, Mapping):
        data: Any = dict(source)
    else:
        looks_like_json = isinstance(source, str) and source.lstrip().startswith("{")
        text = str(source) if looks_like_json else Path(source).read_text()
        data = json.loads(text)
    if not isinstance(data, dict):
        raise ConfigurationError("a scenario document must be a JSON object")
    if "scenario" not in data:
        return ScenarioDocument(spec=ScenarioSpec.from_dict(data))
    unknown = sorted(set(data) - {"scenario", "observers", "flood"})
    if unknown:
        raise ConfigurationError(
            f"unknown scenario document field(s) {unknown}; "
            "known: ['scenario', 'observers', 'flood']"
        )
    observers = data.get("observers", [])
    if not isinstance(observers, list):
        raise ConfigurationError("'observers' must be a list")
    return ScenarioDocument(
        spec=ScenarioSpec.from_dict(data["scenario"]),
        observers=tuple(observers),
        flood=data.get("flood"),
    )
