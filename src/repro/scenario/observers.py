"""Composable observers for scenario sessions.

An :class:`Observer` watches a running :class:`~repro.scenario.simulation.Simulation`
through its hooks — ``on_round(report, snapshot)`` / ``on_view(report,
view)`` at its configured round cadence, ``on_flood(result)`` after each
protocol run, and ``on_finish(snapshot)`` (plus a final ``on_view``) when
the session's horizon completes — and exposes what it measured through
``result()``.  Observers are composable: a session runs any number of
them in one pass over the trajectory, which is how one simulation serves
several measurements without re-running the churn.

Topology access comes in two flavours, each built **at most once per
observation window** and shared by every due observer:

* ``needs_view`` — a :class:`~repro.core.csr.CSRView`, the vectorized
  analysis plane (zero-copy on the array backend).  All stock analysis
  observers use this; it is the cheap path.
* ``needs_snapshot`` — a frozen dict :class:`Snapshot`, for observers
  that must outlive the window or want the dict representation.  This
  freeze is O(n·d) Python work; prefer the view for hot cadences.

Observers that only need live counters set both flags ``False`` and the
session skips both builds.  Observers with ``every = 0`` observe only the
final state, which keeps the hot loop eligible for the batched
``advance_to_time`` windows.

Stock observers (registry names in parentheses): network size
(``size``), degree statistics (``degrees``), vertex-expansion probes
(``expansion``), isolated-node counts (``isolated``) and flooding
coverage (``coverage``).  Custom observers subclass :class:`Observer`;
:func:`register_observer` makes them addressable from JSON scenario
documents.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.degrees import degree_summary
from repro.analysis.expansion import adversarial_expansion_upper_bound
from repro.analysis.incremental import ProbeCache
from repro.analysis.isolated import count_isolated
from repro.core.csr import CSRView
from repro.core.snapshot import Snapshot
from repro.errors import ConfigurationError
from repro.flooding.result import FloodingResult
from repro.models.base import RoundReport


class Observer:
    """Base class: bind → (on_round | on_view | on_flood)* → on_finish → result.

    Args:
        every: round cadence for :meth:`on_round`/:meth:`on_view`; ``0``
            (the default) means "final state only".
    """

    name: str = "observer"
    #: Whether this observer's hooks want a frozen dict :class:`Snapshot`.
    needs_snapshot: bool = True
    #: Whether this observer's hooks want a :class:`CSRView` (the
    #: vectorized analysis plane).  Views are shared per window.
    needs_view: bool = False

    def __init__(self, every: int = 0) -> None:
        if every < 0:
            raise ConfigurationError(f"every must be >= 0, got {every}")
        self.every = int(every)
        self.simulation: Any = None

    def bind(self, simulation: Any) -> None:
        """Attach to a session (called once, before any other hook)."""
        self.simulation = simulation

    def due(self, rounds_completed: int) -> bool:
        """Whether this observer should fire after this many rounds."""
        return self.every > 0 and rounds_completed % self.every == 0

    def on_round(self, report: RoundReport, snapshot: Snapshot | None) -> None:
        """One observation window ended (*snapshot* is None when
        ``needs_snapshot`` is False)."""

    def on_view(self, report: RoundReport | None, view: CSRView) -> None:
        """The window's shared analysis view (only when ``needs_view``).

        *report* is the same windowed report :meth:`on_round` receives,
        or ``None`` when the hook fires for the session's final state.
        """

    def on_flood(self, result: FloodingResult) -> None:
        """A protocol run finished on the session's network."""

    def on_finish(self, snapshot: Snapshot | None) -> None:
        """The session's run() horizon completed."""

    def result(self) -> dict[str, Any]:
        """What this observer measured (JSON-friendly)."""
        return {}

    def state_dict(self) -> dict[str, Any]:
        """The observer's resumable state (service-plane checkpoints).

        The default captures every public instance attribute except the
        session binding — which covers every stock observer, whose
        accumulated series and parameters are all public and JSON-able.
        Observers holding non-serializable public state (open handles,
        caches) must override this pair; private (``_``-prefixed) caches
        are skipped and must be rebuildable after
        :meth:`load_state_dict` + :meth:`bind`.
        """
        return {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_") and key != "simulation"
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output (called before :meth:`bind`)."""
        for key, value in state.items():
            setattr(self, key, value)


class SizeObserver(Observer):
    """Alive-node counts and cumulative churn volume over time."""

    name = "size"
    needs_snapshot = False

    def __init__(self, every: int = 1) -> None:
        super().__init__(every=every)
        self.times: list[float] = []
        self.sizes: list[int] = []
        self.total_births = 0
        self.total_deaths = 0

    def _record(self) -> None:
        network = self.simulation.network
        self.times.append(network.now)
        self.sizes.append(network.num_alive())

    def on_round(self, report: RoundReport, snapshot: Snapshot | None) -> None:
        del snapshot
        self.total_births += len(report.births)
        self.total_deaths += len(report.deaths)
        self._record()

    def on_finish(self, snapshot: Snapshot | None) -> None:
        del snapshot
        self._record()

    def result(self) -> dict[str, Any]:
        return {
            "times": list(self.times),
            "sizes": list(self.sizes),
            "final_size": self.sizes[-1] if self.sizes else None,
            "total_births": self.total_births,
            "total_deaths": self.total_deaths,
        }


class DegreeStatsObserver(Observer):
    """Mean/min/max degree from the shared per-window analysis view."""

    name = "degrees"
    needs_snapshot = False
    needs_view = True

    def __init__(self, every: int = 0) -> None:
        super().__init__(every=every)
        self.series: list[dict[str, float]] = []

    def on_view(self, report: RoundReport | None, view: CSRView) -> None:
        del report
        summary = degree_summary(view)
        self.series.append(
            {
                "time": view.time,
                "mean_degree": summary.mean_degree,
                "min_degree": summary.min_degree,
                "max_degree": summary.max_degree,
            }
        )

    def result(self) -> dict[str, Any]:
        return {"series": list(self.series), "final": self.series[-1] if self.series else None}


class ExpansionObserver(Observer):
    """Adversarial vertex-expansion probes (upper bounds on the true ε).

    Runs the vectorized portfolio on the shared per-window view.  The
    probe parameters pass straight through to
    :func:`~repro.analysis.expansion.adversarial_expansion_upper_bound`
    — bound ``max_size`` (and trim ``num_random_sets``) to keep large-n
    cadenced probes tractable; the defaults probe the full size range.

    With ``incremental=True`` the probes run through a
    :class:`~repro.analysis.incremental.ProbeCache`: BFS balls untouched
    by churn since the previous window replay from the cache, so dense
    cadences with small churn deltas cost a fraction of a cold probe —
    while every recorded value stays bit-identical to the cold path.
    """

    name = "expansion"
    needs_snapshot = False
    needs_view = True

    def __init__(
        self,
        every: int = 0,
        seed: int = 0,
        num_random_sets: int = 200,
        greedy_restarts: int = 8,
        min_size: int = 1,
        max_size: int | None = None,
        incremental: bool = False,
    ) -> None:
        super().__init__(every=every)
        self.seed = seed
        self.num_random_sets = num_random_sets
        self.greedy_restarts = greedy_restarts
        self.min_size = min_size
        self.max_size = max_size
        self.incremental = bool(incremental)
        self._cache: ProbeCache | None = None
        self.series: list[dict[str, float]] = []

    def _probe_cache(self) -> ProbeCache:
        if self._cache is None:
            self._cache = ProbeCache(
                self.simulation.network.state,
                num_random_sets=self.num_random_sets,
                greedy_restarts=self.greedy_restarts,
                min_size=self.min_size,
                max_size=self.max_size,
            )
        return self._cache

    def on_view(self, report: RoundReport | None, view: CSRView) -> None:
        del report
        if view.n < 2:
            return
        if self.incremental:
            probe = self._probe_cache().probe(view, seed=self.seed)
        else:
            probe = adversarial_expansion_upper_bound(
                view,
                seed=self.seed,
                num_random_sets=self.num_random_sets,
                greedy_restarts=self.greedy_restarts,
                min_size=self.min_size,
                max_size=self.max_size,
            )
        self.series.append(
            {
                "time": view.time,
                "min_ratio": probe.min_ratio,
                "witness_size": probe.witness_size,
            }
        )

    def result(self) -> dict[str, Any]:
        ratios = [entry["min_ratio"] for entry in self.series]
        return {
            "series": list(self.series),
            "worst_ratio": min(ratios) if ratios else None,
        }


class IsolatedNodesObserver(Observer):
    """Isolated-node counts and fractions (the Lemma 3.5/4.10 quantity)."""

    name = "isolated"
    needs_snapshot = False
    needs_view = True

    def __init__(self, every: int = 0) -> None:
        super().__init__(every=every)
        self.series: list[dict[str, float]] = []

    def on_view(self, report: RoundReport | None, view: CSRView) -> None:
        del report
        count = count_isolated(view)
        nodes = view.n
        self.series.append(
            {
                "time": view.time,
                "isolated": count,
                "fraction": count / nodes if nodes else 0.0,
            }
        )

    def result(self) -> dict[str, Any]:
        return {
            "series": list(self.series),
            "final": self.series[-1] if self.series else None,
        }


class CoverageObserver(Observer):
    """Informed-set coverage of the session's protocol runs."""

    name = "coverage"
    needs_snapshot = False

    def __init__(self) -> None:
        super().__init__(every=0)
        self.runs: list[dict[str, Any]] = []

    def on_flood(self, result: FloodingResult) -> None:
        self.runs.append(
            {
                "source": result.source,
                "completed": result.completed,
                "completion_round": result.completion_round,
                "extinct": result.extinct,
                "rounds_run": result.rounds_run,
                "max_informed": result.max_informed,
                "final_fraction": result.final_fraction,
                "informed_sizes": list(result.informed_sizes),
                "network_sizes": list(result.network_sizes),
            }
        )

    def result(self) -> dict[str, Any]:
        return {
            "runs": list(self.runs),
            "all_completed": all(r["completed"] for r in self.runs)
            if self.runs
            else None,
        }


OBSERVERS: dict[str, type[Observer]] = {}


def register_observer(observer_cls: type[Observer]) -> type[Observer]:
    """Register an observer class under its ``name`` for JSON scenarios."""
    name = observer_cls.name
    if not name or name == Observer.name:
        raise ConfigurationError("observer class must define a unique name")
    if name in OBSERVERS:
        raise ConfigurationError(f"duplicate observer name {name!r}")
    OBSERVERS[name] = observer_cls
    return observer_cls


for _cls in (
    SizeObserver,
    DegreeStatsObserver,
    ExpansionObserver,
    IsolatedNodesObserver,
    CoverageObserver,
):
    register_observer(_cls)


def _load_service_observers() -> None:
    """Register the service-plane observers (lazy import-cycle guard).

    ``repro.service`` imports this module for the :class:`Observer` base
    class, so the service observers cannot be imported at module scope
    here; importing them on first registry lookup keeps ``metrics`` and
    ``record_trace`` addressable from JSON scenario documents.
    """
    import repro.service.metrics  # noqa: F401  (registers on import)
    import repro.service.recorder  # noqa: F401


def observer_names() -> list[str]:
    """All registered observer names, sorted."""
    _load_service_observers()
    return sorted(OBSERVERS)


def make_observer(name: str, **params: Any) -> Observer:
    """Instantiate a registered observer by name."""
    if name not in OBSERVERS:
        _load_service_observers()
    try:
        observer_cls = OBSERVERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown observer {name!r}; known: {observer_names()}"
        ) from None
    try:
        return observer_cls(**params)
    except TypeError as exc:
        raise ConfigurationError(
            f"bad parameters for observer {name!r}: {exc}"
        ) from None
