"""repro — dynamic random networks with node churn.

A production-quality reproduction of Becchetti, Clementi, Pasquale,
Trevisan, Ziccardi: *"Expansion and Flooding in Dynamic Random Networks
with Node Churn"* (ICDCS 2021, arXiv:2007.14681).

Quick start::

    from repro import SDGR, flood_discrete

    net = SDGR(n=1000, d=8, seed=0)   # streaming churn + edge regeneration
    net.run_rounds(1000)              # reach stationarity
    result = flood_discrete(net)      # Definition 3.3 flooding
    print(result.completed, result.completion_round)

The four models of the paper:

* :func:`SDG` / :func:`SDGR` — streaming churn (one birth per round,
  lifetime exactly n) without / with edge regeneration;
* :func:`PDG` / :func:`PDGR` — Poisson churn (births at rate λ, Exp(µ)
  lifetimes) without / with edge regeneration.

Scenarios — churn × policy × protocol × observers as one declarative
object (JSON-round-trippable, runnable from the CLI via
``python -m repro.experiments --scenario file.json``)::

    from repro import ScenarioSpec, simulate

    spec = ScenarioSpec(churn="streaming", policy="regen", n=1000, d=8,
                        horizon=1000, protocol="discrete")
    result = simulate(spec, seed=0).flood()

Sub-packages: ``core`` (graph state), ``churn``, ``models``, ``flooding``,
``analysis``, ``theory`` (the paper's bounds), ``onion`` (the proofs'
constructive processes), ``baselines`` (related-work protocols), ``p2p``
(a Bitcoin-like overlay), ``scenario`` (declarative sessions),
``sweep`` (declarative parameter grids: process-pool execution with a
content-addressed result cache), ``api`` (programmatic sweep lifecycle:
submit / worker / status / collect over a shared store), ``cli`` (the
terminal interface, including the ``sweep`` subcommands),
``experiments`` (table/figure reproduction).
"""

from repro.analysis import (
    adversarial_expansion_upper_bound,
    count_isolated,
    isolated_fraction,
    vertex_expansion_exact,
)
from repro.core import Snapshot
from repro.errors import (
    AnalysisError,
    ConfigurationError,
    ExperimentError,
    ReproError,
    SimulationError,
    SweepError,
)
from repro.flooding import (
    FloodingResult,
    flood_asynchronous,
    flood_discrete,
    flood_discretized,
    gossip_push_pull,
)
from repro.models import (
    PDG,
    PDGR,
    SDG,
    SDGR,
    TSDG,
    PoissonNetwork,
    StreamingNetwork,
    ThresholdStreamingNetwork,
    erdos_renyi_snapshot,
    random_regular_snapshot,
    static_d_out_snapshot,
)
from repro.scenario import ScenarioSpec, Simulation, simulate

__version__ = "1.8.0"

__all__ = [
    "PDG",
    "PDGR",
    "SDG",
    "SDGR",
    "TSDG",
    "AnalysisError",
    "ConfigurationError",
    "ExperimentError",
    "FloodingResult",
    "PoissonNetwork",
    "ReproError",
    "ScenarioSpec",
    "Simulation",
    "SimulationError",
    "Snapshot",
    "StreamingNetwork",
    "SweepError",
    "ThresholdStreamingNetwork",
    "__version__",
    "simulate",
    "adversarial_expansion_upper_bound",
    "count_isolated",
    "erdos_renyi_snapshot",
    "flood_asynchronous",
    "flood_discrete",
    "flood_discretized",
    "gossip_push_pull",
    "isolated_fraction",
    "random_regular_snapshot",
    "static_d_out_snapshot",
    "vertex_expansion_exact",
]
