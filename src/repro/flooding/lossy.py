"""Flooding with message loss — a robustness extension.

The paper's flooding is reliable: every transmission arrives.  Real
networks drop messages; this variant makes each node→neighbour
transmission fail independently with probability *loss*.  With loss p,
each edge of an informed node delivers with probability 1−p per round, so
an informed node keeps retrying its uninformed neighbours — flooding
slows by roughly a 1/(1−p) factor but, on an expander, still completes in
O(log n) (the per-round growth constant shrinks from ε to ε(1−p)).

EXP-17 and the robustness tests use this to confirm the paper's O(log n)
claims degrade gracefully rather than collapsing.  As with gossip, the
informed set lives in a :mod:`repro.flooding.frontier` strategy and
``vectorized=True`` opts into the array backend's bulk Bernoulli draws
(same delivery law per round, different RNG stream).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.flooding.frontier import resolve_spreading_frontier
from repro.flooding.result import FloodingResult
from repro.models.base import DynamicNetwork
from repro.util.rng import SeedLike, make_rng


def flood_lossy(
    network: DynamicNetwork,
    loss: float,
    source: int | None = None,
    max_rounds: int = 10_000,
    seed: SeedLike = None,
    vectorized: bool = False,
) -> FloodingResult:
    """Discrete flooding where each transmission fails w.p. *loss*.

    Identical round structure to :func:`repro.flooding.flood_discrete`
    (boundary in ``G_{t−1}``, then churn), except each (informed node →
    neighbour) transmission is delivered only with probability
    ``1 − loss``.  Informed nodes retransmit every round, so a lost
    message only delays, never blocks, a reachable neighbour.
    """
    if not 0.0 <= loss < 1.0:
        raise ConfigurationError(f"loss must be in [0, 1), got {loss}")
    state = network.state
    rng: np.random.Generator = make_rng(seed)
    if source is None:
        source = state.youngest_alive()
    if not state.is_alive(source):
        raise ConfigurationError(f"source node {source} is not alive")

    frontier = resolve_spreading_frontier(network, {source}, vectorized)
    result = FloodingResult(source=source, start_time=network.now)
    result.record_round(1, state.num_alive())

    for round_index in range(1, max_rounds + 1):
        delivered = frontier.lossy_proposal(rng, loss)

        report = network.advance_round()

        frontier.absorb(delivered, report)
        informed_count = frontier.count()
        result.record_round(informed_count, state.num_alive())

        uninformed_count = state.num_alive() - informed_count
        fresh_uninformed = sum(
            1
            for b in report.births
            if state.is_alive(b) and not frontier.contains(b)
        )
        if informed_count and uninformed_count == fresh_uninformed:
            result.completed = True
            result.completion_round = round_index
            return result
        if not informed_count:
            result.extinct = True
            result.extinction_round = round_index
            return result
    return result
