"""Flooding processes over dynamic graphs.

Three faithful implementations of the paper's three flooding definitions,
plus a push/pull gossip extension:

* :func:`flood_discrete` — Definition 3.3, the synchronous process used for
  the streaming models: ``I_t = (I_{t−1} ∪ ∂out(I_{t−1})) ∩ N_t``.
* :func:`flood_discretized` — Definition 4.3 for the Poisson models: a node
  is newly informed only if it was the neighbour of an informed node *for a
  whole unit interval* (both endpoints must survive the interval).  This is
  the worst-case process the paper's upper bounds analyse.
* :func:`flood_asynchronous` — Definition 4.2 for the Poisson models:
  messages traverse an edge in exactly one time unit, interleaved with
  churn events on the event engine.
* :func:`gossip_push_pull` — extension (DESIGN.md §5): one random neighbour
  contacted per round instead of all neighbours.

All processes are also registered by name in
:mod:`repro.flooding.protocols` (``discrete``, ``discretized``,
``asynchronous``, ``gossip``, ``lossy``) behind the uniform
:class:`~repro.flooding.protocols.Protocol` interface the scenario layer
selects protocols through.
"""

from repro.flooding.asynchronous import flood_asynchronous
from repro.flooding.discrete import flood_discrete
from repro.flooding.discretized import flood_discretized
from repro.flooding.gossip import gossip_push_pull
from repro.flooding.lossy import flood_lossy
from repro.flooding.protocols import (
    Protocol,
    all_protocols,
    get_protocol,
    protocol_names,
    register_protocol,
)
from repro.flooding.result import FloodingResult

__all__ = [
    "FloodingResult",
    "Protocol",
    "all_protocols",
    "flood_asynchronous",
    "flood_discrete",
    "flood_discretized",
    "flood_lossy",
    "get_protocol",
    "gossip_push_pull",
    "protocol_names",
    "register_protocol",
]
