"""Asynchronous continuous-time flooding — Definition 4.2.

Messages take exactly one unit of time to traverse an edge.  The process
interleaves with the churn jump chain on a shared timeline:

* when a node becomes informed at time ``s``, it transmits along all its
  current edges; each transmission is scheduled to arrive at ``s + 1``;
* a transmission along ``{u, v}`` succeeds iff the edge still exists at
  arrival time — in these models an edge disappears only when an endpoint
  dies, so the check is "both endpoints alive and still adjacent";
* whenever churn creates a new edge with exactly one informed endpoint
  (a newborn attaching to an informed node, or a regenerated request from
  or to an informed node), the informed endpoint transmits along it.

Completion is checked in continuous time: the broadcast completes at the
first instant every alive node is informed (``I_t ⊇ N_t``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.flooding.result import FloodingResult
from repro.models.poisson import PoissonNetwork
from repro.sim.engine import EventEngine


@dataclass(frozen=True)
class _Delivery:
    """A message in flight from *sender* to *target*."""

    sender: int
    target: int


def flood_asynchronous(
    network: PoissonNetwork,
    source: int | None = None,
    max_time: float = 10_000.0,
) -> FloodingResult:
    """Run Definition 4.2 flooding on a Poisson dynamic network.

    Args:
        network: a warm :class:`PoissonNetwork` (PDG or PDGR).
        source: initially informed node; defaults to the youngest alive.
        max_time: give up after this much simulated time past the start.

    Returns:
        A :class:`FloodingResult`; ``informed_sizes`` samples the informed
        set at unit-time boundaries, ``completion_round`` holds the
        ceiling of the (continuous) completion time offset.
    """
    state = network.state
    if source is None:
        source = state.youngest_alive()
    if not state.is_alive(source):
        raise ConfigurationError(f"source node {source} is not alive")

    start = network.now
    deadline = start + max_time
    engine = EventEngine()
    informed: set[int] = set()
    alive_informed = 0
    result = FloodingResult(source=source, start_time=start)

    def inform(node: int, at: float) -> None:
        nonlocal alive_informed
        informed.add(node)
        alive_informed += 1
        for neighbor in state.neighbors(node):
            engine.schedule(at + 1.0, _Delivery(sender=node, target=neighbor))

    inform(source, start)
    result.record_round(1, state.num_alive())
    next_sample = start + 1.0

    # The pending churn jump (absolute time + kind), sampled lazily so
    # message deliveries can be interleaved at their exact times.
    jump = network.chain.next_event(network.num_alive(), network.rng)
    jump_time = network.now + jump.dt

    while True:
        delivery_time = engine.peek_time()
        next_time = jump_time if delivery_time is None else min(delivery_time, jump_time)
        if next_time > deadline:
            break

        # Record unit-time samples of the trajectory.
        while next_sample <= next_time:
            result.record_round(alive_informed, state.num_alive())
            next_sample += 1.0

        if delivery_time is not None and delivery_time <= jump_time:
            event = engine.pop()
            network.clock.advance_to(event.time)
            message: _Delivery = event.payload
            if (
                message.target not in informed
                and state.is_alive(message.sender)
                and state.is_alive(message.target)
                and state.has_edge(message.sender, message.target)
            ):
                inform(message.target, event.time)
                if alive_informed == state.num_alive():
                    result.completed = True
                    offset = event.time - start
                    result.completion_round = int(offset) + (offset % 1.0 > 0)
                    result.record_round(alive_informed, state.num_alive())
                    return result
        else:
            network.clock.advance_to(jump_time)
            record = network.apply_churn(jump.is_birth)
            if record.is_death:
                alive_informed -= sum(
                    1 for nid in record.node_ids if nid in informed
                )
            for edge in record.edges_created:
                u, v = edge.endpoints()
                if (u in informed) != (v in informed):
                    sender = u if u in informed else v
                    target = v if u in informed else u
                    engine.schedule(network.now + 1.0, _Delivery(sender, target))
            if informed and alive_informed == state.num_alive():
                # A death removed the last uninformed node.
                result.completed = True
                offset = network.now - start
                result.completion_round = int(offset) + (offset % 1.0 > 0)
                result.record_round(alive_informed, state.num_alive())
                return result
            if alive_informed == 0:
                result.extinct = True
                result.extinction_round = result.rounds_run
                result.record_round(0, state.num_alive())
                return result
            jump = network.chain.next_event(network.num_alive(), network.rng)
            jump_time = network.now + jump.dt

    result.record_round(alive_informed, state.num_alive())
    return result
