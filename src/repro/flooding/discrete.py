"""Synchronous flooding — Definition 3.3.

``I_t = (I_{t−1} ∪ ∂out^{t−1}(I_{t−1})) ∩ N_t``: at every round the entire
outer boundary of the informed set (in the *previous* snapshot) becomes
informed, then deaths are applied.  Note that the informing node does not
need to survive the round — the boundary is evaluated before the churn.

This is the process analysed for the streaming models (Theorems 3.7, 3.8,
3.16); it also runs on Poisson drivers (where one round = one unit of
continuous time), but for those the paper's Definition 4.3 semantics are
implemented separately in :mod:`repro.flooding.discretized`.

The informed set is tracked through a :mod:`repro.flooding.frontier`
strategy: a set of ids on the dict backend, a row mask with vectorized
boundary expansion on the array backend.  Both compute the same informed
set each round, so trajectories are backend-independent.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ConfigurationError
from repro.flooding.frontier import make_frontier
from repro.flooding.result import FloodingResult
from repro.models.base import DynamicNetwork


def flood_discrete(
    network: DynamicNetwork,
    source: int | None = None,
    max_rounds: int = 10_000,
    stop_when_extinct: bool = True,
    sources: Iterable[int] | None = None,
) -> FloodingResult:
    """Run Definition 3.3 flooding on *network* until completion.

    Args:
        network: a (typically streaming) dynamic network, already warm.
        source: initially informed node; defaults to the youngest alive
            node (the paper starts flooding from the node that joins at
            ``t_0``).
        max_rounds: hard cap on the number of rounds simulated.
        stop_when_extinct: stop early once no informed node is alive
            (the broadcast can never progress again).
        sources: start from several informed nodes at once (overrides
            *source*; multi-source seeding is an extension beyond the
            paper's single-source Definition).

    Returns:
        A :class:`FloodingResult` with the full trajectory.
    """
    state = network.state
    if sources is not None:
        initial = set(sources)
        if not initial:
            raise ConfigurationError("sources must be non-empty when given")
        for node in initial:
            if not state.is_alive(node):
                raise ConfigurationError(f"source node {node} is not alive")
        source = min(initial)
    else:
        if source is None:
            source = state.youngest_alive()
        if not state.is_alive(source):
            raise ConfigurationError(f"source node {source} is not alive")
        initial = {source}
    frontier = make_frontier(state, initial)
    result = FloodingResult(source=source, start_time=network.now)
    result.record_round(frontier.count(), state.num_alive())
    if state.num_alive() == 1:
        result.completed = True
        result.completion_round = 0
        return result

    for round_index in range(1, max_rounds + 1):
        # Outer boundary in the current snapshot G_{t-1}.
        boundary = frontier.boundary()

        report = network.advance_round()

        frontier.absorb(boundary, report)
        informed_count = frontier.count()
        result.record_round(informed_count, state.num_alive())

        # Completion criterion of Definition 3.3: I_t ⊇ N_{t-1} ∩ N_t,
        # i.e. every uninformed alive node was born this very round.
        uninformed_count = state.num_alive() - informed_count
        fresh_uninformed = sum(
            1
            for b in report.births
            if state.is_alive(b) and not frontier.contains(b)
        )
        if informed_count and uninformed_count == fresh_uninformed:
            result.completed = True
            result.completion_round = round_index
            return result
        if not informed_count:
            result.extinct = True
            result.extinction_round = round_index
            if stop_when_extinct:
                return result
    return result
