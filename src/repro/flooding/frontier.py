"""Frontier strategies for synchronous flooding.

:func:`repro.flooding.discrete.flood_discrete` tracks the informed set
through one of two interchangeable strategies:

* :class:`SetFrontier` — the reference implementation: a Python set of
  node ids, boundary via per-node neighbour unions.  Works on every
  backend.
* :class:`MaskFrontier` — a boolean mask over the array backend's rows;
  boundary expansion is ``informed-mask × slot-matrix`` in NumPy
  (see :meth:`~repro.core.array_backend.ArraySlotBackend.boundary_rows`).
  Requires ``supports_vectorized_frontier``.

Both strategies compute the identical informed set each round — only the
representation differs — so seeded flooding trajectories match across
backends (the cross-backend parity tests assert exactly this).

The round protocol (Definition 3.3's ``I_t = (I_{t−1} ∪ ∂out(I_{t−1})) ∩
N_t``) is split in two because churn happens between the boundary read and
the update: call :meth:`boundary` on the *pre-churn* topology, advance the
network, then :meth:`absorb` the boundary, discarding members that died.
The mask variant must additionally scrub rows recycled by same-round
births: a newborn can reuse the row of a dead informed node, and without
the scrub it would inherit the stale informed bit.
"""

from __future__ import annotations

from typing import Iterable, Protocol

import numpy as np

from repro.core.backend import GraphBackend
from repro.models.base import RoundReport


class Frontier(Protocol):
    """The informed-set operations flood_discrete needs."""

    def count(self) -> int: ...

    def contains(self, node_id: int) -> bool: ...

    def boundary(self) -> object: ...

    def absorb(self, boundary: object, report: RoundReport) -> None: ...


class SetFrontier:
    """Informed set as a plain set of node ids (any backend)."""

    def __init__(self, state: GraphBackend, informed: Iterable[int]) -> None:
        self.state = state
        self.informed = set(informed)

    def count(self) -> int:
        return len(self.informed)

    def contains(self, node_id: int) -> bool:
        return node_id in self.informed

    def boundary(self) -> set[int]:
        """``∂out(I)`` in the current (pre-churn) topology."""
        return self.state.boundary_of(self.informed)

    def absorb(self, boundary: set[int], report: RoundReport) -> None:
        """``I ← (I ∪ boundary) ∩ alive`` after the churn."""
        del report  # newborn ids are fresh, so they can never be in I
        self.informed |= boundary
        state = self.state
        self.informed = {u for u in self.informed if state.is_alive(u)}


class MaskFrontier:
    """Informed set as a boolean mask over array-backend rows."""

    def __init__(self, state: GraphBackend, informed: Iterable[int]) -> None:
        self.state = state
        self.mask = np.zeros(state.row_capacity(), dtype=bool)
        rows = state.rows_for(informed)
        if rows.size:
            self.mask[rows] = True

    def count(self) -> int:
        return int(self.mask.sum())

    def contains(self, node_id: int) -> bool:
        row = self.state.row_if_alive(node_id)
        return row is not None and bool(self.mask[row])

    def _padded(self, mask: np.ndarray) -> np.ndarray:
        """Grow *mask* to the backend's current row capacity (births may
        have resized the row arrays since the mask was made)."""
        cap = self.state.row_capacity()
        if len(mask) == cap:
            return mask
        grown = np.zeros(cap, dtype=bool)
        grown[: len(mask)] = mask
        return grown

    def boundary(self) -> np.ndarray:
        """Vectorized ``∂out(I)`` as a row mask (pre-churn topology)."""
        self.mask = self._padded(self.mask)
        return self.state.boundary_rows(self.mask)

    def absorb(self, boundary: np.ndarray, report: RoundReport) -> None:
        state = self.state
        mask = self._padded(self.mask) | self._padded(boundary)
        # Scrub rows recycled by this round's births: the previous occupant
        # died mid-round, and its informed/boundary bit must not leak onto
        # the newborn (the id-set semantics: newborn ids are never informed).
        for born in report.births:
            row = state.row_if_alive(born)
            if row is not None:
                mask[row] = False
        mask &= state.alive_row_mask()
        self.mask = mask


def make_frontier(state: GraphBackend, informed: Iterable[int]) -> SetFrontier | MaskFrontier:
    """Pick the fastest frontier representation the backend supports."""
    if getattr(state, "supports_vectorized_frontier", False):
        return MaskFrontier(state, informed)
    return SetFrontier(state, informed)
