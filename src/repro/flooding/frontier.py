"""Frontier strategies for synchronous flooding and gossip.

The round-based spreading processes (:func:`repro.flooding.discrete.flood_discrete`,
:func:`repro.flooding.gossip.gossip_push_pull`,
:func:`repro.flooding.lossy.flood_lossy`) track the informed set through
one of two interchangeable strategies:

* :class:`SetFrontier` — the reference implementation: a Python set of
  node ids, boundary via per-node neighbour unions, gossip/lossy contact
  draws per node.  Works on every backend.
* :class:`MaskFrontier` — a boolean mask over the array backend's rows;
  boundary expansion is ``informed-mask × slot-matrix`` in NumPy
  (see :meth:`~repro.core.array_backend.ArraySlotBackend.boundary_rows`),
  and the gossip/lossy proposals draw all of a round's contacts in a
  handful of array operations over the lazy CSR adjacency.
  Requires ``supports_vectorized_frontier``.

For the deterministic boundary (plain flooding) both strategies compute
the identical informed set each round — only the representation differs —
so seeded flooding trajectories match across backends (the cross-backend
parity tests assert exactly this).  The randomized proposals
(:meth:`gossip_proposal`, :meth:`lossy_proposal`) draw the same
*distribution* on either strategy but consume the RNG in different orders,
so mask-based gossip/lossy runs are statistically equivalent, not
bit-identical, to the set-based reference.

The round protocol (Definition 3.3's ``I_t = (I_{t−1} ∪ ∂out(I_{t−1})) ∩
N_t``) is split in two because churn happens between the boundary read and
the update: call :meth:`boundary` on the *pre-churn* topology, advance the
network, then :meth:`absorb` the boundary, discarding members that died.
The mask variant must additionally scrub rows recycled by same-round
births: a newborn can reuse the row of a dead informed node, and without
the scrub it would inherit the stale informed bit.
"""

from __future__ import annotations

from typing import Iterable, Protocol

import numpy as np

from repro.core.backend import GraphBackend
from repro.errors import ConfigurationError
from repro.models.base import DynamicNetwork, RoundReport


class Frontier(Protocol):
    """The informed-set operations flood_discrete needs."""

    def count(self) -> int: ...

    def contains(self, node_id: int) -> bool: ...

    def boundary(self) -> object: ...

    def absorb(self, boundary: object, report: RoundReport) -> None: ...


class SetFrontier:
    """Informed set as a plain set of node ids (any backend)."""

    def __init__(self, state: GraphBackend, informed: Iterable[int]) -> None:
        self.state = state
        self.informed = set(informed)

    def count(self) -> int:
        return len(self.informed)

    def contains(self, node_id: int) -> bool:
        return node_id in self.informed

    def boundary(self) -> set[int]:
        """``∂out(I)`` in the current (pre-churn) topology."""
        return self.state.boundary_of(self.informed)

    def gossip_proposal(
        self, rng: np.random.Generator, push: bool = True, pull: bool = True
    ) -> set[int]:
        """One push/pull gossip round's newly-informed set (pre-churn).

        Every informed node *pushes* to one uniform neighbour; every
        uninformed node not reached by a push *pulls* from one uniform
        neighbour (informed contact ⇒ informed).
        """
        state, informed = self.state, self.informed
        newly: set[int] = set()
        if push:
            for u in informed:
                neighbor = state.random_neighbor(u, rng)
                if neighbor is not None and neighbor not in informed:
                    newly.add(neighbor)
        if pull:
            for u in state.alive_ids():
                if u in informed or u in newly:
                    continue
                neighbor = state.random_neighbor(u, rng)
                if neighbor is not None and neighbor in informed:
                    newly.add(u)
        return newly

    def lossy_proposal(self, rng: np.random.Generator, loss: float) -> set[int]:
        """One lossy-flooding round's delivered set (pre-churn).

        Each (informed node → uninformed neighbour) transmission succeeds
        independently with probability ``1 − loss``; a node already
        delivered this round receives no further transmissions.
        """
        state, informed = self.state, self.informed
        delivered: set[int] = set()
        for u in informed:
            for v in state.neighbors(u):
                if v in informed or v in delivered:
                    continue
                if rng.random() >= loss:
                    delivered.add(v)
        return delivered

    def absorb(self, boundary: set[int], report: RoundReport) -> None:
        """``I ← (I ∪ boundary) ∩ alive`` after the churn."""
        del report  # newborn ids are fresh, so they can never be in I
        self.informed |= boundary
        state = self.state
        self.informed = {u for u in self.informed if state.is_alive(u)}


class MaskFrontier:
    """Informed set as a boolean mask over array-backend rows."""

    def __init__(self, state: GraphBackend, informed: Iterable[int]) -> None:
        self.state = state
        self.mask = np.zeros(state.row_capacity(), dtype=bool)
        rows = state.rows_for(informed)
        if rows.size:
            self.mask[rows] = True

    def count(self) -> int:
        return int(self.mask.sum())

    def contains(self, node_id: int) -> bool:
        row = self.state.row_if_alive(node_id)
        return row is not None and bool(self.mask[row])

    def _padded(self, mask: np.ndarray) -> np.ndarray:
        """Grow *mask* to the backend's current row capacity (births may
        have resized the row arrays since the mask was made)."""
        cap = self.state.row_capacity()
        if len(mask) == cap:
            return mask
        grown = np.zeros(cap, dtype=bool)
        grown[: len(mask)] = mask
        return grown

    def boundary(self) -> np.ndarray:
        """Vectorized ``∂out(I)`` as a row mask (pre-churn topology)."""
        self.mask = self._padded(self.mask)
        return self.state.boundary_rows(self.mask)

    def gossip_proposal(
        self, rng: np.random.Generator, push: bool = True, pull: bool = True
    ) -> np.ndarray:
        """Vectorized push/pull gossip round as a row mask (pre-churn).

        All contact choices of a round are drawn in two ``rng.integers``
        calls over the lazy CSR adjacency — same contact law as
        :meth:`SetFrontier.gossip_proposal`, different RNG consumption.
        """
        state = self.state
        self.mask = self._padded(self.mask)
        informed = self.mask & state.alive_row_mask()
        indptr, indices = state.adjacency_csr()
        degrees = np.diff(indptr)
        newly = np.zeros(len(self.mask), dtype=bool)
        if push:
            rows = np.nonzero(informed & (degrees > 0))[0]
            if rows.size:
                offsets = rng.integers(0, degrees[rows])
                newly[indices[indptr[rows] + offsets]] = True
        if pull:
            rows = np.nonzero(
                state.alive_row_mask() & ~informed & ~newly & (degrees > 0)
            )[0]
            if rows.size:
                offsets = rng.integers(0, degrees[rows])
                contacts = indices[indptr[rows] + offsets]
                newly[rows[informed[contacts]]] = True
        newly &= ~informed
        return newly

    def lossy_proposal(self, rng: np.random.Generator, loss: float) -> np.ndarray:
        """Vectorized lossy-flooding round as a row mask (pre-churn).

        One Bernoulli(1 − loss) draw per (informed → uninformed) directed
        CSR edge; a row is delivered when any incident transmission
        succeeds — the same delivery law as the per-node reference (each
        target's first successful transmission informs it).
        """
        state = self.state
        self.mask = self._padded(self.mask)
        informed = self.mask & state.alive_row_mask()
        indptr, indices = state.adjacency_csr()
        sources = np.repeat(np.arange(len(indptr) - 1), np.diff(indptr))
        candidates = indices[informed[sources] & ~informed[indices]]
        newly = np.zeros(len(self.mask), dtype=bool)
        if candidates.size:
            delivered = candidates[rng.random(candidates.size) >= loss]
            newly[delivered] = True
        return newly

    def absorb(self, boundary: np.ndarray, report: RoundReport) -> None:
        state = self.state
        mask = self._padded(self.mask) | self._padded(boundary)
        # Scrub rows recycled by this round's births: the previous occupant
        # died mid-round, and its informed/boundary bit must not leak onto
        # the newborn (the id-set semantics: newborn ids are never informed).
        for born in report.births:
            row = state.row_if_alive(born)
            if row is not None:
                mask[row] = False
        mask &= state.alive_row_mask()
        self.mask = mask


def make_frontier(state: GraphBackend, informed: Iterable[int]) -> SetFrontier | MaskFrontier:
    """Pick the fastest frontier representation the backend supports."""
    if getattr(state, "supports_vectorized_frontier", False):
        return MaskFrontier(state, informed)
    return SetFrontier(state, informed)


def resolve_spreading_frontier(
    network: DynamicNetwork, informed: Iterable[int], vectorized: bool
) -> SetFrontier | MaskFrontier:
    """Pick the frontier for a randomized spreading process (gossip/lossy).

    Unlike plain flooding (where the mask frontier computes the identical
    boundary and is therefore always safe to auto-select), the randomized
    proposals consume the RNG differently per representation, so the
    vectorized path is opt-in.
    """
    state = network.state
    if not vectorized:
        return SetFrontier(state, informed)
    if not getattr(state, "supports_vectorized_frontier", False):
        raise ConfigurationError(
            "vectorized=True needs a backend with vectorized-frontier "
            "support (the array backend); this network runs on "
            f"{type(state).__name__}"
        )
    return MaskFrontier(state, informed)
