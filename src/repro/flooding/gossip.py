"""Push/pull rumour spreading — an extension beyond the paper (DESIGN.md §5).

The paper's §5 notes that flooding contacts *all* neighbours, so a node of
degree Θ(log n) sends Θ(log n) messages per round, and asks for dynamics
with bounded communication.  Push/pull gossip is the classic bounded-budget
alternative: each round every informed node *pushes* the rumour to one
uniformly random neighbour, and every uninformed node *pulls* from one
uniformly random neighbour (receiving the rumour if that neighbour is
informed).  Per node per round: O(1) messages.

The round structure mirrors :func:`repro.flooding.discrete.flood_discrete`:
contacts are drawn in the snapshot ``G_{t-1}``, then churn is applied and
dead nodes drop out of the informed set.  The informed set lives in a
:mod:`repro.flooding.frontier` strategy: the per-node
:class:`~repro.flooding.frontier.SetFrontier` reference (the default, on
any backend), or the mask-based vectorized proposal on the array backend
when ``vectorized=True`` — same contact distribution, different RNG
stream, so vectorized runs are statistically equivalent but not
bit-identical to the reference.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.flooding.frontier import resolve_spreading_frontier
from repro.flooding.result import FloodingResult
from repro.models.base import DynamicNetwork
from repro.util.rng import SeedLike, make_rng


def gossip_push_pull(
    network: DynamicNetwork,
    source: int | None = None,
    max_rounds: int = 10_000,
    push: bool = True,
    pull: bool = True,
    seed: SeedLike = None,
    vectorized: bool = False,
) -> FloodingResult:
    """Run push/pull gossip on *network* until all alive nodes know the rumour.

    Args:
        network: a warm dynamic network driver.
        source: initially informed node; defaults to the youngest alive.
        max_rounds: hard cap on rounds.
        push: enable the push half (informed → random neighbour).
        pull: enable the pull half (uninformed ← random neighbour).
        seed: RNG for the contact choices (independent of the network's).
        vectorized: draw each round's contacts in bulk on the array
            backend's mask frontier (same distribution, different RNG
            stream than the per-node reference path).
    """
    if not push and not pull:
        raise ConfigurationError("enable at least one of push/pull")
    state = network.state
    rng: np.random.Generator = make_rng(seed)
    if source is None:
        source = state.youngest_alive()
    if not state.is_alive(source):
        raise ConfigurationError(f"source node {source} is not alive")

    frontier = resolve_spreading_frontier(network, {source}, vectorized)
    result = FloodingResult(source=source, start_time=network.now)
    result.record_round(1, state.num_alive())

    for round_index in range(1, max_rounds + 1):
        newly = frontier.gossip_proposal(rng, push=push, pull=pull)

        report = network.advance_round()

        frontier.absorb(newly, report)
        informed_count = frontier.count()
        result.record_round(informed_count, state.num_alive())

        uninformed_count = state.num_alive() - informed_count
        fresh_uninformed = sum(
            1
            for b in report.births
            if state.is_alive(b) and not frontier.contains(b)
        )
        if informed_count and uninformed_count == fresh_uninformed:
            result.completed = True
            result.completion_round = round_index
            return result
        if not informed_count:
            result.extinct = True
            result.extinction_round = round_index
            return result
    return result
