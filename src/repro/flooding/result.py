"""Result record shared by all flooding/gossip processes."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FloodingResult:
    """Trajectory and verdict of one flooding run.

    Attributes:
        source: id of the initially informed node.
        start_time: simulation time at which flooding started.
        informed_sizes: ``|I_t|`` after each round (index 0 = at start,
            so ``informed_sizes[k]`` is the size after ``k`` rounds).
        network_sizes: ``|N_t|`` at the same instants.
        completed: whether some round had every alive node informed
            (the paper's completion criterion, ``I_t ⊇ N_{t-1} ∩ N_t``
            evaluated as "all currently alive nodes informed").
        completion_round: first round index achieving completion (or None).
        extinct: True when every informed node died with uninformed nodes
            left — the broadcast can still only resume through new arrivals
            attaching to dead ends, i.e. never; this is the "flooding dies
            out" event of Theorems 3.7/4.12.
        extinction_round: first round at which extinction held (or None).
        max_informed: peak of ``informed_sizes``.
    """

    source: int
    start_time: float
    informed_sizes: list[int] = field(default_factory=list)
    network_sizes: list[int] = field(default_factory=list)
    completed: bool = False
    completion_round: int | None = None
    extinct: bool = False
    extinction_round: int | None = None
    max_informed: int = 0

    @property
    def rounds_run(self) -> int:
        """Number of flooding rounds executed."""
        return max(0, len(self.informed_sizes) - 1)

    @property
    def final_informed(self) -> int:
        return self.informed_sizes[-1] if self.informed_sizes else 0

    @property
    def final_network_size(self) -> int:
        return self.network_sizes[-1] if self.network_sizes else 0

    @property
    def final_fraction(self) -> float:
        """Informed fraction of the final snapshot (0 when network empty)."""
        if not self.network_sizes or self.network_sizes[-1] == 0:
            return 0.0
        return self.informed_sizes[-1] / self.network_sizes[-1]

    def fraction_at(self, round_index: int) -> float:
        """Informed fraction after *round_index* rounds (clamped to the end)."""
        idx = min(round_index, len(self.informed_sizes) - 1)
        if self.network_sizes[idx] == 0:
            return 0.0
        return self.informed_sizes[idx] / self.network_sizes[idx]

    def record_round(self, informed: int, alive: int) -> None:
        """Append one round's sizes and update the peak."""
        self.informed_sizes.append(informed)
        self.network_sizes.append(alive)
        self.max_informed = max(self.max_informed, informed)
