"""Registry of information-spreading protocols.

Every spreading process in the library is registered here under a short
name, behind one uniform :class:`Protocol` interface, so the scenario
layer (:mod:`repro.scenario`), the CLI and the smoke matrix can select a
protocol declaratively:

=================  ===========================================  ==========
name               process                                      reference
=================  ===========================================  ==========
``discrete``       synchronous flooding                         Def. 3.3
``discretized``    unit-interval flooding (Poisson models)      Def. 4.3
``asynchronous``   continuous-time flooding (Poisson models)    Def. 4.2
``gossip``         push/pull rumour spreading                   DESIGN §5
``lossy``          flooding with per-message loss               extension
=================  ===========================================  ==========

``Protocol.run`` delegates to the corresponding function in
:mod:`repro.flooding` with identical defaults, so a registry-driven run is
bit-identical to calling the function directly.  The round-based
protocols additionally expose the two-phase per-round interface used by
the frontier strategies — :meth:`Protocol.proposal` on the pre-churn
topology and :meth:`Frontier.absorb` after the churn — which is what the
vectorized mask fast path on :class:`~repro.core.array_backend.ArraySlotBackend`
plugs into.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.flooding.asynchronous import flood_asynchronous
from repro.flooding.discrete import flood_discrete
from repro.flooding.discretized import flood_discretized
from repro.flooding.frontier import (
    Frontier,
    MaskFrontier,
    SetFrontier,
    make_frontier,
    resolve_spreading_frontier,
)
from repro.flooding.gossip import gossip_push_pull
from repro.flooding.lossy import flood_lossy
from repro.flooding.result import FloodingResult
from repro.models.base import DynamicNetwork


class Protocol(ABC):
    """One registered spreading protocol.

    Attributes:
        name: registry key (also the JSON scenario spelling).
        description: one-line summary for listings.
        supports_step: whether the protocol exposes the per-round
            :meth:`proposal` interface on a frontier (the continuous-time
            and interval-based processes do not decompose into
            pre-churn/post-churn round halves).
    """

    name: str = ""
    description: str = ""
    supports_step: bool = True

    @abstractmethod
    def run(self, network: DynamicNetwork, **params) -> FloodingResult:
        """Run the protocol on *network* until completion or its round cap."""

    def make_frontier(
        self, network: DynamicNetwork, informed: Iterable[int], **params
    ) -> Frontier:
        """Build the informed-set representation this protocol steps on."""
        raise ConfigurationError(
            f"protocol {self.name!r} does not support per-round stepping"
        )

    def proposal(
        self, frontier: Frontier, rng: np.random.Generator, **params
    ) -> object:
        """The round's newly-informed candidates on the pre-churn topology.

        Feed the returned value to ``frontier.absorb(proposal, report)``
        after advancing the network one round.
        """
        raise ConfigurationError(
            f"protocol {self.name!r} does not support per-round stepping"
        )


_REGISTRY: dict[str, Protocol] = {}


def register_protocol(protocol_cls: type[Protocol]) -> type[Protocol]:
    """Class decorator adding a protocol to the registry."""
    protocol = protocol_cls()
    if not protocol.name:
        raise ConfigurationError("protocol must define a name")
    if protocol.name in _REGISTRY:
        raise ConfigurationError(f"duplicate protocol name {protocol.name!r}")
    _REGISTRY[protocol.name] = protocol
    return protocol_cls


def get_protocol(name: str) -> Protocol:
    """Look up a protocol by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown flooding protocol {name!r}; known: {known}"
        ) from None


def protocol_names() -> list[str]:
    """All registered protocol names, sorted."""
    return sorted(_REGISTRY)


def all_protocols() -> list[Protocol]:
    """All registered protocols, sorted by name."""
    return [_REGISTRY[name] for name in protocol_names()]


@register_protocol
class DiscreteFlooding(Protocol):
    """Definition 3.3 synchronous flooding."""

    name = "discrete"
    description = "synchronous flooding (Definition 3.3)"

    def run(self, network: DynamicNetwork, **params) -> FloodingResult:
        return flood_discrete(network, **params)

    def make_frontier(
        self, network: DynamicNetwork, informed: Iterable[int], **params
    ) -> Frontier:
        # Boundary expansion is deterministic, so the mask frontier is
        # always safe to auto-select (bit-identical informed sets).
        return make_frontier(network.state, informed)

    def proposal(
        self, frontier: Frontier, rng: np.random.Generator, **params
    ) -> object:
        del rng  # the boundary is deterministic
        return frontier.boundary()


@register_protocol
class DiscretizedFlooding(Protocol):
    """Definition 4.3 unit-interval flooding for the Poisson models."""

    name = "discretized"
    description = "unit-interval flooding (Definition 4.3)"
    supports_step = False

    def run(self, network: DynamicNetwork, **params) -> FloodingResult:
        return flood_discretized(network, **params)


@register_protocol
class AsynchronousFlooding(Protocol):
    """Definition 4.2 continuous-time flooding for the Poisson models."""

    name = "asynchronous"
    description = "continuous-time flooding (Definition 4.2)"
    supports_step = False

    def run(self, network: DynamicNetwork, **params) -> FloodingResult:
        from repro.models.poisson import PoissonNetwork

        if not isinstance(network, PoissonNetwork):
            raise ConfigurationError(
                "asynchronous flooding interleaves with the Poisson jump "
                f"chain and needs a PoissonNetwork, got {type(network).__name__}"
            )
        return flood_asynchronous(network, **params)


@register_protocol
class GossipPushPull(Protocol):
    """Push/pull gossip (one random contact per node per round)."""

    name = "gossip"
    description = "push/pull gossip (O(1) messages per node per round)"

    def run(self, network: DynamicNetwork, **params) -> FloodingResult:
        return gossip_push_pull(network, **params)

    def make_frontier(
        self, network: DynamicNetwork, informed: Iterable[int], **params
    ) -> SetFrontier | MaskFrontier:
        return resolve_spreading_frontier(
            network, set(informed), bool(params.get("vectorized", False))
        )

    def proposal(
        self, frontier: Frontier, rng: np.random.Generator, **params
    ) -> object:
        return frontier.gossip_proposal(
            rng,
            push=bool(params.get("push", True)),
            pull=bool(params.get("pull", True)),
        )


@register_protocol
class LossyFlooding(Protocol):
    """Flooding with independent per-transmission loss."""

    name = "lossy"
    description = "flooding with per-message loss"

    def run(self, network: DynamicNetwork, **params) -> FloodingResult:
        return flood_lossy(network, **params)

    def make_frontier(
        self, network: DynamicNetwork, informed: Iterable[int], **params
    ) -> SetFrontier | MaskFrontier:
        return resolve_spreading_frontier(
            network, set(informed), bool(params.get("vectorized", False))
        )

    def proposal(
        self, frontier: Frontier, rng: np.random.Generator, **params
    ) -> object:
        return frontier.lossy_proposal(rng, float(params.get("loss", 0.0)))
