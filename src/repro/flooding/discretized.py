"""Discretized continuous flooding — Definition 4.3.

The worst-case flooding process the paper uses to upper-bound flooding time
in the Poisson models: informed nodes transmit only at integer times, and a
transmission along edge ``{u, v}`` succeeds only if the edge existed *for
the whole unit interval*.

Because edges in the Poisson models are rewired only when an endpoint dies
(regeneration) or never (no regeneration), an edge present at the start of
an interval persists through the whole interval **iff both endpoints are
alive at the end**.  This gives the exact update rule

``I_t = (I_{t−1} ∩ N_t) ∪ {v ∈ N_t : ∃u ∈ I_{t−1} ∩ N_t, {u,v} ∈ E_{t−1}}``.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ConfigurationError
from repro.flooding.result import FloodingResult
from repro.models.base import DynamicNetwork


def flood_discretized(
    network: DynamicNetwork,
    source: int | None = None,
    max_rounds: int = 10_000,
    stop_when_extinct: bool = True,
    sources: Iterable[int] | None = None,
) -> FloodingResult:
    """Run Definition 4.3 flooding on a (Poisson) dynamic network.

    Args:
        network: the dynamic network driver (typically PDG/PDGR), warm.
        source: initially informed node; defaults to the youngest alive.
        max_rounds: hard cap on the number of unit intervals simulated.
        stop_when_extinct: stop once no informed node is alive.
        sources: start from several informed nodes at once (overrides
            *source*).
    """
    state = network.state
    if sources is not None:
        informed = set(sources)
        if not informed:
            raise ConfigurationError("sources must be non-empty when given")
        for node in informed:
            if not state.is_alive(node):
                raise ConfigurationError(f"source node {node} is not alive")
        source = min(informed)
    else:
        if source is None:
            source = network.state.youngest_alive()
        if not state.is_alive(source):
            raise ConfigurationError(f"source node {source} is not alive")
        informed = {source}
    result = FloodingResult(source=source, start_time=network.now)
    result.record_round(len(informed), state.num_alive())

    for round_index in range(1, max_rounds + 1):
        # Freeze the neighbourhoods of informed nodes at interval start.
        frontier_neighbors: dict[int, list[int]] = {
            u: list(state.neighbors(u)) for u in informed
        }

        report = network.advance_round()

        # Informers must survive the interval for their edges to persist.
        survivors = {u for u in informed if state.is_alive(u)}
        newly: set[int] = set()
        for u in survivors:
            for v in frontier_neighbors[u]:
                if v not in survivors and state.is_alive(v):
                    newly.add(v)
        informed = survivors | newly
        result.record_round(len(informed), state.num_alive())

        uninformed_count = state.num_alive() - len(informed)
        fresh_uninformed = sum(
            1
            for b in report.births
            if state.is_alive(b) and b not in informed
        )
        if informed and uninformed_count == fresh_uninformed:
            result.completed = True
            result.completion_round = round_index
            return result
        if not informed:
            result.extinct = True
            result.extinction_round = round_index
            if stop_when_extinct:
                return result
    return result

