"""EXP-03 — whole-graph expansion with edge regeneration.

Reproduces Theorem 3.15 (SDGR, d ≥ 14... wait) and Theorem 4.16 (PDGR,
d ≥ 35): snapshots are ε-expanders with ε ≥ 0.1 at *every* set size.
Three independent measurements:

1. **exact** vertex expansion by subset enumeration at tiny n (certifies
   the constant exactly where enumeration is feasible);
2. **adversarial probes** over the full size range at realistic n;
3. **spectral gap** of the normalized Laplacian (independent evidence via
   Cheeger's inequality).

A no-regeneration control at the same (n, d) shows what regeneration buys.
"""

from __future__ import annotations

from repro.analysis.expansion import (
    probe_network_expansion,
    vertex_expansion_exact,
)
from repro.analysis.spectral import normalized_laplacian_lambda2
from repro.experiments.common import ExperimentResult, Stopwatch
from repro.experiments.registry import register
from repro.scenario import ScenarioSpec, simulate
from repro.util.rng import derive_seed, derive_seeds

from repro.theory.expansion import EXPANSION_THRESHOLD

COLUMNS = [
    "model",
    "n",
    "d",
    "method",
    "expansion_measure",
    "above_0.1",
]

SDGR_SPEC = ScenarioSpec(churn="streaming", policy="regen")
PDGR_SPEC = ScenarioSpec(churn="poisson", policy="regen")
SDG_SPEC = ScenarioSpec(churn="streaming", policy="none")


@register(
    "EXP-03",
    "Θ(1)-expansion with edge regeneration",
    "Table 1 row 2 (right); Theorem 3.15 (SDGR), Theorem 4.16 (PDGR)",
)
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    if quick:
        probe_n, trials, exact_trials = 300, 2, 2
    else:
        probe_n, trials, exact_trials = 1200, 4, 6

    rows: list[dict] = []
    with Stopwatch() as watch:
        # 1. Exact expansion at tiny n (d scaled to keep the graph sparse
        #    relative to n — at n=16, d=14 would be near-complete).
        for child in derive_seeds(seed, "exp03-exact", exact_trials):
            sim = simulate(SDGR_SPEC.with_(n=16, d=5, horizon=32), seed=child)
            probe = vertex_expansion_exact(sim.snapshot())
            rows.append(
                {
                    "model": "SDGR",
                    "n": 16,
                    "d": 5,
                    "method": "exact",
                    "expansion_measure": probe.min_ratio,
                    "above_0.1": probe.min_ratio > EXPANSION_THRESHOLD,
                }
            )

        # 2. Adversarial probes at the paper's degree thresholds.
        for model_name, d in [("SDGR", 14), ("PDGR", 35)]:
            worst = None
            for child in derive_seeds(seed, "exp03-probe", trials):
                if model_name == "SDGR":
                    sim = simulate(
                        SDGR_SPEC.with_(n=probe_n, d=d, horizon=probe_n),
                        seed=child,
                    )
                else:
                    sim = simulate(PDGR_SPEC.with_(n=probe_n, d=d), seed=child)
                # Live-network probe on the CSR analysis plane: the
                # backend state exports a zero-copy view and the
                # vectorized portfolio scores the identical candidates
                # (and returns the identical probe) as the snapshot path.
                probe = probe_network_expansion(sim.network, seed=child)
                if worst is None or probe.min_ratio < worst.min_ratio:
                    worst = probe
            assert worst is not None
            rows.append(
                {
                    "model": model_name,
                    "n": probe_n,
                    "d": d,
                    "method": "adversarial probe",
                    "expansion_measure": worst.min_ratio,
                    "above_0.1": worst.min_ratio > EXPANSION_THRESHOLD,
                }
            )

        # 3. Spectral gap evidence, on the CSR analysis plane: the scipy
        #    Laplacian is assembled straight from the session's zero-copy
        #    view (the snapshot path remains as the tested reference).
        sim = simulate(
            SDGR_SPEC.with_(n=probe_n, d=14, horizon=probe_n),
            seed=derive_seed(seed, "exp03-spectral", 0),
        )
        lam2 = normalized_laplacian_lambda2(sim.csr_view())
        rows.append(
            {
                "model": "SDGR",
                "n": probe_n,
                "d": 14,
                "method": "spectral gap λ2",
                "expansion_measure": lam2,
                "above_0.1": lam2 > 0.1,
            }
        )

        # 4. Control: no regeneration at the same degree has zero
        #    expansion as soon as one isolated node exists (larger d
        #    merely makes that event rarer — use small d to show it).
        control = simulate(
            SDG_SPEC.with_(n=probe_n, d=2, horizon=probe_n),
            seed=derive_seed(seed, "exp03-control", 0),
        ).network
        control_probe = probe_network_expansion(
            control, seed=derive_seed(seed, "exp03-control-probe", 0)
        )
        rows.append(
            {
                "model": "SDG (control)",
                "n": probe_n,
                "d": 2,
                "method": "adversarial probe",
                "expansion_measure": control_probe.min_ratio,
                "above_0.1": control_probe.min_ratio > EXPANSION_THRESHOLD,
            }
        )

    regen_rows = [r for r in rows if "control" not in r["model"]]
    return ExperimentResult(
        experiment_id="EXP-03",
        title="Θ(1)-expansion with edge regeneration",
        paper_reference="Theorem 3.15 (SDGR), Theorem 4.16 (PDGR)",
        columns=COLUMNS,
        rows=rows,
        verdict={
            "regeneration_models_all_above_0.1": all(
                r["above_0.1"] for r in regen_rows
            ),
            "no_regen_control_expansion": control_probe.min_ratio,
            "control_fails_expansion": control_probe.min_ratio
            <= EXPANSION_THRESHOLD,
        },
        notes=(
            "Exact enumeration uses n=16/d=5 (enumeration is infeasible "
            "beyond n≈22; at n=16 the paper's d=14 would be near-complete, "
            "so the degree is scaled while keeping d << n)."
        ),
        elapsed_seconds=watch.elapsed,
    )
