"""EXP-01 — isolated nodes in the models without regeneration.

Reproduces Lemma 3.5 (SDG) and Lemma 4.10 (PDG): snapshots contain at
least ``(1/6)·n·e^{−2d}`` (streaming) / ``(1/18)·n·e^{−2d}`` (Poisson)
isolated nodes w.h.p., and those nodes stay isolated for life.  The
measured fractions are also compared against the sharper first-order
predictions (see :mod:`repro.theory.isolated`), and the decay across ``d``
is fitted to check the exp(−Θ(d)) shape.
"""

from __future__ import annotations

from repro.analysis.isolated import lifetime_isolated_census
from repro.experiments.common import ExperimentResult, Stopwatch
from repro.experiments.registry import register
from repro.scenario import ScenarioSpec, simulate
from repro.sweep import SweepSpec, run_sweep
from repro.theory.isolated import (
    isolated_fraction_lower_bound_poisson,
    isolated_fraction_lower_bound_streaming,
    isolated_fraction_prediction_poisson,
    isolated_fraction_prediction_streaming,
)
from repro.util.rng import derive_seed
from repro.util.stats import exponential_decay_fit, mean_confidence_interval

COLUMNS = [
    "model",
    "n",
    "d",
    "measured_fraction",
    "prediction",
    "paper_bound",
    "above_bound",
]

# SDG reaches age-stationarity after n post-warm-up rounds; PDG's 3n warm
# time (the spec default) is already stationary at hand-over.
SDG_SPEC = ScenarioSpec(churn="streaming", policy="none")
PDG_SPEC = ScenarioSpec(churn="poisson", policy="none")


@register(
    "EXP-01",
    "Isolated nodes without edge regeneration",
    "Table 1 row 1; Lemma 3.5 (SDG), Lemma 4.10 (PDG)",
)
def run(quick: bool = True, seed: int = 0) -> ExperimentResult:
    if quick:
        n, trials, ds = 400, 4, [1, 2, 3, 4]
    else:
        n, trials, ds = 1500, 12, [1, 2, 3, 4, 5, 6]

    # One declared replica sweep per model: the d axis × `trials` seed
    # replicas, each family on its own named stream (this is what the old
    # `trial_seeds(seed)` / `trial_seeds(seed + 1)` offsets meant).
    models = [
        (
            "SDG",
            SweepSpec(
                base=SDG_SPEC.with_(n=n, horizon=n),
                axes=[("d", tuple(ds))],
                replicas=trials,
                seed=seed,
                stream="exp01-sdg",
                measure="isolated_fraction",
            ),
            isolated_fraction_prediction_streaming,
            isolated_fraction_lower_bound_streaming,
        ),
        (
            "PDG",
            SweepSpec(
                base=PDG_SPEC.with_(n=n),
                axes=[("d", tuple(ds))],
                replicas=trials,
                seed=seed,
                stream="exp01-pdg",
                measure="isolated_fraction",
            ),
            isolated_fraction_prediction_poisson,
            isolated_fraction_lower_bound_poisson,
        ),
    ]

    rows: list[dict] = []
    with Stopwatch() as watch:
        fractions: dict[str, dict[int, float]] = {}
        for model, sweep, prediction, bound in models:
            fractions[model] = {}
            for d, samples in zip(ds, run_sweep(sweep).value_groups()):
                ci = mean_confidence_interval(samples)
                fractions[model][d] = ci.mean
                rows.append(
                    {
                        "model": model,
                        "n": n,
                        "d": d,
                        "measured_fraction": ci.mean,
                        "prediction": prediction(d),
                        "paper_bound": bound(d),
                        "above_bound": ci.mean >= bound(d),
                    }
                )
        sdg_fractions = fractions["SDG"]
        pdg_fractions = fractions["PDG"]

        # Lemma 3.5's second claim: isolated nodes stay isolated for life.
        census_net = simulate(
            SDG_SPEC.with_(n=n, d=2, horizon=n),
            seed=derive_seed(seed, "exp01-census", 0),
        ).network
        census = lifetime_isolated_census(census_net, max_rounds=n)

        sdg_fit = exponential_decay_fit(ds, [sdg_fractions[d] for d in ds])
        pdg_fit = exponential_decay_fit(ds, [pdg_fractions[d] for d in ds])

    result = ExperimentResult(
        experiment_id="EXP-01",
        title="Isolated nodes without edge regeneration",
        paper_reference="Lemma 3.5 (SDG), Lemma 4.10 (PDG)",
        columns=COLUMNS,
        rows=rows,
        verdict={
            "all_above_paper_bound": all(r["above_bound"] for r in rows),
            "sdg_decay_rate_per_d": sdg_fit.slope,
            "pdg_decay_rate_per_d": pdg_fit.slope,
            "decay_is_exponential_in_d": sdg_fit.slope < -0.3
            and pdg_fit.slope < -0.3,
            "census_initial_isolated": census.initial_isolated,
            "census_forever_isolated_fraction": (
                census.forever_isolated_fraction_of_tracked
            ),
            # Lemma 3.5 claims the snapshot holds ≥ n·e^{−2d}/6 nodes that
            # stay isolated for their whole life; the census's
            # died-isolated count is exactly that quantity.  (It does NOT
            # claim every currently-isolated node stays isolated — young
            # isolated nodes often pick up a later in-edge.)
            "census_forever_isolated_count": census.died_isolated,
            "forever_isolated_above_paper_bound": (
                census.died_isolated
                >= n * isolated_fraction_lower_bound_streaming(2)
            ),
        },
        notes=(
            "Paper bounds are loose union-bound constants; the first-order "
            "predictions (integrals over the age distribution) are the "
            "expected operating point and track the measurements."
        ),
        elapsed_seconds=watch.elapsed,
    )
    return result
