"""Shared infrastructure for the experiment harness."""

from __future__ import annotations

import csv
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.errors import ExperimentError
from repro.util.tables import render_kv, render_table


@dataclass
class ExperimentResult:
    """The output of one experiment run.

    Attributes:
        experiment_id: registry id (e.g. ``"EXP-01"``).
        title: human-readable experiment name.
        paper_reference: the theorem/lemma/table the experiment reproduces.
        columns: column order for the result table.
        rows: one dict per table row.
        verdict: headline comparisons (measured vs paper, pass/fail flags).
        notes: free-form caveats (scaled-down constants, substitutions).
        elapsed_seconds: wall-clock runtime.
    """

    experiment_id: str
    title: str
    paper_reference: str
    columns: Sequence[str]
    rows: list[Mapping[str, Any]] = field(default_factory=list)
    verdict: dict[str, Any] = field(default_factory=dict)
    notes: str = ""
    elapsed_seconds: float = 0.0

    def to_text(self) -> str:
        """Render the full experiment report as text."""
        header = (
            f"[{self.experiment_id}] {self.title}\n"
            f"reproduces: {self.paper_reference}"
        )
        parts = [header]
        if self.rows:
            parts.append(render_table(self.columns, self.rows))
        if self.verdict:
            parts.append(render_kv(self.verdict, title="verdict:"))
        if self.notes:
            parts.append(f"notes: {self.notes}")
        parts.append(f"elapsed: {self.elapsed_seconds:.1f}s")
        return "\n".join(parts)

    def passed(self) -> bool:
        """True when every boolean entry in the verdict is True."""
        return all(
            value for value in self.verdict.values() if isinstance(value, bool)
        )

    def write_csv(self, directory: str | Path) -> Path:
        """Write the result rows as ``<directory>/<experiment_id>.csv``.

        The verdict is appended as ``# key=value`` comment lines so a CSV
        captures the full outcome; returns the written path.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.experiment_id}.csv"
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(
                handle, fieldnames=list(self.columns), extrasaction="ignore"
            )
            writer.writeheader()
            for row in self.rows:
                writer.writerow({k: row.get(k) for k in self.columns})
            for key, value in self.verdict.items():
                handle.write(f"# {key}={value}\n")
        return path


class Stopwatch:
    """Context manager measuring elapsed wall-clock time."""

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        self.elapsed = 0.0
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._start


def trial_seeds(seed: int, count: int) -> list[Any]:
    """Removed in 1.5 — raises with migration instructions.

    Positional derivation forced experiments needing several trial
    families into ad-hoc offsets (``trial_seeds(seed + 1, ...)``), which
    alias across master seeds.  The shim was deprecated in 1.4 and now
    fails loudly; this stub (and its message) will be dropped entirely
    in the next release.
    """
    raise ExperimentError(
        "trial_seeds() was removed in 1.5: positional seed derivation "
        "aliases across master seeds.  Use named streams instead — "
        "repro.util.rng.derive_seeds(seed, 'your-stream-name', "
        f"{count}) gives {count} independent seeds for one family, and "
        "distinct stream names give independent families."
    )
